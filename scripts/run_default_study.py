"""Run the default-scale four-crawl study and archive every artifact.

Writes rendered tables to ``results/default/`` for EXPERIMENTS.md and a
pickle of the analysis result for inspection.

Usage::

    python scripts/run_default_study.py [--preset default|tiny|full]
"""

from __future__ import annotations

import argparse
import pickle
import time
from pathlib import Path

from repro.analysis import report as report_mod
from repro.experiments import DEFAULT_CONFIG, FULL_CONFIG, TINY_CONFIG, run_study
from repro.obs import write_metrics, write_trace

PRESETS = {"default": DEFAULT_CONFIG, "tiny": TINY_CONFIG, "full": FULL_CONFIG}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", default="default", choices=sorted(PRESETS))
    parser.add_argument("--out", default=None, help="output directory")
    args = parser.parse_args()
    config = PRESETS[args.preset]
    out_dir = Path(args.out or f"results/{config.name}")
    out_dir.mkdir(parents=True, exist_ok=True)

    started = time.time()
    result = run_study(config)
    elapsed = time.time() - started

    from repro.analysis.table3 import compute_table3
    from repro.analysis.table4 import compute_table4

    from repro.analysis.ads import compute_ad_delivery, render_ad_delivery
    from repro.analysis.drift import compute_initiator_drift, render_drift

    table3_full = compute_table3(result.views, top=100)
    table4_full = compute_table4(result.views, top=200)
    drift = compute_initiator_drift(result.views)
    sections = {
        "table1": report_mod.render_table1(result.table1),
        "table2": report_mod.render_table2(result.table2),
        "table3": report_mod.render_table3(result.table3),
        "table4": report_mod.render_table4(result.table4),
        "table5": report_mod.render_table5(result.table5),
        "figure3": report_mod.render_figure3(result.figure3),
        "figure3_chart": report_mod.render_figure3_chart(result.figure3),
        "drift": render_drift(drift),
        "ads": render_ad_delivery(
            compute_ad_delivery(result.views, result.dataset.engine)
        ),
        "overall": report_mod.render_overall(result.overall),
        "blocking": report_mod.render_blocking(result.blocking),
        "obs": report_mod.render_obs(result.obs),
    }
    write_trace(out_dir / "study.trace.jsonl", result.obs)
    write_metrics(out_dir / "study.metrics.json", result.obs)
    for name, text in sections.items():
        (out_dir / f"{name}.txt").write_text(text + "\n")
    pages = sum(s.pages_visited for s in result.summaries)
    meta = (
        f"preset={config.name} scale={config.scale} "
        f"sample_scale={config.resolved_sample_scale} "
        f"pages_per_site={config.pages_per_site} seed={config.seed}\n"
        f"sites={len(result.web.seed_list)} pages={pages} "
        f"elapsed={elapsed:.1f}s\n"
        f"aa_domains_labeled={len(result.labeler)} "
        f"cloudfront_mapped={len(result.resolver.cloudfront_mapping)}\n"
    )
    (out_dir / "meta.txt").write_text(meta)
    with open(out_dir / "result.pickle", "wb") as handle:
        pickle.dump(
            {
                "table1": result.table1,
                "table2": result.table2,
                "table3": table3_full,
                "table4": table4_full,
                "table5": result.table5,
                "figure3": result.figure3,
                "blocking": result.blocking,
                "overall": result.overall,
            },
            handle,
        )
    print(meta)
    for name, text in sections.items():
        print(f"===== {name} =====")
        print(text)
        print()


if __name__ == "__main__":
    main()
