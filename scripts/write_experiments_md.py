"""Generate EXPERIMENTS.md from an archived study result.

Usage::

    python scripts/write_experiments_md.py [results/default/result.pickle]
"""

from __future__ import annotations

import pickle
import sys
from pathlib import Path

from repro.experiments import comparison

HEADER = """\
# EXPERIMENTS — paper vs. measured

Every number in the "measured" columns below was produced by running
the full measurement pipeline (crawl → inclusion trees → A&A labeling →
content analysis) over the synthetic web at the **default preset**
(`StudyConfig(scale=0.05, sample_scale=0.11, pages_per_site=15)`:
{sites} publishers, {pages} page visits across four crawls; regenerate
with `python scripts/run_default_study.py`). Nothing is transcribed
from the paper; `repro.experiments.expected` holds the published values
only for these comparisons.

**How to read the deltas.** Per the reproduction contract (DESIGN.md
§5), three classes of results behave differently under scaling:

1. **Entity-level counts** (unique A&A initiators per crawl, unique
   receivers, Table 2/3 per-company A&A-partner counts, the presence of
   every named pair) are *pinned* and reproduce exactly.
2. **Percentages** (Table 1 shares, Table 5 rates, Figure 3 ratios,
   §4.2 blocking rates) are distribution-driven and land within a few
   points of the paper.
3. **Absolute socket/request totals** compress with crawl scale
   (≈1/20th of the paper's crawl); orderings and rough factors hold,
   and the reserved single-publisher pairs of Table 4 keep their exact
   per-site intensities.
"""


def main() -> None:
    pickle_path = Path(
        sys.argv[1] if len(sys.argv) > 1 else "results/default/result.pickle"
    )
    with open(pickle_path, "rb") as handle:
        artifacts = pickle.load(handle)
    meta = (pickle_path.parent / "meta.txt").read_text()
    sites = pages = "?"
    for token in meta.replace("\n", " ").split():
        if token.startswith("sites="):
            sites = token.split("=")[1]
        if token.startswith("pages="):
            pages = token.split("=")[1]

    # Table 5 isn't in the pickle (holds dict-of-enum); recompute text
    # sections from the stored structures where available.
    sections = [HEADER.format(sites=sites, pages=pages)]
    sections.append("\n## Table 1 — high-level crawl statistics\n")
    sections.append(comparison.compare_table1(artifacts["table1"]))
    sections.append(
        "\nThe headline dynamics reproduce: unique A&A initiators collapse "
        "75 → 63 → 19 → 23 around the Chrome 58 release while the share "
        "of A&A-initiated sockets stays in a narrow band, and the May "
        "crawl dips in coverage.\n"
    )
    sections.append("\n## Table 2 — top WebSocket initiators\n")
    sections.append(comparison.compare_table2(artifacts["table2"]))
    sections.append(
        "\nUnique-receiver structure matches the paper almost cell-for-"
        "cell; socket counts compress with crawl scale.\n"
    )
    sections.append("\n## Table 3 — top A&A WebSocket receivers\n")
    sections.append(comparison.compare_table3(artifacts["table3"]))
    sections.append(
        "\nIntercom leads by unique initiators, as in the paper; the A&A-"
        "initiator column (entity-level) reproduces exactly for nearly "
        "every receiver, while total-initiator counts (mostly distinct "
        "publishers) scale with crawl size.\n"
    )
    sections.append("\n## Table 4 — initiator/receiver pairs\n")
    sections.append(comparison.compare_table4(artifacts["table4"]))
    sections.append(
        "\nThe recognizable single-publisher pairs keep their paper-level "
        "counts at every scale (their per-site intensity is the result); "
        "multi-site pairs compress. The self-pair row dominates, as "
        "published.\n"
    )
    sections.append("\n## Overall statistics, §4.2 blocking, Figure 3\n")
    sections.append(comparison.compare_overall(
        artifacts["overall"], artifacts["blocking"], artifacts["figure3"],
        artifacts["table5"],
    ))
    out = Path("EXPERIMENTS.md")
    out.write_text("\n".join(sections) + "\n")
    print(f"wrote {out} ({out.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
