"""Benchmarks for the static analyzers.

The filter-list analyzer is quadratic-ish in (rules x probes), the
determinism linter walks every AST under ``src/repro``, and the
webRequest cross-check dispatches one live handshake per receiver —
these benches keep all three honest as the lists and codebase grow.
"""

from repro.staticlint.determinism import lint_self
from repro.staticlint.filterlint import analyze_filter_lists
from repro.staticlint.probes import UrlUniverse
from repro.staticlint.webrequestlint import cross_validate_receivers
from repro.web.filterlists import build_filter_lists


def test_filterlint_over_bundled_lists(benchmark, bench_web):
    registry = bench_web.registry
    lists = build_filter_lists(registry)

    analysis = benchmark(
        lambda: analyze_filter_lists(lists, registry=registry)
    )
    print(f"\n{len(analysis.universe)} probes, "
          f"{len(analysis.report)} findings "
          f"({', '.join(analysis.report.categories)})")
    assert len(analysis.report.categories) >= 3


def test_probe_universe_construction(benchmark, bench_web):
    registry = bench_web.registry
    lists = build_filter_lists(registry)

    universe = benchmark(lambda: UrlUniverse.combined(registry, lists))
    assert universe.websocket_probes()


def test_determinism_self_lint(benchmark):
    report = benchmark(lint_self)
    assert not report.errors


def test_cross_validation_sweep(benchmark, bench_web):
    registry = bench_web.registry
    lists = build_filter_lists(registry)

    def sweep():
        records = []
        for chrome_major in (57, 58):
            for ws_aware in (True, False):
                records.extend(cross_validate_receivers(
                    lists, registry, chrome_major, websocket_aware=ws_aware
                ))
        return records

    records = benchmark(sweep)
    assert records
    assert all(r.agree for r in records)
