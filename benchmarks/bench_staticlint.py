"""Benchmarks for the static analyzers.

The filter-list analyzer is quadratic-ish in (rules x probes), the
determinism linter walks every AST under ``src/repro``, and the
webRequest cross-check dispatches one live handshake per receiver —
these benches keep all three honest as the lists and codebase grow.

``BENCH_STATICLINT.json`` records the whole-program flow analyzer's
headline numbers: cold whole-repo analysis, the warm cached re-run
(content-addressed facts, re-parses nothing — asserted >= 5x faster
than cold), and the single-parse pipeline against the legacy
parse-per-linter self-lint it replaced.
"""

from time import perf_counter

from conftest import write_bench_json

from repro.staticlint.apilint import lint_api_self
from repro.staticlint.cache import FactsCache
from repro.staticlint.determinism import lint_self
from repro.staticlint.filterlint import analyze_filter_lists
from repro.staticlint.flow import analyze_self
from repro.staticlint.probes import UrlUniverse
from repro.staticlint.webrequestlint import cross_validate_receivers
from repro.web.filterlists import build_filter_lists


def test_filterlint_over_bundled_lists(benchmark, bench_web):
    registry = bench_web.registry
    lists = build_filter_lists(registry)

    analysis = benchmark(
        lambda: analyze_filter_lists(lists, registry=registry)
    )
    print(f"\n{len(analysis.universe)} probes, "
          f"{len(analysis.report)} findings "
          f"({', '.join(analysis.report.categories)})")
    assert len(analysis.report.categories) >= 3


def test_probe_universe_construction(benchmark, bench_web):
    registry = bench_web.registry
    lists = build_filter_lists(registry)

    universe = benchmark(lambda: UrlUniverse.combined(registry, lists))
    assert universe.websocket_probes()


def test_determinism_self_lint(benchmark):
    report = benchmark(lint_self)
    assert not report.errors


def test_flow_whole_program_cold_vs_warm(tmp_path):
    """The tentpole numbers: cold whole-repo flow analysis, the warm
    content-addressed re-run, and the single-parse pipeline vs the
    legacy parse-per-linter self-lint."""
    cache = FactsCache(tmp_path / "facts")

    start = perf_counter()
    cold_analysis = analyze_self(cache=cache)
    cold = perf_counter() - start
    assert cold_analysis.parsed_files > 0
    assert cold_analysis.cached_files == 0

    warm = float("inf")
    for _ in range(3):
        start = perf_counter()
        warm_analysis = analyze_self(cache=cache)
        warm = min(warm, perf_counter() - start)
    assert warm_analysis.parsed_files == 0  # re-parsed nothing

    # The two standalone linters parse the tree once EACH — what
    # ``repro lint --self`` did before the single-parse core. Both
    # sides are timed best-of-3: a single pass each on a 1-CPU host
    # lets one scheduler stall flip the speedup ratio run-to-run
    # (history has recorded 0.77–1.87 from single-pass timings).
    legacy = float("inf")
    for _ in range(3):
        start = perf_counter()
        lint_self()
        lint_api_self()
        legacy = min(legacy, perf_counter() - start)

    # One parse, determinism + API + whole-program flow together.
    single_parse = float("inf")
    for _ in range(3):
        start = perf_counter()
        analyze_self()
        single_parse = min(single_parse, perf_counter() - start)

    graph = cold_analysis.graph
    write_bench_json("staticlint", {
        "files": cold_analysis.parsed_files,
        "functions": len(graph.nodes),
        "call_edges": sum(len(v) for v in graph.calls.values()),
        "cold_seconds": round(cold, 4),
        "warm_seconds": round(warm, 4),
        "warm_speedup": round(cold / warm, 2),
        "legacy_two_parse_seconds": round(legacy, 4),
        "single_parse_seconds": round(single_parse, 4),
        "single_parse_speedup_vs_legacy": round(legacy / single_parse, 2),
    })
    print(f"\ncold {cold:.3f}s, warm {warm:.3f}s "
          f"({cold / warm:.1f}x), legacy two-parse {legacy:.3f}s, "
          f"single-parse {single_parse:.3f}s")
    assert cold >= warm * 5, (
        f"warm cached run must be >= 5x faster than cold "
        f"(cold {cold:.3f}s, warm {warm:.3f}s)"
    )


def test_cross_validation_sweep(benchmark, bench_web):
    registry = bench_web.registry
    lists = build_filter_lists(registry)

    def sweep():
        records = []
        for chrome_major in (57, 58):
            for ws_aware in (True, False):
                records.extend(cross_validate_receivers(
                    lists, registry, chrome_major, websocket_aware=ws_aware
                ))
        return records

    records = benchmark(sweep)
    assert records
    assert all(r.agree for r in records)
