"""Regenerate the §4.2 blocking statistics.

Paper: only ~5% of the inclusion chains leading to A&A sockets would
have been blocked by EasyList/EasyPrivacy, versus ~27% of all A&A
chains — which is why, pre-patch, blocking the socket itself was the
only defence.
"""

from repro.analysis.blocking import compute_blocking_stats
from repro.analysis.report import render_blocking


def test_blocking_stats(benchmark, bench_study):
    stats = benchmark(
        compute_blocking_stats,
        bench_study.dataset,
        bench_study.views,
        bench_study.labeler,
        bench_study.resolver,
    )
    print()
    print(render_blocking(stats))
    assert 1.0 < stats.pct_socket_chains_blocked < 12.0
    assert 18.0 < stats.pct_aa_chains_blocked < 40.0
    # The crossover the paper emphasizes: overall chains are blocked at
    # several times the rate of socket chains.
    assert stats.pct_aa_chains_blocked > 3 * stats.pct_socket_chains_blocked
