"""Regenerate Figure 3: WebSocket usage by Alexa site rank.

Paper shape: both socket types are most prevalent on highly ranked
publishers with a drop between 10K and 20K; A&A sockets ≈ 2× non-A&A
overall and ≈ 4.5× within the top 10K.
"""

from repro.analysis.figure3 import compute_figure3
from repro.analysis.report import render_figure3


def test_figure3(benchmark, bench_study):
    series = benchmark(
        compute_figure3, bench_study.views, bench_study.dataset.meta
    )
    print()
    print(render_figure3(series))
    # A&A sockets dominate non-A&A, more strongly at the top.
    assert series.overall_ratio > 1.5
    assert series.top10k_ratio > 2.0
    # Prevalence declines from the head of the ranking: the first bin
    # beats the average of the well-populated mid bins.
    head = series.aa_fraction[0]
    mid = [
        series.aa_fraction[i] for i in range(2, 10)
        if series.publishers_per_bin[i] > 50
    ]
    assert head > (sum(mid) / len(mid)) * 0.9 if mid else True
    assert series.publishers_per_bin[0] > 0
