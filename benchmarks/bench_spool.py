"""Spool durability and incremental-analysis cost, end to end.

Measures, at the configured bench preset,

* the **spooled study**: the full crawl with every checkpoint going
  through the write-ahead spool (the durability tax on the hot path);
* **append throughput**: replaying every journal payload through
  ``SpoolStore.append`` — frame encode, CRC, flush — in records/s;
* **recovery scan**: re-opening the spool after a simulated torn-tail
  crash (the cost a resume pays before its first append);
* **import** into a v2 dataset file; and
* **incremental analysis**: after growing the spool by the tail of
  crawl 2 (~the last half of its segments — the growth shape that
  keeps the derived A&A label set stable), ``run_incremental`` must
  decode and fold only the new records. The gated invariant is the
  *work* ratio — views folded over total records stays ≤ 0.25 — not
  wall-clock: at bench scales the full sweep is already sub-second,
  dominated by file-open and labeling fixed costs that incremental
  pays too, so wall parity is expected and only sanity-bounded here.

Results land in ``results/bench/BENCH_SPOOL.json`` and feed the
``repro perf check`` history gate like every other bench.
"""

import time

from conftest import BENCH_CONFIG, write_bench_json

from repro.analysis.cache import StateCache, labeler_fingerprint
from repro.analysis.engine import AnalysisEngine, DatasetSource
from repro.analysis.stage import study_stages
from repro.cli import _spool_slices
from repro.experiments.runner import run_study
from repro.spool.importer import import_spool
from repro.spool.segment import list_segments, read_segment
from repro.spool.store import SpoolStore
from repro.util.serialization import dumps

ARTIFACTS = (
    "table1", "table2", "table3", "table4", "table5",
    "figure3", "blocking", "overall",
)


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def test_spool_durability_and_incremental(tmp_path):
    spool = tmp_path / "spool"
    _study, study_seconds = _timed(
        lambda: run_study(BENCH_CONFIG, spool_dir=spool)
    )
    payloads = [
        (info.shard, payload)
        for info in list_segments(spool)
        for payload in read_segment(info.path)
    ]
    spool_bytes = sum(info.size for info in list_segments(spool))

    # Append throughput: every payload through the framed, CRC'd,
    # flushed append path.
    def replay():
        store = SpoolStore.open(tmp_path / "throughput")
        for shard, payload in payloads:
            store.append(shard, payload)
        store.seal_active()
        return store

    _store, append_seconds = _timed(replay)

    # Recovery scan after a simulated torn-tail crash.
    scan_root = tmp_path / "throughput"
    victim = list_segments(scan_root)[-1]
    torn_open = victim.path.with_suffix(".open")
    victim.path.rename(torn_open)
    data = torn_open.read_bytes()
    torn_open.write_bytes(data[: len(data) - 3])
    recovered, recovery_seconds = _timed(
        lambda: SpoolStore.open(scan_root)
    )
    assert recovered.recovery.torn_records == 1

    # Regranulate for incremental: ~64 segments so a crawl02 tail is
    # a meaningful growth increment.
    fine = tmp_path / "fine"
    segment_bytes = max(64 * 1024, spool_bytes // 64)
    fine_store = SpoolStore.open(fine, segment_bytes=segment_bytes)
    for shard, payload in payloads:
        fine_store.append(shard, payload)
    fine_store.seal_active()

    crawl02 = [i for i in list_segments(fine) if i.shard == "crawl02"]
    late = crawl02[-max(1, len(crawl02) * 45 // 100):]
    stash = tmp_path / "stash"
    stash.mkdir()
    for info in late:
        info.path.rename(stash / info.path.name)

    dataset = tmp_path / "dataset.jsonl"
    _imp, import_seconds = _timed(lambda: import_spool(fine, dataset))
    state_cache = StateCache(tmp_path / "state-cache")
    engine = AnalysisEngine(stages=study_stages())
    cold, cold_seconds = _timed(lambda: engine.run_incremental(
        DatasetSource.from_file(dataset),
        _spool_slices(fine, dataset),
        state_cache,
    ))

    for info in late:
        (stash / info.path.name).rename(info.path)
    import_spool(fine, dataset)

    warm_slices = _spool_slices(fine, dataset)
    warm, warm_seconds = _timed(lambda: engine.run_incremental(
        DatasetSource.from_file(dataset),
        warm_slices,
        state_cache,
    ))
    full, full_seconds = _timed(
        lambda: AnalysisEngine(stages=study_stages()).run(
            DatasetSource.from_file(dataset)
        )
    )

    # Correctness before cost: the growth left the labeler stable,
    # incremental folded only the new segments, and the artifacts are
    # byte-identical to the full re-fold.
    assert labeler_fingerprint(
        warm.labeler, warm.resolver
    ) == labeler_fingerprint(cold.labeler, cold.resolver)
    # A late segment whose sites opened no sockets contributes zero
    # records and so no slice; fold exactly the slices the re-import
    # added, never more than the segments restored.
    assert warm.segments_folded == len(warm_slices) - cold.segments_folded
    assert 0 < warm.segments_folded <= len(late)
    assert warm.segments_cached == cold.segments_folded
    for name in ARTIFACTS:
        assert dumps(warm[name]) == dumps(full[name]), name

    # The work-ratio gate: incremental decodes only the new tail.
    work_ratio = warm.views_folded / full.views_folded
    assert work_ratio <= 0.25
    # Wall sanity only (see module docstring for why not 0.25).
    assert warm_seconds <= max(2.0 * full_seconds, full_seconds + 0.5)

    write_bench_json("spool", {
        "preset": BENCH_CONFIG.name,
        "socket_records": full.views_folded,
        "spool_bytes": spool_bytes,
        "segments": len(list_segments(fine)),
        "spooled_study_seconds": round(study_seconds, 4),
        "append": {
            "records": len(payloads),
            "seconds": round(append_seconds, 4),
            "records_per_second": round(
                len(payloads) / append_seconds, 1
            ),
        },
        "recovery_scan_seconds": round(recovery_seconds, 4),
        "import_seconds": round(import_seconds, 4),
        "incremental": {
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "full_seconds": round(full_seconds, 4),
            "late_segments": len(late),
            "views_folded_warm": warm.views_folded,
            "work_ratio_warm_over_full": round(work_ratio, 4),
            "wall_ratio_warm_over_full": round(
                warm_seconds / full_seconds, 4
            ),
        },
    })
