"""Regenerate Table 4: top initiator/receiver pairs over A&A sockets.

Paper values (sockets): webspectator|realtime 1285, google|zopim 172,
blogger|feedjit 158, hotjar|intercom 144, clickdesk|pusher 125,
cdn77|smartsupp 122, acenterforrecovery|intercom 114, facebook|zopim
112, vatit|intercom 110, plymouthart|intercom 108, welchllp|intercom
105, biozone|intercom 101, getambassador|pusher 101, rubymonk|intercom
98, googleapis|sportingindex 96 — and "A&A domain to itself" 36,056.

The reserved single-publisher pairs reproduce their counts at any
scale; multi-site pairs compress with crawl scale (site counts shrink,
per-site intensity is preserved).
"""

import dataclasses

from conftest import write_bench_json

from repro.analysis.report import render_table4
from repro.analysis.table4 import compute_table4

PAPER_RESERVED_PAIRS = {
    ("acenterforrecovery", "intercom"): 114,
    ("vatit", "intercom"): 110,
    ("plymouthart", "intercom"): 108,
    ("welchllp", "intercom"): 105,
    ("biozone", "intercom"): 101,
    ("getambassador", "pusher"): 101,
    ("rubymonk", "intercom"): 98,
    ("googleapis", "sportingindex"): 96,
}


def test_table4(benchmark, bench_study):
    table = benchmark(compute_table4, bench_study.views, 15)
    print()
    print(render_table4(table))
    counts = {(r.initiator, r.receiver): r.socket_count for r in table.rows}
    matched = 0
    for pair, paper_count in PAPER_RESERVED_PAIRS.items():
        measured = counts.get(pair)
        if measured is not None and paper_count * 0.6 <= measured <= paper_count * 1.4:
            matched += 1
    assert matched >= 6, f"only {matched} reserved pairs near paper counts"
    # The aggregated self-pair row dominates, as in the paper (36,056).
    assert table.self_pair_sockets > max(r.socket_count for r in table.rows)
    # The named cross pairs all exist somewhere in the pair population.
    all_pairs = {
        (v.initiator_domain.split(".")[0], v.receiver_domain.split(".")[0])
        for v in bench_study.views if v.is_aa_socket and not v.is_self_pair
    }
    for pair in (("webspectator", "realtime"), ("hotjar", "intercom"),
                 ("clickdesk", "pusher"), ("cdn77", "smartsupp"),
                 ("blogger", "feedjit"), ("google", "zopim"),
                 ("facebook", "zopim")):
        assert pair in all_pairs, pair
    write_bench_json("table4", {
        "reserved_pairs_matched": matched,
        "self_pair_sockets": table.self_pair_sockets,
        "rows": [dataclasses.asdict(r) for r in table.rows],
    })
