"""Regenerate Table 1: high-level statistics of the four crawls.

Paper values (IMC '18, Table 1):

    Crawl            %Sites  %A&A-init  #A&A-init  %A&A-recv  #A&A-recv
    Apr 02-05, 2017    2.1      60.6        75        73.7        16
    Apr 11-16, 2017    2.4      61.3        63        74.6        18
    May 07-12, 2017    1.6      60.2        19        69.7        15
    Oct 12-16, 2017    2.5      63.4        23        63.7        18
"""

import dataclasses

from conftest import BENCH_CONFIG, write_bench_json

from repro.analysis.report import render_overall, render_table1
from repro.analysis.stats import compute_overall_stats
from repro.analysis.table1 import compute_table1


def test_table1(benchmark, bench_study):
    rows = benchmark(
        compute_table1,
        bench_study.views,
        bench_study.dataset.meta,
    )
    print()
    print(render_table1(rows))
    # Shape assertions against the paper.
    by_crawl = {r.crawl: r for r in rows}
    assert [by_crawl[c].unique_aa_initiators for c in range(4)] == [75, 63, 19, 23]
    # The site percentage depends on the publisher sample size: the
    # bench preset under-samples publishers (sample_scale 0.01 vs
    # entity scale 0.05) so the fraction runs ~8x the paper's ~2%; the
    # default preset (scripts/run_default_study.py) reproduces ~2%.
    normalization = BENCH_CONFIG.resolved_sample_scale / BENCH_CONFIG.scale
    for c in range(4):
        normalized = by_crawl[c].pct_sites_with_sockets * normalization / 2.2
        print(f"  crawl {c}: sites-with-sockets normalized to full "
              f"sample ≈ {normalized:.1f}%")
    assert by_crawl[2].pct_sites_with_sockets < by_crawl[0].pct_sites_with_sockets
    write_bench_json("table1", {
        "preset": BENCH_CONFIG.name,
        "sample_normalization": normalization,
        "rows": [dataclasses.asdict(r) for r in rows],
    })


def test_overall_stats(benchmark, bench_study):
    stats = benchmark(compute_overall_stats, bench_study.views)
    print()
    print(render_overall(stats))
    assert stats.unique_aa_initiators == 94
    assert stats.disappeared_initiators == 56
    assert stats.pct_cross_origin > 90.0
    assert stats.unique_aa_receivers == 20
    write_bench_json("overall", {
        "preset": BENCH_CONFIG.name,
        **dataclasses.asdict(stats),
    })
