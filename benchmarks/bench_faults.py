"""Fault-injector benchmarks: the zero-fault path must stay free.

The injector sits on the crawl's hottest paths (every page, socket,
and frame asks it for a decision), so the ``none`` profile is designed
to cost nothing: zero-probability decisions return before drawing, and
no event gate is installed at all. The budget documented in DESIGN.md
§9 is <2% crawl-throughput overhead versus a crawler with no injector;
the assertion below uses a loose ceiling so noisy CI boxes don't
flake, and the measured numbers land in
``results/bench/BENCH_FAULTS.json``.
"""

import time

from conftest import write_bench_json

from repro.crawler.crawler import CrawlConfig, Crawler
from repro.faults import FLAKY_PROFILE, NONE_PROFILE, FaultInjector
from repro.faults.plan import FaultProfile

_BUDGET_PCT = 2.0  # documented budget for the zero-fault path
_CEILING = 0.15    # assertion ceiling, loose against host noise


def _run_crawl(web, sites, injector):
    config = CrawlConfig(index=0, label="bench", chrome_major=57,
                         start_date="2017-04-02", pages_per_site=5,
                         seed=2017)
    crawler = Crawler(web, config, faults=injector)
    return crawler.run(sites)


def _injectors():
    return {
        "bare": lambda: None,
        "none": lambda: FaultInjector(NONE_PROFILE, 2017, 0),
        "flaky": lambda: FaultInjector(FLAKY_PROFILE, 2017, 0),
    }


def test_zero_fault_overhead(bench_web):
    """none-profile injector vs no injector on the same crawl."""
    sites = bench_web.seed_list.sites[:100]
    factories = _injectors()
    for factory in factories.values():  # touch every lazy path first
        _run_crawl(bench_web, sites, factory())
    # Interleave variants (best of 5 each) so host drift hits all
    # equally.
    timings = dict.fromkeys(factories, float("inf"))
    for _ in range(5):
        for label, factory in factories.items():
            t0 = time.perf_counter()
            _run_crawl(bench_web, sites, factory())
            timings[label] = min(timings[label],
                                 time.perf_counter() - t0)
    overhead = timings["none"] / timings["bare"] - 1.0
    flaky_overhead = timings["flaky"] / timings["bare"] - 1.0
    print(f"\ncrawl bare: {timings['bare']:.3f}s, "
          f"none profile: {timings['none']:.3f}s "
          f"({overhead * 100.0:+.1f}%), "
          f"flaky profile: {timings['flaky']:.3f}s "
          f"({flaky_overhead * 100.0:+.1f}%)")
    _write_bench_faults(timings, overhead, flaky_overhead)
    assert overhead < _CEILING


def test_event_gate_decision_throughput(benchmark):
    """The per-event gate draw — the injector's hottest call."""
    from repro.cdp.events import ScriptParsed

    profile = FaultProfile(name="gate-bench", drop_event=0.002,
                           reorder_event=0.005)
    injector = FaultInjector(profile, 2017, 0)
    event = ScriptParsed(timestamp=0.0, script_id="s", url="u")
    benchmark(lambda: injector.event_action(event))


def test_keyed_decision_throughput(benchmark):
    """A keyed page-failure draw (SHA-256 child stream per call)."""
    injector = FaultInjector(FLAKY_PROFILE, 2017, 0)
    benchmark(lambda: injector.page_fails("https://site.com/", 0, 1))


def _write_bench_faults(timings, overhead, flaky_overhead) -> None:
    write_bench_json("faults", {
        "budget_pct": _BUDGET_PCT,
        "bare_seconds": round(timings["bare"], 4),
        "none_profile_seconds": round(timings["none"], 4),
        "flaky_profile_seconds": round(timings["flaky"], 4),
        "zero_fault_overhead_pct": round(overhead * 100.0, 2),
        "flaky_overhead_pct": round(flaky_overhead * 100.0, 2),
    })
