"""Regenerate Table 2: top WebSocket initiators by unique receivers.

Paper values (total receivers / A&A receivers / sockets):

    facebook* 35/11/441   espncdn 35/0/92     h-cdn 30/0/39
    doubleclick* 29/9/250 slither 25/0/33     inspectlet* 25/6/820
    google* 23/11/381     pusher* 22/8/634    youtube 18/8/129
    hotjar* 17/11/2249    cloudflare 15/1/873 addthis* 14/8/101
    googlesyndication* 10/6/71  adnxs* 8/3/31  googleapis 7/0/157
"""

import dataclasses

from conftest import write_bench_json

from repro.analysis.report import render_table2
from repro.analysis.table2 import compute_table2

PAPER_RECEIVER_COUNTS = {
    "facebook": (35, 11),
    "espncdn": (35, 0),
    "h-cdn": (30, 0),
    "doubleclick": (29, 9),
    "google": (23, 11),
    "youtube": (18, 8),
    "hotjar": (17, 11),
    "cloudflare": (15, 1),
    "addthis": (14, 8),
    "googlesyndication": (10, 6),
    "adnxs": (8, 3),
    "googleapis": (7, 0),
}


def test_table2(benchmark, bench_study):
    rows = benchmark(compute_table2, bench_study.views, 15)
    print()
    print(render_table2(rows))
    by_name = {r.initiator: r for r in rows}
    # Every paper initiator present with its exact unique-receiver
    # structure (entity-level counts are scale-invariant by design).
    matched = 0
    for name, (total, aa) in PAPER_RECEIVER_COUNTS.items():
        if name in by_name:
            row = by_name[name]
            if (row.receivers_total, row.receivers_aa) == (total, aa):
                matched += 1
    assert matched >= 9, f"only {matched} rows matched the paper exactly"
    # The bold (A&A) flags: majors are A&A, CDNs are not.
    assert by_name["facebook"].is_aa and by_name["doubleclick"].is_aa
    assert not by_name["espncdn"].is_aa and not by_name["cloudflare"].is_aa
    write_bench_json("table2", {
        "paper_rows_matched": matched,
        "rows": [dataclasses.asdict(r) for r in rows],
    })
