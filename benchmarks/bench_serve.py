"""Benchmarks for the `repro serve` query service.

Measures sustained throughput and tail latency of the service layer —
one immutable snapshot, dispatch with opt-in stats, typed envelopes —
for single and batched ``check`` queries at EasyList-scale snapshots
(10k/50k/100k rules; the smoke preset keeps 10k only). Per-request
wall latencies give p50/p99; QPS is checks answered over the sustained
loop. ``BENCH_SERVE.json`` records the scale table and every numeric
leaf lands in ``results/bench/history.jsonl`` under the ``qps``/
``p99``-marked names ``repro perf check`` knows how to gate.
"""

from time import perf_counter_ns

from conftest import BENCH_CONFIG, write_bench_json

from repro.serve import (
    BatchCheckRequest,
    CheckRequest,
    ServeService,
    build_scale_snapshot,
)
from repro.web.filterlists import generate_filter_lists, generate_request_corpus

_SMOKE = BENCH_CONFIG.name == "bench-smoke"
_SCALES = ("10k",) if _SMOKE else ("10k", "50k", "100k")
_SINGLE_QUERIES = 1_500 if _SMOKE else 4_000
_BATCHES = 60 if _SMOKE else 150
_BATCH_SIZE = 16
# A single sustained pass on a 1-CPU host is hostage to one scheduler
# stall: elapsed balloons (QPS craters) while the percentiles — which
# only see per-request time — stay healthy, an internally inconsistent
# row that then pollutes the history baseline. Best-of-N keeps QPS and
# latencies from the same (least-disturbed) pass.
_PASSES = 3


def _percentile(sorted_values, q: float) -> float:
    index = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def _run(service, requests) -> tuple[float, list[int], list]:
    """(elapsed_seconds, per-request latencies ns, results)."""
    latencies = []
    results = []
    start = perf_counter_ns()
    for request in requests:
        t0 = perf_counter_ns()
        results.append(service.handle(request))
        latencies.append(perf_counter_ns() - t0)
    elapsed = (perf_counter_ns() - start) / 1e9
    return elapsed, latencies, results


def _run_best_of(service, requests) -> tuple[float, list[int], list]:
    """Best-of-``_PASSES`` by elapsed time; stats stay internally
    consistent because QPS and latencies come from the same pass."""
    best = None
    for _ in range(_PASSES):
        candidate = _run(service, requests)
        if best is None or candidate[0] < best[0]:
            best = candidate
    return best


def _stats(latencies_ns, checks: int, elapsed: float) -> dict:
    ordered = sorted(latencies_ns)
    return {
        "qps": round(checks / elapsed, 1),
        "p50_us": round(_percentile(ordered, 0.50) / 1e3, 1),
        "p99_us": round(_percentile(ordered, 0.99) / 1e3, 1),
    }


def test_serve_check_scaling():
    scales = {}
    for scale in _SCALES:
        snapshot = build_scale_snapshot(scale)
        lists = generate_filter_lists(snapshot.rule_counts()["live"])
        corpus = generate_request_corpus(lists, 512, seed=2018)
        singles = [
            CheckRequest(url=url, resource_type=rt.value,
                         first_party_url=fp)
            for url, rt, fp in corpus
        ]
        single_stream = [
            singles[i % len(singles)] for i in range(_SINGLE_QUERIES)
        ]
        batch_stream = [
            BatchCheckRequest(items=tuple(
                singles[(b * _BATCH_SIZE + j) % len(singles)]
                for j in range(_BATCH_SIZE)
            ))
            for b in range(_BATCHES)
        ]

        service = ServeService(snapshot)
        # Warm-up: touch every index path once before timing.
        _run(service, single_stream[:100])

        single_elapsed, single_lat, single_results = _run_best_of(
            service, single_stream
        )
        batch_elapsed, batch_lat, batch_results = _run_best_of(
            service, batch_stream
        )
        assert all(r.ok for r in single_results)
        assert all(r.ok for r in batch_results)
        blocked = sum(1 for r in single_results if r.body.blocked)
        assert 0 < blocked < len(single_results)  # a real verdict mix

        scales[scale] = {
            "rules": snapshot.rule_counts()["live"],
            "single": {
                "queries": len(single_stream),
                **_stats(single_lat, len(single_stream), single_elapsed),
            },
            "batch": {
                "batches": len(batch_stream),
                "batch_size": _BATCH_SIZE,
                **_stats(
                    batch_lat,
                    len(batch_stream) * _BATCH_SIZE,
                    batch_elapsed,
                ),
            },
        }
        row = scales[scale]
        print(f"\n[{scale}] single {row['single']['qps']:.0f} qps "
              f"p99 {row['single']['p99_us']:.0f} µs · "
              f"batch {row['batch']['qps']:.0f} checks/s "
              f"p99 {row['batch']['p99_us']:.0f} µs/batch")

    write_bench_json("serve", {
        "preset": BENCH_CONFIG.name,
        "serve_version": 1,
        "scales": scales,
    })
