"""Ablation: blocking effectiveness with and without the webRequest bug.

Crawls the same socket-hosting sites under four configurations:

* stock Chrome 57 (the measurement condition — nothing blocked);
* Chrome 57 + ws-aware blocker (the WRB: sockets still flow);
* Chrome 58 + ws-aware blocker (the patch: A&A sockets blockable);
* Chrome 58 + http-only-pattern blocker (Franken et al.'s extension
  pitfall re-opens the hole).
"""

import pytest

from repro.browser import Browser
from repro.crawler.crawler import CrawlConfig, Crawler
from repro.extension.adblocker import AdBlockerExtension
from repro.extension.workaround import WebSocketWrapperWorkaround
from repro.filters import FilterEngine, parse_filter_list
from repro.web.filterlists import build_easyprivacy_text


@pytest.fixture(scope="module")
def ws_engine_text(bench_web):
    lines = [build_easyprivacy_text(bench_web.registry)]
    for key in ("intercom", "zopim", "33across", "hotjar", "smartsupp",
                "realtime", "feedjit", "inspectlet", "disqus",
                "lockerdome", "luckyorange", "pusher"):
        domain = bench_web.registry.company(key).domain
        lines.append(f"||{domain}^$websocket")
    return "\n".join(lines)


@pytest.fixture(scope="module")
def socket_sites(bench_web):
    return [sp.site for sp in list(bench_web.plan.site_plans.values())[:40]]


def _run(web, sites, version, engine_text=None, ws_aware=True,
         wrapper=False):
    config = CrawlConfig(index=0, label="wrb-ablation", chrome_major=version,
                         start_date="2017-04-02", pages_per_site=4)

    def installer(browser: Browser):
        if engine_text is not None:
            engine = FilterEngine([parse_filter_list("lists", engine_text)])
            if wrapper:
                # The uBO-Extra mitigation: a page-level WebSocket
                # wrapper the WRB cannot hide from.
                browser.ws_workaround = WebSocketWrapperWorkaround(engine)
            AdBlockerExtension(engine, websocket_aware=ws_aware).install(
                browser.webrequest
            )

    observations = []
    Crawler(web, config, observers=[observations.append],
            extension_installer=installer).run(sites)
    return sum(len(o.sockets) for o in observations)


def test_wrb_ablation(benchmark, bench_web, socket_sites, ws_engine_text):
    stock = _run(bench_web, socket_sites, 57)
    pre_patch = benchmark.pedantic(
        lambda: _run(bench_web, socket_sites, 57, ws_engine_text),
        rounds=1, iterations=1,
    )
    patched = _run(bench_web, socket_sites, 58, ws_engine_text)
    patched_http_only = _run(bench_web, socket_sites, 58, ws_engine_text,
                             ws_aware=False)
    with_wrapper = _run(bench_web, socket_sites, 57, ws_engine_text,
                        wrapper=True)
    print()
    print("WRB ablation (sockets observed over identical crawls):")
    print(f"  stock Chrome 57 (no blocker):        {stock}")
    print(f"  Chrome 57 + ws-aware blocker (WRB):  {pre_patch}")
    print(f"  Chrome 57 + uBO-Extra-style wrapper: {with_wrapper}")
    print(f"  Chrome 58 + ws-aware blocker:        {patched}")
    print(f"  Chrome 58 + http://-only patterns:   {patched_http_only}")
    surviving = pre_patch / stock if stock else 0
    blocked_frac = 1 - patched / stock if stock else 0
    print(f"  WRB let {surviving:.0%} of sockets through the blocker; "
          f"the patch makes {blocked_frac:.0%} blockable.")
    assert pre_patch > patched
    assert patched_http_only > patched
    assert pre_patch >= stock * 0.85  # the bug nearly nullifies blocking
    # The wrapper recovers most of the patched browser's blocking even
    # on buggy Chrome (minus the sub-frame race).
    assert with_wrapper < pre_patch
    assert with_wrapper <= patched * 1.35 + 5


def test_static_lint_agrees_with_dynamic_ablation(bench_web, ws_engine_text):
    """The staticlint verdict predicts this file's dynamic outcomes.

    For every registry receiver domain, on both sides of the Chrome 58
    patch and with both pattern sets, the filter-list analyzer's
    blindspot/coverage verdict (combined with the listener
    classification) must equal what dispatching the handshake through
    the simulated webRequest API actually does.
    """
    from repro.staticlint.webrequestlint import cross_validate_receivers

    lists = [parse_filter_list("lists", ws_engine_text)]
    patched_records = None
    for chrome_major in (57, 58):
        for ws_aware in (True, False):
            records = cross_validate_receivers(
                lists, bench_web.registry, chrome_major,
                websocket_aware=ws_aware,
            )
            assert records
            assert all(r.agree for r in records), [
                (r.domain, r.static_blocked, r.dynamic_blocked)
                for r in records if not r.agree
            ]
            if chrome_major == 58 and ws_aware:
                patched_records = records
    # Post-patch with ws-aware patterns, exactly the receivers given an
    # explicit $websocket rule are blocked — statically and dynamically.
    ws_ruled = {line.split("||")[1].split("^")[0]
                for line in ws_engine_text.splitlines()
                if line.endswith("$websocket")}
    blocked = {r.domain for r in patched_records if r.dynamic_blocked}
    assert blocked == ws_ruled
