"""Regenerate the §4.3 / Figure 4 ad-delivery findings.

Paper: no ad images flow over sockets directly; Lockerdome pushes ad
*URLs* with captions and dimensions; creatives sit on
cdn1.lockerdome.com, which EasyList does not cover — so the WRB let an
ad network serve clickbait straight past the blockers.
"""

from repro.analysis.ads import compute_ad_delivery, render_ad_delivery


def test_ad_delivery(benchmark, bench_study):
    stats = benchmark(
        compute_ad_delivery, bench_study.views, bench_study.dataset.engine
    )
    print()
    print(render_ad_delivery(stats))
    assert stats.sockets_with_ads > 0
    assert stats.receivers.most_common(1)[0][0] == "lockerdome.com"
    assert "cdn1.lockerdome.com" in stats.creative_hosts
    # The circumvention: the creatives are list-invisible.
    assert stats.pct_unlisted_creatives > 95.0
    # Figure 4's flavor survives.
    assert any("iPad" in c or "Diet Soda" in c or "Sagging" in c
               for c in stats.sample_captions)
