"""Streaming analysis engine vs the materialized view list.

Measures, at the bench scale (≥4× the smoke preset on every axis),

* the **materialized** path: load every socket record from the saved
  dataset into one in-memory list, classify it into a second list of
  views, then compute the eight study artifacts from that list (how a
  saved dataset had to be re-analyzed before the engine existed);
* the **streaming** path: one ``AnalysisEngine`` sweep over the saved
  v2 dataset file, folding all eight stage accumulators per view with
  no view list retained;
* the same sweep while **storing** to a cold artifact cache; and
* the **warm-cache** re-run, which must skip the sweep entirely.

Peak memory is measured per phase with ``tracemalloc`` (traced Python
allocations — per-phase and comparable, unlike the process-wide RSS
high-water mark, which never decreases once the first phase raises
it); the process ``ru_maxrss`` is reported once alongside for context.
Wall-clock numbers are from ``time.perf_counter`` on whatever hardware
runs the bench — compare ratios, not absolutes. Results land in
``results/bench/BENCH_ANALYSIS.json``.
"""

import os
import platform
import resource
import time
import tracemalloc

from conftest import BENCH_CONFIG, write_bench_json

from repro.analysis.cache import StageCache
from repro.analysis.classify import classify_sockets
from repro.analysis.engine import AnalysisEngine, DatasetSource
from repro.analysis.stage import study_stages
from repro.analysis.blocking import compute_blocking_stats
from repro.analysis.figure3 import compute_figure3
from repro.analysis.stats import compute_overall_stats
from repro.analysis.table1 import compute_table1
from repro.analysis.table2 import compute_table2
from repro.analysis.table3 import compute_table3
from repro.analysis.table4 import compute_table4
from repro.analysis.table5 import compute_table5
from repro.crawler.persistence import open_dataset, save_dataset
from repro.util.serialization import dumps


def _measured(fn):
    """(result, wall-clock seconds, traced-alloc peak bytes)."""
    tracemalloc.start()
    t0 = time.perf_counter()
    result = fn()
    seconds = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, seconds, peak


def _materialized(path, engine):
    reader = open_dataset(path, engine=engine)
    dataset = reader.dataset
    dataset.socket_records.extend(reader.iter_records())
    labeler = dataset.derive_labeler()
    resolver = dataset.derive_resolver(labeler)
    views = classify_sockets(dataset, labeler, resolver)
    meta = dataset.meta
    return {
        "table1": compute_table1(views, meta),
        "table2": compute_table2(views),
        "table3": compute_table3(views),
        "table4": compute_table4(views),
        "table5": compute_table5(dataset, views, labeler, resolver),
        "figure3": compute_figure3(views, meta),
        "blocking": compute_blocking_stats(dataset, views, labeler,
                                           resolver),
        "overall": compute_overall_stats(views),
    }


def test_streaming_vs_materialized(bench_dataset, tmp_path):
    dataset, _ = bench_dataset
    path = tmp_path / "bench-dataset.jsonl"
    record_count = save_dataset(path, dataset)

    # Both paths read the same file and reuse the same filter engine;
    # what varies is record/view materialization and caching.
    def source():
        return DatasetSource.from_file(path, engine=dataset.engine)

    materialized, mat_seconds, mat_peak = _measured(
        lambda: _materialized(path, dataset.engine)
    )
    streamed, cold_seconds, cold_peak = _measured(
        lambda: AnalysisEngine(stages=study_stages()).run(source())
    )
    cache_dir = tmp_path / "cache"
    stored, store_seconds, store_peak = _measured(
        lambda: AnalysisEngine(stages=study_stages(),
                               cache=StageCache(cache_dir)).run(source())
    )
    warm, warm_seconds, warm_peak = _measured(
        lambda: AnalysisEngine(stages=study_stages(),
                               cache=StageCache(cache_dir)).run(source())
    )

    # Correctness first: every path agrees byte-for-byte.
    for name, artifact in materialized.items():
        assert dumps(streamed[name]) == dumps(artifact), name
        assert dumps(stored[name]) == dumps(artifact), name
        assert dumps(warm[name]) == dumps(artifact), name

    # The tentpole claims: folding per view beats materializing the
    # view list on peak memory, and a warm cache skips the sweep.
    assert cold_peak < mat_peak
    assert warm.views_folded == 0 and len(warm.cached) == 8
    assert warm_seconds < store_seconds

    payload = {
        "preset": BENCH_CONFIG.name,
        "scale": BENCH_CONFIG.scale,
        "sample_scale": BENCH_CONFIG.resolved_sample_scale,
        "pages_per_site": BENCH_CONFIG.pages_per_site,
        "socket_records": record_count,
        "views_folded_cold": streamed.views_folded,
        "materialized": {"seconds": round(mat_seconds, 4),
                         "traced_alloc_peak_bytes": mat_peak},
        "streaming_cold": {"seconds": round(cold_seconds, 4),
                           "traced_alloc_peak_bytes": cold_peak},
        "streaming_cache_store": {"seconds": round(store_seconds, 4),
                                  "traced_alloc_peak_bytes": store_peak},
        "warm_cache": {"seconds": round(warm_seconds, 4),
                       "traced_alloc_peak_bytes": warm_peak},
        "peak_ratio_materialized_over_streaming":
            round(mat_peak / cold_peak, 2),
        "warm_speedup_over_cold": round(cold_seconds / warm_seconds, 1),
        "memory_qualifier": "tracemalloc traced-alloc peaks per phase, "
                            "not RSS; ru_maxrss is the whole process "
                            "high-water mark",
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "hardware": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
    }
    write_bench_json("analysis", payload)
    print()
    print(f"materialized: {mat_seconds:.3f}s, peak {mat_peak/1e6:.1f} MB")
    print(f"streaming:    {cold_seconds:.3f}s, peak {cold_peak/1e6:.1f} MB")
    print(f"warm cache:   {warm_seconds:.3f}s, peak {warm_peak/1e6:.1f} MB")
