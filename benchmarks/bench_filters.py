"""Benchmarks for filter-list parsing and rule-option evaluation.

Complements ``bench_engines.py`` (which measures end-to-end engine
matching): this file isolates the parse stage and the ``$domain=``
longest-match resolution the engine leans on per request.
"""

from repro.filters.engine import FilterEngine
from repro.filters.parser import parse_filter_line, parse_filter_list
from repro.net.http import ResourceType
from repro.web.filterlists import build_easylist_text, build_easyprivacy_text


def test_parse_bundled_lists(benchmark, bench_web):
    easylist = build_easylist_text(bench_web.registry)
    easyprivacy = build_easyprivacy_text(bench_web.registry)

    def parse_both():
        return (
            parse_filter_list("easylist", easylist),
            parse_filter_list("easyprivacy", easyprivacy),
        )

    lists = benchmark(parse_both)
    total = sum(len(fl) for fl in lists)
    print(f"\nparsed {total} rules "
          f"({sum(len(fl.skipped_lines) for fl in lists)} skipped)")
    assert total > 0
    assert all(rule.line > 0 for fl in lists for rule in fl.rules)


def test_parse_line_throughput(benchmark):
    lines = [
        "||doubleclick.net^$third-party",
        "@@||google.com/recaptcha/$script,subdocument",
        "/track/hit.gif$image,third-party",
        "||intercom.io^$websocket",
        "/ads/$domain=news.com|~blog.news.com",
        "@@$document,domain=partner.example",
        "||cdn.example/lib.js$script,~third-party,match-case",
    ] * 100

    def parse_all():
        return sum(1 for line in lines if parse_filter_line(line) is not None)

    parsed = benchmark(parse_all)
    assert parsed == len(lines)


def test_domain_option_resolution(benchmark):
    rule = parse_filter_line(
        "/ads/$domain=news.com|shop.com|~blog.news.com|~static.shop.com"
    )
    hosts = ["news.com", "blog.news.com", "a.blog.news.com",
             "sports.news.com", "shop.com", "static.shop.com",
             "other.example"] * 200

    def resolve_all():
        return sum(
            1 for host in hosts
            if rule.options.applies_to(ResourceType.SCRIPT, True, host)
        )

    applied = benchmark(resolve_all)
    # news.com, sports.news.com, shop.com apply; the carved-out
    # subdomains and the unrelated host do not.
    assert applied == 3 * 200


def test_engine_build_from_parsed_lists(benchmark, bench_web):
    lists = [
        parse_filter_list("easylist",
                          build_easylist_text(bench_web.registry)),
        parse_filter_list("easyprivacy",
                          build_easyprivacy_text(bench_web.registry)),
    ]

    engine = benchmark(lambda: FilterEngine(lists))
    assert engine.would_block(
        "https://securepubads.doubleclick.net/ads/tag.js",
        ResourceType.SCRIPT,
        "https://pub.example/",
    )
