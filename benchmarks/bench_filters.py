"""Benchmarks for filter-list parsing, rule-option evaluation, and
matching at real-EasyList scale.

Complements ``bench_engines.py`` (which measures end-to-end engine
matching on the bundled synthetic lists): this file isolates the parse
stage, the ``$domain=`` longest-match resolution the engine leans on
per request, and — the headline — ns/match of the compiled index
against the interpreted engine and a replica of the pre-compiled-index
sharding at 10k/50k/100k rules. ``BENCH_FILTERS.json`` records the
scale table; the 50k compiled-vs-legacy speedup is asserted >= 10x and
history-gated by ``repro perf check``.
"""

import re
from time import perf_counter

from conftest import BENCH_CONFIG, write_bench_json

from repro.filters.compiled import CompiledFilterEngine
from repro.filters.engine import FilterEngine
from repro.filters.parser import parse_filter_line, parse_filter_list
from repro.net.domains import is_third_party
from repro.net.http import ResourceType
from repro.util.urls import parse_url
from repro.web.filterlists import (
    build_easylist_text,
    build_easyprivacy_text,
    generate_filter_lists,
    generate_request_corpus,
)


def test_parse_bundled_lists(benchmark, bench_web):
    easylist = build_easylist_text(bench_web.registry)
    easyprivacy = build_easyprivacy_text(bench_web.registry)

    def parse_both():
        return (
            parse_filter_list("easylist", easylist),
            parse_filter_list("easyprivacy", easyprivacy),
        )

    lists = benchmark(parse_both)
    total = sum(len(fl) for fl in lists)
    print(f"\nparsed {total} rules "
          f"({sum(len(fl.skipped_lines) for fl in lists)} skipped)")
    assert total > 0
    assert all(rule.line > 0 for fl in lists for rule in fl.rules)


def test_parse_line_throughput(benchmark):
    lines = [
        "||doubleclick.net^$third-party",
        "@@||google.com/recaptcha/$script,subdocument",
        "/track/hit.gif$image,third-party",
        "||intercom.io^$websocket",
        "/ads/$domain=news.com|~blog.news.com",
        "@@$document,domain=partner.example",
        "||cdn.example/lib.js$script,~third-party,match-case",
    ] * 100

    def parse_all():
        return sum(1 for line in lines if parse_filter_line(line) is not None)

    parsed = benchmark(parse_all)
    assert parsed == len(lines)


def test_domain_option_resolution(benchmark):
    rule = parse_filter_line(
        "/ads/$domain=news.com|shop.com|~blog.news.com|~static.shop.com"
    )
    hosts = ["news.com", "blog.news.com", "a.blog.news.com",
             "sports.news.com", "shop.com", "static.shop.com",
             "other.example"] * 200

    def resolve_all():
        return sum(
            1 for host in hosts
            if rule.options.applies_to(ResourceType.SCRIPT, True, host)
        )

    applied = benchmark(resolve_all)
    # news.com, sports.news.com, shop.com apply; the carved-out
    # subdomains and the unrelated host do not.
    assert applied == 3 * 200


def test_engine_build_from_parsed_lists(benchmark, bench_web):
    lists = [
        parse_filter_list("easylist",
                          build_easylist_text(bench_web.registry)),
        parse_filter_list("easyprivacy",
                          build_easyprivacy_text(bench_web.registry)),
    ]

    engine = benchmark(lambda: FilterEngine(lists))
    assert engine.would_block(
        "https://securepubads.doubleclick.net/ads/tag.js",
        ResourceType.SCRIPT,
        "https://pub.example/",
    )


# -- matching at real-EasyList scale ----------------------------------------


class _LegacyIndexEngine:
    """Replica of the pre-compiled-index sharding: every rule under its
    longest literal ``[a-z0-9]{3,}`` run regardless of token
    boundaries, first candidate of each polarity wins. This is the
    baseline the >= 10x acceptance bar is measured against (and whose
    boundary-blind tokens caused the false negatives the compiled
    index fixes)."""

    def __init__(self, lists):
        self._by_token = {}
        self._generic = []
        for filter_list in lists:
            for rule in filter_list.rules:
                runs = re.findall(r"[a-z0-9]{3,}", rule.pattern.lower())
                if runs:
                    token = max(runs, key=len)
                    self._by_token.setdefault(token, []).append(rule)
                else:
                    self._generic.append(rule)

    def would_block(self, url, resource_type, first_party_url=None):
        third_party = bool(first_party_url) and is_third_party(
            url, first_party_url
        )
        host = parse_url(first_party_url).host if first_party_url else ""
        matched = exception = False
        for token in set(re.findall(r"[a-z0-9]{3,}", url.lower())):
            for rule in self._by_token.get(token, ()):
                if exception if rule.is_exception else matched:
                    continue
                if rule.options.applies_to(
                    resource_type, third_party, host
                ) and rule.matches_url(url):
                    if rule.is_exception:
                        exception = True
                    else:
                        matched = True
        for rule in self._generic:
            if rule.options.applies_to(
                resource_type, third_party, host
            ) and rule.matches_url(url):
                if rule.is_exception:
                    exception = True
                else:
                    matched = True
        return matched and not exception


def _ns_per_match(engine, corpus, reps):
    """Best-of-``reps`` ns per ``would_block`` over the corpus (one
    untimed pass first warms every lazily compiled rule regex)."""
    for url, resource_type, first_party in corpus:
        engine.would_block(url, resource_type, first_party_url=first_party)
    best = float("inf")
    for _ in range(reps):
        start = perf_counter()
        for url, resource_type, first_party in corpus:
            engine.would_block(
                url, resource_type, first_party_url=first_party
            )
        best = min(best, perf_counter() - start)
    return best / len(corpus) * 1e9


def test_list_scale_matching():
    """The tentpole numbers: compiled vs interpreted vs legacy ns/match
    at calibrated-EasyList scale, with the 50k speedup floor."""
    smoke = BENCH_CONFIG.name == "bench-smoke"
    scales = [10_000, 50_000] if smoke else [10_000, 50_000, 100_000]
    corpus_size, reps = (300, 4) if smoke else (400, 5)

    table = {}
    speedup_50k = None
    for rule_count in scales:
        lists = generate_filter_lists(rule_count, seed=2018)
        corpus = generate_request_corpus(lists, corpus_size, seed=2018)
        compiled = CompiledFilterEngine(lists)
        row = {
            "rules": compiled.rule_count,
            "compiled_match_ns": _ns_per_match(compiled, corpus, reps),
            "legacy_match_ns": _ns_per_match(
                _LegacyIndexEngine(lists), corpus, reps
            ),
        }
        # The interpreted engine is linear in the rule count; one scale
        # is enough to place it in the table without dominating runtime.
        if rule_count == 10_000:
            row["interpreted_match_ns"] = _ns_per_match(
                FilterEngine(lists), corpus, reps
            )
        if rule_count == 50_000:
            speedup_50k = row["legacy_match_ns"] / row["compiled_match_ns"]
        table[f"{rule_count // 1000}k"] = row
        print(f"\n{rule_count} rules: " + "  ".join(
            f"{key}={value:,.0f}" for key, value in row.items()
        ))

    assert speedup_50k is not None
    write_bench_json("filters", {
        "preset": BENCH_CONFIG.name,
        "corpus_requests": corpus_size,
        "reps": reps,
        "scales": table,
        "speedup_50k_vs_legacy": round(speedup_50k, 2),
    })
    # The acceptance floor: the compiled index must beat the pre-PR
    # sharding by an order of magnitude at real-EasyList scale.
    assert speedup_50k >= 10.0, f"compiled only {speedup_50k:.1f}x at 50k"
