"""Benchmarks for inclusion-chain attribution.

``bench_engines.py`` measures raw tree *building* from a CDP event
stream; this file measures what the analysis pipeline does afterwards:
walking every node's ancestry to attribute WebSockets to the scripts
that opened them (the paper's §3.3 initiator attribution).
"""

from repro.browser import Browser
from repro.cdp import EventBus
from repro.inclusion import InclusionTreeBuilder
from repro.inclusion.chains import chain_domains, chain_urls


def _trees(bench_web, count: int):
    trees = []
    for plan in list(bench_web.plan.site_plans.values())[:count]:
        bus = EventBus()
        browser = Browser(version=57, bus=bus)
        builder = InclusionTreeBuilder()
        builder.attach(bus)
        browser.visit(bench_web.blueprint(plan.site, 0, 0))
        builder.detach()
        trees.append(builder.result())
    return trees


def test_chain_attribution_throughput(benchmark, bench_web):
    trees = _trees(bench_web, 12)

    def attribute_all():
        chains = 0
        for tree in trees:
            for ws in tree.websockets:
                if chain_domains(ws):
                    chains += 1
        return chains

    chains = benchmark(attribute_all)
    sockets = sum(len(t.websockets) for t in trees)
    print(f"\nattributed {chains} socket chains across "
          f"{len(trees)} pages ({sockets} sockets)")
    assert chains == sockets


def test_full_ancestry_walk(benchmark, bench_web):
    trees = _trees(bench_web, 12)

    def walk_all():
        hops = 0
        for tree in trees:
            for node in tree.all_nodes():
                hops += len(chain_urls(node))
        return hops

    hops = benchmark(walk_all)
    print(f"\nwalked {hops} chain hops over "
          f"{sum(t.resource_count for t in trees)} resources")
    assert hops > 0
