"""Ablation: inclusion-tree attribution vs naive Referer attribution.

§3.1 of the paper argues HTTP-Referer-based attribution is misleading:
the Referer is set to the first party even when a third-party script
made the request. This ablation quantifies the claim on our dataset:
under Referer attribution every socket looks publisher-initiated, so
the A&A-initiated share collapses.
"""

from repro.net.domains import registrable_domain


def _inclusion_attribution(views, labeler):
    return sum(1 for v in views if v.aa_initiated)


def _referer_attribution(views, labeler):
    """What the initiator column would say if we used the Referer —
    i.e. the page the request came from (always the first party)."""
    count = 0
    for view in views:
        referer_domain = registrable_domain(view.record.first_party_host)
        if referer_domain in labeler.aa_domains:
            count += 1
    return count


def test_attribution_ablation(benchmark, bench_study):
    views, labeler = bench_study.views, bench_study.labeler
    inclusion = benchmark(_inclusion_attribution, views, labeler)
    referer = _referer_attribution(views, labeler)
    total = len(views)
    print()
    print("Initiator-attribution ablation:")
    print(f"  inclusion-tree A&A-initiated: {inclusion}/{total} "
          f"({100 * inclusion / total:.1f}%)")
    print(f"  Referer-based  A&A-initiated: {referer}/{total} "
          f"({100 * referer / total:.1f}%)")
    missed = inclusion - referer
    print(f"  → Referer attribution misses {missed} A&A-initiated sockets "
          f"({100 * missed / max(1, inclusion):.0f}% of them)")
    # Referer attribution misattributes essentially everything: the
    # publishers are not A&A domains.
    assert referer < inclusion * 0.1
    assert inclusion > 0
