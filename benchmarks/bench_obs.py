"""Observability benchmarks: bus hot path and instrumentation cost.

Two questions: did caching the subscriber snapshot actually speed up
``EventBus.publish`` (the pipeline's hottest call), and what does
carrying a full obs context cost a crawl (EXPERIMENTS.md reports the
measured overhead; the budget is <5% on the bench preset).
"""

import time

from repro.cdp import EventBus
from repro.cdp.events import ScriptParsed, WebSocketClosed
from repro.crawler.crawler import CrawlConfig, Crawler
from repro.obs import Obs, Tracer
from repro.obs.metrics import MetricsRegistry


class _CopyPerPublishBus(EventBus):
    """The pre-fix behaviour: copy the subscriber list every publish."""

    def publish(self, event):
        self._published += 1
        method = event.METHOD
        self._by_method[method] = self._by_method.get(method, 0) + 1
        delivered = 0
        for handler, filter_types in list(self._subscribers):
            if filter_types is None or isinstance(event, filter_types):
                handler(event)
                delivered += 1
        self._delivered += delivered


def _loaded(bus):
    # The study's realistic fan-out: a handful of subscribers, some
    # type-filtered (dataset observer, tree builder, recorder, hooks).
    sink = []
    for _ in range(3):
        bus.subscribe(lambda e: None)
    bus.subscribe(sink.append, event_types=[WebSocketClosed])
    bus.subscribe(lambda e: None, event_types=[ScriptParsed])
    return bus


_EVENT = ScriptParsed(timestamp=0.0, script_id="s", url="u")


def test_bus_publish_cached_snapshot(benchmark):
    bus = _loaded(EventBus())
    benchmark(lambda: bus.publish(_EVENT))


def test_bus_publish_copy_per_publish_baseline(benchmark):
    bus = _loaded(_CopyPerPublishBus())
    benchmark(lambda: bus.publish(_EVENT))


def test_span_open_close(benchmark):
    tracer = Tracer()

    def one_span():
        with tracer.span("page", index=1):
            pass
        tracer.finished.clear()

    benchmark(one_span)


def test_counter_increment(benchmark):
    registry = MetricsRegistry()
    counter = registry.counter("crawler.pages")
    benchmark(counter.inc)


def _run_crawl(web, obs, sites):
    config = CrawlConfig(index=0, label="bench", chrome_major=57,
                         start_date="2017-04-02", pages_per_site=5,
                         seed=2017)
    crawler = Crawler(web, config, obs=obs)
    return crawler.run(sites)


def test_instrumentation_overhead(bench_web):
    """Crawl cost of carrying an obs context, measured directly."""
    sites = bench_web.seed_list.sites[:100]
    for warmup_obs in (None, Obs()):  # touch every lazy path first
        _run_crawl(bench_web, warmup_obs, sites)
    # Interleave the two variants (best of 5 each) so host drift hits
    # both equally.
    timings = {"bare": float("inf"), "obs": float("inf")}
    for _ in range(5):
        for label, factory in (("bare", lambda: None), ("obs", Obs)):
            obs = factory()
            t0 = time.perf_counter()
            _run_crawl(bench_web, obs, sites)
            timings[label] = min(timings[label],
                                 time.perf_counter() - t0)
    overhead = timings["obs"] / timings["bare"] - 1.0
    print(f"\ncrawl without obs: {timings['bare']:.3f}s, "
          f"with obs: {timings['obs']:.3f}s, "
          f"overhead: {overhead * 100.0:+.1f}%")
    # EXPERIMENTS.md reports ~<5%; assert a loose ceiling so noisy CI
    # boxes don't flake.
    assert overhead < 0.15
