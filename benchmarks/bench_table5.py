"""Regenerate Table 5: items sent/received over A&A sockets vs HTTP/S.

Paper WebSocket-side percentages: UA 100, Cookie 69.9, IP 6.6, User ID
4.3, Device 3.6, Screen 3.6, Browser 3.4, Viewport 3.4, Scroll 3.4,
Orientation 3.4, First Seen 3.4, Resolution 3.4, Language 1.8, DOM 1.6,
Binary 1.0, No data 17.8. Received: HTML 47.2, JSON 12.8, JS 0.9,
Image 0.3, Binary 0.25, No data 21.3.

HTTP-side: Cookie 22.8, everything private under ~1.2%; received JS
27.0, Image 21.3, HTML 11.6, JSON 1.6.
"""

from conftest import write_bench_json

from repro.analysis.report import render_table5
from repro.analysis.table5 import compute_table5
from repro.content.items import ReceivedClass, SentItem


def test_table5(benchmark, bench_study):
    table = benchmark(
        compute_table5,
        bench_study.dataset,
        bench_study.views,
        bench_study.labeler,
        bench_study.resolver,
    )
    print()
    print(render_table5(table))

    ws = {item: cell.percent for item, cell in table.sent_ws.items()}
    http = {item: cell.percent for item, cell in table.sent_http.items()}

    # UA 100% via handshake headers; Cookie a strong majority but far
    # from universal; fingerprint items a small cluster near 3-4%.
    assert ws[SentItem.USER_AGENT] == 100.0
    assert 50.0 < ws[SentItem.COOKIE] < 90.0
    for item in (SentItem.SCREEN, SentItem.VIEWPORT, SentItem.ORIENTATION,
                 SentItem.SCROLL_POSITION, SentItem.RESOLUTION):
        assert 1.5 < ws[item] < 8.0, item
    assert 0.5 < ws[SentItem.DOM] < 4.0
    assert 8.0 < table.ws_sent_nothing.percent < 30.0

    # The paper's headline comparison: every private item flows at a
    # higher rate over WebSockets than over HTTP/S.
    for item in (SentItem.COOKIE, SentItem.IP, SentItem.USER_ID,
                 SentItem.SCREEN, SentItem.VIEWPORT, SentItem.DOM,
                 SentItem.ORIENTATION, SentItem.FIRST_SEEN):
        assert ws[item] > http[item], item

    # Received shapes: HTML/JSON dominate sockets; JS/images dominate HTTP.
    recv_ws = {c: cell.percent for c, cell in table.received_ws.items()}
    recv_http = {c: cell.percent for c, cell in table.received_http.items()}
    assert recv_ws[ReceivedClass.HTML] > 30.0
    assert recv_ws[ReceivedClass.HTML] > recv_http[ReceivedClass.HTML]
    assert recv_http[ReceivedClass.JAVASCRIPT] > recv_ws[ReceivedClass.JAVASCRIPT]
    assert recv_http[ReceivedClass.IMAGE] > recv_ws[ReceivedClass.IMAGE]

    # §4.3 findings: 33across dominates fingerprint flows; the DOM goes
    # to exactly the three session-replay services the paper names.
    assert table.fingerprinting_top_receiver == "33across.com"
    assert table.fingerprinting_top_receiver_share > 90.0
    write_bench_json("table5", {
        "ws_total": table.ws_total,
        "http_total": table.http_total,
        "sent_ws_pct": {i.name: c.percent for i, c in table.sent_ws.items()},
        "sent_http_pct": {i.name: c.percent
                          for i, c in table.sent_http.items()},
        "received_ws_pct": {c.name: cell.percent
                            for c, cell in table.received_ws.items()},
        "received_http_pct": {c.name: cell.percent
                              for c, cell in table.received_http.items()},
        "ws_sent_nothing_pct": table.ws_sent_nothing.percent,
        "ws_received_nothing_pct": table.ws_received_nothing.percent,
        "fingerprinting_top_receiver": table.fingerprinting_top_receiver,
        "fingerprinting_top_receiver_share":
            table.fingerprinting_top_receiver_share,
    })
    assert set(table.dom_receivers) <= {
        "hotjar.com", "luckyorange.com", "truconversion.com"
    }
