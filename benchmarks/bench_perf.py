"""Perf-observatory benchmarks: the analytics must stay cheap.

``repro perf flame``/``diff`` run over traces with hundreds of
thousands of spans at default study scale; the tree rebuild and path
aggregation are O(spans) and must stay that way — an analysis tool
that costs more than the thing it analyzes never gets run. The
measured numbers land in ``results/bench/BENCH_PERF.json`` (and the
history store, like every bench).
"""

import time

from conftest import write_bench_json

from repro.obs.critical_path import SpanTree
from repro.obs.perf import build_flame, diff_traces

# Analytics over the shared bench study's trace must cost well under
# the study itself; loose ceiling so noisy CI boxes don't flake.
_CEILING_SECONDS = 5.0


def _summary(bench_study):
    assert bench_study.obs is not None
    return bench_study.obs


def test_flame_throughput(bench_study):
    """Tree rebuild + path aggregation + critical path, end to end."""
    summary = _summary(bench_study)
    build_flame(summary)  # touch lazy paths once
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        report = build_flame(summary)
        best = min(best, time.perf_counter() - t0)
    spans = len(summary.spans)
    t0 = time.perf_counter()
    diff = diff_traces(summary, summary)
    diff_seconds = time.perf_counter() - t0
    assert diff.is_empty
    assert report.attribution >= 0.95
    print(f"\nflame over {spans:,} spans: {best:.4f}s "
          f"({spans / max(best, 1e-9):,.0f} spans/s), "
          f"self-diff: {diff_seconds:.4f}s, "
          f"attribution {100.0 * report.attribution:.2f}%")
    write_bench_json("perf", {
        "spans": spans,
        "flame_seconds": round(best, 4),
        "flame_throughput_spans_per_sec": round(spans / max(best, 1e-9)),
        "self_diff_seconds": round(diff_seconds, 4),
        "attribution_pct": round(100.0 * report.attribution, 2),
        "hot_paths": len(report.rows),
    })
    assert best < _CEILING_SECONDS


def test_span_tree_rebuild(benchmark, bench_study):
    """The tree rebuild alone — the shared O(spans) substrate."""
    summary = _summary(bench_study)
    benchmark(lambda: SpanTree.from_summary(summary))
