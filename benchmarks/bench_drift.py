"""Regenerate §4.1's before/after narrative: initiator drift.

Paper: 75 → 63 → 19 → 23 unique A&A initiators per crawl; 56
disappeared between the first and last crawl, including DoubleClick,
Facebook, and AddThis; receiver-side services barely changed.
"""

from repro.analysis.drift import compute_initiator_drift, render_drift


def test_initiator_drift(benchmark, bench_study):
    drift = benchmark(compute_initiator_drift, bench_study.views)
    print()
    print(render_drift(drift))
    assert {c: len(d) for c, d in drift.per_crawl.items()} == {
        0: 75, 1: 63, 2: 19, 3: 23
    }
    assert len(drift.per_crawl[0] - drift.per_crawl[3]) == 56
    for major in ("doubleclick.net", "facebook.net", "google.com",
                  "addthis.com"):
        assert major in drift.disappeared_after_patch, major
    # The persistent core: WebSocket-dependent services.
    for service in ("zopim.com", "intercom.io", "disqus.com"):
        assert service in drift.persistent, service
    assert drift.survival_rate < 0.5
