"""Parallel crawl executor: speedup, merge overhead, and equivalence.

The sharded executor's contract is byte-identity first, speedup
second: ``--workers N`` must change no artifact, and the canonical-
order merge must stay cheap enough that parallelism is pure upside on
multi-core hosts. This bench measures both and writes the honest
numbers — including ``cpu_count``, because speedup is bounded by the
cores the host actually has — to ``results/bench/BENCH_PARALLEL.json``.
On a single-core container the 4-worker run is *slower* (pool spawn
and pickling with no cores to amortize them); the merge-overhead
budget (<5% of crawl time, DESIGN.md §10) is the assertion that holds
everywhere.
"""

import dataclasses
import os
import time

from conftest import write_bench_json

from repro.crawler.crawler import CrawlAccountant
from repro.crawler.dataset import StudyDataset
from repro.crawler.outcome import LaneStats
from repro.experiments import StudyConfig
from repro.experiments.runner import crawl_configs, run_crawls
from repro.parallel import ShardTask, WebSpec, execute_shards, plan_shards
from repro.web.filterlists import build_filter_engine
from repro.web.server import SyntheticWeb, WebScale

_MERGE_CEILING_PCT = 5.0  # DESIGN.md §10 merge budget

PARALLEL_CONFIG = StudyConfig(scale=0.03, sample_scale=0.002,
                              pages_per_site=4, crawls=(0,),
                              name="parallel-bench")


def _bench_web():
    return SyntheticWeb(
        scale=WebScale(
            sample_scale=PARALLEL_CONFIG.resolved_sample_scale,
            entity_scale=PARALLEL_CONFIG.scale,
        ),
        seed=PARALLEL_CONFIG.seed,
    )


def test_parallel_speedup_and_merge_overhead():
    web = _bench_web()
    run_crawls(web, PARALLEL_CONFIG)  # warm every lazy path

    timings: dict[int, float] = {}
    artifacts: dict[int, list] = {}
    for workers in (1, 4):
        best = float("inf")
        for _ in range(2):
            t0 = time.perf_counter()
            _, summaries = run_crawls(web, PARALLEL_CONFIG,
                                      workers=workers)
            best = min(best, time.perf_counter() - t0)
        timings[workers] = best
        artifacts[workers] = [dataclasses.asdict(s) for s in summaries]
    # The speedup claim is only meaningful because the artifacts match.
    assert artifacts[4] == artifacts[1]

    exec_seconds, merge_seconds, lane_merge_seconds = _merge_cost(web)
    total = exec_seconds + merge_seconds
    merge_pct = merge_seconds / total * 100.0
    lane_merge_pct = lane_merge_seconds / total * 100.0
    speedup = timings[1] / timings[4]

    print(f"\nworkers=1 {timings[1]:.3f}s, workers=4 {timings[4]:.3f}s "
          f"(speedup {speedup:.2f}x on {os.cpu_count()} cpu), "
          f"accounting {merge_pct:.1f}% of crawl "
          f"(lane merge alone {lane_merge_pct:.2f}%)")
    write_bench_json("parallel", {
        "cpu_count": os.cpu_count(),
        "workers_1_seconds": round(timings[1], 4),
        "workers_4_seconds": round(timings[4], 4),
        "speedup_4_workers": round(speedup, 3),
        "shard_execute_seconds": round(exec_seconds, 4),
        "accounting_seconds": round(merge_seconds, 4),
        "accounting_pct_of_crawl": round(merge_pct, 2),
        "lane_merge_overhead_pct": round(lane_merge_pct, 3),
        "merge_budget_pct": _MERGE_CEILING_PCT,
    })
    # The merge the parallel path *adds* over sequential accounting is
    # the LaneStats fold; it must stay within the documented budget.
    assert lane_merge_pct < _MERGE_CEILING_PCT


def _merge_cost(web):
    """Time shard execution vs the canonical-order accounting replay."""
    spec = WebSpec(
        sample_scale=PARALLEL_CONFIG.resolved_sample_scale,
        entity_scale=PARALLEL_CONFIG.scale,
        seed=PARALLEL_CONFIG.seed,
    )
    crawl = crawl_configs(web, PARALLEL_CONFIG)[0]
    tasks = [
        ShardTask(crawl=crawl, shard_index=shard.index, sites=shard.sites,
                  faults=PARALLEL_CONFIG.faults,
                  study_seed=PARALLEL_CONFIG.seed, web=spec)
        for shard in plan_shards(web.seed_list.sites)
    ]
    t0 = time.perf_counter()
    results = execute_shards(web, spec, tasks, workers=1)
    exec_seconds = time.perf_counter() - t0

    dataset = StudyDataset(engine=build_filter_engine(web.registry))
    site_total = len(web.seed_list.sites)
    t1 = time.perf_counter()
    lane_total = LaneStats()
    accountant = CrawlAccountant(crawl, site_total,
                                 observers=[dataset.observe])
    with accountant:
        for task in tasks:
            result = results[(crawl.index, task.shard_index)]
            for outcome in result.outcomes:
                accountant.record_site(outcome)
            lane_total.merge(result.lane)
        accountant.finish(lane_total)
    merge_seconds = time.perf_counter() - t1

    # The parallel-specific part alone: folding per-shard lane stats.
    lanes = [results[(crawl.index, t.shard_index)].lane for t in tasks]
    t2 = time.perf_counter()
    for _ in range(100):
        total = LaneStats()
        for lane in lanes:
            total.merge(lane)
    lane_merge_seconds = (time.perf_counter() - t2) / 100.0
    return exec_seconds, merge_seconds, lane_merge_seconds
