"""Micro-benchmarks: filter matching, inclusion building, crawl rate."""

from repro.browser import Browser
from repro.cdp import EventBus, SessionRecorder
from repro.crawler.crawler import CrawlConfig, Crawler
from repro.inclusion import InclusionTreeBuilder
from repro.net.http import ResourceType
from repro.web.filterlists import build_filter_engine


def test_filter_matching_throughput(benchmark, bench_web):
    engine = build_filter_engine(bench_web.registry)
    urls = [
        ("https://securepubads.doubleclick.net/ads/tag.js", ResourceType.SCRIPT),
        ("https://cdn.intercom.io/widget/chat.js", ResourceType.SCRIPT),
        ("https://px.scorecardresearch.com/pixel.gif?uid=1", ResourceType.IMAGE),
        ("wss://widget-mediator.zopim.com/socket", ResourceType.WEBSOCKET),
        ("https://www.benignsite.example/static/app.js", ResourceType.SCRIPT),
        ("https://cdn1.lockerdome.com/uploads/ad1.jpg", ResourceType.IMAGE),
    ] * 50

    def match_all():
        hits = 0
        for url, rtype in urls:
            if engine.would_block(url, rtype, "https://pub.example/"):
                hits += 1
        return hits

    hits = benchmark(match_all)
    print(f"\nfilter engine: {engine.rule_count} rules, "
          f"{hits}/{len(urls)} requests blocked")
    assert hits > 0


def test_inclusion_tree_build_throughput(benchmark, bench_web):
    # Record one busy page's event stream once, then measure rebuilds.
    site = next(iter(bench_web.plan.site_plans.values())).site
    bus = EventBus()
    browser = Browser(version=57, bus=bus)
    recorder = SessionRecorder(bus)
    browser.visit(bench_web.blueprint(site, 0, 0))
    events = recorder.events

    def rebuild():
        builder = InclusionTreeBuilder()
        for event in events:
            builder.handle(event)
        return builder.result()

    tree = benchmark(rebuild)
    print(f"\ninclusion tree: {tree.resource_count} resources, "
          f"{len(tree.websockets)} sockets from {len(events)} events")
    assert tree.resource_count > 0


def test_crawl_throughput(benchmark, bench_web):
    sites = bench_web.seed_list.sites[:20]

    def crawl():
        config = CrawlConfig(index=0, label="bench", chrome_major=57,
                             start_date="2017-04-02", pages_per_site=3)
        return Crawler(bench_web, config, observers=[]).run(sites)

    summary = benchmark.pedantic(crawl, rounds=2, iterations=1)
    print(f"\ncrawl: {summary.pages_visited} pages, "
          f"{summary.events_published} events")
    assert summary.pages_visited == 60
