"""Shared benchmark fixtures.

The four-crawl dataset is built once per session (the expensive part);
each table/figure bench then measures its analysis stage and prints the
regenerated artifact next to the paper's values.
"""

from __future__ import annotations

import pytest

from repro.experiments import StudyConfig
from repro.experiments.runner import SyntheticWeb, WebScale, analyze, run_crawls

# Bench preset: enough scale for every entity to appear, small enough
# that the one-time crawl stays in tens of seconds.
BENCH_CONFIG = StudyConfig(
    scale=0.05, sample_scale=0.01, pages_per_site=10, name="bench"
)


@pytest.fixture(scope="session")
def bench_web():
    return SyntheticWeb(
        scale=WebScale(sample_scale=BENCH_CONFIG.resolved_sample_scale,
                       entity_scale=BENCH_CONFIG.scale),
        seed=BENCH_CONFIG.seed,
    )


@pytest.fixture(scope="session")
def bench_dataset(bench_web):
    dataset, summaries = run_crawls(bench_web, BENCH_CONFIG)
    return dataset, summaries


@pytest.fixture(scope="session")
def bench_study(bench_web, bench_dataset):
    dataset, summaries = bench_dataset
    return analyze(BENCH_CONFIG, bench_web, dataset, summaries)
