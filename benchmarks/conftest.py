"""Shared benchmark fixtures.

The four-crawl dataset is built once per session (the expensive part);
each table/figure bench then measures its analysis stage and prints the
regenerated artifact next to the paper's values. The shared study runs
with a full obs context, and its per-stage breakdown is exported to
``results/bench/BENCH_OBS.json`` at the end of the session.

Every bench payload funnels through :func:`write_bench_json`, which
stamps provenance (git sha + hardware fingerprint — a bench number
without the machine it ran on is noise) and appends one canonical
record per numeric metric to ``results/bench/history.jsonl``, the
longitudinal store ``repro perf check`` regression-gates.

``REPRO_BENCH_PRESET=smoke`` shrinks the shared study to CI scale;
the preset name rides along as the history records' ``context`` so
smoke-scale numbers never get compared against full bench-scale ones.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments import StudyConfig
from repro.experiments.runner import SyntheticWeb, WebScale, analyze, run_crawls
from repro.obs import Obs
from repro.util.atomicio import atomic_write
from repro.obs.history import (
    append_history,
    fingerprint_key,
    git_sha,
    hardware_fingerprint,
    records_for_payload,
)

# Bench preset: enough scale for every entity to appear, small enough
# that the one-time crawl stays in tens of seconds. CI's perf-gate job
# runs the same suite at smoke scale via REPRO_BENCH_PRESET.
_PRESETS = {
    "bench": StudyConfig(scale=0.05, sample_scale=0.01, pages_per_site=10,
                         name="bench"),
    "smoke": StudyConfig(scale=0.004, sample_scale=0.002, pages_per_site=2,
                         name="bench-smoke"),
}
BENCH_CONFIG = _PRESETS[os.environ.get("REPRO_BENCH_PRESET", "bench")]

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "results" / "bench"
BENCH_OBS_PATH = BENCH_DIR / "BENCH_OBS.json"
HISTORY_PATH = Path(
    os.environ.get("REPRO_BENCH_HISTORY", str(BENCH_DIR / "history.jsonl"))
)

# Provenance is constant for the session; resolve it once.
_HARDWARE = hardware_fingerprint()
_HARDWARE_KEY = fingerprint_key(_HARDWARE)
_GIT_SHA = git_sha(REPO_ROOT)


def write_bench_json(name: str, payload: dict) -> Path:
    """Write one benchmark's results to ``results/bench/BENCH_<NAME>.json``.

    Every bench module funnels its measured numbers through here so the
    emission format stays uniform (sorted keys, two-space indent,
    trailing newline — diff-friendly when committed) and every payload
    carries provenance: the git sha and a canonical hardware
    fingerprint. Each numeric leaf is also appended to the history
    JSONL that ``repro perf check`` gates.
    """
    stamped = {
        **payload,
        "git_sha": _GIT_SHA,
        "hardware": {**_HARDWARE, "key": _HARDWARE_KEY},
    }
    path = BENCH_DIR / f"BENCH_{name.upper()}.json"
    atomic_write(
        path,
        json.dumps(stamped, indent=2, sort_keys=True) + "\n",
    )
    append_history(
        HISTORY_PATH,
        records_for_payload(name, payload, sha=_GIT_SHA,
                            hardware=_HARDWARE_KEY,
                            context=BENCH_CONFIG.name),
    )
    return path


@pytest.fixture(scope="session")
def bench_web():
    return SyntheticWeb(
        scale=WebScale(sample_scale=BENCH_CONFIG.resolved_sample_scale,
                       entity_scale=BENCH_CONFIG.scale),
        seed=BENCH_CONFIG.seed,
    )


@pytest.fixture(scope="session")
def bench_obs():
    """The shared study's observability context."""
    return Obs()


@pytest.fixture(scope="session")
def bench_dataset(bench_web, bench_obs):
    dataset, summaries = run_crawls(bench_web, BENCH_CONFIG, obs=bench_obs)
    return dataset, summaries


@pytest.fixture(scope="session")
def bench_study(bench_web, bench_dataset, bench_obs):
    dataset, summaries = bench_dataset
    result = analyze(BENCH_CONFIG, bench_web, dataset, summaries,
                     obs=bench_obs)
    _write_bench_obs(result.obs)
    return result


def _write_bench_obs(summary) -> None:
    """Per-stage breakdown next to the pytest-benchmark BENCH_*.json."""
    write_bench_json("obs", {
        "preset": BENCH_CONFIG.name,
        "ticks": summary.ticks,
        "stages": [
            {"stage": a.name, "spans": a.count, "ticks": a.total_ticks}
            for a in summary.aggregates
        ],
        "counters": summary.counters,
        "histograms": summary.histograms,
    })
