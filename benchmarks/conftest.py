"""Shared benchmark fixtures.

The four-crawl dataset is built once per session (the expensive part);
each table/figure bench then measures its analysis stage and prints the
regenerated artifact next to the paper's values. The shared study runs
with a full obs context, and its per-stage breakdown is exported to
``results/bench/BENCH_OBS.json`` at the end of the session.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import StudyConfig
from repro.experiments.runner import SyntheticWeb, WebScale, analyze, run_crawls
from repro.obs import Obs

# Bench preset: enough scale for every entity to appear, small enough
# that the one-time crawl stays in tens of seconds.
BENCH_CONFIG = StudyConfig(
    scale=0.05, sample_scale=0.01, pages_per_site=10, name="bench"
)

BENCH_DIR = Path(__file__).resolve().parent.parent / "results" / "bench"
BENCH_OBS_PATH = BENCH_DIR / "BENCH_OBS.json"


def write_bench_json(name: str, payload: dict) -> Path:
    """Write one benchmark's results to ``results/bench/BENCH_<NAME>.json``.

    Every bench module funnels its measured numbers through here so the
    emission format stays uniform (sorted keys, two-space indent,
    trailing newline — diff-friendly when committed).
    """
    path = BENCH_DIR / f"BENCH_{name.upper()}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


@pytest.fixture(scope="session")
def bench_web():
    return SyntheticWeb(
        scale=WebScale(sample_scale=BENCH_CONFIG.resolved_sample_scale,
                       entity_scale=BENCH_CONFIG.scale),
        seed=BENCH_CONFIG.seed,
    )


@pytest.fixture(scope="session")
def bench_obs():
    """The shared study's observability context."""
    return Obs()


@pytest.fixture(scope="session")
def bench_dataset(bench_web, bench_obs):
    dataset, summaries = run_crawls(bench_web, BENCH_CONFIG, obs=bench_obs)
    return dataset, summaries


@pytest.fixture(scope="session")
def bench_study(bench_web, bench_dataset, bench_obs):
    dataset, summaries = bench_dataset
    result = analyze(BENCH_CONFIG, bench_web, dataset, summaries,
                     obs=bench_obs)
    _write_bench_obs(result.obs)
    return result


def _write_bench_obs(summary) -> None:
    """Per-stage breakdown next to the pytest-benchmark BENCH_*.json."""
    write_bench_json("obs", {
        "preset": BENCH_CONFIG.name,
        "ticks": summary.ticks,
        "stages": [
            {"stage": a.name, "spans": a.count, "ticks": a.total_ticks}
            for a in summary.aggregates
        ],
        "counters": summary.counters,
        "histograms": summary.histograms,
    })
