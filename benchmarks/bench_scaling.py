"""Ablation: stability of headline marginals across crawl scales.

DESIGN.md's calibration contract says percentages are scale-free while
unique-entity counts are pinned. This bench sweeps the crawl scale and
verifies the headline marginals hold.
"""

from conftest import write_bench_json

from repro.experiments import StudyConfig
from repro.experiments.runner import run_study


def _marginals(scale, sample):
    config = StudyConfig(scale=scale, sample_scale=sample,
                         pages_per_site=6, crawls=(0,), name="sweep")
    result = run_study(config)
    row = result.table1[0]
    return {
        "scale": scale,
        "aa_init_pct": row.pct_sockets_aa_initiators,
        "aa_recv_pct": row.pct_sockets_aa_receivers,
        "unique_init": row.unique_aa_initiators,
        "cross_origin": result.overall.pct_cross_origin,
    }


def test_scaling_sweep(benchmark):
    small = _marginals(0.03, 0.002)
    large = benchmark.pedantic(
        lambda: _marginals(0.08, 0.004), rounds=1, iterations=1
    )
    print()
    print("scale sweep (crawl 0 only):")
    for m in (small, large):
        print(f"  scale={m['scale']}: A&A-init {m['aa_init_pct']:.1f}%  "
              f"A&A-recv {m['aa_recv_pct']:.1f}%  "
              f"unique initiators {m['unique_init']}  "
              f"cross-origin {m['cross_origin']:.1f}%")
    # Unique initiators pinned at 75 regardless of scale.
    assert small["unique_init"] == large["unique_init"] == 75
    # Percentages stable within a band.
    assert abs(small["aa_init_pct"] - large["aa_init_pct"]) < 15
    assert abs(small["aa_recv_pct"] - large["aa_recv_pct"]) < 15
    write_bench_json("scaling", {"small": small, "large": large})
