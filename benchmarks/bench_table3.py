"""Regenerate Table 3: top A&A WebSocket receivers by unique initiators.

Paper values (total initiators / A&A initiators / sockets):

    intercom 156/16/5531    33across 57/19/1375   zopim 44/12/19656
    realtime 41/27/1548     smartsupp 26/4/670    feedjit 25/10/3013
    inspectlet 25/6/820     pusher 22/8/634       disqus 17/13/4798
    hotjar 13/7/2407        freshrelevance 10/2/403  lockerdome 10/8/408
    velaro 4/3/62           truconversion 3/2/298    simpleheatmaps 1/0/93

Total-initiator counts scale with crawl size (they are mostly distinct
publishers); the A&A-initiator counts are entity-level and reproduce
exactly.
"""

import dataclasses

from conftest import write_bench_json

from repro.analysis.report import render_table3
from repro.analysis.table3 import aa_initiator_share, compute_table3

PAPER_AA_INITIATORS = {
    "intercom": 16,
    "33across": 19,
    "zopim": 12,
    "realtime": 27,
    "smartsupp": 4,
    "feedjit": 10,
    "inspectlet": 6,
    "pusher": 8,
    "disqus": 13,
    "hotjar": 7,
    "freshrelevance": 2,
    "lockerdome": 8,
    "velaro": 3,
    "truconversion": 2,
}


def test_table3(benchmark, bench_study):
    rows = benchmark(compute_table3, bench_study.views, 15)
    print()
    print(render_table3(rows))
    print(f"A&A share of initiators contacting A&A receivers: "
          f"{aa_initiator_share(bench_study.views):.1f}% (paper: ~2.5% at "
          f"full scale)")
    by_name = {r.receiver: r for r in rows}
    assert rows[0].receiver == "intercom"  # the paper's top receiver
    matched = sum(
        1 for name, aa in PAPER_AA_INITIATORS.items()
        if name in by_name and abs(by_name[name].initiators_aa - aa) <= 1
    )
    assert matched >= 10, f"only {matched} A&A-initiator counts near paper"
    write_bench_json("table3", {
        "paper_rows_matched": matched,
        "aa_initiator_share_pct": aa_initiator_share(bench_study.views),
        "rows": [dataclasses.asdict(r) for r in rows],
    })
