"""The study dataset: everything the analyses need, accumulated online.

The paper archived raw crawl output and analyzed it post-hoc; at
laptop scale we stream each page observation into compact aggregates
instead, keeping:

* every socket record (Tables 1–5 all need them),
* per-domain filter-tag counts (→ the A&A labeler),
* Cloudfront adjacency counts (→ the tenant mapping),
* per-domain HTTP item/received counters (→ Table 5's HTTP columns),
* inclusion-chain signatures with counts (→ the §4.2 blocking stats),
* per-crawl site lists (→ Table 1 denominators and Figure 3 bins).

Everything that needs the post-hoc A&A set stores *hosts*; analyses
resolve them through the derived labeler + Cloudfront mapping.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.content.ads import AdUnit
from repro.content.items import ReceivedClass, SentItem
from repro.content.received import classify_http_response
from repro.crawler.crawler import CrawlRunSummary
from repro.crawler.observation import PageObservation
from repro.filters import FilterEngine
from repro.labeling.aa_labeler import AaLabeler, DomainTagCounter
from repro.labeling.cloudfront import CloudfrontMapper, is_cloudfront_host
from repro.labeling.resolver import DomainResolver
from repro.net.domains import registrable_domain
from repro.net.http import ResourceType


@dataclass(frozen=True)
class SocketRecord:
    """One socket, reduced to what the tables need.

    ``partial`` marks records whose lifecycle events were lost in a
    lossy event stream — their frame/handshake data may be incomplete,
    but they still count as observed sockets.
    """

    crawl: int
    site_domain: str
    rank: int
    page_url: str
    socket_host: str
    initiator_host: str
    initiator_url: str
    chain_hosts: tuple[str, ...]
    chain_script_urls: tuple[str, ...]
    first_party_host: str
    cross_origin: bool
    handshake_cookie: bool
    sent_items: frozenset[SentItem]
    received_classes: frozenset[ReceivedClass]
    sent_nothing: bool
    received_nothing: bool
    ad_units: tuple[AdUnit, ...] = ()
    partial: bool = False


@dataclass(frozen=True)
class CrawlMeta:
    """One crawl's identity and denominators.

    Attributes:
        index: Crawl index (0–3 in the four-crawl study).
        label: Crawl window label (``"Chrome 57 #1"``…).
        sites: The crawl's ``(domain, rank)`` site list — Table 1's
            denominator and Figure 3's rank bins.
        pages: Pages observed during the crawl.
    """

    index: int
    label: str
    sites: tuple[tuple[str, int], ...] = ()
    pages: int = 0


@dataclass(frozen=True)
class DatasetMeta:
    """Typed dataset-level metadata the analyses need.

    Replaces the parallel ``crawl_sites``/``crawl_labels`` mappings
    that used to be threaded through every ``compute_table*``
    signature; persisted in the dataset JSONL header so a saved
    dataset is self-describing.
    """

    crawls: tuple[CrawlMeta, ...] = ()

    @property
    def crawl_sites(self) -> dict[int, list[tuple[str, int]]]:
        """The legacy crawl → site-list mapping."""
        return {c.index: list(c.sites) for c in self.crawls}

    @property
    def crawl_labels(self) -> dict[int, str]:
        """The legacy crawl → label mapping."""
        return {c.index: c.label for c in self.crawls}

    @property
    def crawl_indices(self) -> tuple[int, ...]:
        """Crawl indices present, sorted."""
        return tuple(sorted(c.index for c in self.crawls))

    @classmethod
    def from_mappings(
        cls,
        crawl_sites: dict[int, list[tuple[str, int]]],
        crawl_labels: dict[int, str] | None = None,
        crawl_pages: dict[int, int] | None = None,
    ) -> "DatasetMeta":
        """Build from the legacy mapping pair (labels default per crawl)."""
        crawl_labels = crawl_labels or {}
        crawl_pages = crawl_pages or {}
        return cls(crawls=tuple(
            CrawlMeta(
                index=index,
                label=crawl_labels.get(index, f"crawl {index}"),
                sites=tuple(
                    (domain, rank) for domain, rank in crawl_sites[index]
                ),
                pages=crawl_pages.get(index, 0),
            )
            for index in sorted(crawl_sites)
        ))


@dataclass(frozen=True)
class ChainSignature:
    """A deduplicated third-party inclusion-chain shape.

    Attributes:
        hosts: Chain hosts with the leading first-party hop removed.
        script_urls: Query-stripped script URLs along the chain.
        leaf_host: Host of the chain's leaf resource.
        leaf_is_script: Whether the leaf itself is a script.
    """

    hosts: tuple[str, ...]
    script_urls: tuple[str, ...]
    leaf_host: str
    leaf_is_script: bool


@dataclass
class StudyDataset:
    """Accumulates one or more crawls of the study."""

    engine: FilterEngine
    socket_records: list[SocketRecord] = field(default_factory=list)
    tag_counter: DomainTagCounter = field(default_factory=DomainTagCounter)
    cf_mapper: CloudfrontMapper = field(default_factory=CloudfrontMapper)
    http_requests_by_host: Counter = field(default_factory=Counter)
    http_items_by_host: dict[str, Counter] = field(default_factory=dict)
    http_received_by_host: dict[str, Counter] = field(default_factory=dict)
    chain_signatures: Counter = field(default_factory=Counter)
    crawl_sites: dict[int, list[tuple[str, int]]] = field(default_factory=dict)
    crawl_pages: Counter = field(default_factory=Counter)
    crawl_labels: dict[int, str] = field(default_factory=dict)

    # -- ingestion -----------------------------------------------------------

    def observe(self, page: PageObservation) -> None:
        """Stream in one page observation."""
        self.crawl_pages[page.crawl] += 1
        first_party_url = page.page_url
        first_party_domain = registrable_domain(page.site_domain)
        for resource in page.resources:
            matched = self.engine.match(
                resource.url, resource.resource_type, first_party_url
            ).matched
            self.tag_counter.observe(resource.host, matched)
            if registrable_domain(resource.host) != first_party_domain:
                self._observe_http(resource)
            if any(is_cloudfront_host(h) for h in resource.chain_hosts):
                self.cf_mapper.observe_chain(list(resource.chain_hosts))
            self._observe_chain_signature(resource, first_party_domain)
        for socket in page.sockets:
            if any(is_cloudfront_host(h) for h in socket.chain_hosts):
                self.cf_mapper.observe_chain(list(socket.chain_hosts))
            self.socket_records.append(SocketRecord(
                crawl=page.crawl,
                site_domain=page.site_domain,
                rank=page.rank,
                page_url=page.page_url,
                socket_host=socket.host,
                initiator_host=socket.initiator_host,
                initiator_url=socket.initiator_url,
                chain_hosts=socket.chain_hosts,
                chain_script_urls=socket.chain_script_urls,
                first_party_host=socket.first_party_host,
                cross_origin=socket.cross_origin,
                handshake_cookie=socket.handshake_cookie,
                sent_items=socket.sent_items,
                received_classes=socket.received_classes,
                sent_nothing=socket.sent_nothing,
                received_nothing=socket.received_nothing,
                ad_units=socket.ad_units,
                partial=socket.partial,
            ))

    def record_crawl(self, summary: CrawlRunSummary) -> None:
        """Register a finished crawl's site list and label."""
        self.crawl_sites[summary.config.index] = list(summary.sites)
        self.crawl_labels[summary.config.index] = summary.config.label

    # -- derived structures -----------------------------------------------------

    def derive_labeler(self, threshold: float = 0.1) -> AaLabeler:
        """Apply the §3.2 rule to the accumulated tag counts."""
        return AaLabeler.from_counts(self.tag_counter, threshold)

    def derive_resolver(self, labeler: AaLabeler | None = None) -> DomainResolver:
        """Derive the Cloudfront tenant mapping and wrap it."""
        labeler = labeler or self.derive_labeler()
        return DomainResolver(
            cloudfront_mapping=self.cf_mapper.derive_mapping(labeler)
        )

    @property
    def crawl_indices(self) -> list[int]:
        """Crawls present in the dataset, sorted."""
        return sorted(self.crawl_pages)

    @property
    def meta(self) -> DatasetMeta:
        """Typed metadata snapshot (labels, site lists, page counts)."""
        return DatasetMeta.from_mappings(
            self.crawl_sites, self.crawl_labels, dict(self.crawl_pages)
        )

    # -- internals ---------------------------------------------------------------

    def _observe_http(self, resource) -> None:
        host = resource.host
        self.http_requests_by_host[host] += 1
        if resource.sent_items:
            bucket = self.http_items_by_host.get(host)
            if bucket is None:
                bucket = Counter()
                self.http_items_by_host[host] = bucket
            for item in resource.sent_items:
                bucket[item] += 1
        received = classify_http_response(resource.mime_type)
        if received is not None:
            bucket = self.http_received_by_host.get(host)
            if bucket is None:
                bucket = Counter()
                self.http_received_by_host[host] = bucket
            bucket[received] += 1

    def _observe_chain_signature(self, resource, first_party_domain: str) -> None:
        hosts = resource.chain_hosts
        # Drop the first-party document hop: signatures describe the
        # third-party portion, which repeats across sites.
        trimmed = hosts[1:] if len(hosts) > 1 else hosts
        if not trimmed:
            return
        # Chains that never leave the first party cannot be A&A chains;
        # skip them (≈40% of all resources) to keep the signature table
        # small and the hot path fast.
        if all(
            registrable_domain(h) == first_party_domain for h in trimmed
        ):
            return
        self.chain_signatures[ChainSignature(
            hosts=trimmed,
            script_urls=resource.chain_script_urls,
            leaf_host=resource.host,
            leaf_is_script=resource.resource_type == ResourceType.SCRIPT,
        )] += 1
