"""Archiving socket records — the study's primary artifact.

The original study archived raw crawl output; the compact equivalent
here is the socket-record table (every Table 1–5 computation and
Figure 3 can be re-derived from it plus the aggregate counters). These
helpers write and read it as JSONL, so results can be shared, diffed,
and re-analyzed without re-crawling.

This module also holds the crawl *checkpoint journal*: an append-only
JSONL file with one entry per finished site, which lets an interrupted
study resume where it stopped (:class:`CrawlCheckpoint`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.content.ads import AdUnit
from repro.content.items import ReceivedClass, SentItem
from repro.crawler.dataset import SocketRecord
from repro.util.serialization import read_jsonl, write_jsonl

if TYPE_CHECKING:
    from repro.crawler.crawler import CrawlRunSummary


def socket_record_to_json(record: SocketRecord) -> dict:
    """Encode one socket record as a JSON-able dict."""
    return {
        "crawl": record.crawl,
        "site": record.site_domain,
        "rank": record.rank,
        "page": record.page_url,
        "socket_host": record.socket_host,
        "initiator_host": record.initiator_host,
        "initiator_url": record.initiator_url,
        "chain_hosts": list(record.chain_hosts),
        "chain_script_urls": list(record.chain_script_urls),
        "first_party_host": record.first_party_host,
        "cross_origin": record.cross_origin,
        "handshake_cookie": record.handshake_cookie,
        "sent_items": sorted(item.value for item in record.sent_items),
        "received_classes": sorted(
            cls.value for cls in record.received_classes
        ),
        "sent_nothing": record.sent_nothing,
        "received_nothing": record.received_nothing,
        "partial": record.partial,
        "ad_units": [
            {"image_url": u.image_url, "caption": u.caption,
             "width": u.width, "height": u.height,
             "click_url": u.click_url}
            for u in record.ad_units
        ],
    }


def socket_record_from_json(payload: dict) -> SocketRecord:
    """Decode one socket record."""
    return SocketRecord(
        crawl=payload["crawl"],
        site_domain=payload["site"],
        rank=payload["rank"],
        page_url=payload["page"],
        socket_host=payload["socket_host"],
        initiator_host=payload["initiator_host"],
        initiator_url=payload["initiator_url"],
        chain_hosts=tuple(payload["chain_hosts"]),
        chain_script_urls=tuple(payload["chain_script_urls"]),
        first_party_host=payload["first_party_host"],
        cross_origin=payload["cross_origin"],
        handshake_cookie=payload["handshake_cookie"],
        sent_items=frozenset(
            SentItem(value) for value in payload["sent_items"]
        ),
        received_classes=frozenset(
            ReceivedClass(value) for value in payload["received_classes"]
        ),
        sent_nothing=payload["sent_nothing"],
        received_nothing=payload["received_nothing"],
        # Records written before the completeness flag existed are
        # complete by construction.
        partial=payload.get("partial", False),
        ad_units=tuple(
            AdUnit(**unit) for unit in payload.get("ad_units", ())
        ),
    )


def save_socket_records(
    path: str | Path, records: Iterable[SocketRecord]
) -> int:
    """Write socket records to JSONL (``.gz`` supported); returns count."""
    return write_jsonl(path, (socket_record_to_json(r) for r in records))


def load_socket_records(path: str | Path) -> list[SocketRecord]:
    """Read socket records back from JSONL."""
    return list(read_jsonl(path, decoder=socket_record_from_json))


# -- checkpoint journal ---------------------------------------------------


@dataclass(frozen=True)
class SiteCheckpoint:
    """One finished site, as journaled by the crawler.

    Attributes:
        crawl: Crawl index the site was visited under.
        domain: Site domain.
        rank: Alexa rank.
        status: ``"ok"`` or ``"quarantined"``.
        pages: Page observations the site produced.
        sockets: Sockets observed on those pages.
    """

    crawl: int
    domain: str
    rank: int
    status: str
    pages: int
    sockets: int

    def restore_into(self, summary: "CrawlRunSummary") -> None:
        """Fold this journaled site back into a resumed run's summary."""
        summary.sites_visited += 1
        summary.sites.append((self.domain, self.rank))
        summary.pages_visited += self.pages
        summary.sockets_observed += self.sockets
        if self.status == "quarantined":
            summary.sites_quarantined += 1


class CrawlCheckpoint:
    """Append-only JSONL journal of per-site crawl completion.

    Opening an existing journal loads its entries; the crawler skips
    journaled sites (restoring their counts into the run summary) and
    appends one entry per newly finished site, flushing after each so
    a crash loses at most the site in flight.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._entries: dict[tuple[int, str], SiteCheckpoint] = {}
        if self.path.exists():
            for payload in read_jsonl(self.path):
                entry = SiteCheckpoint(**payload)
                self._entries[(entry.crawl, entry.domain)] = entry

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, crawl: int, domain: str) -> SiteCheckpoint | None:
        """The journaled entry for a site, or ``None`` if unfinished."""
        return self._entries.get((crawl, domain))

    def record(self, entry: SiteCheckpoint) -> None:
        """Append one finished site to the journal."""
        self._entries[(entry.crawl, entry.domain)] = entry
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps({
                "crawl": entry.crawl,
                "domain": entry.domain,
                "rank": entry.rank,
                "status": entry.status,
                "pages": entry.pages,
                "sockets": entry.sockets,
            }, sort_keys=True))
            handle.write("\n")
            handle.flush()
