"""Archiving socket records — the study's primary artifact.

The original study archived raw crawl output; the compact equivalent
here is the socket-record table (every Table 1–5 computation and
Figure 3 can be re-derived from it plus the aggregate counters). These
helpers write and read it as JSONL, so results can be shared, diffed,
and re-analyzed without re-crawling.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.content.ads import AdUnit
from repro.content.items import ReceivedClass, SentItem
from repro.crawler.dataset import SocketRecord
from repro.util.serialization import read_jsonl, write_jsonl


def socket_record_to_json(record: SocketRecord) -> dict:
    """Encode one socket record as a JSON-able dict."""
    return {
        "crawl": record.crawl,
        "site": record.site_domain,
        "rank": record.rank,
        "page": record.page_url,
        "socket_host": record.socket_host,
        "initiator_host": record.initiator_host,
        "initiator_url": record.initiator_url,
        "chain_hosts": list(record.chain_hosts),
        "chain_script_urls": list(record.chain_script_urls),
        "first_party_host": record.first_party_host,
        "cross_origin": record.cross_origin,
        "handshake_cookie": record.handshake_cookie,
        "sent_items": sorted(item.value for item in record.sent_items),
        "received_classes": sorted(
            cls.value for cls in record.received_classes
        ),
        "sent_nothing": record.sent_nothing,
        "received_nothing": record.received_nothing,
        "ad_units": [
            {"image_url": u.image_url, "caption": u.caption,
             "width": u.width, "height": u.height,
             "click_url": u.click_url}
            for u in record.ad_units
        ],
    }


def socket_record_from_json(payload: dict) -> SocketRecord:
    """Decode one socket record."""
    return SocketRecord(
        crawl=payload["crawl"],
        site_domain=payload["site"],
        rank=payload["rank"],
        page_url=payload["page"],
        socket_host=payload["socket_host"],
        initiator_host=payload["initiator_host"],
        initiator_url=payload["initiator_url"],
        chain_hosts=tuple(payload["chain_hosts"]),
        chain_script_urls=tuple(payload["chain_script_urls"]),
        first_party_host=payload["first_party_host"],
        cross_origin=payload["cross_origin"],
        handshake_cookie=payload["handshake_cookie"],
        sent_items=frozenset(
            SentItem(value) for value in payload["sent_items"]
        ),
        received_classes=frozenset(
            ReceivedClass(value) for value in payload["received_classes"]
        ),
        sent_nothing=payload["sent_nothing"],
        received_nothing=payload["received_nothing"],
        ad_units=tuple(
            AdUnit(**unit) for unit in payload.get("ad_units", ())
        ),
    )


def save_socket_records(
    path: str | Path, records: Iterable[SocketRecord]
) -> int:
    """Write socket records to JSONL (``.gz`` supported); returns count."""
    return write_jsonl(path, (socket_record_to_json(r) for r in records))


def load_socket_records(path: str | Path) -> list[SocketRecord]:
    """Read socket records back from JSONL."""
    return list(read_jsonl(path, decoder=socket_record_from_json))
