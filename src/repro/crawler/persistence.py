"""Archiving the study dataset — the study's primary artifact.

The original study archived raw crawl output; the compact equivalent
here is the *dataset file*: a JSONL header (typed metadata), the
dataset's aggregate counters, then every socket record — everything
``repro analyze`` needs to recompute Tables 1–5, Figure 3, and the
prose statistics without re-crawling (:func:`save_dataset` /
:func:`open_dataset`). :func:`dataset_fingerprint` hashes the exact
byte stream :func:`save_dataset` writes, so a live dataset and its
saved file share one content address for the stage cache.

This module also holds the crawl *checkpoint journal*: an append-only
JSONL file with one entry per finished site, which lets an interrupted
study resume where it stopped (:class:`CrawlCheckpoint`).
"""

from __future__ import annotations

import hashlib
import itertools
import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.content.ads import AdUnit
from repro.content.items import ReceivedClass, SentItem
from repro.crawler.dataset import (
    ChainSignature,
    CrawlMeta,
    DatasetMeta,
    SocketRecord,
    StudyDataset,
)
from repro.crawler.observation import (
    PageObservation,
    ResourceObservation,
    SocketObservation,
)
from repro.crawler.outcome import PageOutcome
from repro.net.http import ResourceType
from repro.util.serialization import (
    dumps,
    iter_lines,
    read_jsonl,
    write_jsonl,
)

if TYPE_CHECKING:
    from repro.crawler.crawler import CrawlRunSummary
    from repro.filters import FilterEngine

DATASET_FORMAT = "repro.dataset"
DATASET_VERSION = 2


class DatasetError(ValueError):
    """A dataset file is missing, malformed, or an unsupported version."""


def socket_record_to_json(record: SocketRecord) -> dict:
    """Encode one socket record as a JSON-able dict."""
    return {
        "crawl": record.crawl,
        "site": record.site_domain,
        "rank": record.rank,
        "page": record.page_url,
        "socket_host": record.socket_host,
        "initiator_host": record.initiator_host,
        "initiator_url": record.initiator_url,
        "chain_hosts": list(record.chain_hosts),
        "chain_script_urls": list(record.chain_script_urls),
        "first_party_host": record.first_party_host,
        "cross_origin": record.cross_origin,
        "handshake_cookie": record.handshake_cookie,
        "sent_items": sorted(item.value for item in record.sent_items),
        "received_classes": sorted(
            cls.value for cls in record.received_classes
        ),
        "sent_nothing": record.sent_nothing,
        "received_nothing": record.received_nothing,
        "partial": record.partial,
        "ad_units": [
            {"image_url": u.image_url, "caption": u.caption,
             "width": u.width, "height": u.height,
             "click_url": u.click_url}
            for u in record.ad_units
        ],
    }


def socket_record_from_json(payload: dict) -> SocketRecord:
    """Decode one socket record."""
    return SocketRecord(
        crawl=payload["crawl"],
        site_domain=payload["site"],
        rank=payload["rank"],
        page_url=payload["page"],
        socket_host=payload["socket_host"],
        initiator_host=payload["initiator_host"],
        initiator_url=payload["initiator_url"],
        chain_hosts=tuple(payload["chain_hosts"]),
        chain_script_urls=tuple(payload["chain_script_urls"]),
        first_party_host=payload["first_party_host"],
        cross_origin=payload["cross_origin"],
        handshake_cookie=payload["handshake_cookie"],
        sent_items=frozenset(
            SentItem(value) for value in payload["sent_items"]
        ),
        received_classes=frozenset(
            ReceivedClass(value) for value in payload["received_classes"]
        ),
        sent_nothing=payload["sent_nothing"],
        received_nothing=payload["received_nothing"],
        # Records written before the completeness flag existed are
        # complete by construction.
        partial=payload.get("partial", False),
        ad_units=tuple(
            AdUnit(**unit) for unit in payload.get("ad_units", ())
        ),
    )


def save_socket_records(
    path: str | Path, records: Iterable[SocketRecord]
) -> int:
    """Write socket records to JSONL (``.gz`` supported); returns count."""
    return write_jsonl(path, (socket_record_to_json(r) for r in records))


def load_socket_records(path: str | Path) -> list[SocketRecord]:
    """Read socket records back from JSONL.

    Works on both bare record files and v2 dataset files (header and
    aggregate lines — the ones carrying a ``kind`` key — are skipped).
    """
    return [
        socket_record_from_json(payload)
        for payload in read_jsonl(path)
        if "kind" not in payload
    ]


# -- the dataset file (v2) -------------------------------------------------


def _meta_to_json(meta: DatasetMeta) -> dict:
    return {
        "crawls": [
            {
                "index": crawl.index,
                "label": crawl.label,
                "sites": [[domain, rank] for domain, rank in crawl.sites],
                "pages": crawl.pages,
            }
            for crawl in meta.crawls
        ],
    }


def _meta_from_json(payload: dict) -> DatasetMeta:
    return DatasetMeta(crawls=tuple(
        CrawlMeta(
            index=crawl["index"],
            label=crawl["label"],
            sites=tuple((domain, rank) for domain, rank in crawl["sites"]),
            pages=crawl["pages"],
        )
        for crawl in payload["crawls"]
    ))


def _item_counter_to_json(bucket: Counter) -> dict:
    return {
        item.value: count
        for item, count in sorted(
            bucket.items(), key=lambda kv: kv[0].value
        )
    }


def dataset_preamble(dataset: StudyDataset) -> list[dict]:
    """The header and aggregate lines preceding the socket records.

    Chain signatures get one ``kind: chain`` line each rather than one
    aggregate line: the chain population grows with pages crawled, and
    a single multi-megabyte JSON line would dominate the reader's
    transient memory (the whole point of streaming re-analysis is that
    nothing scales with crawl volume at parse time).
    """
    chains = [
        {
            "kind": "chain",
            "hosts": list(signature.hosts),
            "script_urls": list(signature.script_urls),
            "leaf_host": signature.leaf_host,
            "leaf_is_script": signature.leaf_is_script,
            "count": count,
        }
        for signature, count in dataset.chain_signatures.items()
    ]
    chains.sort(key=lambda entry: (
        entry["leaf_host"], entry["hosts"], entry["script_urls"],
        entry["leaf_is_script"],
    ))
    return [
        {
            "kind": "header",
            "format": DATASET_FORMAT,
            "version": DATASET_VERSION,
            "meta": _meta_to_json(dataset.meta),
        },
        {
            "kind": "tags",
            "aa": dict(dataset.tag_counter.aa),
            "non_aa": dict(dataset.tag_counter.non_aa),
        },
        {
            "kind": "cloudfront",
            "adjacency": {
                host: dict(counter)
                for host, counter in dataset.cf_mapper.adjacency.items()
            },
        },
        {
            "kind": "http",
            "requests": dict(dataset.http_requests_by_host),
            "items": {
                host: _item_counter_to_json(bucket)
                for host, bucket in dataset.http_items_by_host.items()
            },
            "received": {
                host: _item_counter_to_json(bucket)
                for host, bucket in dataset.http_received_by_host.items()
            },
        },
    ] + chains


def _dataset_records(dataset: StudyDataset) -> Iterator[dict]:
    """Every JSONL line of the dataset file, in order."""
    return itertools.chain(
        dataset_preamble(dataset),
        (socket_record_to_json(r) for r in dataset.socket_records),
    )


def save_dataset(path: str | Path, dataset: StudyDataset) -> int:
    """Write the full dataset file; returns the socket-record count.

    The byte stream is canonical (compact JSON, sorted keys), so the
    file's fingerprint equals :func:`dataset_fingerprint` of the live
    dataset and two saves of equal datasets are byte-identical.
    """
    lines = write_jsonl(path, _dataset_records(dataset))
    return lines - 4 - len(dataset.chain_signatures)


def dataset_fingerprint(dataset: StudyDataset) -> str:
    """SHA-256 of the byte stream :func:`save_dataset` would write."""
    hasher = hashlib.sha256()
    for record in _dataset_records(dataset):
        hasher.update(dumps(record).encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def file_fingerprint(path: str | Path) -> str:
    """SHA-256 of a dataset file's (decompressed) bytes.

    Equals :func:`dataset_fingerprint` of the dataset the file was
    saved from; hashing the decoded text keeps ``.gz`` files and their
    plain twins interchangeable.
    """
    hasher = hashlib.sha256()
    for line in iter_lines(path):
        hasher.update(line.encode("utf-8"))
    return hasher.hexdigest()


class DatasetReader:
    """Streaming reader over a saved v2 dataset file.

    Loading the reader parses only the header and aggregate lines into
    an otherwise-empty :class:`StudyDataset` (labeler derivation, the
    Table 5 HTTP half, and the §4.2 chain population all come from
    those aggregates); socket records are re-yielded from disk on each
    :meth:`iter_records` call, so analysis memory stays bounded by the
    aggregates, never the record count.
    """

    def __init__(
        self, path: str | Path, engine: "FilterEngine | None" = None
    ) -> None:
        self.path = Path(path)
        if not self.path.exists():
            raise DatasetError(f"no such dataset file: {self.path}")
        self.meta, preamble = self._load_preamble()
        self.dataset = self._restore_dataset(preamble, engine)
        #: Torn trailing records skipped by the last ``iter_records``
        #: pass — 0 or 1 by construction.
        self.torn_tail_skipped = 0

    def _load_preamble(self) -> tuple[DatasetMeta, dict[str, dict]]:
        header: dict | None = None
        preamble: dict[str, dict] = {}
        # Lines before the first socket record; iter_records skips
        # them without re-parsing (the aggregate lines are large).
        self._preamble_lines = 0
        for line in iter_lines(self.path):
            stripped = line.strip()
            if not stripped:
                self._preamble_lines += 1
                continue
            payload = json.loads(stripped)
            kind = payload.get("kind") if isinstance(payload, dict) else None
            if header is None:
                if kind != "header" or payload.get("format") != DATASET_FORMAT:
                    raise DatasetError(
                        f"{self.path} is not a {DATASET_FORMAT} file "
                        "(no header line); re-export it with "
                        "`repro study --dataset-out`"
                    )
                if payload.get("version") != DATASET_VERSION:
                    raise DatasetError(
                        f"{self.path} is dataset version "
                        f"{payload.get('version')}; this build reads "
                        f"version {DATASET_VERSION}"
                    )
                header = payload
                self._preamble_lines += 1
                continue
            if kind is None:
                break  # the socket records start here
            if kind == "chain":
                # Converted as parsed: holding every chain line's raw
                # dict alongside the converted Counter would double
                # the reader's peak memory.
                chains = preamble.setdefault("chains", Counter())
                chains[ChainSignature(
                    hosts=tuple(payload["hosts"]),
                    script_urls=tuple(payload["script_urls"]),
                    leaf_host=payload["leaf_host"],
                    leaf_is_script=payload["leaf_is_script"],
                )] = payload["count"]
            else:
                preamble[kind] = payload
            self._preamble_lines += 1
        if header is None:
            raise DatasetError(f"{self.path} is empty")
        return _meta_from_json(header["meta"]), preamble

    def _restore_dataset(
        self, preamble: dict[str, dict], engine: "FilterEngine | None"
    ) -> StudyDataset:
        if engine is None:
            # The filter engine is scale-independent: it is built from
            # the full registry regardless of crawl sample, so a saved
            # dataset re-analyzes against the same rules it was
            # crawled under.
            from repro.web.filterlists import build_filter_engine
            from repro.web.registry import default_registry

            engine = build_filter_engine(default_registry())
        dataset = StudyDataset(engine=engine)
        tags = preamble.get("tags", {})
        for domain, count in tags.get("aa", {}).items():
            dataset.tag_counter.aa[domain] = count
        for domain, count in tags.get("non_aa", {}).items():
            dataset.tag_counter.non_aa[domain] = count
        cloudfront = preamble.get("cloudfront", {})
        for host, counts in cloudfront.get("adjacency", {}).items():
            dataset.cf_mapper.adjacency[host] = Counter(counts)
        http = preamble.get("http", {})
        dataset.http_requests_by_host.update(http.get("requests", {}))
        for host, counts in http.get("items", {}).items():
            dataset.http_items_by_host[host] = Counter({
                SentItem(value): count for value, count in counts.items()
            })
        for host, counts in http.get("received", {}).items():
            dataset.http_received_by_host[host] = Counter({
                ReceivedClass(value): count
                for value, count in counts.items()
            })
        dataset.chain_signatures.update(preamble.get("chains", {}))
        for crawl in self.meta.crawls:
            dataset.crawl_sites[crawl.index] = list(crawl.sites)
            dataset.crawl_labels[crawl.index] = crawl.label
            if crawl.pages:
                dataset.crawl_pages[crawl.index] = crawl.pages
        return dataset

    @property
    def preamble_lines(self) -> int:
        """Lines before the first socket record (header + aggregates)."""
        return self._preamble_lines

    def iter_records(
        self, start: int = 0, stop: int | None = None
    ) -> Iterator[SocketRecord]:
        """Stream socket records ``start`` ≤ index < ``stop``, in file order.

        The preamble prefix is skipped by line count, unparsed — the
        aggregate lines are the file's largest and re-decoding them on
        every pass would dominate the sweep's transient memory.

        A torn *final* line (no trailing newline, undecodable — the
        signature of a write cut off mid-record) is skipped and counted
        in :attr:`torn_tail_skipped` instead of crashing the sweep;
        any earlier undecodable line raises :class:`DatasetError`
        naming its 1-based line number, since damage *inside* the file
        cannot be explained by truncation.

        Lines before ``start`` are counted without being decoded (the
        record region holds one record per non-blank line — a writer
        invariant of both :func:`save_dataset` and the spool importer),
        so a ranged read of the file's tail costs O(range) decode work,
        not O(file). Validation consequently covers only the decoded
        range.
        """
        self.torn_tail_skipped = 0
        lines = iter_lines(self.path)
        line_number = 0
        for _ in range(self._preamble_lines):
            next(lines, None)
            line_number += 1
        index = 0
        pending: tuple[int, str, Exception] | None = None
        for line in lines:
            line_number += 1
            if pending is not None:
                number, _, error = pending
                raise DatasetError(
                    f"{self.path}:{number}: undecodable socket record "
                    f"({error})"
                )
            stripped = line.strip()
            if not stripped:
                continue
            if index < start:
                index += 1
                continue
            try:
                payload = json.loads(stripped)
                if not isinstance(payload, dict):
                    raise ValueError(
                        f"record is {type(payload).__name__}, not an object"
                    )
                if "kind" in payload:
                    continue
                record = socket_record_from_json(payload)
            except (ValueError, KeyError, TypeError) as error:
                # Defer: only raise if another line follows. A bad
                # FINAL line is a torn tail from an interrupted write
                # and is skipped (exactly one); a bad interior line is
                # corruption and must stop the sweep.
                pending = (line_number, stripped, error)
                continue
            if index >= start and (stop is None or index < stop):
                yield record
            index += 1
            if stop is not None and index >= stop:
                return
        if pending is not None:
            self.torn_tail_skipped = 1

    def record_range_sha(
        self, start: int = 0, stop: int | None = None
    ) -> tuple[int, str]:
        """(count, SHA-256) of the record lines ``start`` ≤ i < ``stop``.

        Hashes each record's canonical line (newline included) — the
        same content address the spool import journal stores per
        imported slice — so ``repro analyze --incremental`` can mint
        matching state keys for dataset regions that predate the
        journal (gap-fill base slices). A torn final line is excluded,
        mirroring :meth:`iter_records`.
        """
        lines = iter_lines(self.path)
        for _ in range(self._preamble_lines):
            next(lines, None)
        hasher = hashlib.sha256()
        index = 0
        held: str | None = None
        for line in lines:
            stripped = line.strip()
            if not stripped:
                continue
            if held is not None:
                # The held line has a successor, so it was a real
                # interior record; commit it.
                if index >= start and (stop is None or index < stop):
                    hasher.update((held + "\n").encode("utf-8"))
                index += 1
                if stop is not None and index >= stop:
                    return index - start, hasher.hexdigest()
            held = stripped
        if held is not None:
            try:
                payload = json.loads(held)
                decodable = isinstance(payload, dict)
            except ValueError:
                decodable = False
            if decodable:
                if index >= start and (stop is None or index < stop):
                    hasher.update((held + "\n").encode("utf-8"))
                index += 1
        limit = index if stop is None else min(index, stop)
        return max(0, limit - start), hasher.hexdigest()

    def fingerprint(self) -> str:
        """The file's content address (see :func:`file_fingerprint`)."""
        return file_fingerprint(self.path)


def open_dataset(
    path: str | Path, engine: "FilterEngine | None" = None
) -> DatasetReader:
    """Open a saved dataset file for streaming re-analysis."""
    return DatasetReader(path, engine=engine)


# -- page observation codecs ----------------------------------------------


def _socket_observation_to_json(obs: SocketObservation) -> dict:
    return {
        "url": obs.url,
        "host": obs.host,
        "initiator_host": obs.initiator_host,
        "initiator_url": obs.initiator_url,
        "chain_hosts": list(obs.chain_hosts),
        "chain_script_urls": list(obs.chain_script_urls),
        "first_party_host": obs.first_party_host,
        "cross_origin": obs.cross_origin,
        "handshake_cookie": obs.handshake_cookie,
        "sent_items": sorted(item.value for item in obs.sent_items),
        "received_classes": sorted(
            cls.value for cls in obs.received_classes
        ),
        "sent_nothing": obs.sent_nothing,
        "received_nothing": obs.received_nothing,
        "frames_sent": obs.frames_sent,
        "frames_received": obs.frames_received,
        "ad_units": [
            {"image_url": u.image_url, "caption": u.caption,
             "width": u.width, "height": u.height,
             "click_url": u.click_url}
            for u in obs.ad_units
        ],
        "partial": obs.partial,
    }


def _socket_observation_from_json(payload: dict) -> SocketObservation:
    return SocketObservation(
        url=payload["url"],
        host=payload["host"],
        initiator_host=payload["initiator_host"],
        initiator_url=payload["initiator_url"],
        chain_hosts=tuple(payload["chain_hosts"]),
        chain_script_urls=tuple(payload["chain_script_urls"]),
        first_party_host=payload["first_party_host"],
        cross_origin=payload["cross_origin"],
        handshake_cookie=payload["handshake_cookie"],
        sent_items=frozenset(
            SentItem(value) for value in payload["sent_items"]
        ),
        received_classes=frozenset(
            ReceivedClass(value) for value in payload["received_classes"]
        ),
        sent_nothing=payload["sent_nothing"],
        received_nothing=payload["received_nothing"],
        frames_sent=payload["frames_sent"],
        frames_received=payload["frames_received"],
        ad_units=tuple(
            AdUnit(**unit) for unit in payload["ad_units"]
        ),
        partial=payload["partial"],
    )


def _resource_observation_to_json(obs: ResourceObservation) -> dict:
    return {
        "url": obs.url,
        "host": obs.host,
        "resource_type": obs.resource_type.value,
        "mime_type": obs.mime_type,
        "has_cookie": obs.has_cookie,
        "sent_items": sorted(item.value for item in obs.sent_items),
        "chain_hosts": list(obs.chain_hosts),
        "chain_script_urls": list(obs.chain_script_urls),
    }


def _resource_observation_from_json(payload: dict) -> ResourceObservation:
    return ResourceObservation(
        url=payload["url"],
        host=payload["host"],
        resource_type=ResourceType(payload["resource_type"]),
        mime_type=payload["mime_type"],
        has_cookie=payload["has_cookie"],
        sent_items=frozenset(
            SentItem(value) for value in payload["sent_items"]
        ),
        chain_hosts=tuple(payload["chain_hosts"]),
        chain_script_urls=tuple(payload["chain_script_urls"]),
    )


def page_observation_to_json(obs: PageObservation) -> dict:
    """Encode one page observation for the checkpoint journal."""
    return {
        "site": obs.site_domain,
        "rank": obs.rank,
        "category": obs.category,
        "crawl": obs.crawl,
        "page": obs.page_url,
        "sockets": [_socket_observation_to_json(s) for s in obs.sockets],
        "resources": [
            _resource_observation_to_json(r) for r in obs.resources
        ],
        "orphan_count": obs.orphan_count,
        "unattributed_events": obs.unattributed_events,
    }


def page_observation_from_json(payload: dict) -> PageObservation:
    """Decode one journaled page observation."""
    return PageObservation(
        site_domain=payload["site"],
        rank=payload["rank"],
        category=payload["category"],
        crawl=payload["crawl"],
        page_url=payload["page"],
        sockets=[
            _socket_observation_from_json(s) for s in payload["sockets"]
        ],
        resources=[
            _resource_observation_from_json(r) for r in payload["resources"]
        ],
        orphan_count=payload["orphan_count"],
        unattributed_events=payload["unattributed_events"],
    )


# -- checkpoint journal ---------------------------------------------------


@dataclass(frozen=True)
class SiteCheckpoint:
    """One finished site, as journaled by the crawler.

    Attributes:
        crawl: Crawl index the site was visited under.
        domain: Site domain.
        rank: Alexa rank.
        status: ``"ok"`` or ``"quarantined"``.
        pages: Page observations the site produced.
        sockets: Sockets observed on those pages.
        pages_failed: Pages abandoned after exhausting retries.
        page_retries: Extra load attempts beyond each page's first.
        sockets_partial: Observed sockets flagged ``partial``.
        events_published: CDP events the site's visits published.
        errors: The site's error-taxonomy counts.
        page_outcomes: The journaled per-page outcomes, observations
            included — what lets a resumed study replay restored sites
            into its dataset observers instead of losing them.
    """

    crawl: int
    domain: str
    rank: int
    status: str
    pages: int
    sockets: int
    pages_failed: int = 0
    page_retries: int = 0
    sockets_partial: int = 0
    events_published: int = 0
    errors: dict[str, int] = field(default_factory=dict)
    page_outcomes: tuple[PageOutcome, ...] = ()

    def restore_into(self, summary: "CrawlRunSummary") -> None:
        """Fold this journaled site back into a resumed run's summary."""
        summary.sites_visited += 1
        summary.sites.append((self.domain, self.rank))
        summary.pages_visited += self.pages
        summary.sockets_observed += self.sockets
        summary.pages_failed += self.pages_failed
        summary.page_retries += self.page_retries
        summary.sockets_partial += self.sockets_partial
        summary.events_published += self.events_published
        if self.status == "quarantined":
            summary.sites_quarantined += 1


def entry_to_json(entry: SiteCheckpoint) -> dict:
    return {
        "crawl": entry.crawl,
        "domain": entry.domain,
        "rank": entry.rank,
        "status": entry.status,
        "pages": entry.pages,
        "sockets": entry.sockets,
        "pages_failed": entry.pages_failed,
        "page_retries": entry.page_retries,
        "sockets_partial": entry.sockets_partial,
        "events_published": entry.events_published,
        "errors": entry.errors,
        "pages_detail": [
            [page.page_index,
             page_observation_to_json(page.observation)
             if page.observation is not None else None]
            for page in entry.page_outcomes
        ],
    }


def entry_from_json(payload: dict) -> SiteCheckpoint:
    return SiteCheckpoint(
        crawl=payload["crawl"],
        domain=payload["domain"],
        rank=payload["rank"],
        status=payload["status"],
        pages=payload["pages"],
        sockets=payload["sockets"],
        # Journals written before PR 4 carried only the counts; their
        # sites restore without observation replay (and without the
        # failure attribution), exactly as they did then.
        pages_failed=payload.get("pages_failed", 0),
        page_retries=payload.get("page_retries", 0),
        sockets_partial=payload.get("sockets_partial", 0),
        events_published=payload.get("events_published", 0),
        errors=payload.get("errors", {}),
        page_outcomes=tuple(
            PageOutcome(
                page_index=index,
                observation=(
                    page_observation_from_json(observation)
                    if observation is not None else None
                ),
            )
            for index, observation in payload.get("pages_detail", ())
        ),
    )


class CrawlCheckpoint:
    """Append-only JSONL journal of per-site crawl completion.

    Opening an existing journal loads its entries; the crawler skips
    journaled sites (restoring their counts into the run summary and
    replaying their journaled observations into the observers) and
    appends one entry per newly finished site, flushing after each so
    a crash loses at most the site in flight.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._entries: dict[tuple[int, str], SiteCheckpoint] = {}
        if self.path.exists():
            for payload in read_jsonl(self.path):
                entry = entry_from_json(payload)
                self._entries[(entry.crawl, entry.domain)] = entry

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, crawl: int, domain: str) -> SiteCheckpoint | None:
        """The journaled entry for a site, or ``None`` if unfinished."""
        return self._entries.get((crawl, domain))

    def covers(self, crawl: int, domains: Iterable[str]) -> bool:
        """Whether every one of ``domains`` is journaled for ``crawl``.

        The parallel executor's unit of resume is the shard: a shard
        is only restored when all of its sites are journaled (its
        lane state is otherwise unreconstructable), and a partially
        journaled shard is re-crawled whole.
        """
        return all(
            (crawl, domain) in self._entries for domain in domains
        )

    def record(self, entry: SiteCheckpoint) -> None:
        """Append one finished site to the journal."""
        self._entries[(entry.crawl, entry.domain)] = entry
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry_to_json(entry), sort_keys=True))
            handle.write("\n")
            handle.flush()
