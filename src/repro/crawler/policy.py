"""The paper's page-visit policy (§3.3).

For every site: visit the homepage, extract the same-site links L, and
randomly visit up to 14 of them (15 pages total). If |L| < 14 the
crawler tries links discovered on visited pages until the budget is
met or links run out. Between visits the crawler scrolls to the bottom
and waits ~60 seconds — simulated time here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crawler.errors import CrawlErrorKind, ErrorTally
from repro.util.rng import RngStream
from repro.util.urls import UrlError, parse_url, same_host


@dataclass(frozen=True)
class VisitPolicy:
    """Visit-selection parameters.

    Attributes:
        pages_per_site: Total page budget per site (homepage included).
        wait_seconds: Simulated dwell between page visits.
    """

    pages_per_site: int = 15
    wait_seconds: float = 60.0

    def select_links(
        self,
        homepage_url: str,
        links: list[str],
        rng: RngStream,
        errors: ErrorTally | None = None,
    ) -> list[str]:
        """Choose which same-site links to visit after the homepage.

        Unparseable link URLs are skipped and recorded on ``errors``
        (real pages carry ``javascript:`` hrefs and other junk).
        """
        same_site = [
            link for link in links
            if _is_same_site(link, homepage_url, errors)
        ]
        budget = max(0, self.pages_per_site - 1)
        return rng.sample(same_site, budget)


def _is_same_site(
    link: str, homepage_url: str, errors: ErrorTally | None = None
) -> bool:
    try:
        return same_host(link, homepage_url)
    except UrlError:
        if errors is not None:
            errors.record(CrawlErrorKind.URL_PARSE)
        return False


def page_index_for_link(link: str) -> int:
    """Recover the generator page index from an internal link URL.

    The synthetic web exposes ``/article/{i}`` paths; unknown paths map
    to a stable small index so the crawler still gets a page.
    """
    path = parse_url(link).path
    tail = path.rstrip("/").rsplit("/", 1)[-1]
    if tail.isdigit():
        return int(tail)
    return 1
