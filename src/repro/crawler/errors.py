"""The crawl error taxonomy.

Every way a crawl can lose data has one name here, and every consumer
that used to swallow a failure now records it: the per-crawl tally
lands on :class:`~repro.crawler.crawler.CrawlRunSummary` and in the
``crawl.errors.*`` metrics, so a degraded run is diagnosable from its
artifacts alone.
"""

from __future__ import annotations

import enum
from collections import Counter


class CrawlErrorKind(str, enum.Enum):
    """One category of data loss during a crawl."""

    #: A page-load attempt exceeded the per-page sim-clock deadline.
    PAGE_TIMEOUT = "page_timeout"
    #: A page-load attempt hard-failed before emitting any event.
    PAGE_FAILURE = "page_failure"
    #: A visit's event stream never produced a main document.
    NO_DOCUMENT = "no_document"
    #: A page was abandoned after the retry budget ran out.
    RETRY_EXHAUSTED = "retry_exhausted"
    #: A site was quarantined after consecutive page failures.
    SITE_QUARANTINED = "site_quarantined"
    #: A link or chain member URL could not be parsed.
    URL_PARSE = "url_parse"
    #: A socket record is missing lifecycle events (partial).
    PARTIAL_SOCKET = "partial_socket"
    #: CDP events arrived for a request the tree never saw.
    UNATTRIBUTED_EVENT = "unattributed_event"


class ErrorTally:
    """A mutable count of crawl errors by kind."""

    def __init__(self) -> None:
        self._counts: Counter[str] = Counter()

    def record(self, kind: CrawlErrorKind, n: int = 1) -> None:
        """Count ``n`` occurrences of ``kind``."""
        if n:
            self._counts[kind.value] += n

    def merge(self, counts: dict[str, int]) -> None:
        """Fold previously recorded counts in (checkpoint resume)."""
        for key, value in counts.items():
            if value:
                self._counts[key] += value

    def count(self, kind: CrawlErrorKind) -> int:
        """Occurrences of one kind."""
        return self._counts[kind.value]

    @property
    def total(self) -> int:
        """All recorded errors."""
        return sum(self._counts.values())

    def as_counts(self) -> dict[str, int]:
        """A sorted plain-dict snapshot (stable for serialization)."""
        return {key: self._counts[key] for key in sorted(self._counts)}
