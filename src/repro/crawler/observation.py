"""Page observations: the compact measurement record of one page visit.

An observation is derived purely from the inclusion tree (itself built
from the CDP event stream) plus seed-list metadata. Payload analysis
happens here, at observation time, so raw frame text never needs to be
retained.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.content.ads import AdUnit, extract_ad_units
from repro.content.items import ReceivedClass, SentItem
from repro.content.received import classify_socket_received
from repro.content.sent import SentDataAnalyzer
from repro.crawler.errors import CrawlErrorKind, ErrorTally
from repro.inclusion.builder import PageTree
from repro.inclusion.chains import chain_to
from repro.inclusion.node import InclusionNode, NodeKind
from repro.net.domains import registrable_domain
from repro.net.http import ResourceType
from repro.util.urls import UrlError, parse_url

_ANALYZER = SentDataAnalyzer()


def _strip_query(url: str) -> str:
    return url.split("?", 1)[0]


@dataclass(frozen=True)
class ResourceObservation:
    """One HTTP resource fetched during the visit."""

    url: str
    host: str
    resource_type: ResourceType
    mime_type: str
    has_cookie: bool
    sent_items: frozenset[SentItem]
    chain_hosts: tuple[str, ...]
    chain_script_urls: tuple[str, ...]


@dataclass(frozen=True)
class SocketObservation:
    """One WebSocket connection observed during the visit.

    Attributes:
        url: Socket endpoint.
        host: Endpoint host.
        initiator_host: Host of the direct parent resource — the
            JavaScript (or document, for inline scripts) that called
            ``new WebSocket``.
        initiator_url: Direct parent's URL.
        chain_hosts: Hosts along the inclusion chain, root first,
            socket host last.
        chain_script_urls: Query-stripped URLs of the script nodes in
            the chain (for the §4.2 post-hoc blocking analysis).
        first_party_host: The page's host.
        cross_origin: Whether the endpoint is third-party w.r.t. the
            page (registrable-domain comparison).
        handshake_cookie: Cookie header present on the upgrade.
        sent_items: Table 5 items detected in sent data.
        received_classes: Table 5 classes detected in received data.
        sent_nothing: No client data frames at all.
        received_nothing: No server data frames at all.
        frames_sent: Count of client data frames.
        frames_received: Count of server data frames.
        ad_units: Advertisements delivered over the socket (§4.3).
        partial: Lifecycle events were lost for this socket (no
            handshake response or no close was observed) — its frame
            and handshake data may be incomplete.
    """

    url: str
    host: str
    initiator_host: str
    initiator_url: str
    chain_hosts: tuple[str, ...]
    chain_script_urls: tuple[str, ...]
    first_party_host: str
    cross_origin: bool
    handshake_cookie: bool
    sent_items: frozenset[SentItem]
    received_classes: frozenset[ReceivedClass]
    sent_nothing: bool
    received_nothing: bool
    frames_sent: int
    frames_received: int
    ad_units: tuple[AdUnit, ...] = ()
    partial: bool = False


@dataclass
class PageObservation:
    """Everything measured on one page visit."""

    site_domain: str
    rank: int
    category: str
    crawl: int
    page_url: str
    sockets: list[SocketObservation] = field(default_factory=list)
    resources: list[ResourceObservation] = field(default_factory=list)
    orphan_count: int = 0
    unattributed_events: int = 0


def _chain_parts(
    node: InclusionNode, errors: ErrorTally | None = None
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """(hosts, script URLs) along the chain to ``node``, root first."""
    hosts: list[str] = []
    scripts: list[str] = []
    for member in chain_to(node):
        if not member.url:
            continue
        try:
            host = parse_url(member.url).host
        except UrlError:
            if errors is not None:
                errors.record(CrawlErrorKind.URL_PARSE)
            continue
        hosts.append(host)
        if (
            member.resource_type == ResourceType.SCRIPT
            and member.kind == NodeKind.RESOURCE
        ):
            scripts.append(_strip_query(member.url))
    return tuple(hosts), tuple(scripts)


def observe_page(
    tree: PageTree,
    site_domain: str,
    rank: int,
    category: str,
    crawl: int,
    errors: ErrorTally | None = None,
) -> PageObservation:
    """Reduce an inclusion tree to its measurement record.

    Partial trees (lossy event streams) reduce fine: sockets missing
    lifecycle events are flagged ``partial``, and every dropped-data
    symptom is recorded on ``errors`` when a tally is supplied.
    """
    page_url = tree.root.url
    first_party_host = parse_url(page_url).host
    first_party_domain = registrable_domain(first_party_host)
    observation = PageObservation(
        site_domain=site_domain,
        rank=rank,
        category=category,
        crawl=crawl,
        page_url=page_url,
        orphan_count=tree.orphan_count,
        unattributed_events=tree.unattributed_events,
    )
    if errors is not None and tree.unattributed_events:
        errors.record(CrawlErrorKind.UNATTRIBUTED_EVENT,
                      tree.unattributed_events)
    for node in tree.all_nodes():
        if node.kind == NodeKind.WEBSOCKET:
            observation.sockets.append(
                _observe_socket(node, first_party_host, first_party_domain,
                                errors)
            )
        elif node is tree.root or not node.url:
            continue
        else:
            # Plain resources and sub-frame documents alike are HTTP
            # fetches the paper's HTTP/S statistics count.
            observation.resources.append(_observe_resource(node, errors))
    return observation


def _observe_socket(
    node: InclusionNode,
    first_party_host: str,
    first_party_domain: str,
    errors: ErrorTally | None = None,
) -> SocketObservation:
    record = node.websocket
    host = parse_url(node.url).host
    parent = node.parent
    initiator_url = parent.url if parent is not None else ""
    initiator_host = (
        parse_url(initiator_url).host if initiator_url else first_party_host
    )
    hosts, scripts = _chain_parts(node, errors)
    sent_items = _ANALYZER.analyze_socket(record)
    received_classes = classify_socket_received(record.frames)
    if errors is not None and record.partial:
        errors.record(CrawlErrorKind.PARTIAL_SOCKET)
    return SocketObservation(
        url=node.url,
        host=host,
        initiator_host=initiator_host,
        initiator_url=initiator_url,
        chain_hosts=hosts,
        chain_script_urls=scripts,
        first_party_host=first_party_host,
        cross_origin=registrable_domain(host) != first_party_domain,
        handshake_cookie=bool(
            record.handshake_headers.get("Cookie")
            or record.handshake_headers.get("cookie")
        ),
        sent_items=frozenset(sent_items),
        received_classes=frozenset(received_classes),
        sent_nothing=not record.sent_frames,
        received_nothing=not record.received_frames,
        frames_sent=len(record.sent_frames),
        frames_received=len(record.received_frames),
        ad_units=tuple(extract_ad_units(record.frames)),
        partial=record.partial,
    )


def _observe_resource(
    node: InclusionNode, errors: ErrorTally | None = None
) -> ResourceObservation:
    hosts, scripts = _chain_parts(node, errors)
    query = parse_url(node.url).query
    return ResourceObservation(
        url=node.url,
        host=parse_url(node.url).host,
        resource_type=node.resource_type,
        mime_type=node.mime_type,
        has_cookie=bool(
            node.request_headers.get("Cookie") or node.request_headers.get("cookie")
        ),
        sent_items=frozenset(
            _ANALYZER.analyze_http(query, node.request_headers, node.post_data)
        ),
        chain_hosts=hosts,
        chain_script_urls=scripts,
    )
