"""The crawl driver: one crawl = one browser version over the seed list.

Robustness model (PR 3): every page visit runs against a sim-clock
deadline with bounded retry and exponential (simulated) backoff; a site
whose pages fail consecutively is quarantined; everything that goes
wrong lands in an error taxonomy on the run summary. With a
:class:`~repro.faults.injector.FaultInjector` installed the crawler
survives injected page failures, stalls, blackouts, and lossy event
streams — without one, none of this machinery draws entropy or
publishes events, so fault-free runs are unchanged.

Parallel model (PR 4): crawling and bookkeeping are two phases. A
:class:`CrawlLane` (browser + bus + fault gate + sim clock) produces
:class:`~repro.crawler.outcome.SiteOutcome` records — pure data, no
obs/observer/summary side effects — and a :class:`CrawlAccountant`
folds outcomes into the run summary, obs spans/counters, dataset
observers, and the checkpoint journal, always in canonical site order.
Because producing an outcome never touches the obs tick clock, the
accountant's replay is byte-identical whether the outcome was crawled
inline one second ago or in a worker process (see
:mod:`repro.parallel`).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from repro.browser.browser import Browser
from repro.cdp.bus import EventBus
from repro.crawler.errors import CrawlErrorKind, ErrorTally
from repro.crawler.observation import PageObservation, observe_page
from repro.crawler.outcome import LaneStats, PageOutcome, SiteOutcome
from repro.crawler.policy import VisitPolicy, page_index_for_link
from repro.faults.injector import (
    FaultInjector,
    PageLoadFailure,
    PageLoadTimeout,
)
from repro.inclusion.builder import InclusionTreeBuilder, NoDocumentError
from repro.obs import Obs
from repro.util.rng import RngStream
from repro.util.simtime import SimClock, parse_date
from repro.web.alexa import Site
from repro.web.server import SyntheticWeb

if TYPE_CHECKING:  # avoids the persistence → dataset → crawler cycle
    from repro.crawler.persistence import CrawlCheckpoint, SiteCheckpoint

Observer = Callable[[PageObservation], None]


@dataclass(frozen=True)
class CrawlConfig:
    """One crawl's parameters (a row of Table 1).

    Attributes:
        index: Crawl index (0–3 in the four-crawl study).
        label: Human-readable window, e.g. ``"Apr 02-05, 2017"``.
        chrome_major: Browser version (57 pre-patch, 58 post).
        start_date: ISO date the crawl begins.
        pages_per_site: Page budget per site.
        seed: RNG seed for link selection.
    """

    index: int
    label: str
    chrome_major: int
    start_date: str
    pages_per_site: int = 15
    seed: int = 2017


@dataclass(frozen=True)
class RetryPolicy:
    """How the crawler responds to failing page loads.

    Attributes:
        max_attempts: Load attempts per page before giving up.
        backoff_seconds: Simulated wait before the first retry.
        backoff_factor: Multiplier applied per further retry.
        page_timeout_seconds: Sim-clock budget per load attempt; a
            visit that exceeds it raises
            :class:`~repro.faults.injector.PageLoadTimeout` mid-walk.
        quarantine_after: Consecutive failed *pages* after which the
            whole site is abandoned for this crawl.
    """

    max_attempts: int = 3
    backoff_seconds: float = 30.0
    backoff_factor: float = 2.0
    page_timeout_seconds: float = 90.0
    quarantine_after: int = 2


@dataclass
class CrawlRunSummary:
    """What one crawl did.

    Attributes:
        config: The crawl's configuration.
        sites_visited: Sites crawled (quarantined sites included — they
            stay in the Table 1 denominators).
        pages_visited: Page visits that produced an observation.
        sockets_observed: Total sockets seen.
        events_published: CDP events emitted during the crawl.
        sites: (domain, rank) of every crawled site.
        pages_failed: Pages abandoned after exhausting retries.
        page_retries: Extra load attempts beyond each page's first.
        sites_quarantined: Sites abandoned mid-crawl.
        sockets_partial: Observed sockets flagged ``partial``.
        errors: Error-taxonomy counts (:class:`CrawlErrorKind` values).
    """

    config: CrawlConfig
    sites_visited: int = 0
    pages_visited: int = 0
    sockets_observed: int = 0
    events_published: int = 0
    sites: list[tuple[str, int]] = field(default_factory=list)
    pages_failed: int = 0
    page_retries: int = 0
    sites_quarantined: int = 0
    sockets_partial: int = 0
    errors: dict[str, int] = field(default_factory=dict)


@dataclass
class CrawlLane:
    """One crawl execution lane: browser, event bus, gate, sim clock.

    Sequential runs use a single lane for the whole seed list; the
    parallel executor gives every shard its own lane, so per-lane state
    (CDP request counters, the event-gate RNG position, the sim clock)
    is a function of the shard plan alone — never of the worker count.
    """

    clock: SimClock
    bus: EventBus
    gate: object | None
    browser: Browser

    def stats(self, faults: FaultInjector | None) -> LaneStats:
        """Harvest the lane's telemetry (bus, webRequest, faults)."""
        return LaneStats(
            events_published=self.bus.published_count,
            delivered_count=self.bus.delivered_count,
            published_by_method=dict(self.bus.published_by_method),
            webrequest_counts=self.browser.webrequest.as_counts(),
            fault_counters=(
                dict(sorted(faults.counters.items()))
                if faults is not None and faults.counters else {}
            ),
        )


class CrawlAccountant:
    """Folds site outcomes into summary, obs, observers, and journal.

    All crawl bookkeeping lives here so the sequential path and the
    parallel merge are literally the same code: ``record_site`` opens
    the site/page spans, feeds observers, updates the run summary,
    emits ``crawl.progress``/``crawl.quarantine`` events, and journals
    the site; ``restore_site`` folds a checkpointed site back in,
    replaying its journaled observations into the observers so a
    resumed study feeds its dataset exactly like an uninterrupted one;
    ``finish`` emits the unconditional end-of-crawl progress event and
    harvests lane telemetry into the metrics registry.

    Use as a context manager — the crawl span opens on entry and
    closes on exit, and ``finish`` must be called inside the block.
    """

    def __init__(
        self,
        config: CrawlConfig,
        site_total: int,
        observers: Iterable[Observer] = (),
        obs: Obs | None = None,
        checkpoint: "CrawlCheckpoint | None" = None,
        progress_every: int = 25,
    ) -> None:
        self.config = config
        self.site_total = site_total
        self.observers = list(observers)
        self.obs = obs
        self.checkpoint = checkpoint
        self.progress_every = max(1, progress_every)
        self.summary = CrawlRunSummary(config=config)
        self.tally = ErrorTally()
        self._span_cm = None
        self._span = None

    def __enter__(self) -> "CrawlAccountant":
        self._span_cm = (
            self.obs.span("crawl", index=self.config.index,
                          chrome=self.config.chrome_major,
                          label=self.config.label)
            if self.obs is not None else nullcontext()
        )
        self._span = self._span_cm.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb):
        return self._span_cm.__exit__(exc_type, exc, tb)

    def record_site(self, outcome: SiteOutcome) -> None:
        """Fold one freshly crawled site in (canonical-order replay)."""
        summary = self.summary
        obs = self.obs
        site_span = (
            obs.span("site", domain=outcome.domain, rank=outcome.rank)
            if obs is not None else nullcontext()
        )
        with site_span:
            for page in outcome.pages:
                page_span = (
                    obs.span("page", index=page.page_index)
                    if obs is not None else nullcontext()
                )
                with page_span:
                    if obs is not None and page.observation is not None:
                        Crawler._count_page(obs, page.observation)
                if page.observation is None:
                    summary.pages_failed += 1
                else:
                    summary.pages_visited += 1
                    summary.sockets_observed += len(page.observation.sockets)
                    summary.sockets_partial += sum(
                        1 for s in page.observation.sockets if s.partial
                    )
                    for observer in self.observers:
                        observer(page.observation)
        summary.page_retries += outcome.page_retries
        if outcome.quarantined:
            summary.sites_quarantined += 1
            if obs is not None:
                obs.event(
                    "crawl.quarantine",
                    crawl=self.config.index,
                    domain=outcome.domain,
                    rank=outcome.rank,
                    consecutive_failures=outcome.consecutive_failures,
                )
        summary.sites_visited += 1
        summary.sites.append((outcome.domain, outcome.rank))
        self.tally.merge(outcome.errors)
        if self.checkpoint is not None:
            self.checkpoint.record(self._checkpoint_entry(outcome))
        if obs is not None and (
            summary.sites_visited % self.progress_every == 0
            and summary.sites_visited != self.site_total
        ):
            self._progress_event()

    def restore_site(self, entry: "SiteCheckpoint") -> None:
        """Fold one journaled site back in, replaying its observations.

        Restored sites feed the observers (so the dataset — and every
        table derived from it — matches an uninterrupted run) but open
        no spans and touch no counters: the metrics describe work this
        process actually did, and the trace shows the resume for what
        it is.
        """
        entry.restore_into(self.summary)
        self.tally.merge(entry.errors)
        for page in entry.page_outcomes:
            if page.observation is not None:
                for observer in self.observers:
                    observer(page.observation)

    def finish(self, lane: LaneStats) -> None:
        """End-of-crawl bookkeeping; call once, inside the span."""
        summary = self.summary
        obs = self.obs
        if obs is not None:
            # Unconditional: fires even when checkpoint restoration or
            # quarantine kept the in-loop modulo from landing on the
            # final site.
            self._progress_event()
        # += so checkpoint-restored sites (folded in via restore_into)
        # keep their journaled event counts.
        summary.events_published += lane.events_published
        summary.errors = self.tally.as_counts()
        if obs is not None:
            self._span.set(sites=summary.sites_visited,
                           pages=summary.pages_visited,
                           sockets=summary.sockets_observed,
                           events=summary.events_published)
            self._harvest(obs, lane)

    # -- internals ----------------------------------------------------------

    def _progress_event(self) -> None:
        summary = self.summary
        self.obs.event(
            "crawl.progress",
            crawl=self.config.index,
            chrome=self.config.chrome_major,
            sites_done=summary.sites_visited,
            sites_total=self.site_total,
            pages=summary.pages_visited,
            sockets=summary.sockets_observed,
        )

    def _checkpoint_entry(self, outcome: SiteOutcome) -> "SiteCheckpoint":
        from repro.crawler.persistence import SiteCheckpoint

        return SiteCheckpoint(
            crawl=self.config.index,
            domain=outcome.domain,
            rank=outcome.rank,
            status="quarantined" if outcome.quarantined else "ok",
            pages=outcome.pages_visited,
            sockets=outcome.sockets_observed,
            pages_failed=outcome.pages_failed,
            page_retries=outcome.page_retries,
            sockets_partial=outcome.sockets_partial,
            events_published=outcome.events_published,
            errors=dict(outcome.errors),
            page_outcomes=tuple(outcome.pages),
        )

    def _harvest(self, obs: Obs, lane: LaneStats) -> None:
        summary = self.summary
        obs.metrics.record_counts("cdp.publish", lane.published_by_method)
        obs.metrics.counter("cdp.delivered").add(lane.delivered_count)
        obs.metrics.record_counts("webrequest", lane.webrequest_counts)
        obs.metrics.counter("crawler.sites").add(summary.sites_visited)
        # Robustness counters only exist when something went wrong, so
        # fault-free artifacts stay byte-identical to the pre-fault era.
        if summary.page_retries:
            obs.metrics.counter("crawler.page_retries").add(
                summary.page_retries)
        if summary.pages_failed:
            obs.metrics.counter("crawler.pages_failed").add(
                summary.pages_failed)
        if summary.sites_quarantined:
            obs.metrics.counter("crawler.sites_quarantined").add(
                summary.sites_quarantined)
        if summary.sockets_partial:
            obs.metrics.counter("crawler.sockets_partial").add(
                summary.sockets_partial)
        if summary.errors:
            obs.metrics.record_counts("crawl.errors", summary.errors)
        if lane.fault_counters:
            obs.metrics.record_counts("faults", lane.fault_counters)


class Crawler:
    """Crawls the synthetic web with a simulated browser.

    The browser profile is reset per site (a stateless measurement
    profile, as measurement crawlers use); the simulated clock advances
    ~60 s between page visits per the paper's politeness policy.

    When an :class:`~repro.obs.Obs` context is supplied, the crawl runs
    under a ``crawl`` span with nested ``site`` and ``page`` spans,
    emits ``crawl.progress`` events every :attr:`progress_every` sites
    (sites done / pages / sockets seen), ``crawl.quarantine`` events
    when a site is abandoned, and harvests the bus's per-method publish
    counts, the ``webRequest`` dispatch counters, the error taxonomy,
    and any injected-fault counters into the metrics registry when the
    crawl finishes.
    """

    def __init__(
        self,
        web: SyntheticWeb,
        config: CrawlConfig,
        observers: Iterable[Observer] = (),
        extension_installer: Callable[[Browser], None] | None = None,
        obs: Obs | None = None,
        progress_every: int = 25,
        faults: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.web = web
        self.config = config
        self.observers = list(observers)
        self.extension_installer = extension_installer
        self.obs = obs
        self.progress_every = max(1, progress_every)
        self.policy = VisitPolicy(pages_per_site=config.pages_per_site)
        self.faults = faults
        self.retry = retry or RetryPolicy()

    def make_lane(self) -> CrawlLane:
        """A fresh execution lane (browser, bus, fault gate, clock)."""
        clock = SimClock(now=parse_date(self.config.start_date))
        bus = EventBus()
        gate = self.faults.gate(bus) if self.faults is not None else None
        browser = Browser(
            version=self.config.chrome_major,
            bus=gate if gate is not None else bus,
            clock=clock,
            seed=self.config.seed,
            faults=self.faults,
        )
        if self.extension_installer is not None:
            self.extension_installer(browser)
        return CrawlLane(clock=clock, bus=bus, gate=gate, browser=browser)

    def run(
        self,
        sites: Iterable[Site] | None = None,
        checkpoint: "CrawlCheckpoint | None" = None,
    ) -> CrawlRunSummary:
        """Crawl the given sites (default: the full seed list).

        With a ``checkpoint``, sites already journaled for this crawl
        are restored from the journal instead of re-crawled — their
        observations replay into the observers — and each finished
        site appends one journal entry, so an interrupted study
        resumes where it stopped.
        """
        lane = self.make_lane()
        site_list = list(sites) if sites is not None else self.web.seed_list.sites
        accountant = CrawlAccountant(
            self.config, len(site_list), observers=self.observers,
            obs=self.obs, checkpoint=checkpoint,
            progress_every=self.progress_every,
        )
        with accountant:
            for site in site_list:
                if checkpoint is not None:
                    entry = checkpoint.get(self.config.index, site.domain)
                    if entry is not None:
                        accountant.restore_site(entry)
                        continue
                accountant.record_site(self.crawl_site(site, lane))
            accountant.finish(lane.stats(self.faults))
        return accountant.summary

    def collect_outcomes(
        self, sites: Iterable[Site], lane: CrawlLane | None = None
    ) -> tuple[list[SiteOutcome], LaneStats]:
        """Crawl ``sites`` on one lane, with no bookkeeping at all.

        The parallel executor's worker entry point: outcomes and lane
        telemetry cross the process boundary; the accountant replays
        them parent-side.
        """
        lane = lane or self.make_lane()
        outcomes = [self.crawl_site(site, lane) for site in sites]
        return outcomes, lane.stats(self.faults)

    def crawl_site(self, site: Site, lane: CrawlLane) -> SiteOutcome:
        """Visit one site's page budget; pure outcome production.

        Never touches the obs clock, the observers, or any summary —
        that is the accountant's job — so the outcome is identical
        wherever (and whenever) the site is crawled.
        """
        browser = lane.browser
        browser.new_profile(f"{self.config.index}:{site.domain}")
        tally = ErrorTally()
        rng = RngStream(self.config.seed, "crawl", self.config.index,
                        "site", site.domain)
        homepage = self.web.blueprint(site, 0, self.config.index)
        links = self.policy.select_links(homepage.url, homepage.links, rng,
                                         errors=tally)
        page_indices = [0] + [page_index_for_link(link) for link in links]
        blackout = (
            self.faults is not None
            and self.faults.site_blacked_out(self.config.index, site.domain)
        )
        outcome = SiteOutcome(domain=site.domain, rank=site.rank)
        events_before = lane.bus.published_count
        consecutive_failures = 0
        for page_index in page_indices:
            blueprint = (
                homepage if page_index == 0
                else self.web.blueprint(site, page_index, self.config.index)
            )
            observation, retries = self._visit_page(
                blueprint, site, lane, tally, blackout,
            )
            outcome.pages.append(PageOutcome(page_index, observation))
            outcome.page_retries += retries
            if observation is None:
                consecutive_failures += 1
                if (self.retry.quarantine_after > 0
                        and consecutive_failures
                        >= self.retry.quarantine_after):
                    outcome.quarantined = True
            else:
                consecutive_failures = 0
            browser.clock.advance(self.policy.wait_seconds)
            if outcome.quarantined:
                break
        outcome.consecutive_failures = consecutive_failures
        outcome.events_published = lane.bus.published_count - events_before
        if outcome.quarantined:
            tally.record(CrawlErrorKind.SITE_QUARANTINED)
            if self.faults is not None:
                self.faults.count("site_quarantined")
        outcome.errors = tally.as_counts()
        return outcome

    # -- internals ----------------------------------------------------------

    def _visit_page(
        self,
        blueprint,
        site: Site,
        lane: CrawlLane,
        tally: ErrorTally,
        blackout: bool,
    ) -> tuple[PageObservation | None, int]:
        """One page with bounded retry.

        Returns ``(observation, retries_used)``; the observation is
        ``None`` when retries exhaust.
        """
        retry = self.retry
        browser = lane.browser
        clock = browser.clock
        faults = self.faults
        retries = 0
        for attempt in range(1, retry.max_attempts + 1):
            if attempt > 1:
                retries += 1
                clock.advance(
                    retry.backoff_seconds
                    * retry.backoff_factor ** (attempt - 2)
                )
            builder = InclusionTreeBuilder()
            builder.attach(lane.bus)
            try:
                if blackout or (
                    faults is not None
                    and faults.page_fails(blueprint.url, self.config.index,
                                          attempt)
                ):
                    if faults is not None:
                        faults.count("page_failed")
                    # A refused connection costs ~a second, not a load.
                    clock.advance(1.0)
                    raise PageLoadFailure(blueprint.url,
                                          "simulated load failure")
                deadline = (
                    clock.timestamp() + retry.page_timeout_seconds
                    if retry.page_timeout_seconds > 0 else None
                )
                browser.visit(blueprint, crawl=self.config.index,
                              attempt=attempt, deadline=deadline)
                tree = builder.result()
            except PageLoadTimeout:
                tally.record(CrawlErrorKind.PAGE_TIMEOUT)
                continue
            except PageLoadFailure:
                tally.record(CrawlErrorKind.PAGE_FAILURE)
                continue
            except NoDocumentError:
                # Every event of the load was dropped — treat like a
                # failed load and retry.
                tally.record(CrawlErrorKind.NO_DOCUMENT)
                continue
            finally:
                if lane.gate is not None:
                    lane.gate.flush()
                builder.detach()
            return observe_page(
                tree, site.domain, site.rank, site.category,
                self.config.index, errors=tally,
            ), retries
        tally.record(CrawlErrorKind.RETRY_EXHAUSTED)
        return None, retries

    @staticmethod
    def _count_page(obs: Obs, observation: PageObservation) -> None:
        metrics = obs.metrics
        metrics.counter("crawler.pages").inc()
        sockets = observation.sockets
        if sockets:
            metrics.counter("crawler.sockets").add(len(sockets))
            cross = sum(1 for s in sockets if s.cross_origin)
            if cross:
                metrics.counter("crawler.sockets_cross_origin").add(cross)
            attributed = sum(
                1 for s in sockets
                if s.initiator_host != s.first_party_host
            )
            if attributed:
                metrics.counter(
                    "crawler.sockets_third_party_initiated"
                ).add(attributed)
        metrics.histogram("crawler.sockets_per_page").observe(len(sockets))
