"""The crawl driver: one crawl = one browser version over the seed list.

Robustness model (PR 3): every page visit runs against a sim-clock
deadline with bounded retry and exponential (simulated) backoff; a site
whose pages fail consecutively is quarantined; everything that goes
wrong lands in an error taxonomy on the run summary. With a
:class:`~repro.faults.injector.FaultInjector` installed the crawler
survives injected page failures, stalls, blackouts, and lossy event
streams — without one, none of this machinery draws entropy or
publishes events, so fault-free runs are unchanged.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from repro.browser.browser import Browser
from repro.cdp.bus import EventBus
from repro.crawler.errors import CrawlErrorKind, ErrorTally
from repro.crawler.observation import PageObservation, observe_page
from repro.crawler.policy import VisitPolicy, page_index_for_link
from repro.faults.injector import (
    FaultInjector,
    PageLoadFailure,
    PageLoadTimeout,
)
from repro.inclusion.builder import InclusionTreeBuilder, NoDocumentError
from repro.obs import Obs
from repro.util.rng import RngStream
from repro.util.simtime import SimClock, parse_date
from repro.web.alexa import Site
from repro.web.server import SyntheticWeb

if TYPE_CHECKING:  # avoids the persistence → dataset → crawler cycle
    from repro.crawler.persistence import CrawlCheckpoint

Observer = Callable[[PageObservation], None]


@dataclass(frozen=True)
class CrawlConfig:
    """One crawl's parameters (a row of Table 1).

    Attributes:
        index: Crawl index (0–3 in the four-crawl study).
        label: Human-readable window, e.g. ``"Apr 02-05, 2017"``.
        chrome_major: Browser version (57 pre-patch, 58 post).
        start_date: ISO date the crawl begins.
        pages_per_site: Page budget per site.
        seed: RNG seed for link selection.
    """

    index: int
    label: str
    chrome_major: int
    start_date: str
    pages_per_site: int = 15
    seed: int = 2017


@dataclass(frozen=True)
class RetryPolicy:
    """How the crawler responds to failing page loads.

    Attributes:
        max_attempts: Load attempts per page before giving up.
        backoff_seconds: Simulated wait before the first retry.
        backoff_factor: Multiplier applied per further retry.
        page_timeout_seconds: Sim-clock budget per load attempt; a
            visit that exceeds it raises
            :class:`~repro.faults.injector.PageLoadTimeout` mid-walk.
        quarantine_after: Consecutive failed *pages* after which the
            whole site is abandoned for this crawl.
    """

    max_attempts: int = 3
    backoff_seconds: float = 30.0
    backoff_factor: float = 2.0
    page_timeout_seconds: float = 90.0
    quarantine_after: int = 2


@dataclass
class CrawlRunSummary:
    """What one crawl did.

    Attributes:
        config: The crawl's configuration.
        sites_visited: Sites crawled (quarantined sites included — they
            stay in the Table 1 denominators).
        pages_visited: Page visits that produced an observation.
        sockets_observed: Total sockets seen.
        events_published: CDP events emitted during the crawl.
        sites: (domain, rank) of every crawled site.
        pages_failed: Pages abandoned after exhausting retries.
        page_retries: Extra load attempts beyond each page's first.
        sites_quarantined: Sites abandoned mid-crawl.
        sockets_partial: Observed sockets flagged ``partial``.
        errors: Error-taxonomy counts (:class:`CrawlErrorKind` values).
    """

    config: CrawlConfig
    sites_visited: int = 0
    pages_visited: int = 0
    sockets_observed: int = 0
    events_published: int = 0
    sites: list[tuple[str, int]] = field(default_factory=list)
    pages_failed: int = 0
    page_retries: int = 0
    sites_quarantined: int = 0
    sockets_partial: int = 0
    errors: dict[str, int] = field(default_factory=dict)


class Crawler:
    """Crawls the synthetic web with a simulated browser.

    The browser profile is reset per site (a stateless measurement
    profile, as measurement crawlers use); the simulated clock advances
    ~60 s between page visits per the paper's politeness policy.

    When an :class:`~repro.obs.Obs` context is supplied, the crawl runs
    under a ``crawl`` span with nested ``site`` and ``page`` spans,
    emits ``crawl.progress`` events every :attr:`progress_every` sites
    (sites done / pages / sockets seen), ``crawl.quarantine`` events
    when a site is abandoned, and harvests the bus's per-method publish
    counts, the ``webRequest`` dispatch counters, the error taxonomy,
    and any injected-fault counters into the metrics registry when the
    crawl finishes.
    """

    def __init__(
        self,
        web: SyntheticWeb,
        config: CrawlConfig,
        observers: Iterable[Observer] = (),
        extension_installer: Callable[[Browser], None] | None = None,
        obs: Obs | None = None,
        progress_every: int = 25,
        faults: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.web = web
        self.config = config
        self.observers = list(observers)
        self.extension_installer = extension_installer
        self.obs = obs
        self.progress_every = max(1, progress_every)
        self.policy = VisitPolicy(pages_per_site=config.pages_per_site)
        self.faults = faults
        self.retry = retry or RetryPolicy()

    def run(
        self,
        sites: Iterable[Site] | None = None,
        checkpoint: "CrawlCheckpoint | None" = None,
    ) -> CrawlRunSummary:
        """Crawl the given sites (default: the full seed list).

        With a ``checkpoint``, sites already journaled for this crawl
        are restored from the journal instead of re-crawled, and each
        finished site appends one journal entry — so an interrupted
        study resumes where it stopped.
        """
        summary = CrawlRunSummary(config=self.config)
        tally = ErrorTally()
        clock = SimClock(now=parse_date(self.config.start_date))
        bus = EventBus()
        gate = self.faults.gate(bus) if self.faults is not None else None
        browser = Browser(
            version=self.config.chrome_major,
            bus=gate if gate is not None else bus,
            clock=clock,
            seed=self.config.seed,
            faults=self.faults,
        )
        if self.extension_installer is not None:
            self.extension_installer(browser)
        site_list = list(sites) if sites is not None else self.web.seed_list.sites
        obs = self.obs
        crawl_span = (
            obs.span("crawl", index=self.config.index,
                     chrome=self.config.chrome_major, label=self.config.label)
            if obs is not None else nullcontext()
        )
        with crawl_span as span:
            for site in site_list:
                if checkpoint is not None:
                    entry = checkpoint.get(self.config.index, site.domain)
                    if entry is not None:
                        entry.restore_into(summary)
                        continue
                self._crawl_site(site, browser, bus, gate, summary, tally,
                                 checkpoint)
                if obs is not None and (
                    summary.sites_visited % self.progress_every == 0
                    or summary.sites_visited == len(site_list)
                ):
                    obs.event(
                        "crawl.progress",
                        crawl=self.config.index,
                        chrome=self.config.chrome_major,
                        sites_done=summary.sites_visited,
                        sites_total=len(site_list),
                        pages=summary.pages_visited,
                        sockets=summary.sockets_observed,
                    )
            summary.events_published = bus.published_count
            summary.errors = tally.as_counts()
            if obs is not None:
                span.set(sites=summary.sites_visited,
                         pages=summary.pages_visited,
                         sockets=summary.sockets_observed,
                         events=summary.events_published)
                self._harvest(obs, bus, browser, summary)
        return summary

    # -- internals ----------------------------------------------------------

    def _crawl_site(
        self,
        site: Site,
        browser: Browser,
        bus: EventBus,
        gate,
        summary: CrawlRunSummary,
        tally: ErrorTally,
        checkpoint: "CrawlCheckpoint | None" = None,
    ) -> None:
        browser.new_profile(f"{self.config.index}:{site.domain}")
        rng = RngStream(self.config.seed, "crawl", self.config.index,
                        "site", site.domain)
        homepage = self.web.blueprint(site, 0, self.config.index)
        links = self.policy.select_links(homepage.url, homepage.links, rng,
                                         errors=tally)
        page_indices = [0] + [page_index_for_link(link) for link in links]
        blackout = (
            self.faults is not None
            and self.faults.site_blacked_out(self.config.index, site.domain)
        )
        pages_before = summary.pages_visited
        sockets_before = summary.sockets_observed
        obs = self.obs
        consecutive_failures = 0
        quarantined = False
        site_span = (
            obs.span("site", domain=site.domain, rank=site.rank)
            if obs is not None else nullcontext()
        )
        with site_span:
            for page_index in page_indices:
                blueprint = (
                    homepage if page_index == 0
                    else self.web.blueprint(site, page_index, self.config.index)
                )
                page_span = (
                    obs.span("page", index=page_index)
                    if obs is not None else nullcontext()
                )
                with page_span:
                    observation = self._visit_page(
                        blueprint, site, browser, bus, gate, summary, tally,
                        blackout,
                    )
                    if obs is not None and observation is not None:
                        self._count_page(obs, observation)
                if observation is None:
                    summary.pages_failed += 1
                    consecutive_failures += 1
                    if (self.retry.quarantine_after > 0
                            and consecutive_failures
                            >= self.retry.quarantine_after):
                        quarantined = True
                else:
                    consecutive_failures = 0
                    summary.pages_visited += 1
                    summary.sockets_observed += len(observation.sockets)
                    partial = sum(
                        1 for s in observation.sockets if s.partial
                    )
                    summary.sockets_partial += partial
                    for observer in self.observers:
                        observer(observation)
                browser.clock.advance(self.policy.wait_seconds)
                if quarantined:
                    break
        if quarantined:
            summary.sites_quarantined += 1
            tally.record(CrawlErrorKind.SITE_QUARANTINED)
            if self.faults is not None:
                self.faults.count("site_quarantined")
            if obs is not None:
                obs.event(
                    "crawl.quarantine",
                    crawl=self.config.index,
                    domain=site.domain,
                    rank=site.rank,
                    consecutive_failures=consecutive_failures,
                )
        summary.sites_visited += 1
        summary.sites.append((site.domain, site.rank))
        if checkpoint is not None:
            from repro.crawler.persistence import SiteCheckpoint

            checkpoint.record(SiteCheckpoint(
                crawl=self.config.index,
                domain=site.domain,
                rank=site.rank,
                status="quarantined" if quarantined else "ok",
                pages=summary.pages_visited - pages_before,
                sockets=summary.sockets_observed - sockets_before,
            ))

    def _visit_page(
        self,
        blueprint,
        site: Site,
        browser: Browser,
        bus: EventBus,
        gate,
        summary: CrawlRunSummary,
        tally: ErrorTally,
        blackout: bool,
    ) -> PageObservation | None:
        """One page with bounded retry; ``None`` when retries exhaust."""
        retry = self.retry
        clock = browser.clock
        faults = self.faults
        for attempt in range(1, retry.max_attempts + 1):
            if attempt > 1:
                summary.page_retries += 1
                clock.advance(
                    retry.backoff_seconds
                    * retry.backoff_factor ** (attempt - 2)
                )
            builder = InclusionTreeBuilder()
            builder.attach(bus)
            try:
                if blackout or (
                    faults is not None
                    and faults.page_fails(blueprint.url, self.config.index,
                                          attempt)
                ):
                    if faults is not None:
                        faults.count("page_failed")
                    # A refused connection costs ~a second, not a load.
                    clock.advance(1.0)
                    raise PageLoadFailure(blueprint.url,
                                          "simulated load failure")
                deadline = (
                    clock.timestamp() + retry.page_timeout_seconds
                    if retry.page_timeout_seconds > 0 else None
                )
                browser.visit(blueprint, crawl=self.config.index,
                              attempt=attempt, deadline=deadline)
                tree = builder.result()
            except PageLoadTimeout:
                tally.record(CrawlErrorKind.PAGE_TIMEOUT)
                continue
            except PageLoadFailure:
                tally.record(CrawlErrorKind.PAGE_FAILURE)
                continue
            except NoDocumentError:
                # Every event of the load was dropped — treat like a
                # failed load and retry.
                tally.record(CrawlErrorKind.NO_DOCUMENT)
                continue
            finally:
                if gate is not None:
                    gate.flush()
                builder.detach()
            return observe_page(
                tree, site.domain, site.rank, site.category,
                self.config.index, errors=tally,
            )
        tally.record(CrawlErrorKind.RETRY_EXHAUSTED)
        return None

    @staticmethod
    def _count_page(obs: Obs, observation: PageObservation) -> None:
        metrics = obs.metrics
        metrics.counter("crawler.pages").inc()
        sockets = observation.sockets
        if sockets:
            metrics.counter("crawler.sockets").add(len(sockets))
            cross = sum(1 for s in sockets if s.cross_origin)
            if cross:
                metrics.counter("crawler.sockets_cross_origin").add(cross)
            attributed = sum(
                1 for s in sockets
                if s.initiator_host != s.first_party_host
            )
            if attributed:
                metrics.counter(
                    "crawler.sockets_third_party_initiated"
                ).add(attributed)
        metrics.histogram("crawler.sockets_per_page").observe(len(sockets))

    def _harvest(
        self, obs: Obs, bus: EventBus, browser: Browser,
        summary: CrawlRunSummary,
    ) -> None:
        obs.metrics.record_counts("cdp.publish", bus.published_by_method)
        obs.metrics.counter("cdp.delivered").add(bus.delivered_count)
        obs.metrics.record_counts("webrequest", browser.webrequest.as_counts())
        obs.metrics.counter("crawler.sites").add(summary.sites_visited)
        # Robustness counters only exist when something went wrong, so
        # fault-free artifacts stay byte-identical to the pre-fault era.
        if summary.page_retries:
            obs.metrics.counter("crawler.page_retries").add(
                summary.page_retries)
        if summary.pages_failed:
            obs.metrics.counter("crawler.pages_failed").add(
                summary.pages_failed)
        if summary.sites_quarantined:
            obs.metrics.counter("crawler.sites_quarantined").add(
                summary.sites_quarantined)
        if summary.sockets_partial:
            obs.metrics.counter("crawler.sockets_partial").add(
                summary.sockets_partial)
        if summary.errors:
            obs.metrics.record_counts("crawl.errors", summary.errors)
        if self.faults is not None and self.faults.counters:
            obs.metrics.record_counts(
                "faults", dict(sorted(self.faults.counters.items()))
            )
