"""The crawl driver: one crawl = one browser version over the seed list."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.browser.browser import Browser
from repro.cdp.bus import EventBus
from repro.crawler.observation import PageObservation, observe_page
from repro.crawler.policy import VisitPolicy, page_index_for_link
from repro.inclusion.builder import InclusionTreeBuilder
from repro.util.rng import RngStream
from repro.util.simtime import SimClock, parse_date
from repro.web.alexa import Site
from repro.web.server import SyntheticWeb

Observer = Callable[[PageObservation], None]


@dataclass(frozen=True)
class CrawlConfig:
    """One crawl's parameters (a row of Table 1).

    Attributes:
        index: Crawl index (0–3 in the four-crawl study).
        label: Human-readable window, e.g. ``"Apr 02-05, 2017"``.
        chrome_major: Browser version (57 pre-patch, 58 post).
        start_date: ISO date the crawl begins.
        pages_per_site: Page budget per site.
        seed: RNG seed for link selection.
    """

    index: int
    label: str
    chrome_major: int
    start_date: str
    pages_per_site: int = 15
    seed: int = 2017


@dataclass
class CrawlRunSummary:
    """What one crawl did.

    Attributes:
        config: The crawl's configuration.
        sites_visited: Sites successfully crawled.
        pages_visited: Total page visits.
        sockets_observed: Total sockets seen.
        events_published: CDP events emitted during the crawl.
        sites: (domain, rank) of every crawled site.
    """

    config: CrawlConfig
    sites_visited: int = 0
    pages_visited: int = 0
    sockets_observed: int = 0
    events_published: int = 0
    sites: list[tuple[str, int]] = field(default_factory=list)


class Crawler:
    """Crawls the synthetic web with a simulated browser.

    The browser profile is reset per site (a stateless measurement
    profile, as measurement crawlers use); the simulated clock advances
    ~60 s between page visits per the paper's politeness policy.
    """

    def __init__(
        self,
        web: SyntheticWeb,
        config: CrawlConfig,
        observers: Iterable[Observer] = (),
        extension_installer: Callable[[Browser], None] | None = None,
    ) -> None:
        self.web = web
        self.config = config
        self.observers = list(observers)
        self.extension_installer = extension_installer
        self.policy = VisitPolicy(pages_per_site=config.pages_per_site)

    def run(self, sites: Iterable[Site] | None = None) -> CrawlRunSummary:
        """Crawl the given sites (default: the full seed list)."""
        summary = CrawlRunSummary(config=self.config)
        clock = SimClock(now=parse_date(self.config.start_date))
        bus = EventBus()
        browser = Browser(
            version=self.config.chrome_major,
            bus=bus,
            clock=clock,
            seed=self.config.seed,
        )
        if self.extension_installer is not None:
            self.extension_installer(browser)
        site_list = list(sites) if sites is not None else self.web.seed_list.sites
        for site in site_list:
            self._crawl_site(site, browser, bus, summary)
        summary.events_published = bus.published_count
        return summary

    # -- internals ----------------------------------------------------------

    def _crawl_site(
        self,
        site: Site,
        browser: Browser,
        bus: EventBus,
        summary: CrawlRunSummary,
    ) -> None:
        browser.new_profile(f"{self.config.index}:{site.domain}")
        rng = RngStream(self.config.seed, "crawl", self.config.index,
                        "site", site.domain)
        homepage = self.web.blueprint(site, 0, self.config.index)
        links = self.policy.select_links(homepage.url, homepage.links, rng)
        page_indices = [0] + [page_index_for_link(link) for link in links]
        for page_index in page_indices:
            blueprint = (
                homepage if page_index == 0
                else self.web.blueprint(site, page_index, self.config.index)
            )
            builder = InclusionTreeBuilder()
            builder.attach(bus)
            browser.visit(blueprint, crawl=self.config.index)
            builder.detach()
            tree = builder.result()
            observation = observe_page(
                tree, site.domain, site.rank, site.category, self.config.index
            )
            summary.pages_visited += 1
            summary.sockets_observed += len(observation.sockets)
            for observer in self.observers:
                observer(observation)
            browser.clock.advance(self.policy.wait_seconds)
        summary.sites_visited += 1
        summary.sites.append((site.domain, site.rank))
