"""The crawl driver: one crawl = one browser version over the seed list."""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.browser.browser import Browser
from repro.cdp.bus import EventBus
from repro.crawler.observation import PageObservation, observe_page
from repro.crawler.policy import VisitPolicy, page_index_for_link
from repro.inclusion.builder import InclusionTreeBuilder
from repro.obs import Obs
from repro.util.rng import RngStream
from repro.util.simtime import SimClock, parse_date
from repro.web.alexa import Site
from repro.web.server import SyntheticWeb

Observer = Callable[[PageObservation], None]


@dataclass(frozen=True)
class CrawlConfig:
    """One crawl's parameters (a row of Table 1).

    Attributes:
        index: Crawl index (0–3 in the four-crawl study).
        label: Human-readable window, e.g. ``"Apr 02-05, 2017"``.
        chrome_major: Browser version (57 pre-patch, 58 post).
        start_date: ISO date the crawl begins.
        pages_per_site: Page budget per site.
        seed: RNG seed for link selection.
    """

    index: int
    label: str
    chrome_major: int
    start_date: str
    pages_per_site: int = 15
    seed: int = 2017


@dataclass
class CrawlRunSummary:
    """What one crawl did.

    Attributes:
        config: The crawl's configuration.
        sites_visited: Sites successfully crawled.
        pages_visited: Total page visits.
        sockets_observed: Total sockets seen.
        events_published: CDP events emitted during the crawl.
        sites: (domain, rank) of every crawled site.
    """

    config: CrawlConfig
    sites_visited: int = 0
    pages_visited: int = 0
    sockets_observed: int = 0
    events_published: int = 0
    sites: list[tuple[str, int]] = field(default_factory=list)


class Crawler:
    """Crawls the synthetic web with a simulated browser.

    The browser profile is reset per site (a stateless measurement
    profile, as measurement crawlers use); the simulated clock advances
    ~60 s between page visits per the paper's politeness policy.

    When an :class:`~repro.obs.Obs` context is supplied, the crawl runs
    under a ``crawl`` span with nested ``site`` and ``page`` spans,
    emits ``crawl.progress`` events every :attr:`progress_every` sites
    (sites done / pages / sockets seen), and harvests the bus's
    per-method publish counts plus the ``webRequest`` dispatch counters
    into the metrics registry when the crawl finishes.
    """

    def __init__(
        self,
        web: SyntheticWeb,
        config: CrawlConfig,
        observers: Iterable[Observer] = (),
        extension_installer: Callable[[Browser], None] | None = None,
        obs: Obs | None = None,
        progress_every: int = 25,
    ) -> None:
        self.web = web
        self.config = config
        self.observers = list(observers)
        self.extension_installer = extension_installer
        self.obs = obs
        self.progress_every = max(1, progress_every)
        self.policy = VisitPolicy(pages_per_site=config.pages_per_site)

    def run(self, sites: Iterable[Site] | None = None) -> CrawlRunSummary:
        """Crawl the given sites (default: the full seed list)."""
        summary = CrawlRunSummary(config=self.config)
        clock = SimClock(now=parse_date(self.config.start_date))
        bus = EventBus()
        browser = Browser(
            version=self.config.chrome_major,
            bus=bus,
            clock=clock,
            seed=self.config.seed,
        )
        if self.extension_installer is not None:
            self.extension_installer(browser)
        site_list = list(sites) if sites is not None else self.web.seed_list.sites
        obs = self.obs
        crawl_span = (
            obs.span("crawl", index=self.config.index,
                     chrome=self.config.chrome_major, label=self.config.label)
            if obs is not None else nullcontext()
        )
        with crawl_span as span:
            for site in site_list:
                self._crawl_site(site, browser, bus, summary)
                if obs is not None and (
                    summary.sites_visited % self.progress_every == 0
                    or summary.sites_visited == len(site_list)
                ):
                    obs.event(
                        "crawl.progress",
                        crawl=self.config.index,
                        chrome=self.config.chrome_major,
                        sites_done=summary.sites_visited,
                        sites_total=len(site_list),
                        pages=summary.pages_visited,
                        sockets=summary.sockets_observed,
                    )
            summary.events_published = bus.published_count
            if obs is not None:
                span.set(sites=summary.sites_visited,
                         pages=summary.pages_visited,
                         sockets=summary.sockets_observed,
                         events=summary.events_published)
                self._harvest(obs, bus, browser, summary)
        return summary

    # -- internals ----------------------------------------------------------

    def _crawl_site(
        self,
        site: Site,
        browser: Browser,
        bus: EventBus,
        summary: CrawlRunSummary,
    ) -> None:
        browser.new_profile(f"{self.config.index}:{site.domain}")
        rng = RngStream(self.config.seed, "crawl", self.config.index,
                        "site", site.domain)
        homepage = self.web.blueprint(site, 0, self.config.index)
        links = self.policy.select_links(homepage.url, homepage.links, rng)
        page_indices = [0] + [page_index_for_link(link) for link in links]
        obs = self.obs
        site_span = (
            obs.span("site", domain=site.domain, rank=site.rank)
            if obs is not None else nullcontext()
        )
        with site_span:
            for page_index in page_indices:
                blueprint = (
                    homepage if page_index == 0
                    else self.web.blueprint(site, page_index, self.config.index)
                )
                page_span = (
                    obs.span("page", index=page_index)
                    if obs is not None else nullcontext()
                )
                with page_span:
                    observation = self._visit_page(
                        blueprint, site, browser, bus
                    )
                    if obs is not None:
                        self._count_page(obs, observation)
                summary.pages_visited += 1
                summary.sockets_observed += len(observation.sockets)
                for observer in self.observers:
                    observer(observation)
                browser.clock.advance(self.policy.wait_seconds)
        summary.sites_visited += 1
        summary.sites.append((site.domain, site.rank))

    def _visit_page(self, blueprint, site, browser, bus) -> PageObservation:
        builder = InclusionTreeBuilder()
        builder.attach(bus)
        browser.visit(blueprint, crawl=self.config.index)
        builder.detach()
        tree = builder.result()
        return observe_page(
            tree, site.domain, site.rank, site.category, self.config.index
        )

    @staticmethod
    def _count_page(obs: Obs, observation: PageObservation) -> None:
        metrics = obs.metrics
        metrics.counter("crawler.pages").inc()
        sockets = observation.sockets
        if sockets:
            metrics.counter("crawler.sockets").add(len(sockets))
            cross = sum(1 for s in sockets if s.cross_origin)
            if cross:
                metrics.counter("crawler.sockets_cross_origin").add(cross)
            attributed = sum(
                1 for s in sockets
                if s.initiator_host != s.first_party_host
            )
            if attributed:
                metrics.counter(
                    "crawler.sockets_third_party_initiated"
                ).add(attributed)
        metrics.histogram("crawler.sockets_per_page").observe(len(sockets))

    def _harvest(
        self, obs: Obs, bus: EventBus, browser: Browser,
        summary: CrawlRunSummary,
    ) -> None:
        obs.metrics.record_counts("cdp.publish", bus.published_by_method)
        obs.metrics.counter("cdp.delivered").add(bus.delivered_count)
        obs.metrics.record_counts("webrequest", browser.webrequest.as_counts())
        obs.metrics.counter("crawler.sites").add(summary.sites_visited)
