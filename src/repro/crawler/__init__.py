"""The measurement crawler (§3.3).

Drives the browser over the seed list the way the paper's crawler drove
stock Chrome: homepage first, then up to 14 randomly chosen same-site
links, with a realistic User-Agent, scrolling, and ~60 simulated
seconds between page visits. Every page visit yields a
:class:`~repro.crawler.observation.PageObservation`, which streams into
the :class:`~repro.crawler.dataset.StudyDataset`.
"""

from repro.crawler.crawler import (
    CrawlAccountant,
    CrawlConfig,
    Crawler,
    CrawlLane,
    CrawlRunSummary,
    RetryPolicy,
)
from repro.crawler.dataset import SocketRecord, StudyDataset
from repro.crawler.errors import CrawlErrorKind, ErrorTally
from repro.crawler.observation import (
    PageObservation,
    ResourceObservation,
    SocketObservation,
    observe_page,
)
from repro.crawler.outcome import LaneStats, PageOutcome, SiteOutcome

__all__ = [
    "Crawler",
    "CrawlAccountant",
    "CrawlConfig",
    "CrawlErrorKind",
    "CrawlLane",
    "CrawlRunSummary",
    "ErrorTally",
    "LaneStats",
    "PageOutcome",
    "RetryPolicy",
    "SiteOutcome",
    "StudyDataset",
    "SocketRecord",
    "PageObservation",
    "SocketObservation",
    "ResourceObservation",
    "observe_page",
]
