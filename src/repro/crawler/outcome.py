"""Per-site crawl outcomes — the unit of work the parallel engine moves.

A :class:`SiteOutcome` is everything one site visit produced, with no
observability or summary bookkeeping attached: the crawler produces
outcomes (in a worker process or inline), and the
:class:`~repro.crawler.crawler.CrawlAccountant` folds them into the
run summary, the obs trace, the dataset observers, and the checkpoint
journal in canonical site-rank order. Keeping production and
accounting separate is what makes ``--workers N`` byte-identical to
``--workers 1``: no matter where a site was crawled, its bookkeeping
replays in the same order on the same process.

Everything here is plain picklable data (strings, ints, dataclasses of
the same) so outcomes can cross a ``multiprocessing`` pipe.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.crawler.observation import PageObservation


@dataclass
class PageOutcome:
    """One page visit: its index on the site, and what it measured.

    Attributes:
        page_index: Page index within the site (0 = homepage).
        observation: The page's measurement record, or ``None`` when
            the visit exhausted its retries.
    """

    page_index: int
    observation: PageObservation | None


@dataclass
class SiteOutcome:
    """Everything one site visit produced, before any bookkeeping.

    Attributes:
        domain: Site domain.
        rank: Alexa rank.
        pages: Visited pages in visit order (quarantine truncates).
        quarantined: The site was abandoned after consecutive failures.
        consecutive_failures: Failure streak at abandonment time.
        page_retries: Extra load attempts beyond each page's first.
        events_published: CDP events the site's visits published (a
            delta of the lane's bus counter — sums to the lane total
            because publishing only happens inside visits).
        errors: Error-taxonomy counts for this site (sorted keys).
    """

    domain: str
    rank: int
    pages: list[PageOutcome] = field(default_factory=list)
    quarantined: bool = False
    consecutive_failures: int = 0
    page_retries: int = 0
    events_published: int = 0
    errors: dict[str, int] = field(default_factory=dict)

    @property
    def pages_visited(self) -> int:
        """Pages that produced an observation."""
        return sum(1 for p in self.pages if p.observation is not None)

    @property
    def pages_failed(self) -> int:
        """Pages abandoned after exhausting retries."""
        return sum(1 for p in self.pages if p.observation is None)

    @property
    def sockets_observed(self) -> int:
        """Sockets seen across the site's visited pages."""
        return sum(
            len(p.observation.sockets)
            for p in self.pages if p.observation is not None
        )

    @property
    def sockets_partial(self) -> int:
        """Observed sockets flagged ``partial``."""
        return sum(
            1
            for p in self.pages if p.observation is not None
            for s in p.observation.sockets if s.partial
        )


@dataclass
class LaneStats:
    """Telemetry harvested from one crawl lane (browser + bus + faults).

    A *lane* is the per-shard browser/event-bus/fault-injector triple.
    Lane stats are additive: the accountant merges every shard's stats
    into one per-crawl total before harvesting them into the metrics
    registry, so a four-shard crawl reports the same counters a
    one-lane crawl would.

    Attributes:
        events_published: CDP events the lane's bus accepted.
        delivered_count: Event deliveries to subscribers.
        published_by_method: Publish counts by CDP method name.
        webrequest_counts: ``webRequest`` dispatch counters.
        fault_counters: Injected-fault counts (empty without faults).
    """

    events_published: int = 0
    delivered_count: int = 0
    published_by_method: dict[str, int] = field(default_factory=dict)
    webrequest_counts: dict[str, int] = field(default_factory=dict)
    fault_counters: dict[str, int] = field(default_factory=dict)

    def merge(self, other: "LaneStats") -> None:
        """Fold another lane's telemetry in (all fields additive)."""
        self.events_published += other.events_published
        self.delivered_count += other.delivered_count
        for target, source in (
            (self.published_by_method, other.published_by_method),
            (self.webrequest_counts, other.webrequest_counts),
            (self.fault_counters, other.fault_counters),
        ):
            merged = Counter(target)
            merged.update(source)
            target.clear()
            target.update(merged)
