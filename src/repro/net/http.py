"""HTTP message models used by the simulated network stack.

These are deliberately small: enough structure for the webRequest API,
the filter engine (which needs the resource type and initiating context),
and the content analyzer (which scans headers, query strings, and bodies
for the items of Table 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.util.urls import parse_url


class ResourceType(str, enum.Enum):
    """Resource types as exposed to ``chrome.webRequest`` listeners."""

    MAIN_FRAME = "main_frame"
    SUB_FRAME = "sub_frame"
    SCRIPT = "script"
    IMAGE = "image"
    STYLESHEET = "stylesheet"
    XHR = "xmlhttprequest"
    WEBSOCKET = "websocket"
    FONT = "font"
    MEDIA = "media"
    PING = "ping"
    OTHER = "other"


@dataclass
class HttpRequest:
    """An outgoing HTTP/S request.

    Attributes:
        url: Absolute request URL.
        method: HTTP method (the simulator uses GET and POST).
        resource_type: What the browser is fetching.
        headers: Request headers (title-cased keys).
        body: Optional request body (POST beacons and exfiltration).
        first_party_url: The top-level page URL the request belongs to.
        initiator_url: URL of the resource whose code caused this request
            (the document itself for static inclusions).
        request_id: Browser-assigned identifier, unique within a page load.
    """

    url: str
    method: str = "GET"
    resource_type: ResourceType = ResourceType.OTHER
    headers: dict[str, str] = field(default_factory=dict)
    body: str = ""
    first_party_url: str = ""
    initiator_url: str = ""
    request_id: str = ""

    @property
    def host(self) -> str:
        """Lower-cased host of the request URL."""
        return parse_url(self.url).host

    @property
    def query(self) -> str:
        """Query string of the request URL (no leading ``?``)."""
        return parse_url(self.url).query

    def header(self, name: str, default: str = "") -> str:
        """Case-insensitive header lookup."""
        for key, value in self.headers.items():
            if key.lower() == name.lower():
                return value
        return default


@dataclass
class HttpResponse:
    """An HTTP/S response delivered to the browser."""

    url: str
    status: int = 200
    headers: dict[str, str] = field(default_factory=dict)
    body: str = ""
    mime_type: str = "text/html"
    request_id: str = ""

    @property
    def ok(self) -> bool:
        """Whether the status code indicates success."""
        return 200 <= self.status < 300

    def header(self, name: str, default: str = "") -> str:
        """Case-insensitive header lookup."""
        for key, value in self.headers.items():
            if key.lower() == name.lower():
                return value
        return default
