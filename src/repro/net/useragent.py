"""User-Agent strings and client device profiles.

The paper crawled "using a valid User-Agent" (§3.3) with stock Chrome.
Every HTTP request and WebSocket handshake carries one (Table 5: 100% of
A&A sockets transmitted a UA), and fingerprinting scripts read the rest
of the profile (screen, viewport, language, orientation…).
"""

from __future__ import annotations

from dataclasses import dataclass


def chrome_user_agent(major_version: int) -> str:
    """Render the desktop-Linux Chrome UA string for a major version."""
    return (
        "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 "
        f"(KHTML, like Gecko) Chrome/{major_version}.0.3029.110 Safari/537.36"
    )


@dataclass(frozen=True)
class DeviceProfile:
    """The client-side state fingerprinting scripts can observe.

    Attributes map one-to-one onto the Table 5 item taxonomy: screen,
    viewport, resolution, orientation, language, device and browser
    family, plus the public IP the receiving server observes.
    """

    user_agent: str
    screen_width: int = 1920
    screen_height: int = 1080
    viewport_width: int = 1920
    viewport_height: int = 948
    color_depth: int = 24
    pixel_ratio: float = 1.0
    orientation: str = "landscape-primary"
    language: str = "en-US"
    timezone_offset_minutes: int = 300
    platform: str = "Linux x86_64"
    device_type: str = "desktop"
    device_family: str = "Other"
    browser_type: str = "Chrome"
    browser_family: str = "Chrome"
    public_ip: str = "155.33.17.68"

    @property
    def screen(self) -> str:
        """``WxH`` screen geometry string."""
        return f"{self.screen_width}x{self.screen_height}"

    @property
    def viewport(self) -> str:
        """``WxH`` viewport geometry string."""
        return f"{self.viewport_width}x{self.viewport_height}"

    @property
    def resolution(self) -> str:
        """Screen geometry including color depth, as trackers report it."""
        return f"{self.screen_width}x{self.screen_height}x{self.color_depth}"


def default_profile(chrome_major: int) -> DeviceProfile:
    """The stock desktop profile the crawler browses with."""
    return DeviceProfile(user_agent=chrome_user_agent(chrome_major))
