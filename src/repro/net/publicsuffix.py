"""A compact public-suffix list for registrable-domain extraction.

The paper's labeling step (§3.2) groups fully-qualified domains by their
second-level domain: ``x.doubleclick.net`` and ``y.doubleclick.net`` both
map to ``doubleclick.net``. Getting this right requires knowing that, say,
``co.uk`` is a public suffix while ``doubleclick.net`` is not.

We embed the slice of the Public Suffix List relevant to the domains the
simulator produces (plain gTLDs plus the multi-label ccTLD suffixes common
among Alexa-ranked sites), with the standard PSL semantics: longest
matching suffix wins, wildcard rules (``*.ck``) and exception rules
(``!www.ck``) are honored.
"""

from __future__ import annotations

from functools import lru_cache

# A curated slice of the Public Suffix List: every suffix the synthetic
# web can generate, plus common real-world multi-label suffixes so the
# extractor behaves correctly on real hostnames in tests and examples.
_PSL_RULES = """
com net org io co info biz edu gov mil int
tv me cc ws us uk de fr jp cn ru br in au ca it nl es se no fi dk pl ch at
be cz gr hu ie pt ro sk tr ua kr mx ar cl nz za sg hk tw id th my vn ph
co.uk org.uk ac.uk gov.uk me.uk net.uk sch.uk
com.au net.au org.au edu.au gov.au id.au
co.jp ne.jp or.jp ac.jp ad.jp ed.jp go.jp gr.jp lg.jp
com.cn net.cn org.cn gov.cn edu.cn ac.cn
com.br net.br org.br gov.br edu.br
co.in net.in org.in firm.in gen.in ind.in
co.kr ne.kr or.kr re.kr go.kr
com.mx org.mx net.mx gob.mx edu.mx
com.ar net.ar org.ar gob.ar
co.za net.za org.za web.za gov.za
com.sg net.sg org.sg edu.sg gov.sg
com.hk net.hk org.hk edu.hk gov.hk
com.tw net.tw org.tw edu.tw gov.tw
co.id net.id or.id web.id ac.id
co.th in.th or.th ac.th go.th
com.my net.my org.my edu.my gov.my
com.vn net.vn org.vn edu.vn gov.vn
com.ph net.ph org.ph edu.ph gov.ph
co.nz net.nz org.nz ac.nz govt.nz
com.tr net.tr org.tr edu.tr gov.tr
com.ua net.ua org.ua edu.ua gov.ua in.ua
*.ck !www.ck
"""


def _build_tables() -> tuple[frozenset[str], frozenset[str], frozenset[str]]:
    plain, wildcard, exceptions = set(), set(), set()
    for token in _PSL_RULES.split():
        if token.startswith("!"):
            exceptions.add(token[1:])
        elif token.startswith("*."):
            wildcard.add(token[2:])
        else:
            plain.add(token)
    return frozenset(plain), frozenset(wildcard), frozenset(exceptions)


_PLAIN, _WILDCARD, _EXCEPTIONS = _build_tables()


@lru_cache(maxsize=65536)
def public_suffix(host: str) -> str:
    """Return the public suffix of ``host`` (PSL algorithm, curated data).

    Unknown TLDs fall back to the last label, per the PSL's prevailing
    ``*`` rule.
    """
    host = host.lower().strip(".")
    labels = host.split(".")
    if len(labels) == 1:
        return host
    # Exception rules beat everything: the exception itself is NOT a suffix;
    # its parent is.
    for start in range(len(labels)):
        candidate = ".".join(labels[start:])
        if candidate in _EXCEPTIONS:
            return ".".join(labels[start + 1 :])
    best = labels[-1]  # prevailing "*" rule
    for start in range(len(labels) - 1, -1, -1):
        candidate = ".".join(labels[start:])
        if candidate in _PLAIN and len(candidate) > len(best):
            best = candidate
        # Wildcard rule *.foo makes "<label>.foo" a suffix.
        if start >= 1:
            parent = ".".join(labels[start:])
            if parent in _WILDCARD:
                wider = ".".join(labels[start - 1 :])
                if len(wider) > len(best):
                    best = wider
    return best


@lru_cache(maxsize=65536)
def registrable_domain(host: str) -> str:
    """Return the registrable domain (eTLD+1) of a host.

    For ``x.doubleclick.net`` this is ``doubleclick.net``; for a bare
    public suffix (or the suffix itself) the host is returned unchanged —
    there is nothing shorter to aggregate to.
    """
    host = host.lower().strip(".")
    suffix = public_suffix(host)
    if host == suffix:
        return host
    prefix = host[: -(len(suffix) + 1)]
    last_label = prefix.rsplit(".", 1)[-1]
    return f"{last_label}.{suffix}"
