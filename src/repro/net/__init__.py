"""Network substrate: domains, HTTP and WebSocket message models."""

from repro.net.domains import second_level_domain, registrable_domain, is_third_party
from repro.net.http import HttpRequest, HttpResponse, ResourceType
from repro.net.websocket import (
    WebSocketFrame,
    WebSocketHandshake,
    FrameDirection,
    OpCode,
)

__all__ = [
    "second_level_domain",
    "registrable_domain",
    "is_third_party",
    "HttpRequest",
    "HttpResponse",
    "ResourceType",
    "WebSocketFrame",
    "WebSocketHandshake",
    "FrameDirection",
    "OpCode",
]
