"""WebSocket protocol model (RFC 6455 subset).

The simulator models the parts of RFC 6455 that the measurement pipeline
observes through the DevTools protocol: the HTTP upgrade handshake
(including a real ``Sec-WebSocket-Key``/``Sec-WebSocket-Accept``
computation) and data frames with text/binary opcodes. There is no real
network, but the handshake math is implemented faithfully so the model
can be validated against the RFC's published test vector.
"""

from __future__ import annotations

import base64
import enum
import hashlib
from dataclasses import dataclass, field

WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"


class OpCode(enum.IntEnum):
    """Frame opcodes (data opcodes only; control frames are implicit)."""

    TEXT = 0x1
    BINARY = 0x2
    CLOSE = 0x8
    PING = 0x9
    PONG = 0xA


class FrameDirection(str, enum.Enum):
    """Which peer produced a frame."""

    SENT = "sent"  # client → server
    RECEIVED = "received"  # server → client


def accept_key(client_key: str) -> str:
    """Compute ``Sec-WebSocket-Accept`` for a client key, per RFC 6455 §4.2.2."""
    digest = hashlib.sha1((client_key + WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def make_client_key(seed_bytes: bytes) -> str:
    """Derive a 16-byte base64 client key from deterministic seed bytes."""
    material = hashlib.sha256(seed_bytes).digest()[:16]
    return base64.b64encode(material).decode("ascii")


@dataclass
class WebSocketHandshake:
    """The upgrade handshake for one WebSocket connection.

    Attributes:
        url: The ``ws://`` or ``wss://`` endpoint.
        client_key: ``Sec-WebSocket-Key`` sent by the client.
        origin: The page origin that opened the socket.
        first_party_url: Top-level page URL.
        initiator_url: URL of the script that called ``new WebSocket(...)``.
        protocol: Optional subprotocol requested by the client.
        accepted: Whether the server completed the upgrade.
    """

    url: str
    client_key: str
    origin: str = ""
    first_party_url: str = ""
    initiator_url: str = ""
    protocol: str = ""
    accepted: bool = True

    @property
    def server_accept(self) -> str:
        """The ``Sec-WebSocket-Accept`` value the server must return."""
        return accept_key(self.client_key)

    def request_headers(self) -> dict[str, str]:
        """The upgrade request headers, as a blocker would inspect them."""
        headers = {
            "Upgrade": "websocket",
            "Connection": "Upgrade",
            "Sec-WebSocket-Key": self.client_key,
            "Sec-WebSocket-Version": "13",
        }
        if self.origin:
            headers["Origin"] = self.origin
        if self.protocol:
            headers["Sec-WebSocket-Protocol"] = self.protocol
        return headers

    def response_headers(self) -> dict[str, str]:
        """The 101 Switching Protocols response headers."""
        headers = {
            "Upgrade": "websocket",
            "Connection": "Upgrade",
            "Sec-WebSocket-Accept": self.server_accept,
        }
        if self.protocol:
            headers["Sec-WebSocket-Protocol"] = self.protocol
        return headers


@dataclass
class WebSocketFrame:
    """A single data frame on an established connection.

    Attributes:
        direction: SENT (client→server) or RECEIVED (server→client).
        opcode: TEXT or BINARY for data frames.
        payload: Frame payload. Binary payloads are carried as latin-1
            text so the whole pipeline stays string-typed; the content
            classifier detects them via :attr:`opcode`.
        timestamp: Simulated POSIX timestamp of the frame.
    """

    direction: FrameDirection
    opcode: OpCode
    payload: str
    timestamp: float = 0.0

    @property
    def is_text(self) -> bool:
        """Whether this frame carries text data."""
        return self.opcode == OpCode.TEXT

    @property
    def size(self) -> int:
        """Payload length in characters (bytes for latin-1 binary)."""
        return len(self.payload)


@dataclass
class WebSocketConnection:
    """A full connection record: handshake plus the frames exchanged."""

    handshake: WebSocketHandshake
    frames: list[WebSocketFrame] = field(default_factory=list)
    closed_clean: bool = True

    @property
    def sent_frames(self) -> list[WebSocketFrame]:
        """Frames sent by the client (browser)."""
        return [f for f in self.frames if f.direction == FrameDirection.SENT]

    @property
    def received_frames(self) -> list[WebSocketFrame]:
        """Frames received from the server."""
        return [f for f in self.frames if f.direction == FrameDirection.RECEIVED]
