"""A per-browser cookie jar.

Cookies are the single biggest exfiltration channel in Table 5 (69.9% of
A&A WebSockets carried one). The jar hands out stable per-domain tracking
identifiers, records creation dates (the paper's "First Seen" item), and
renders ``Cookie`` headers for HTTP requests and WebSocket handshakes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.net.domains import registrable_domain


@dataclass
class Cookie:
    """One cookie as stored in the jar.

    Attributes:
        name: Cookie name.
        value: Cookie value.
        domain: Registrable domain the cookie is scoped to.
        created_at: Simulated POSIX timestamp of first issuance —
            surfaced to trackers as the "first seen" date.
    """

    name: str
    value: str
    domain: str
    created_at: float


@dataclass
class CookieJar:
    """Cookies for one simulated browser profile.

    The jar is keyed by registrable domain; subdomains share the parent's
    cookies, matching the ``Domain=.example.com`` convention trackers use.
    """

    profile_id: str = "default"
    _store: dict[str, dict[str, Cookie]] = field(default_factory=dict)

    def set_cookie(self, host: str, name: str, value: str, now: float) -> Cookie:
        """Store (or refresh the value of) a cookie for a host's domain."""
        domain = registrable_domain(host)
        bucket = self._store.setdefault(domain, {})
        existing = bucket.get(name)
        if existing is not None:
            existing.value = value
            return existing
        cookie = Cookie(name=name, value=value, domain=domain, created_at=now)
        bucket[name] = cookie
        return cookie

    def cookies_for(self, host: str) -> list[Cookie]:
        """All cookies applicable to a host, in insertion order."""
        return list(self._store.get(registrable_domain(host), {}).values())

    def header_for(self, host: str) -> str:
        """Render the ``Cookie`` request header for a host ('' if none)."""
        cookies = self.cookies_for(host)
        return "; ".join(f"{c.name}={c.value}" for c in cookies)

    def ensure_tracking_id(self, host: str, name: str, now: float) -> Cookie:
        """Get-or-create a stable per-(profile, domain) tracking cookie.

        The value is a deterministic function of the profile and domain, so
        repeated crawls with the same profile present the same identifier —
        exactly the property trackers exploit.
        """
        domain = registrable_domain(host)
        bucket = self._store.setdefault(domain, {})
        existing = bucket.get(name)
        if existing is not None:
            return existing
        material = f"{self.profile_id}|{domain}|{name}".encode("utf-8")
        value = hashlib.sha256(material).hexdigest()[:24]
        return self.set_cookie(host, name, value, now)

    def first_seen(self, host: str, name: str) -> float | None:
        """Creation timestamp of a cookie, if present."""
        cookie = self._store.get(registrable_domain(host), {}).get(name)
        return cookie.created_at if cookie else None

    def clear(self) -> None:
        """Drop all cookies (fresh profile)."""
        self._store.clear()

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._store.values())
