"""RFC 6455 frame wire codec.

The simulator's traffic never touches a real socket, but the frame
format is implemented faithfully (FIN/opcode byte, 7/16/64-bit payload
lengths, client-side masking with the 4-byte XOR key) so recorded
frames can be serialized to byte-exact wire form — and so the model can
be validated against the RFC's framing rules.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.net.websocket import FrameDirection, OpCode, WebSocketFrame

_FIN_BIT = 0x80
_MASK_BIT = 0x80
_LEN_16 = 126
_LEN_64 = 127
_MAX_7BIT = 125
_MAX_16BIT = 0xFFFF


class WireError(ValueError):
    """Raised on malformed wire data."""


def _apply_mask(payload: bytes, mask_key: bytes) -> bytes:
    return bytes(b ^ mask_key[i % 4] for i, b in enumerate(payload))


def encode_frame(
    frame: WebSocketFrame,
    mask_key: bytes | None = None,
    fin: bool = True,
) -> bytes:
    """Encode one data frame to its RFC 6455 wire form.

    Args:
        frame: The frame to encode. SENT frames must be masked (RFC
            6455 §5.3: client-to-server frames are always masked);
            provide ``mask_key`` for them.
        mask_key: 4-byte masking key; required iff the frame is SENT.
        fin: Whether this is the final fragment.

    Raises:
        WireError: On masking-key violations.
    """
    sent = frame.direction == FrameDirection.SENT
    if sent and (mask_key is None or len(mask_key) != 4):
        raise WireError("client frames require a 4-byte mask key")
    if not sent and mask_key is not None:
        raise WireError("server frames must not be masked")
    payload = frame.payload.encode(
        "utf-8" if frame.opcode == OpCode.TEXT else "latin-1"
    )
    header = bytearray()
    first = int(frame.opcode) | (_FIN_BIT if fin else 0)
    header.append(first)
    mask_flag = _MASK_BIT if sent else 0
    length = len(payload)
    if length <= _MAX_7BIT:
        header.append(mask_flag | length)
    elif length <= _MAX_16BIT:
        header.append(mask_flag | _LEN_16)
        header += struct.pack("!H", length)
    else:
        header.append(mask_flag | _LEN_64)
        header += struct.pack("!Q", length)
    if sent:
        header += mask_key
        payload = _apply_mask(payload, mask_key)
    return bytes(header) + payload


@dataclass(frozen=True)
class DecodedFrame:
    """One frame decoded from the wire, plus how many bytes it used."""

    frame: WebSocketFrame
    fin: bool
    consumed: int


def decode_frame(data: bytes) -> DecodedFrame:
    """Decode one frame from the head of a byte buffer.

    Direction is inferred from the mask bit (masked = client-sent),
    per RFC 6455 §5.3.

    Raises:
        WireError: On truncated or malformed data.
    """
    if len(data) < 2:
        raise WireError("truncated frame header")
    first, second = data[0], data[1]
    fin = bool(first & _FIN_BIT)
    try:
        opcode = OpCode(first & 0x0F)
    except ValueError as exc:
        raise WireError(f"unknown opcode {first & 0x0F:#x}") from exc
    masked = bool(second & _MASK_BIT)
    length = second & 0x7F
    offset = 2
    if length == _LEN_16:
        if len(data) < offset + 2:
            raise WireError("truncated 16-bit length")
        (length,) = struct.unpack_from("!H", data, offset)
        offset += 2
    elif length == _LEN_64:
        if len(data) < offset + 8:
            raise WireError("truncated 64-bit length")
        (length,) = struct.unpack_from("!Q", data, offset)
        offset += 8
    mask_key = b""
    if masked:
        if len(data) < offset + 4:
            raise WireError("truncated mask key")
        mask_key = data[offset:offset + 4]
        offset += 4
    if len(data) < offset + length:
        raise WireError("truncated payload")
    payload = data[offset:offset + length]
    if masked:
        payload = _apply_mask(payload, mask_key)
    text = payload.decode("utf-8" if opcode == OpCode.TEXT else "latin-1")
    frame = WebSocketFrame(
        direction=FrameDirection.SENT if masked else FrameDirection.RECEIVED,
        opcode=opcode,
        payload=text,
    )
    return DecodedFrame(frame=frame, fin=fin, consumed=offset + length)


def decode_stream(data: bytes) -> list[WebSocketFrame]:
    """Decode a buffer of back-to-back frames."""
    frames: list[WebSocketFrame] = []
    offset = 0
    while offset < len(data):
        decoded = decode_frame(data[offset:])
        frames.append(decoded.frame)
        offset += decoded.consumed
    return frames
