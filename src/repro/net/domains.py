"""Domain identity helpers built on the public-suffix extractor.

The paper reasons about *second-level domains* ("2nd-level domain for both
``x.doubleclick.net`` and ``y.doubleclick.net`` will be
``doubleclick.net``"), which is exactly eTLD+1. These helpers are the
single place that notion is defined, so the labeler, analysis, and the
cross-origin test all agree.
"""

from __future__ import annotations

from repro.net.publicsuffix import registrable_domain
from repro.util.urls import parse_url

__all__ = [
    "registrable_domain",
    "second_level_domain",
    "second_level_of_url",
    "is_third_party",
    "display_name",
]


def second_level_domain(host: str) -> str:
    """Paper terminology alias for :func:`registrable_domain`."""
    return registrable_domain(host)


def second_level_of_url(url: str) -> str:
    """Second-level domain of an absolute URL's host."""
    return registrable_domain(parse_url(url).host)


def is_third_party(request_url: str, first_party_url: str) -> bool:
    """Whether ``request_url`` is cross-site w.r.t. ``first_party_url``.

    Uses registrable-domain comparison (the ad-blocking community's
    definition of "third-party", also used by the paper's >90%
    cross-origin statistic).
    """
    return second_level_of_url(request_url) != second_level_of_url(first_party_url)


def display_name(domain: str) -> str:
    """The short name used in the paper's tables (eTLD+1 minus suffix).

    ``x.doubleclick.net`` → ``doubleclick``; already-short inputs pass
    through unchanged.
    """
    sld = registrable_domain(domain)
    return sld.split(".", 1)[0]
