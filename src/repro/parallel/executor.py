"""Dispatch shard tasks inline or across a multiprocessing pool.

The executor is deliberately dumb: it runs every task and hands back a
``{(crawl_index, shard_index): ShardResult}`` map. All ordering
guarantees live in the caller, which folds results in canonical shard
order regardless of completion order — so scheduling jitter in the
pool can never reach an artifact.

``workers=1`` executes inline in the parent process (no pickling, no
pool), which keeps the default study path dependency-free and makes
the single-worker run the reference the multi-worker run must match
byte-for-byte.
"""

from __future__ import annotations

import multiprocessing

from repro.parallel.worker import (
    ShardResult,
    ShardTask,
    WebSpec,
    prime_worker_web,
    run_shard,
    run_shard_task,
)
from repro.web.server import SyntheticWeb

ShardKey = tuple[int, int]


class ParallelExecutionError(RuntimeError):
    """A shard worker failed; the study cannot merge a complete crawl."""

    def __init__(self, key: ShardKey, cause: BaseException) -> None:
        crawl_index, shard_index = key
        super().__init__(
            f"shard worker failed (crawl {crawl_index}, "
            f"shard {shard_index}): {cause!r}"
        )
        self.key = key


def _start_context() -> multiprocessing.context.BaseContext:
    # Fork lets workers inherit the parent's already-built web
    # copy-on-write; elsewhere workers rebuild it from the WebSpec.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def execute_shards(
    web: SyntheticWeb,
    spec: WebSpec,
    tasks: list[ShardTask],
    workers: int = 1,
) -> dict[ShardKey, ShardResult]:
    """Run every task, returning results keyed by (crawl, shard).

    Raises :class:`ParallelExecutionError` when any worker dies; a
    partial merge would silently skew every downstream table.
    """
    if workers <= 1 or len(tasks) <= 1:
        return {
            (task.crawl.index, task.shard_index): run_shard(web, task)
            for task in tasks
        }
    context = _start_context()
    prime_worker_web(spec, web)
    results: dict[ShardKey, ShardResult] = {}
    with context.Pool(processes=min(workers, len(tasks))) as pool:
        pending = [
            ((task.crawl.index, task.shard_index),
             pool.apply_async(run_shard_task, (task,)))
            for task in tasks
        ]
        for key, handle in pending:
            try:
                results[key] = handle.get()
            except Exception as error:
                raise ParallelExecutionError(key, error) from error
    return results
