"""The shard worker: crawl one (crawl, shard) unit, return pure data.

Workers never see the obs context, the dataset, or the checkpoint
journal — they produce :class:`~repro.crawler.outcome.SiteOutcome`
records and lane telemetry, both plain picklable data, and the parent
replays them in canonical order. The synthetic web is heavy to pickle,
so it rides into workers by fork inheritance (:func:`prime_worker_web`
sets a module global the child inherits copy-on-write); on start
methods without inheritance each worker rebuilds it from the
:class:`WebSpec`, which is deterministic by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crawler.crawler import CrawlConfig, Crawler
from repro.crawler.outcome import LaneStats, SiteOutcome
from repro.faults import FaultInjector, profile_named
from repro.web.alexa import Site
from repro.web.server import SyntheticWeb, WebScale


@dataclass(frozen=True)
class WebSpec:
    """Enough to rebuild the synthetic web deterministically."""

    sample_scale: float
    entity_scale: float
    seed: int

    def build(self) -> SyntheticWeb:
        return SyntheticWeb(
            scale=WebScale(sample_scale=self.sample_scale,
                           entity_scale=self.entity_scale),
            seed=self.seed,
        )


@dataclass(frozen=True)
class ShardTask:
    """One unit of parallel work: crawl these sites under this config.

    Attributes:
        crawl: The crawl's configuration (picklable dataclass).
        shard_index: Which shard of the seed list this is — also the
            fault injector's event-stream lane, so event fates are a
            function of the shard plan, not the worker count.
        sites: The shard's sites, in rank order.
        faults: Named fault profile for the study.
        study_seed: The study's root seed (fault lane keying).
        web: Spec to rebuild the web when fork inheritance is absent.
    """

    crawl: CrawlConfig
    shard_index: int
    sites: tuple[Site, ...]
    faults: str
    study_seed: int
    web: WebSpec


@dataclass
class ShardResult:
    """What one shard produced, ready to merge parent-side."""

    crawl_index: int
    shard_index: int
    outcomes: list[SiteOutcome] = field(default_factory=list)
    lane: LaneStats = field(default_factory=LaneStats)


def shard_injector(task: ShardTask) -> FaultInjector | None:
    """The shard's fault injector (``None`` for a zero profile).

    Entity-keyed draws (page failures, blackouts, socket faults) hang
    off the ``(seed, "faults", profile, crawl)`` lane and are keyed by
    stable entities, so they survive re-sharding; the sequential
    event-gate stream is additionally keyed by the shard index.
    """
    profile = profile_named(task.faults)
    if profile.is_zero:
        return None
    return FaultInjector(profile, task.study_seed, task.crawl.index,
                         event_lane=task.shard_index)


def run_shard(web: SyntheticWeb, task: ShardTask) -> ShardResult:
    """Crawl one shard on a fresh lane; no side effects beyond it."""
    crawler = Crawler(web, task.crawl, faults=shard_injector(task))
    outcomes, lane = crawler.collect_outcomes(task.sites)
    return ShardResult(
        crawl_index=task.crawl.index,
        shard_index=task.shard_index,
        outcomes=outcomes,
        lane=lane,
    )


# -- worker-process plumbing ----------------------------------------------

_worker_web: tuple[WebSpec, SyntheticWeb] | None = None


def prime_worker_web(spec: WebSpec, web: SyntheticWeb) -> None:
    """Install the already-built web for fork-inherited workers.

    Called in the parent before the pool forks; children inherit the
    global copy-on-write and skip the rebuild entirely.
    """
    global _worker_web
    _worker_web = (spec, web)


def _web_for(spec: WebSpec) -> SyntheticWeb:
    global _worker_web
    if _worker_web is None or _worker_web[0] != spec:
        _worker_web = (spec, spec.build())
    return _worker_web[1]


def run_shard_task(task: ShardTask) -> ShardResult:
    """Pool entry point: resolve the web, crawl the shard."""
    return run_shard(_web_for(task.web), task)
