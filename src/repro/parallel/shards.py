"""Shard planning: worker-count-independent seed-list partitioning.

A shard is a contiguous, rank-ordered slice of the seed list. The
partition is a pure function of the site list and the shard size —
deliberately *not* of the worker count — so the same study sharded
onto 1, 2, or 16 workers crawls identical (crawl, shard) units and
merges them in the same canonical order. That invariance is what the
byte-identity contract (DESIGN §10) rests on, and what the Hypothesis
property tests in ``tests/parallel/test_shards.py`` pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.web.alexa import Site

#: Sites per shard. Small enough that a four-crawl tiny study already
#: exercises multi-shard merging, large enough that per-shard lane
#: setup (browser + bus) stays negligible against crawling it.
DEFAULT_SHARD_SIZE = 64


@dataclass(frozen=True)
class Shard:
    """One contiguous slice of a crawl's seed list.

    Attributes:
        index: Shard position (0-based, rank order).
        sites: The shard's sites, in seed-list (rank) order.
    """

    index: int
    sites: tuple[Site, ...]


def plan_shards(
    sites: Sequence[Site], shard_size: int = DEFAULT_SHARD_SIZE
) -> list[Shard]:
    """Partition ``sites`` into contiguous shards of ``shard_size``.

    Every site lands in exactly one shard; concatenating the shards in
    index order reproduces ``sites`` exactly. The last shard holds the
    remainder.
    """
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    return [
        Shard(index=index, sites=tuple(sites[start:start + shard_size]))
        for index, start in enumerate(range(0, len(sites), shard_size))
    ]
