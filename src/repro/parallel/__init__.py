"""Deterministic sharded crawl execution.

The paper's campaign got its scale from parallel crawler instances;
this package gives the reproduction the same shape without giving up
its byte-reproducibility contract. The seed list is partitioned into
fixed-size, rank-ordered shards (:func:`plan_shards`) whose boundaries
depend only on the seed list — never on the worker count. Each
(crawl, shard) pair is crawled on its own lane (browser + event bus +
fault-injector event stream), inline or on a ``multiprocessing``
worker pool (:func:`execute_shards`), and the results are folded back
into the study in canonical site-rank order by the crawl accountant.

Because outcome production never touches the obs tick clock, replaying
outcomes parent-side reproduces the exact span/event/counter stream a
sequential crawl would have written: ``--workers N`` artifacts are
byte-identical to ``--workers 1`` for every fault profile.
"""

from repro.parallel.executor import ParallelExecutionError, execute_shards
from repro.parallel.shards import DEFAULT_SHARD_SIZE, Shard, plan_shards
from repro.parallel.worker import ShardResult, ShardTask, WebSpec, run_shard

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "ParallelExecutionError",
    "Shard",
    "ShardResult",
    "ShardTask",
    "WebSpec",
    "execute_shards",
    "plan_shards",
    "run_shard",
]
