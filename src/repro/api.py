"""The sanctioned public API of the reproduction.

``repro.api`` is the single supported entry point for embedding the
system: building/loading filter engines, running analyses, and the
typed `repro serve` surface. Everything here is re-exported from the
package facades (``repro.filters``, ``repro.analysis``, ``repro.serve``,
…), never from their submodules — and the API-FACADE lint enforces the
same discipline on every other cross-package import inside ``src``,
so this module is exactly the surface an external caller can rely on
across PRs.

Grouped exports:

* **Engines** — parse/load/build filter engines at any scale, match
  requests, and reason about verdicts (``CompiledFilterEngine``,
  ``FilterEngine``, ``MatchResult``, ``EngineStats``, ``linear_match``,
  ``load_filter_engine``, ``build_filter_engine``,
  ``generate_filter_lists``).
* **Analysis** — the streaming stage engine and the per-artifact entry
  points (``AnalysisEngine``, ``DatasetSource``, ``StageCache``,
  ``compute_table1`` …).
* **Labeling** — the paper's ``a(d) ≥ 0.1·n(d)`` derivation
  (``AaLabeler``, ``DomainTagCounter``).
* **Serve** — the versioned query service (``SERVE_VERSION`` wire
  types, ``ServeSnapshot`` builders, ``ServeService``, the script and
  HTTP frontends).
"""

from __future__ import annotations

from repro.analysis import (
    AnalysisEngine,
    AnalysisResult,
    DatasetSource,
    SegmentSlice,
    StageCache,
    StateCache,
    classify_sockets,
    compute_blocking_stats,
    compute_figure3,
    compute_overall_stats,
    compute_table1,
    compute_table2,
    compute_table3,
    compute_table4,
    compute_table5,
    default_stages,
)
from repro.extension import WEBREQUEST_BUG_FIX_VERSION
from repro.filters import (
    CompiledFilterEngine,
    EngineStats,
    FilterEngine,
    FilterList,
    FilterRule,
    MatchResult,
    linear_match,
    load_filter_engine,
    parse_filter_list,
)
from repro.labeling import AaLabeler, DomainTagCounter
from repro.serve import (
    ENDPOINTS,
    SERVE_SCHEMAS,
    SERVE_VERSION,
    ArtifactRequest,
    ArtifactResponse,
    BatchCheckRequest,
    BatchCheckResponse,
    BatchClassifyRequest,
    BatchClassifyResponse,
    CheckRequest,
    CheckResponse,
    ClassifyRequest,
    ClassifyResponse,
    ServeError,
    ServeHTTPServer,
    ServeProtocolError,
    ServeRequest,
    ServeResult,
    ServeService,
    ServeSnapshot,
    SnapshotInfo,
    SnapshotRequest,
    SwapError,
    build_dataset_snapshot,
    build_scale_snapshot,
    decode_request,
    encode_request,
    generate_query_mix,
    make_server,
    run_workers,
    snapshot_fingerprint,
    transcript_lines,
    write_transcript,
)
from repro.web.filterlists import (
    LIST_SCALES,
    build_filter_engine,
    build_filter_lists,
    generate_filter_lists,
    generate_request_corpus,
)

__all__ = [
    # Engines.
    "CompiledFilterEngine",
    "FilterEngine",
    "FilterList",
    "FilterRule",
    "MatchResult",
    "EngineStats",
    "linear_match",
    "parse_filter_list",
    "load_filter_engine",
    "build_filter_engine",
    "build_filter_lists",
    "generate_filter_lists",
    "generate_request_corpus",
    "LIST_SCALES",
    # Analysis.
    "AnalysisEngine",
    "AnalysisResult",
    "DatasetSource",
    "SegmentSlice",
    "StageCache",
    "StateCache",
    "classify_sockets",
    "default_stages",
    "compute_table1",
    "compute_table2",
    "compute_table3",
    "compute_table4",
    "compute_table5",
    "compute_figure3",
    "compute_blocking_stats",
    "compute_overall_stats",
    # Labeling + policy.
    "AaLabeler",
    "DomainTagCounter",
    "WEBREQUEST_BUG_FIX_VERSION",
    # Serve.
    "SERVE_VERSION",
    "SERVE_SCHEMAS",
    "ENDPOINTS",
    "CheckRequest",
    "CheckResponse",
    "ClassifyRequest",
    "ClassifyResponse",
    "ArtifactRequest",
    "ArtifactResponse",
    "SnapshotRequest",
    "SnapshotInfo",
    "BatchCheckRequest",
    "BatchCheckResponse",
    "BatchClassifyRequest",
    "BatchClassifyResponse",
    "ServeError",
    "ServeProtocolError",
    "ServeRequest",
    "ServeResult",
    "ServeSnapshot",
    "ServeService",
    "SwapError",
    "build_scale_snapshot",
    "build_dataset_snapshot",
    "snapshot_fingerprint",
    "decode_request",
    "encode_request",
    "run_workers",
    "generate_query_mix",
    "transcript_lines",
    "write_transcript",
    "ServeHTTPServer",
    "make_server",
]
