"""The Browser: blueprint in, CDP events out.

A visit walks the blueprint's resource tree depth-first, emitting
``Network``/``Debugger``/``Page`` events exactly as the paper's
instrumentation observed them (§3.1–3.2):

* remote scripts fire ``Debugger.scriptParsed`` with their own URL;
  inline scripts fire it with the *document's* URL — which is why
  publisher-initiated sockets attribute to the first party;
* every dynamic request's ``initiator`` carries the initiating script
  URL and call stack;
* WebSockets fire the six ``Network.webSocket*`` events, with payload
  frames rendered from the socket's payload profile against live
  browser state (cookies, device profile, clock);
* when an extension is installed, every HTTP request passes through
  ``chrome.webRequest`` — and WebSocket handshakes do too, *unless*
  the browser version has the webRequest bug.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass

from repro.cdp.bus import EventBus
from repro.cdp.events import (
    FrameNavigated,
    Initiator,
    RequestWillBeSent,
    ResponseReceived,
    ScriptParsed,
    WebSocketClosed,
    WebSocketCreated,
    WebSocketFrameReceived,
    WebSocketFrameSent,
    WebSocketHandshakeResponseReceived,
    WebSocketWillSendHandshakeRequest,
)
from repro.extension.webrequest import WebRequestApi
from repro.extension.workaround import WebSocketWrapperWorkaround
from repro.faults.injector import FaultGate, FaultInjector, PageLoadTimeout
from repro.net.cookies import CookieJar
from repro.net.http import HttpRequest, ResourceType
from repro.net.useragent import DeviceProfile, default_profile
from repro.net.websocket import FrameDirection, make_client_key
from repro.util.rng import RngStream, derive_seed
from repro.util.simtime import SimClock
from repro.util.urls import parse_url
from repro.browser.dom import serialize_document
from repro.web.blueprint import PageBlueprint, ResourceNode, SocketPlan
from repro.web.payloads import PayloadContext, render_profile

_CDP_TYPE_NAMES = {
    ResourceType.MAIN_FRAME: "Document",
    ResourceType.SUB_FRAME: "Document",
    ResourceType.SCRIPT: "Script",
    ResourceType.IMAGE: "Image",
    ResourceType.STYLESHEET: "Stylesheet",
    ResourceType.XHR: "XHR",
    ResourceType.FONT: "Font",
    ResourceType.MEDIA: "Media",
    ResourceType.PING: "Ping",
    ResourceType.OTHER: "Other",
    ResourceType.WEBSOCKET: "WebSocket",
}


@dataclass
class VisitResult:
    """Counters from one page visit.

    Attributes:
        page_url: The visited page.
        requests: HTTP requests issued (document included).
        blocked_requests: HTTP requests cancelled by the extension.
        sockets_opened: WebSocket connections established.
        sockets_blocked: WebSocket handshakes cancelled by the
            extension (possible only without the WRB).
        sockets_refused: WebSocket upgrades refused by the server
            (injected fault: 403 instead of 101).
        frames_sent: Data frames sent across all sockets.
        frames_received: Data frames received across all sockets.
    """

    page_url: str = ""
    requests: int = 0
    blocked_requests: int = 0
    sockets_opened: int = 0
    sockets_blocked: int = 0
    sockets_refused: int = 0
    frames_sent: int = 0
    frames_received: int = 0


@dataclass
class _FrameContext:
    """Where in the frame tree execution currently is."""

    frame_id: str
    document_url: str


class Browser:
    """A simulated Chrome instance.

    Attributes:
        version: Chrome major version; versions < 58 have the WRB.
        bus: Event bus carrying the DevTools event stream.
        clock: Simulated clock stamped onto every event.
        device: The client device profile (fingerprint surface).
        jar: The cookie jar (reset per site by the crawler, like a
            stateless measurement profile).
        webrequest: The extension attachment point.
        faults: Optional fault injector; when set, sockets may be
            refused, closed mid-stream, or truncated, and page loads
            may stall (tripping the caller's sim-clock deadline). The
            ``bus`` may also be a
            :class:`~repro.faults.injector.FaultGate` wrapping the real
            bus — the browser only ever calls ``publish``.
    """

    def __init__(
        self,
        version: int = 58,
        bus: EventBus | FaultGate | None = None,
        clock: SimClock | None = None,
        device: DeviceProfile | None = None,
        profile_id: str = "crawler",
        seed: int = 2017,
        faults: FaultInjector | None = None,
    ) -> None:
        self.version = version
        self.bus = bus or EventBus()
        self.clock = clock or SimClock()
        self.device = device or default_profile(version)
        self.jar = CookieJar(profile_id=profile_id)
        self.webrequest = WebRequestApi(version)
        self.ws_workaround: WebSocketWrapperWorkaround | None = None
        self.faults = faults
        self.seed = seed
        self._main_frame_id = ""
        self._serialized_dom = ""
        self._request_counter = 0
        self._script_counter = 0
        self._frame_counter = 0

    # -- public API ---------------------------------------------------------

    def new_profile(self, profile_id: str) -> None:
        """Clear client state, as if launching a fresh browser profile."""
        self.jar = CookieJar(profile_id=profile_id)

    def visit(
        self,
        page: PageBlueprint,
        crawl: int = 0,
        attempt: int = 0,
        deadline: float | None = None,
    ) -> VisitResult:
        """Load a page: emit the full event stream for the visit.

        Args:
            page: The blueprint to load.
            crawl: Crawl index (keys the visit's RNG stream).
            attempt: Retry attempt index — keys injected stalls, so a
                retried load can succeed where the first one hung.
            deadline: Optional sim-clock POSIX timestamp; when the
                clock passes it mid-load, the visit aborts with
                :class:`~repro.faults.injector.PageLoadTimeout`,
                leaving the prefix of events already emitted on the
                bus (a partial observation, as a real timed-out page
                leaves behind).
        """
        result = VisitResult(page_url=page.url)
        rng = RngStream(self.seed, "visit", page.url, crawl, self.version)
        main_frame = _FrameContext(
            frame_id=self._next_frame_id(), document_url=page.url
        )
        self._main_frame_id = main_frame.frame_id
        self._serialized_dom = ""
        self._emit_document(page.url, main_frame, parent_frame_id="")
        result.requests += 1
        faults = self.faults
        for node_index, node in enumerate(page.resources):
            if faults is not None:
                stall = faults.stall_seconds(
                    page.url, crawl, attempt, node_index
                )
                if stall > 0.0:
                    faults.count("page_stall")
                    self.clock.advance(stall)
            if deadline is not None and self.clock.timestamp() >= deadline:
                raise PageLoadTimeout(page.url, "page load deadline elapsed")
            self._process_node(
                node,
                page,
                main_frame,
                Initiator(type="parser", url=page.url),
                ancestors=(),
                result=result,
                rng=rng,
                crawl=crawl,
            )
        # The crawler scrolls to the bottom and dwells (§3.3).
        self.clock.advance(rng.uniform(1.0, 4.0))
        return result

    # -- document & resources -------------------------------------------------

    def _emit_document(
        self, url: str, frame: _FrameContext, parent_frame_id: str,
        initiator_url: str = "",
    ) -> None:
        request_id = self._next_request_id()
        headers = self._request_headers(url, first_party=url, send_cookie=True)
        self.bus.publish(RequestWillBeSent(
            timestamp=self.clock.timestamp(),
            request_id=request_id,
            document_url=url,
            url=url,
            method="GET",
            resource_type="Document",
            frame_id=frame.frame_id,
            initiator=Initiator(type="other", url=initiator_url),
            headers=headers,
        ))
        self.bus.publish(ResponseReceived(
            timestamp=self.clock.timestamp(),
            request_id=request_id,
            url=url,
            status=200,
            mime_type="text/html",
            resource_type="Document",
            frame_id=frame.frame_id,
        ))
        self.bus.publish(FrameNavigated(
            timestamp=self.clock.timestamp(),
            frame_id=frame.frame_id,
            parent_frame_id=parent_frame_id,
            url=url,
            initiator_url=initiator_url,
        ))

    def _process_node(
        self,
        node: ResourceNode,
        page: PageBlueprint,
        frame: _FrameContext,
        initiator: Initiator,
        ancestors: tuple[str, ...],
        result: VisitResult,
        rng: RngStream,
        crawl: int,
    ) -> None:
        if node.inline:
            # Inline script: parses under the document's URL; no fetch.
            script_id = self._next_script_id()
            self.bus.publish(ScriptParsed(
                timestamp=self.clock.timestamp(),
                script_id=script_id,
                url=frame.document_url,
                frame_id=frame.frame_id,
                is_inline=True,
            ))
            child_initiator = Initiator(
                type="script",
                url=frame.document_url,
                script_id=script_id,
                stack_urls=(frame.document_url, *ancestors),
            )
            self._run_script_effects(
                node, page, frame, child_initiator,
                (frame.document_url, *ancestors), result, rng, crawl,
            )
            return

        fetched_url = self._fetch(node, page, frame, initiator, result)
        if fetched_url is None:
            return
        if node.resource_type == ResourceType.SCRIPT:
            script_id = self._next_script_id()
            self.bus.publish(ScriptParsed(
                timestamp=self.clock.timestamp(),
                script_id=script_id,
                url=node.url,
                frame_id=frame.frame_id,
            ))
            child_initiator = Initiator(
                type="script",
                url=node.url,
                script_id=script_id,
                stack_urls=(node.url, *ancestors),
            )
            self._run_script_effects(
                node, page, frame, child_initiator,
                (node.url, *ancestors), result, rng, crawl,
            )
        elif node.resource_type == ResourceType.SUB_FRAME:
            child_frame = _FrameContext(
                frame_id=self._next_frame_id(), document_url=fetched_url
            )
            self.bus.publish(FrameNavigated(
                timestamp=self.clock.timestamp(),
                frame_id=child_frame.frame_id,
                parent_frame_id=frame.frame_id,
                url=fetched_url,
                initiator_url=initiator.url,
            ))
            for child in node.children:
                self._process_node(
                    child, page, child_frame,
                    Initiator(type="parser", url=node.url),
                    (node.url, *ancestors), result, rng, crawl,
                )
        else:
            # Non-script resources cannot include children or sockets.
            for child in node.children:
                self._process_node(
                    child, page, frame, initiator, ancestors, result, rng,
                    crawl,
                )

    def _run_script_effects(
        self,
        node: ResourceNode,
        page: PageBlueprint,
        frame: _FrameContext,
        child_initiator: Initiator,
        ancestors: tuple[str, ...],
        result: VisitResult,
        rng: RngStream,
        crawl: int,
    ) -> None:
        for child in node.children:
            self._process_node(
                child, page, frame, child_initiator, ancestors, result, rng,
                crawl,
            )
        for plan in node.sockets:
            self._open_sockets(
                plan, page, frame, child_initiator, result, rng, crawl
            )

    def _fetch(
        self,
        node: ResourceNode,
        page: PageBlueprint,
        frame: _FrameContext,
        initiator: Initiator,
        result: VisitResult,
    ) -> str | None:
        """Issue one HTTP fetch; returns the rendered URL, or None when
        the extension cancelled the request."""
        url = self._render_url(node, page)
        headers = self._request_headers(
            url, first_party=page.url, send_cookie=node.send_cookie,
            referer=frame.document_url,
        )
        post_data = self._render_post_data(node, page, url)
        request = HttpRequest(
            url=url,
            method=node.beacon.method if node.beacon else "GET",
            resource_type=node.resource_type,
            headers=headers,
            body=post_data,
            first_party_url=page.url,
            initiator_url=initiator.url,
        )
        if not self.webrequest.dispatch_on_before_request(request):
            result.blocked_requests += 1
            return None
        if node.sets_cookie:
            self.jar.ensure_tracking_id(
                request.host, "uid", self.clock.timestamp()
            )
        request_id = self._next_request_id()
        result.requests += 1
        self.bus.publish(RequestWillBeSent(
            timestamp=self.clock.timestamp(),
            request_id=request_id,
            document_url=frame.document_url,
            url=url,
            method=request.method,
            resource_type=_CDP_TYPE_NAMES.get(node.resource_type, "Other"),
            frame_id=frame.frame_id,
            initiator=initiator,
            headers=headers,
            post_data=post_data,
        ))
        self.bus.publish(ResponseReceived(
            timestamp=self.clock.timestamp(),
            request_id=request_id,
            url=url,
            status=200,
            mime_type=node.mime_type,
            resource_type=_CDP_TYPE_NAMES.get(node.resource_type, "Other"),
            frame_id=frame.frame_id,
        ))
        self.clock.advance(0.02)
        return url

    # -- WebSockets -----------------------------------------------------------

    def _open_sockets(
        self,
        plan: SocketPlan,
        page: PageBlueprint,
        frame: _FrameContext,
        initiator: Initiator,
        result: VisitResult,
        rng: RngStream,
        crawl: int,
    ) -> None:
        for index in range(plan.count):
            socket_rng = rng.child("socket", initiator.url, plan.ws_url,
                                   plan.profile, index)
            ws_url = plan.ws_url or socket_rng.choice(list(plan.ws_pool))
            self._open_one_socket(
                ws_url, plan, page, frame, initiator, result, socket_rng
            )

    def _open_one_socket(
        self,
        ws_url: str,
        plan: SocketPlan,
        page: PageBlueprint,
        frame: _FrameContext,
        initiator: Initiator,
        result: VisitResult,
        rng: RngStream,
    ) -> None:
        # A uBO-Extra-style content-script wrapper sees the constructor
        # call in page context — before the network stack, and
        # regardless of the webRequest bug.
        if self.ws_workaround is not None:
            in_subframe = frame.frame_id != self._main_frame_id
            if not self.ws_workaround.allow_socket(
                ws_url, page.url, in_subframe, rng.child("wrap").random()
            ):
                result.sockets_blocked += 1
                return
        handshake_request = HttpRequest(
            url=ws_url,
            method="GET",
            resource_type=ResourceType.WEBSOCKET,
            first_party_url=page.url,
            initiator_url=initiator.url,
        )
        # The WRB lives inside dispatch: pre-58 versions never consult
        # listeners for WebSocket requests.
        if not self.webrequest.dispatch_on_before_request(handshake_request):
            result.sockets_blocked += 1
            return
        ws_host = parse_url(ws_url).host
        cookie = self.jar.cookies_for(ws_host)
        if not cookie and plan.cookie_enabled and rng.bernoulli(0.5):
            # The service recognizes (or mints) its visitor identifier.
            self.jar.ensure_tracking_id(ws_host, "uid", self.clock.timestamp())
            cookie = self.jar.cookies_for(ws_host)
        request_id = self._next_request_id()
        client_key = make_client_key(
            derive_seed(self.seed, "ws-key", request_id, ws_url).to_bytes(8, "big")
        )
        page_origin = parse_url(page.url).origin
        headers = {
            "User-Agent": self.device.user_agent,
            "Upgrade": "websocket",
            "Connection": "Upgrade",
            "Sec-WebSocket-Key": client_key,
            "Sec-WebSocket-Version": "13",
            "Origin": page_origin,
        }
        cookie_header = self.jar.header_for(ws_host)
        if cookie_header:
            headers["Cookie"] = cookie_header
        self.bus.publish(WebSocketCreated(
            timestamp=self.clock.timestamp(),
            request_id=request_id,
            url=ws_url,
            initiator=initiator,
            frame_id=frame.frame_id,
        ))
        self.bus.publish(WebSocketWillSendHandshakeRequest(
            timestamp=self.clock.timestamp(),
            request_id=request_id,
            headers=headers,
            wall_time=self.clock.timestamp(),
        ))
        if self.faults is not None and self.faults.refuse_handshake(
            ws_url, request_id
        ):
            # The server rejects the upgrade: the lifecycle completes
            # (403 + close) but no data frames ever flow.
            self.faults.count("handshake_refused")
            self.bus.publish(WebSocketHandshakeResponseReceived(
                timestamp=self.clock.timestamp(),
                request_id=request_id,
                status=403,
                headers={},
            ))
            self.bus.publish(WebSocketClosed(
                timestamp=self.clock.timestamp(), request_id=request_id
            ))
            result.sockets_refused += 1
            return
        self.bus.publish(WebSocketHandshakeResponseReceived(
            timestamp=self.clock.timestamp(),
            request_id=request_id,
            status=101,
            headers={"Upgrade": "websocket", "Connection": "Upgrade"},
        ))
        result.sockets_opened += 1
        self._exchange_frames(
            ws_url, ws_host, plan, page, request_id, result, rng
        )
        self.bus.publish(WebSocketClosed(
            timestamp=self.clock.timestamp(), request_id=request_id
        ))

    def _exchange_frames(
        self,
        ws_url: str,
        ws_host: str,
        plan: SocketPlan,
        page: PageBlueprint,
        request_id: str,
        result: VisitResult,
        rng: RngStream,
    ) -> None:
        cookies = self.jar.cookies_for(ws_host)
        cookie_value = cookies[0].value if cookies else ""
        first_seen = cookies[0].created_at if cookies else None
        if not self._serialized_dom:
            # What a replay script would capture: the page's full
            # document, serialized once per visit.
            self._serialized_dom = serialize_document(page)
        ctx = PayloadContext(
            device=self.device,
            page_url=page.url,
            receiver_host=ws_host,
            cookie_value=cookie_value,
            cookie_first_seen=first_seen,
            user_id=plan.user_id,
            client_ip=self.device.public_ip,
            dom_html=self._serialized_dom,
            scroll_position=rng.randint(400, 6000),
            timestamp=self.clock.timestamp(),
            rng=rng.child("payload"),
        )
        faults = self.faults
        frame_limit = (
            faults.frame_limit(ws_url, request_id)
            if faults is not None else None
        )
        for frame_index, frame_plan in enumerate(
            render_profile(plan.profile, ctx)
        ):
            if frame_limit is not None and frame_index >= frame_limit:
                # Mid-stream close: the connection dies early; the
                # remaining planned frames are never observed.
                faults.count("midstream_close")
                break
            event_type = (
                WebSocketFrameSent
                if frame_plan.direction == FrameDirection.SENT
                else WebSocketFrameReceived
            )
            if frame_plan.direction == FrameDirection.SENT:
                result.frames_sent += 1
            else:
                result.frames_received += 1
            payload = frame_plan.payload
            if faults is not None and faults.truncate_frame(
                request_id, frame_index
            ):
                faults.count("frame_truncated")
                payload = payload[: max(1, len(payload) // 3)]
            self.bus.publish(event_type(
                timestamp=self.clock.timestamp(),
                request_id=request_id,
                opcode=int(frame_plan.opcode),
                payload_data=payload,
                masked=frame_plan.direction == FrameDirection.SENT,
            ))
            self.clock.advance(0.05)

    # -- rendering --------------------------------------------------------------

    def _render_url(self, node: ResourceNode, page: PageBlueprint) -> str:
        if node.beacon is None or not node.beacon.query_items:
            return node.url
        params = [
            f"{name}={value}"
            for name, value in (
                (item, self._item_value(item, node.url, page))
                for item in node.beacon.query_items
            )
            if value
        ]
        if not params:
            return node.url
        joiner = "&" if "?" in node.url else "?"
        return node.url + joiner + "&".join(params)

    def _render_post_data(
        self, node: ResourceNode, page: PageBlueprint, url: str
    ) -> str:
        if node.beacon is None or not node.beacon.post_items:
            return ""
        parts = []
        for item in node.beacon.post_items:
            value = self._item_value(item, url, page)
            if value:
                parts.append(f"{item}={value}")
        return "&".join(parts)

    def _item_value(self, item: str, url: str, page: PageBlueprint) -> str:
        host = parse_url(url).host
        d = self.device
        if item == "uid":
            cookie = self.jar.ensure_tracking_id(
                host, "uid", self.clock.timestamp()
            )
            return cookie.value
        if item == "user_id":
            return f"u{derive_seed(self.seed, 'http-user', host) % 10**10:010d}"
        if item == "ip":
            return d.public_ip
        if item == "language":
            return d.language
        if item == "viewport":
            return d.viewport
        if item == "device":
            return d.device_type
        if item == "resolution":
            return d.resolution
        if item == "screen":
            return d.screen
        if item == "browser":
            return d.browser_family
        if item == "first_seen":
            first = self.jar.first_seen(host, "uid")
            if first is None:
                return ""
            return dt.datetime.fromtimestamp(
                first, tz=dt.timezone.utc
            ).strftime("%Y-%m-%dT%H:%M:%SZ")
        if item == "dom":
            if not self._serialized_dom:
                self._serialized_dom = serialize_document(page)
            return self._serialized_dom
        return ""

    def _request_headers(
        self,
        url: str,
        first_party: str,
        send_cookie: bool,
        referer: str = "",
    ) -> dict[str, str]:
        headers = {"User-Agent": self.device.user_agent}
        if referer:
            headers["Referer"] = referer
        if send_cookie:
            # Send only cookies that already exist — identifiers are
            # minted by responses (``sets_cookie``), never by requests.
            cookie_header = self.jar.header_for(parse_url(url).host)
            if cookie_header:
                headers["Cookie"] = cookie_header
        return headers

    # -- identifiers --------------------------------------------------------------

    def _next_request_id(self) -> str:
        self._request_counter += 1
        return f"1000.{self._request_counter}"

    def _next_script_id(self) -> str:
        self._script_counter += 1
        return str(self._script_counter)

    def _next_frame_id(self) -> str:
        self._frame_counter += 1
        return f"F{self._frame_counter}"
