"""The simulated Chrome browser.

Executes page blueprints from the synthetic web, emitting the same
DevTools-protocol event stream the paper's crawler consumed from stock
Chrome. The browser owns client state (cookie jar, device profile,
version) and hosts the extension layer — including the webRequest bug
on versions before 58.
"""

from repro.browser.browser import Browser, VisitResult

__all__ = ["Browser", "VisitResult"]
