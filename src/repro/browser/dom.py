"""A miniature DOM: the syntactic document structure of a page.

The paper contrasts the DOM (syntactic nesting) with the inclusion tree
(semantic causation): its Figure 2 shows the same page as both. This
module builds the DOM side — the element tree a page's markup implies —
so that:

* serialized-DOM payloads (what session-replay services exfiltrate)
  contain the page's *actual* structure, scripts and images included;
* Figure 2 can be demonstrated concretely: the DOM puts every element
  under ``<body>`` while the inclusion tree hangs the WebSocket off the
  script that opened it.
"""

from __future__ import annotations

import html as html_mod
from dataclasses import dataclass, field

from repro.net.http import ResourceType
from repro.web.blueprint import PageBlueprint, ResourceNode

_VOID_TAGS = frozenset({"img", "link", "meta", "input", "br"})


@dataclass
class DomNode:
    """One element in the document tree.

    Attributes:
        tag: Element name (lower-case).
        attrs: Attribute mapping, in insertion order.
        children: Child elements.
        text: Direct text content (rendered before children).
        raw_html: Pre-rendered HTML injected verbatim (used for the
            page's content fragment, which may contain sensitive form
            state).
    """

    tag: str
    attrs: dict[str, str] = field(default_factory=dict)
    children: list["DomNode"] = field(default_factory=list)
    text: str = ""
    raw_html: str = ""

    def append(self, child: "DomNode") -> "DomNode":
        """Attach and return a child element."""
        self.children.append(child)
        return child

    def walk(self):
        """Yield this node and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def serialize(self) -> str:
        """Render the subtree as HTML."""
        attrs = "".join(
            f' {name}="{html_mod.escape(value, quote=True)}"'
            for name, value in self.attrs.items()
        )
        if self.tag in _VOID_TAGS:
            return f"<{self.tag}{attrs}/>"
        inner = (
            html_mod.escape(self.text) if self.text else ""
        ) + self.raw_html + "".join(c.serialize() for c in self.children)
        return f"<{self.tag}{attrs}>{inner}</{self.tag}>"


def _element_for(resource: ResourceNode) -> DomNode | None:
    """The markup element a resource inclusion corresponds to."""
    if resource.inline:
        return DomNode("script", text="/* inline bootstrap */")
    rtype = resource.resource_type
    if rtype == ResourceType.SCRIPT:
        return DomNode("script", {"src": resource.url})
    if rtype == ResourceType.IMAGE:
        return DomNode("img", {"src": resource.url})
    if rtype == ResourceType.STYLESHEET:
        return DomNode("link", {"rel": "stylesheet", "href": resource.url})
    if rtype == ResourceType.SUB_FRAME:
        return DomNode("iframe", {"src": resource.url})
    # XHR/ping/font/media inclusions have no markup element of their own.
    return None


def build_dom(page: PageBlueprint) -> DomNode:
    """Build the document tree for a page blueprint.

    Only *syntactic* children appear nested (an iframe's document);
    resources requested by scripts do NOT nest under the script element
    — that relationship belongs to the inclusion tree, which is the
    whole point of Figure 2.
    """
    root = DomNode("html")
    head = root.append(DomNode("head"))
    head.append(DomNode("title", text=page.title))
    body = root.append(DomNode("body"))
    if page.title:
        body.append(DomNode("h1", text=page.title))
    for resource in page.resources:
        _place(resource, head, body)
    if page.dom_html:
        body.append(DomNode("div", {"class": "content"},
                            raw_html=page.dom_html))
    return root


def _place(resource: ResourceNode, head: DomNode, body: DomNode) -> None:
    element = _element_for(resource)
    if element is None:
        return
    if element.tag == "link":
        head.append(element)
    else:
        body.append(element)
    if resource.resource_type == ResourceType.SUB_FRAME:
        # The iframe's own document nests syntactically.
        frame_doc = DomNode("html")
        frame_body = frame_doc.append(DomNode("body"))
        for child in resource.children:
            _place(child, frame_doc, frame_body)
        element.append(frame_doc)
    else:
        # Dynamically requested children render wherever the script put
        # them — conventionally appended to <body>, NOT under <script>.
        for child in resource.children:
            _place(child, head, body)


def serialize_document(page: PageBlueprint) -> str:
    """The full serialized document, as a replay service would capture."""
    return "<!DOCTYPE html>" + build_dom(page).serialize()
