"""Synchronous event bus connecting the browser to its observers.

The browser publishes :class:`~repro.cdp.events.CdpEvent` instances; the
inclusion-tree builder, session recorder, and any test hooks subscribe.
Delivery is synchronous and in publication order — the same total order a
single DevTools WebSocket connection would provide.

``publish`` is the hottest call in the whole pipeline (every request,
script, frame, and socket of every page of every crawl flows through
it), so the subscriber list is iterated via a cached immutable snapshot
that is invalidated on subscribe/unsubscribe instead of being copied on
every publish. Mutations from inside a handler are safe: the in-flight
delivery keeps using the snapshot it started with, exactly like the old
copy-per-publish behaviour.

The bus also keeps lightweight telemetry — per-method publish counts
and total deliveries — cheap enough to stay always-on; the obs layer
(:mod:`repro.obs`) harvests them at stage boundaries.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.cdp.events import CdpEvent

Subscriber = Callable[[CdpEvent], None]


class EventBus:
    """Fan-out of CDP events to registered subscribers."""

    def __init__(self) -> None:
        self._subscribers: list[tuple[Subscriber, tuple[type, ...] | None]] = []
        self._snapshot: tuple[tuple[Subscriber, tuple[type, ...] | None], ...] = ()
        self._snapshot_valid = True
        self._published = 0
        self._delivered = 0
        self._by_method: dict[str, int] = {}

    def subscribe(
        self,
        handler: Subscriber,
        event_types: Iterable[type] | None = None,
    ) -> Callable[[], None]:
        """Register a handler, optionally filtered to specific event types.

        Returns:
            A zero-argument unsubscribe function.
        """
        filter_types = tuple(event_types) if event_types is not None else None
        entry = (handler, filter_types)
        self._subscribers.append(entry)
        self._snapshot_valid = False

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(entry)
            except ValueError:
                pass
            else:
                self._snapshot_valid = False

        return unsubscribe

    def publish(self, event: CdpEvent) -> None:
        """Deliver an event to every matching subscriber, in order."""
        self._published += 1
        method = event.METHOD
        self._by_method[method] = self._by_method.get(method, 0) + 1
        if not self._snapshot_valid:
            self._snapshot = tuple(self._subscribers)
            self._snapshot_valid = True
        delivered = 0
        for handler, filter_types in self._snapshot:
            if filter_types is None or isinstance(event, filter_types):
                handler(event)
                delivered += 1
        self._delivered += delivered

    @property
    def published_count(self) -> int:
        """Total number of events published on this bus."""
        return self._published

    @property
    def delivered_count(self) -> int:
        """Total handler invocations (subscriber fan-out)."""
        return self._delivered

    @property
    def published_by_method(self) -> dict[str, int]:
        """Publish counts keyed by CDP method name (a copy)."""
        return dict(self._by_method)

    @property
    def subscriber_count(self) -> int:
        """Number of live subscriptions."""
        return len(self._subscribers)
