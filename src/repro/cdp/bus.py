"""Synchronous event bus connecting the browser to its observers.

The browser publishes :class:`~repro.cdp.events.CdpEvent` instances; the
inclusion-tree builder, session recorder, and any test hooks subscribe.
Delivery is synchronous and in publication order — the same total order a
single DevTools WebSocket connection would provide.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.cdp.events import CdpEvent

Subscriber = Callable[[CdpEvent], None]


class EventBus:
    """Fan-out of CDP events to registered subscribers."""

    def __init__(self) -> None:
        self._subscribers: list[tuple[Subscriber, tuple[type, ...] | None]] = []
        self._published = 0

    def subscribe(
        self,
        handler: Subscriber,
        event_types: Iterable[type] | None = None,
    ) -> Callable[[], None]:
        """Register a handler, optionally filtered to specific event types.

        Returns:
            A zero-argument unsubscribe function.
        """
        filter_types = tuple(event_types) if event_types is not None else None
        entry = (handler, filter_types)
        self._subscribers.append(entry)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(entry)
            except ValueError:
                pass

        return unsubscribe

    def publish(self, event: CdpEvent) -> None:
        """Deliver an event to every matching subscriber, in order."""
        self._published += 1
        for handler, filter_types in list(self._subscribers):
            if filter_types is None or isinstance(event, filter_types):
                handler(event)

    @property
    def published_count(self) -> int:
        """Total number of events published on this bus."""
        return self._published

    @property
    def subscriber_count(self) -> int:
        """Number of live subscriptions."""
        return len(self._subscribers)
