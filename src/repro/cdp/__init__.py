"""Chrome DevTools Protocol event layer.

The simulated browser communicates with the measurement tooling the same
way the paper's crawler talked to stock Chrome: a stream of DevTools
events in the ``Debugger``, ``Network``, and ``Page`` domains. The
inclusion-tree builder (§3.1–3.2 of the paper) consumes exactly this
stream and nothing else, so it would work unchanged against a real
browser emitting the same events.
"""

from repro.cdp.bus import EventBus
from repro.cdp.events import (
    CdpEvent,
    FrameNavigated,
    Initiator,
    RequestWillBeSent,
    ResponseReceived,
    ScriptParsed,
    WebSocketClosed,
    WebSocketCreated,
    WebSocketFrameReceived,
    WebSocketFrameSent,
    WebSocketHandshakeResponseReceived,
    WebSocketWillSendHandshakeRequest,
)
from repro.cdp.recorder import SessionRecorder

__all__ = [
    "EventBus",
    "CdpEvent",
    "Initiator",
    "ScriptParsed",
    "RequestWillBeSent",
    "ResponseReceived",
    "FrameNavigated",
    "WebSocketCreated",
    "WebSocketWillSendHandshakeRequest",
    "WebSocketHandshakeResponseReceived",
    "WebSocketFrameSent",
    "WebSocketFrameReceived",
    "WebSocketClosed",
    "SessionRecorder",
]
