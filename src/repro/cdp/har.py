"""HAR (HTTP Archive 1.2) export of recorded sessions.

Measurement crawlers conventionally archive visits as HAR; this module
converts a recorded CDP event stream into a HAR document, with the
WebSocket traffic attached under the de-facto ``_webSocketMessages``
extension field that browser devtools use.
"""

from __future__ import annotations

import datetime as dt
import json
from pathlib import Path
from typing import Iterable

from repro.util.atomicio import atomic_write
from repro.cdp.events import (
    CdpEvent,
    RequestWillBeSent,
    ResponseReceived,
    WebSocketCreated,
    WebSocketFrameReceived,
    WebSocketFrameSent,
    WebSocketWillSendHandshakeRequest,
)

_HAR_VERSION = "1.2"
_CREATOR = {"name": "repro-websockets-imc18", "version": "1.0.0"}


def _iso(ts: float) -> str:
    return dt.datetime.fromtimestamp(ts, tz=dt.timezone.utc).isoformat()


def _headers(mapping: dict[str, str]) -> list[dict[str, str]]:
    return [{"name": k, "value": v} for k, v in mapping.items()]


def events_to_har(events: Iterable[CdpEvent]) -> dict:
    """Convert a session's events into a HAR dictionary.

    HTTP request/response pairs become ordinary HAR entries; WebSocket
    connections become entries whose ``_resourceType`` is
    ``"websocket"`` with their frames in ``_webSocketMessages``.
    """
    entries: dict[str, dict] = {}
    order: list[str] = []
    for event in events:
        if isinstance(event, RequestWillBeSent):
            entry = {
                "startedDateTime": _iso(event.timestamp),
                "time": 0.0,
                "request": {
                    "method": event.method,
                    "url": event.url,
                    "httpVersion": "HTTP/1.1",
                    "headers": _headers(event.headers),
                    "queryString": [],
                    "cookies": [],
                    "headersSize": -1,
                    "bodySize": len(event.post_data),
                },
                "response": _empty_response(),
                "cache": {},
                "timings": {"send": 0, "wait": 0, "receive": 0},
                "_resourceType": event.resource_type.lower(),
            }
            if event.post_data:
                entry["request"]["postData"] = {
                    "mimeType": "application/x-www-form-urlencoded",
                    "text": event.post_data,
                }
            entries[event.request_id] = entry
            order.append(event.request_id)
        elif isinstance(event, ResponseReceived):
            entry = entries.get(event.request_id)
            if entry is not None:
                entry["response"] = {
                    "status": event.status,
                    "statusText": "OK" if event.status == 200 else "",
                    "httpVersion": "HTTP/1.1",
                    "headers": [],
                    "cookies": [],
                    "content": {"size": 0, "mimeType": event.mime_type},
                    "redirectURL": "",
                    "headersSize": -1,
                    "bodySize": -1,
                }
        elif isinstance(event, WebSocketCreated):
            entry = {
                "startedDateTime": _iso(event.timestamp),
                "time": 0.0,
                "request": {
                    "method": "GET",
                    "url": event.url,
                    "httpVersion": "HTTP/1.1",
                    "headers": [],
                    "queryString": [],
                    "cookies": [],
                    "headersSize": -1,
                    "bodySize": 0,
                },
                "response": _empty_response(),
                "cache": {},
                "timings": {"send": 0, "wait": 0, "receive": 0},
                "_resourceType": "websocket",
                "_webSocketMessages": [],
                "_initiator": event.initiator.url,
            }
            entries[event.request_id] = entry
            order.append(event.request_id)
        elif isinstance(event, WebSocketWillSendHandshakeRequest):
            entry = entries.get(event.request_id)
            if entry is not None:
                entry["request"]["headers"] = _headers(event.headers)
        elif isinstance(event, (WebSocketFrameSent, WebSocketFrameReceived)):
            entry = entries.get(event.request_id)
            if entry is not None and "_webSocketMessages" in entry:
                entry["_webSocketMessages"].append({
                    "type": "send" if isinstance(event, WebSocketFrameSent)
                    else "receive",
                    "time": event.timestamp,
                    "opcode": event.opcode,
                    "data": event.payload_data,
                })
    return {
        "log": {
            "version": _HAR_VERSION,
            "creator": dict(_CREATOR),
            "entries": [entries[request_id] for request_id in order],
        }
    }


def _empty_response() -> dict:
    return {
        "status": 0,
        "statusText": "",
        "httpVersion": "HTTP/1.1",
        "headers": [],
        "cookies": [],
        "content": {"size": 0, "mimeType": ""},
        "redirectURL": "",
        "headersSize": -1,
        "bodySize": -1,
    }


def save_har(path: str | Path, events: Iterable[CdpEvent]) -> Path:
    """Write a session's HAR document to disk; returns the path."""
    document = json.dumps(events_to_har(events), indent=2,
                          ensure_ascii=False)
    return atomic_write(Path(path), document + "\n")
