"""Typed DevTools protocol events.

Each class mirrors one CDP event the paper's crawler subscribed to
(§3.1–3.2): ``Debugger.scriptParsed``, ``Network.requestWillBeSent``,
``Network.responseReceived``, ``Page.frameNavigated``, and the six
``Network.webSocket*`` events. ``to_cdp()`` renders the canonical
wire-shape dictionary; ``from_cdp()`` parses one back, so recorded
sessions round-trip through JSONL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Type


@dataclass(frozen=True)
class Initiator:
    """Who caused a network request, per CDP ``Network.Initiator``.

    Attributes:
        type: ``"parser"`` (static HTML inclusion), ``"script"`` (dynamic
            inclusion by JavaScript), or ``"other"`` (navigation).
        url: Initiating document or script URL, when known.
        script_id: DevTools script identifier for script initiators.
        stack_urls: Script URLs on the initiating call stack, innermost
            first — what real CDP exposes as ``initiator.stack``.
    """

    type: str = "other"
    url: str = ""
    script_id: str = ""
    stack_urls: tuple[str, ...] = ()

    def to_cdp(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"type": self.type}
        if self.url:
            payload["url"] = self.url
        if self.stack_urls:
            payload["stack"] = {
                "callFrames": [
                    {"url": url, "scriptId": self.script_id, "functionName": ""}
                    for url in self.stack_urls
                ]
            }
        return payload

    @classmethod
    def from_cdp(cls, payload: dict[str, Any]) -> "Initiator":
        stack = payload.get("stack", {}).get("callFrames", [])
        return cls(
            type=payload.get("type", "other"),
            url=payload.get("url", ""),
            script_id=(stack[0].get("scriptId", "") if stack else ""),
            stack_urls=tuple(frame.get("url", "") for frame in stack),
        )


@dataclass(frozen=True)
class CdpEvent:
    """Base class for all protocol events."""

    METHOD: ClassVar[str] = ""

    timestamp: float

    def params(self) -> dict[str, Any]:
        """Event parameters in CDP wire shape (overridden by subclasses)."""
        return {}

    def to_cdp(self) -> dict[str, Any]:
        """Full wire message: ``{"method": ..., "params": {...}}``."""
        params = self.params()
        params["timestamp"] = self.timestamp
        return {"method": self.METHOD, "params": params}


@dataclass(frozen=True)
class ScriptParsed(CdpEvent):
    """``Debugger.scriptParsed`` — a script began executing.

    Fired for both remote scripts (``url`` set to the source URL) and
    inline scripts (``url`` set to the containing document, as Chrome
    does for scripts without a ``//# sourceURL``).
    """

    METHOD: ClassVar[str] = "Debugger.scriptParsed"

    script_id: str = ""
    url: str = ""
    frame_id: str = ""
    is_inline: bool = False

    def params(self) -> dict[str, Any]:
        return {
            "scriptId": self.script_id,
            "url": self.url,
            "executionContextAuxData": {"frameId": self.frame_id},
            "hasSourceURL": False,
            "isModule": False,
            "embedderName": self.url,
            "isInline": self.is_inline,
        }


@dataclass(frozen=True)
class RequestWillBeSent(CdpEvent):
    """``Network.requestWillBeSent`` — an HTTP/S request is leaving."""

    METHOD: ClassVar[str] = "Network.requestWillBeSent"

    request_id: str = ""
    document_url: str = ""
    url: str = ""
    method: str = "GET"
    resource_type: str = "Other"
    frame_id: str = ""
    initiator: Initiator = field(default_factory=Initiator)
    headers: dict[str, str] = field(default_factory=dict)
    post_data: str = ""

    def params(self) -> dict[str, Any]:
        request: dict[str, Any] = {
            "url": self.url,
            "method": self.method,
            "headers": dict(self.headers),
        }
        if self.post_data:
            request["postData"] = self.post_data
        return {
            "requestId": self.request_id,
            "documentURL": self.document_url,
            "request": request,
            "initiator": self.initiator.to_cdp(),
            "type": self.resource_type,
            "frameId": self.frame_id,
        }


@dataclass(frozen=True)
class ResponseReceived(CdpEvent):
    """``Network.responseReceived`` — response headers arrived."""

    METHOD: ClassVar[str] = "Network.responseReceived"

    request_id: str = ""
    url: str = ""
    status: int = 200
    mime_type: str = ""
    resource_type: str = "Other"
    frame_id: str = ""

    def params(self) -> dict[str, Any]:
        return {
            "requestId": self.request_id,
            "response": {
                "url": self.url,
                "status": self.status,
                "mimeType": self.mime_type,
            },
            "type": self.resource_type,
            "frameId": self.frame_id,
        }


@dataclass(frozen=True)
class FrameNavigated(CdpEvent):
    """``Page.frameNavigated`` — a frame committed a navigation."""

    METHOD: ClassVar[str] = "Page.frameNavigated"

    frame_id: str = ""
    parent_frame_id: str = ""
    url: str = ""
    initiator_url: str = ""

    def params(self) -> dict[str, Any]:
        frame: dict[str, Any] = {"id": self.frame_id, "url": self.url}
        if self.parent_frame_id:
            frame["parentId"] = self.parent_frame_id
        if self.initiator_url:
            frame["initiatorUrl"] = self.initiator_url
        return {"frame": frame}


@dataclass(frozen=True)
class WebSocketCreated(CdpEvent):
    """``Network.webSocketCreated`` — ``new WebSocket(url)`` was called."""

    METHOD: ClassVar[str] = "Network.webSocketCreated"

    request_id: str = ""
    url: str = ""
    initiator: Initiator = field(default_factory=Initiator)
    frame_id: str = ""

    def params(self) -> dict[str, Any]:
        return {
            "requestId": self.request_id,
            "url": self.url,
            "initiator": self.initiator.to_cdp(),
            "frameId": self.frame_id,
        }


@dataclass(frozen=True)
class WebSocketWillSendHandshakeRequest(CdpEvent):
    """``Network.webSocketWillSendHandshakeRequest`` — upgrade leaving."""

    METHOD: ClassVar[str] = "Network.webSocketWillSendHandshakeRequest"

    request_id: str = ""
    headers: dict[str, str] = field(default_factory=dict)
    wall_time: float = 0.0

    def params(self) -> dict[str, Any]:
        return {
            "requestId": self.request_id,
            "wallTime": self.wall_time,
            "request": {"headers": dict(self.headers)},
        }


@dataclass(frozen=True)
class WebSocketHandshakeResponseReceived(CdpEvent):
    """``Network.webSocketHandshakeResponseReceived`` — 101 arrived."""

    METHOD: ClassVar[str] = "Network.webSocketHandshakeResponseReceived"

    request_id: str = ""
    status: int = 101
    headers: dict[str, str] = field(default_factory=dict)

    def params(self) -> dict[str, Any]:
        return {
            "requestId": self.request_id,
            "response": {
                "status": self.status,
                "statusText": "Switching Protocols" if self.status == 101 else "",
                "headers": dict(self.headers),
            },
        }


@dataclass(frozen=True)
class _WebSocketFrameEvent(CdpEvent):
    """Shared shape of frame-sent / frame-received events."""

    request_id: str = ""
    opcode: int = 1
    payload_data: str = ""
    masked: bool = False

    def params(self) -> dict[str, Any]:
        return {
            "requestId": self.request_id,
            "response": {
                "opcode": self.opcode,
                "mask": self.masked,
                "payloadData": self.payload_data,
            },
        }


@dataclass(frozen=True)
class WebSocketFrameSent(_WebSocketFrameEvent):
    """``Network.webSocketFrameSent`` — client → server data frame."""

    METHOD: ClassVar[str] = "Network.webSocketFrameSent"


@dataclass(frozen=True)
class WebSocketFrameReceived(_WebSocketFrameEvent):
    """``Network.webSocketFrameReceived`` — server → client data frame."""

    METHOD: ClassVar[str] = "Network.webSocketFrameReceived"


@dataclass(frozen=True)
class WebSocketClosed(CdpEvent):
    """``Network.webSocketClosed`` — the connection ended."""

    METHOD: ClassVar[str] = "Network.webSocketClosed"

    request_id: str = ""

    def params(self) -> dict[str, Any]:
        return {"requestId": self.request_id}


EVENT_TYPES: tuple[Type[CdpEvent], ...] = (
    ScriptParsed,
    RequestWillBeSent,
    ResponseReceived,
    FrameNavigated,
    WebSocketCreated,
    WebSocketWillSendHandshakeRequest,
    WebSocketHandshakeResponseReceived,
    WebSocketFrameSent,
    WebSocketFrameReceived,
    WebSocketClosed,
)

METHOD_TO_TYPE: dict[str, Type[CdpEvent]] = {t.METHOD: t for t in EVENT_TYPES}


def parse_event(message: dict[str, Any]) -> CdpEvent:
    """Parse a CDP wire message back into a typed event.

    Only the fields the pipeline consumes are recovered; unknown methods
    raise ``KeyError`` so corrupt recordings fail loudly.
    """
    method = message["method"]
    params = message.get("params", {})
    timestamp = float(params.get("timestamp", 0.0))
    event_type = METHOD_TO_TYPE[method]
    if event_type is ScriptParsed:
        return ScriptParsed(
            timestamp=timestamp,
            script_id=params.get("scriptId", ""),
            url=params.get("url", ""),
            frame_id=params.get("executionContextAuxData", {}).get("frameId", ""),
            is_inline=bool(params.get("isInline", False)),
        )
    if event_type is RequestWillBeSent:
        request = params.get("request", {})
        return RequestWillBeSent(
            timestamp=timestamp,
            request_id=params.get("requestId", ""),
            document_url=params.get("documentURL", ""),
            url=request.get("url", ""),
            method=request.get("method", "GET"),
            resource_type=params.get("type", "Other"),
            frame_id=params.get("frameId", ""),
            initiator=Initiator.from_cdp(params.get("initiator", {})),
            headers=dict(request.get("headers", {})),
            post_data=request.get("postData", ""),
        )
    if event_type is ResponseReceived:
        response = params.get("response", {})
        return ResponseReceived(
            timestamp=timestamp,
            request_id=params.get("requestId", ""),
            url=response.get("url", ""),
            status=int(response.get("status", 0)),
            mime_type=response.get("mimeType", ""),
            resource_type=params.get("type", "Other"),
            frame_id=params.get("frameId", ""),
        )
    if event_type is FrameNavigated:
        frame = params.get("frame", {})
        return FrameNavigated(
            timestamp=timestamp,
            frame_id=frame.get("id", ""),
            parent_frame_id=frame.get("parentId", ""),
            url=frame.get("url", ""),
            initiator_url=frame.get("initiatorUrl", ""),
        )
    if event_type is WebSocketCreated:
        return WebSocketCreated(
            timestamp=timestamp,
            request_id=params.get("requestId", ""),
            url=params.get("url", ""),
            initiator=Initiator.from_cdp(params.get("initiator", {})),
            frame_id=params.get("frameId", ""),
        )
    if event_type is WebSocketWillSendHandshakeRequest:
        return WebSocketWillSendHandshakeRequest(
            timestamp=timestamp,
            request_id=params.get("requestId", ""),
            headers=dict(params.get("request", {}).get("headers", {})),
            wall_time=float(params.get("wallTime", 0.0)),
        )
    if event_type is WebSocketHandshakeResponseReceived:
        response = params.get("response", {})
        return WebSocketHandshakeResponseReceived(
            timestamp=timestamp,
            request_id=params.get("requestId", ""),
            status=int(response.get("status", 0)),
            headers=dict(response.get("headers", {})),
        )
    if event_type in (WebSocketFrameSent, WebSocketFrameReceived):
        response = params.get("response", {})
        return event_type(
            timestamp=timestamp,
            request_id=params.get("requestId", ""),
            opcode=int(response.get("opcode", 1)),
            payload_data=response.get("payloadData", ""),
            masked=bool(response.get("mask", False)),
        )
    return WebSocketClosed(timestamp=timestamp, request_id=params.get("requestId", ""))
