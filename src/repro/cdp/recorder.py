"""Recording and replaying CDP sessions.

The original study archived raw crawl output and analyzed it post-hoc
(e.g. the filter lists were applied to chains "post-hoc", §4.2). The
recorder captures the exact event stream of a page visit so analyses can
be re-run without re-crawling, and so fixtures for tests can be stored
as plain JSONL.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.cdp.bus import EventBus
from repro.cdp.events import CdpEvent, parse_event
from repro.util.serialization import read_jsonl, write_jsonl


class SessionRecorder:
    """Accumulates every event published on a bus."""

    def __init__(self, bus: EventBus | None = None) -> None:
        self.events: list[CdpEvent] = []
        self._unsubscribe = None
        if bus is not None:
            self.attach(bus)

    def attach(self, bus: EventBus) -> None:
        """Start recording events from a bus."""
        self.detach()
        self._unsubscribe = bus.subscribe(self.events.append)

    def detach(self) -> None:
        """Stop recording."""
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    def clear(self) -> None:
        """Drop recorded events."""
        self.events.clear()

    def save(self, path: str | Path) -> int:
        """Write the recorded session to JSONL; returns the event count."""
        return write_jsonl(path, (event.to_cdp() for event in self.events))

    @staticmethod
    def load(path: str | Path) -> list[CdpEvent]:
        """Parse a recorded session back into typed events."""
        return [parse_event(record) for record in read_jsonl(path)]

    def replay_into(self, bus: EventBus) -> int:
        """Publish all recorded events onto another bus, in order."""
        for event in self.events:
            bus.publish(event)
        return len(self.events)

    def __iter__(self) -> Iterator[CdpEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
