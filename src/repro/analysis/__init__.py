"""Analyses reproducing the paper's evaluation (§4).

Each ``tableN``/``figure3`` module computes one published artifact
from a :class:`~repro.crawler.dataset.StudyDataset`; ``classify``
applies the derived A&A labels to socket records; ``blocking`` runs
the §4.2 post-hoc filter-list analysis; ``stats`` computes the §4.1
prose statistics; ``report`` renders fixed-width text tables.
"""

from repro.analysis.classify import SocketView, classify_sockets
from repro.analysis.table1 import Table1Row, compute_table1
from repro.analysis.table2 import Table2Row, compute_table2
from repro.analysis.table3 import Table3Row, compute_table3
from repro.analysis.table4 import Table4Row, compute_table4
from repro.analysis.table5 import Table5, compute_table5
from repro.analysis.figure3 import Figure3Series, compute_figure3
from repro.analysis.blocking import BlockingStats, compute_blocking_stats
from repro.analysis.drift import InitiatorDrift, compute_initiator_drift, render_drift
from repro.analysis.stats import OverallStats, compute_overall_stats

__all__ = [
    "SocketView",
    "classify_sockets",
    "Table1Row",
    "compute_table1",
    "Table2Row",
    "compute_table2",
    "Table3Row",
    "compute_table3",
    "Table4Row",
    "compute_table4",
    "Table5",
    "compute_table5",
    "Figure3Series",
    "compute_figure3",
    "BlockingStats",
    "compute_blocking_stats",
    "OverallStats",
    "compute_overall_stats",
    "InitiatorDrift",
    "compute_initiator_drift",
    "render_drift",
]
