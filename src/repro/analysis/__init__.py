"""Analyses reproducing the paper's evaluation (§4).

Each ``tableN``/``figure3`` module computes one published artifact
from a :class:`~repro.crawler.dataset.StudyDataset`; ``classify``
applies the derived A&A labels to socket records; ``blocking`` runs
the §4.2 post-hoc filter-list analysis; ``stats`` computes the §4.1
prose statistics; ``report`` renders fixed-width text tables.

The streaming layer (:mod:`repro.analysis.engine`) folds every stage
accumulator (:mod:`repro.analysis.stage`) in one O(views) sweep and
serves unchanged stages from the content-addressed artifact cache
(:mod:`repro.analysis.cache`). Underscore-prefixed modules
(``repro.analysis._codecs``) are package-private — importing them from
outside ``repro.analysis`` trips the ``API-PRIVATE`` lint.
"""

from repro.analysis.blocking import BlockingStats, compute_blocking_stats
from repro.analysis.cache import (
    StageCache,
    StateCache,
    labeler_fingerprint,
    stage_key,
)
from repro.analysis.classify import SocketView, classify_sockets
from repro.analysis.drift import (
    InitiatorDrift,
    compute_initiator_drift,
    render_drift,
)
from repro.analysis.engine import (
    AnalysisEngine,
    AnalysisResult,
    DatasetSource,
    SegmentSlice,
    fold_shard,
    merge_stage_lists,
)
from repro.analysis.figure3 import Figure3Series, compute_figure3
from repro.analysis.stage import (
    AnalysisStage,
    StageContext,
    default_stages,
    register_stage,
    registered_stages,
    study_stages,
)
from repro.analysis.stats import OverallStats, compute_overall_stats
from repro.analysis.table1 import Table1Row, compute_table1
from repro.analysis.table2 import Table2Row, compute_table2
from repro.analysis.table3 import Table3Row, compute_table3
from repro.analysis.table4 import Table4, Table4Row, compute_table4
from repro.analysis.table5 import Table5, compute_table5

__all__ = [
    # Classification.
    "SocketView",
    "classify_sockets",
    # The streaming engine and stage protocol.
    "AnalysisEngine",
    "AnalysisResult",
    "AnalysisStage",
    "DatasetSource",
    "SegmentSlice",
    "StageCache",
    "StageContext",
    "StateCache",
    "default_stages",
    "fold_shard",
    "labeler_fingerprint",
    "merge_stage_lists",
    "register_stage",
    "registered_stages",
    "stage_key",
    "study_stages",
    # Materialized per-artifact entry points.
    "Table1Row",
    "compute_table1",
    "Table2Row",
    "compute_table2",
    "Table3Row",
    "compute_table3",
    "Table4",
    "Table4Row",
    "compute_table4",
    "Table5",
    "compute_table5",
    "Figure3Series",
    "compute_figure3",
    "BlockingStats",
    "compute_blocking_stats",
    "OverallStats",
    "compute_overall_stats",
    "InitiatorDrift",
    "compute_initiator_drift",
    "render_drift",
]
