"""The §4.3 / Figure 4 ad-delivery analysis.

Checks three things the paper reported:

* no ad *images* flow over sockets directly (the received-Image class
  is near zero) — instead ad *units* (creative URL + caption +
  dimensions) arrive as JSON;
* Lockerdome is the ad-over-WebSocket network;
* the creative hosts are not covered by the filter lists, so even a
  patched browser's blocker would not stop the images from loading —
  "the WRB was effectively allowing Lockerdome to circumvent ad
  blockers".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.analysis.classify import SocketView
from repro.filters.engine import FilterEngine
from repro.net.http import ResourceType

_GENERIC_FIRST_PARTY = "https://publisher-context.example/"


@dataclass
class AdDeliveryStats:
    """What ad delivery over WebSockets looked like.

    Attributes:
        sockets_with_ads: Sockets that delivered ≥1 ad unit.
        total_units: Ad units across all sockets.
        receivers: Receiver domain → socket count.
        creative_hosts: Host → unit count.
        unlisted_creative_units: Units whose creative URL no list rule
            blocks (the circumvention).
        sample_captions: A few observed captions (Figure 4's clickbait).
    """

    sockets_with_ads: int = 0
    total_units: int = 0
    receivers: Counter = field(default_factory=Counter)
    creative_hosts: Counter = field(default_factory=Counter)
    unlisted_creative_units: int = 0
    sample_captions: list[str] = field(default_factory=list)

    @property
    def pct_unlisted_creatives(self) -> float:
        """Share of creatives a blocker could not have stopped."""
        if not self.total_units:
            return 0.0
        return 100.0 * self.unlisted_creative_units / self.total_units


def compute_ad_delivery(
    views: list[SocketView],
    engine: FilterEngine,
    caption_samples: int = 6,
) -> AdDeliveryStats:
    """Aggregate ad units over the classified sockets."""
    stats = AdDeliveryStats()
    for view in views:
        units = view.record.ad_units
        if not units:
            continue
        stats.sockets_with_ads += 1
        stats.receivers[view.receiver_domain] += 1
        for unit in units:
            stats.total_units += 1
            host = unit.image_url.split("//", 1)[-1].split("/", 1)[0]
            stats.creative_hosts[host] += 1
            if not engine.would_block(
                unit.image_url, ResourceType.IMAGE, _GENERIC_FIRST_PARTY
            ):
                stats.unlisted_creative_units += 1
            if unit.caption and len(stats.sample_captions) < caption_samples:
                if unit.caption not in stats.sample_captions:
                    stats.sample_captions.append(unit.caption)
    return stats


def render_ad_delivery(stats: AdDeliveryStats) -> str:
    """Text summary of the ad-delivery findings."""
    lines = [
        f"Sockets delivering ad units: {stats.sockets_with_ads:,} "
        f"({stats.total_units:,} units)",
    ]
    for domain, count in stats.receivers.most_common(5):
        lines.append(f"  receiver {domain}: {count} sockets")
    for host, count in stats.creative_hosts.most_common(3):
        lines.append(f"  creatives hosted on {host}: {count}")
    lines.append(
        f"Creatives NOT covered by any filter rule: "
        f"{stats.pct_unlisted_creatives:.0f}% — blocker circumvention"
    )
    if stats.sample_captions:
        lines.append("Sample captions (Figure 4's clickbait):")
        for caption in stats.sample_captions:
            lines.append(f"  “{caption}”")
    return "\n".join(lines)
