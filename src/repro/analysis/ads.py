"""The §4.3 / Figure 4 ad-delivery analysis.

Checks three things the paper reported:

* no ad *images* flow over sockets directly (the received-Image class
  is near zero) — instead ad *units* (creative URL + caption +
  dimensions) arrive as JSON;
* Lockerdome is the ad-over-WebSocket network;
* the creative hosts are not covered by the filter lists, so even a
  patched browser's blocker would not stop the images from loading —
  "the WRB was effectively allowing Lockerdome to circumvent ad
  blockers".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.classify import SocketView
from repro.analysis.stage import (
    AnalysisStage,
    StageContext,
    fold_views,
    register_stage,
)
from repro.filters import FilterEngine
from repro.net.http import ResourceType

_GENERIC_FIRST_PARTY = "https://publisher-context.example/"


@dataclass
class AdDeliveryStats:
    """What ad delivery over WebSockets looked like.

    Attributes:
        sockets_with_ads: Sockets that delivered ≥1 ad unit.
        total_units: Ad units across all sockets.
        receivers: Receiver domain → socket count.
        creative_hosts: Host → unit count.
        unlisted_creative_units: Units whose creative URL no list rule
            blocks (the circumvention).
        sample_captions: A few observed captions (Figure 4's clickbait;
            the lexicographically first distinct ones, so the sample is
            independent of observation order).
    """

    sockets_with_ads: int = 0
    total_units: int = 0
    receivers: Counter = field(default_factory=Counter)
    creative_hosts: Counter = field(default_factory=Counter)
    unlisted_creative_units: int = 0
    sample_captions: list[str] = field(default_factory=list)

    @property
    def pct_unlisted_creatives(self) -> float:
        """Share of creatives a blocker could not have stopped."""
        if not self.total_units:
            return 0.0
        return 100.0 * self.unlisted_creative_units / self.total_units


@register_stage
class AdsStage(AnalysisStage):
    """Ad-unit aggregation, folded in one sweep.

    The fold deduplicates creative URLs with occurrence counts;
    filter-engine evaluation of the creatives happens at ``finalize``,
    keeping the fold engine-free and mergeable.
    """

    name = "ads"
    version = "1"

    def __init__(self, caption_samples: int = 6) -> None:
        self.caption_samples = caption_samples
        self._sockets_with_ads = 0
        self._total_units = 0
        self._receivers: Counter = Counter()
        self._creative_hosts: Counter = Counter()
        self._unit_urls: dict[str, int] = {}
        self._captions: set[str] = set()

    def spawn(self) -> "AdsStage":
        return AdsStage(self.caption_samples)

    def config_token(self) -> str:
        return f"caption_samples={self.caption_samples}"

    def fold(self, view: SocketView) -> None:
        units = view.record.ad_units
        if not units:
            return
        self._sockets_with_ads += 1
        self._receivers[view.receiver_domain] += 1
        for unit in units:
            self._total_units += 1
            host = unit.image_url.split("//", 1)[-1].split("/", 1)[0]
            self._creative_hosts[host] += 1
            self._unit_urls[unit.image_url] = (
                self._unit_urls.get(unit.image_url, 0) + 1
            )
            if unit.caption:
                self._captions.add(unit.caption)

    def merge(self, other: "AdsStage") -> None:
        self._sockets_with_ads += other._sockets_with_ads
        self._total_units += other._total_units
        self._receivers.update(other._receivers)
        self._creative_hosts.update(other._creative_hosts)
        for url, count in other._unit_urls.items():
            self._unit_urls[url] = self._unit_urls.get(url, 0) + count
        self._captions.update(other._captions)

    def finalize(self, ctx: StageContext) -> AdDeliveryStats:
        stats = AdDeliveryStats(
            sockets_with_ads=self._sockets_with_ads,
            total_units=self._total_units,
            receivers=Counter(self._receivers),
            creative_hosts=Counter(self._creative_hosts),
            sample_captions=sorted(self._captions)[:self.caption_samples],
        )
        if ctx.engine is not None:
            for url in sorted(self._unit_urls):
                if not ctx.engine.would_block(
                    url, ResourceType.IMAGE, _GENERIC_FIRST_PARTY
                ):
                    stats.unlisted_creative_units += self._unit_urls[url]
        return stats

    def encode_artifact(self, artifact: AdDeliveryStats) -> dict:
        from repro.analysis._codecs import encode_ads

        return encode_ads(artifact)

    def decode_artifact(self, payload: dict) -> AdDeliveryStats:
        from repro.analysis._codecs import decode_ads

        return decode_ads(payload)


def compute_ad_delivery(
    views: Iterable[SocketView],
    engine: FilterEngine,
    caption_samples: int = 6,
) -> AdDeliveryStats:
    """Aggregate ad units over the classified sockets."""
    stage = fold_views(AdsStage(caption_samples), views)
    return stage.finalize(StageContext(engine=engine))


def _top(counter: Counter, n: int) -> list[tuple[str, int]]:
    """Deterministic top-``n``: by count desc, then key asc."""
    return sorted(counter.items(), key=lambda kv: (-kv[1], kv[0]))[:n]


def render_ad_delivery(stats: AdDeliveryStats) -> str:
    """Text summary of the ad-delivery findings."""
    lines = [
        f"Sockets delivering ad units: {stats.sockets_with_ads:,} "
        f"({stats.total_units:,} units)",
    ]
    for domain, count in _top(stats.receivers, 5):
        lines.append(f"  receiver {domain}: {count} sockets")
    for host, count in _top(stats.creative_hosts, 3):
        lines.append(f"  creatives hosted on {host}: {count}")
    lines.append(
        f"Creatives NOT covered by any filter rule: "
        f"{stats.pct_unlisted_creatives:.0f}% — blocker circumvention"
    )
    if stats.sample_captions:
        lines.append("Sample captions (Figure 4's clickbait):")
        for caption in stats.sample_captions:
            lines.append(f"  “{caption}”")
    return "\n".join(lines)
