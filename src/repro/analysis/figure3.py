"""Figure 3: WebSocket usage by Alexa site rank.

For every rank bin (10K wide, to 1M), the fraction of crawled
publishers in that bin exhibiting A&A sockets and non-A&A sockets.
The paper's headline shape: A&A ≈ 2× non-A&A overall, ≈ 4.5× within
the top 10K, with a drop between 10K and 20K.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.analysis.classify import SocketView
from repro.analysis.stage import (
    AnalysisStage,
    StageContext,
    fold_views,
    register_stage,
)
from repro.crawler.dataset import DatasetMeta

BIN_WIDTH = 10_000
MAX_RANK = 1_000_000


@dataclass(frozen=True)
class Figure3Series:
    """The figure's two series plus its headline ratios.

    Attributes:
        bins: Bin start ranks (0, 10K, 20K, …).
        aa_fraction: % of publishers in bin with ≥1 A&A socket.
        non_aa_fraction: % of publishers in bin with ≥1 non-A&A (and
            no A&A) classification… see note: a publisher counts in
            the non-A&A series when it has at least one non-A&A socket.
        publishers_per_bin: Denominators.
        overall_ratio: (A&A share) / (non-A&A share) across all ranks.
        top10k_ratio: Same ratio within the first bin.
    """

    bins: tuple[int, ...]
    aa_fraction: tuple[float, ...]
    non_aa_fraction: tuple[float, ...]
    publishers_per_bin: tuple[int, ...]
    overall_ratio: float
    top10k_ratio: float


@register_stage
class Figure3Stage(AnalysisStage):
    """Per-publisher socket prevalence, folded in one sweep.

    The fold only tracks which sites exhibited A&A / non-A&A sockets;
    the rank binning comes from the dataset metadata at ``finalize``.
    """

    name = "figure3"
    version = "1"

    def __init__(self, bin_width: int = BIN_WIDTH) -> None:
        self.bin_width = bin_width
        self._aa_sites: set[str] = set()
        self._non_aa_sites: set[str] = set()

    def spawn(self) -> "Figure3Stage":
        return Figure3Stage(self.bin_width)

    def config_token(self) -> str:
        return f"bin_width={self.bin_width}"

    def fold(self, view: SocketView) -> None:
        if view.is_aa_socket:
            self._aa_sites.add(view.record.site_domain)
        else:
            self._non_aa_sites.add(view.record.site_domain)

    def merge(self, other: "Figure3Stage") -> None:
        self._aa_sites.update(other._aa_sites)
        self._non_aa_sites.update(other._non_aa_sites)

    def finalize(self, ctx: StageContext) -> Figure3Series:
        # Union of crawled publishers (the seed list is shared by crawls).
        publishers: dict[str, int] = {}
        for crawl_meta in sorted(ctx.meta.crawls, key=lambda c: c.index):
            for domain, rank in crawl_meta.sites:
                publishers[domain] = rank
        bin_width = self.bin_width
        n_bins = MAX_RANK // bin_width
        totals = [0] * n_bins
        aa_counts = [0] * n_bins
        non_aa_counts = [0] * n_bins
        for domain, rank in publishers.items():
            index = min((rank - 1) // bin_width, n_bins - 1)
            totals[index] += 1
            if domain in self._aa_sites:
                aa_counts[index] += 1
            if domain in self._non_aa_sites:
                non_aa_counts[index] += 1
        bins = tuple(i * bin_width for i in range(n_bins))
        aa_fraction = tuple(
            100.0 * aa_counts[i] / totals[i] if totals[i] else 0.0
            for i in range(n_bins)
        )
        non_aa_fraction = tuple(
            100.0 * non_aa_counts[i] / totals[i] if totals[i] else 0.0
            for i in range(n_bins)
        )
        total_publishers = sum(totals) or 1
        overall_aa = (
            100.0 * len(self._aa_sites & set(publishers)) / total_publishers
        )
        overall_non = (
            100.0 * len(self._non_aa_sites & set(publishers))
            / total_publishers
        )
        overall_ratio = (
            overall_aa / overall_non if overall_non else float("inf")
        )
        top_ratio = (
            aa_fraction[0] / non_aa_fraction[0]
            if non_aa_fraction and non_aa_fraction[0]
            else float("inf")
        )
        return Figure3Series(
            bins=bins,
            aa_fraction=aa_fraction,
            non_aa_fraction=non_aa_fraction,
            publishers_per_bin=tuple(totals),
            overall_ratio=overall_ratio,
            top10k_ratio=top_ratio,
        )

    def encode_artifact(self, artifact: Figure3Series) -> dict:
        from repro.analysis._codecs import encode_figure3

        return encode_figure3(artifact)

    def decode_artifact(self, payload: dict) -> Figure3Series:
        from repro.analysis._codecs import decode_figure3

        return decode_figure3(payload)


def compute_figure3(
    views: Iterable[SocketView],
    meta: DatasetMeta,
    bin_width: int = BIN_WIDTH,
) -> Figure3Series:
    """Bin publishers by rank and compute per-bin socket prevalence.

    ``meta`` is the dataset's :class:`DatasetMeta` (use
    :meth:`DatasetMeta.from_mappings` when starting from a raw
    ``crawl_sites`` mapping).
    """
    stage = fold_views(Figure3Stage(bin_width), views)
    return stage.finalize(StageContext(meta=meta))


def coarse_series(
    series: Figure3Series, groups: int = 10
) -> list[tuple[str, float, float, int]]:
    """Aggregate the 100 bins into ``groups`` coarse rows for text output."""
    per = len(series.bins) // groups
    rows: list[tuple[str, float, float, int]] = []
    for g in range(groups):
        lo, hi = g * per, (g + 1) * per
        pubs = sum(series.publishers_per_bin[lo:hi])
        if pubs:
            aa = sum(
                series.aa_fraction[i] * series.publishers_per_bin[i] / 100.0
                for i in range(lo, hi)
            )
            non = sum(
                series.non_aa_fraction[i] * series.publishers_per_bin[i] / 100.0
                for i in range(lo, hi)
            )
            rows.append((
                f"{series.bins[lo] // 1000}K-{(series.bins[hi - 1] + 10_000) // 1000}K",
                100.0 * aa / pubs,
                100.0 * non / pubs,
                pubs,
            ))
        else:
            rows.append((f"{series.bins[lo] // 1000}K-", 0.0, 0.0, 0))
    return rows
