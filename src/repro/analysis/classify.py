"""Applying the derived A&A labels to socket records (§3.2).

A socket is attributed by descending its inclusion-tree branch: if any
parent resource's (effective) domain is in the A&A set, the socket is
an *A&A socket*. The initiator is the direct parent; the receiver is
the endpoint's domain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crawler.dataset import SocketRecord, StudyDataset
from repro.labeling.aa_labeler import AaLabeler
from repro.labeling.resolver import DomainResolver


@dataclass(frozen=True)
class SocketView:
    """A socket record with derived attribution.

    Attributes:
        record: The underlying measurement record.
        initiator_domain: Effective domain of the initiating resource.
        receiver_domain: Effective domain of the endpoint.
        aa_initiated: Initiator domain is labeled A&A.
        aa_received: Receiver domain is labeled A&A.
        aa_chain: Some chain ancestor's domain is labeled A&A (the
            §3.2 "A&A socket" criterion).
    """

    record: SocketRecord
    initiator_domain: str
    receiver_domain: str
    aa_initiated: bool
    aa_received: bool
    aa_chain: bool

    @property
    def is_aa_socket(self) -> bool:
        """Whether the socket is A&A in any sense the paper uses."""
        return self.aa_initiated or self.aa_received or self.aa_chain

    @property
    def crawl(self) -> int:
        return self.record.crawl

    @property
    def is_self_pair(self) -> bool:
        """Initiator and receiver share a domain."""
        return self.initiator_domain == self.receiver_domain


def classify_sockets(
    dataset: StudyDataset,
    labeler: AaLabeler | None = None,
    resolver: DomainResolver | None = None,
) -> list[SocketView]:
    """Classify every socket record in the dataset."""
    labeler = labeler or dataset.derive_labeler()
    resolver = resolver or dataset.derive_resolver(labeler)
    views: list[SocketView] = []
    for record in dataset.socket_records:
        views.append(classify_one(record, labeler, resolver))
    return views


def classify_one(
    record: SocketRecord, labeler: AaLabeler, resolver: DomainResolver
) -> SocketView:
    """Classify a single socket record."""
    initiator_domain = resolver.effective_domain(record.initiator_host)
    receiver_domain = resolver.effective_domain(record.socket_host)
    # Chain ancestors: everything above the socket itself.
    ancestor_hosts = record.chain_hosts[:-1] if record.chain_hosts else ()
    aa_chain = any(
        resolver.effective_domain(host) in labeler.aa_domains
        for host in ancestor_hosts
    )
    return SocketView(
        record=record,
        initiator_domain=initiator_domain,
        receiver_domain=receiver_domain,
        aa_initiated=initiator_domain in labeler.aa_domains,
        aa_received=receiver_domain in labeler.aa_domains,
        aa_chain=aa_chain,
    )
