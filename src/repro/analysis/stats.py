"""The §4.1 prose statistics."""

from __future__ import annotations

import dataclasses
from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from repro.analysis.classify import SocketView
from repro.analysis.stage import (
    AnalysisStage,
    StageContext,
    fold_views,
    register_stage,
)


@dataclass(frozen=True)
class OverallStats:
    """Merged-dataset statistics quoted in §4.1's text.

    Attributes:
        total_sockets: All sockets across all crawls.
        pct_cross_origin: % of sockets contacting a third-party domain.
        unique_third_party_receivers: Distinct third-party receiver
            domains (the paper: 382).
        unique_aa_receivers: Distinct A&A receiver domains (20).
        unique_aa_initiators: Distinct A&A initiator domains (94).
        avg_sockets_per_socket_site: Mean sockets per (crawl, site)
            among sites with sockets (6–12 in the paper).
        pct_aa_receivers_ge_10_initiators: % of A&A receivers contacted
            by ≥10 distinct initiators (>47%).
        disappeared_initiators: A&A initiators present in the first
            crawl but absent from the last (56).
        sockets_per_aa_initiator: Mean sockets per A&A initiator domain.
        sockets_per_non_aa_initiator: Mean sockets per non-A&A
            initiator domain — §4.1 observes A&A entities are involved
            in "an order of magnitude more" connections.
        aa_involvement_ratio: The former divided by the latter.
    """

    total_sockets: int
    pct_cross_origin: float
    unique_third_party_receivers: int
    unique_aa_receivers: int
    unique_aa_initiators: int
    avg_sockets_per_socket_site: float
    pct_aa_receivers_ge_10_initiators: float
    disappeared_initiators: int
    sockets_per_aa_initiator: float = 0.0
    sockets_per_non_aa_initiator: float = 0.0

    @property
    def aa_involvement_ratio(self) -> float:
        """How many times busier an A&A initiator is than a benign one."""
        if not self.sockets_per_non_aa_initiator:
            return float("inf") if self.sockets_per_aa_initiator else 0.0
        return self.sockets_per_aa_initiator / self.sockets_per_non_aa_initiator


@register_stage
class OverallStage(AnalysisStage):
    """The merged-dataset §4.1 statistics, folded in one sweep.

    Every accumulator is an integer count, a domain set, or an integer
    counter; all ratios and means are taken at ``finalize``, so folds
    and merges commute exactly.
    """

    name = "overall"
    version = "1"

    def __init__(self) -> None:
        self._total = 0
        self._cross = 0
        self._third_party_receivers: set[str] = set()
        self._aa_receivers: set[str] = set()
        self._aa_initiators: set[str] = set()
        self._per_site: Counter = Counter()
        self._initiators_per_receiver: dict[str, set[str]] = {}
        self._aa_counts: Counter = Counter()
        self._non_aa_counts: Counter = Counter()
        self._aa_initiators_by_crawl: dict[int, set[str]] = {}
        self._crawls_seen: set[int] = set()

    def fold(self, view: SocketView) -> None:
        self._total += 1
        self._crawls_seen.add(view.crawl)
        if view.record.cross_origin:
            self._cross += 1
            self._third_party_receivers.add(view.receiver_domain)
        if view.aa_received:
            self._aa_receivers.add(view.receiver_domain)
            self._initiators_per_receiver.setdefault(
                view.receiver_domain, set()
            ).add(view.initiator_domain)
        self._per_site[(view.crawl, view.record.site_domain)] += 1
        if view.aa_initiated:
            self._aa_initiators.add(view.initiator_domain)
            self._aa_counts[view.initiator_domain] += 1
            self._aa_initiators_by_crawl.setdefault(view.crawl, set()).add(
                view.initiator_domain
            )
        else:
            self._non_aa_counts[view.initiator_domain] += 1

    def merge(self, other: "OverallStage") -> None:
        self._total += other._total
        self._cross += other._cross
        self._third_party_receivers.update(other._third_party_receivers)
        self._aa_receivers.update(other._aa_receivers)
        self._aa_initiators.update(other._aa_initiators)
        self._per_site.update(other._per_site)
        for receiver, initiators in other._initiators_per_receiver.items():
            self._initiators_per_receiver.setdefault(
                receiver, set()
            ).update(initiators)
        self._aa_counts.update(other._aa_counts)
        self._non_aa_counts.update(other._non_aa_counts)
        for crawl, domains in other._aa_initiators_by_crawl.items():
            self._aa_initiators_by_crawl.setdefault(crawl, set()).update(
                domains
            )
        self._crawls_seen.update(other._crawls_seen)

    def finalize(self, ctx: StageContext) -> OverallStats:
        avg_per_site = (
            sum(self._per_site.values()) / len(self._per_site)
            if self._per_site else 0.0
        )
        ge10 = sum(
            1 for initiators in self._initiators_per_receiver.values()
            if len(initiators) >= 10
        )
        pct_ge10 = (
            100.0 * ge10 / len(self._initiators_per_receiver)
            if self._initiators_per_receiver else 0.0
        )
        sockets_per_aa = (
            sum(self._aa_counts.values()) / len(self._aa_counts)
            if self._aa_counts else 0.0
        )
        sockets_per_non_aa = (
            sum(self._non_aa_counts.values()) / len(self._non_aa_counts)
            if self._non_aa_counts else 0.0
        )
        crawls = sorted(self._crawls_seen)
        disappeared = 0
        if len(crawls) >= 2:
            first = self._aa_initiators_by_crawl.get(crawls[0], set())
            last = self._aa_initiators_by_crawl.get(crawls[-1], set())
            disappeared = len(first - last)
        return OverallStats(
            total_sockets=self._total,
            pct_cross_origin=(
                100.0 * self._cross / self._total if self._total else 0.0
            ),
            unique_third_party_receivers=len(self._third_party_receivers),
            unique_aa_receivers=len(self._aa_receivers),
            unique_aa_initiators=len(self._aa_initiators),
            avg_sockets_per_socket_site=avg_per_site,
            pct_aa_receivers_ge_10_initiators=pct_ge10,
            disappeared_initiators=disappeared,
            sockets_per_aa_initiator=sockets_per_aa,
            sockets_per_non_aa_initiator=sockets_per_non_aa,
        )

    def encode_artifact(self, artifact: OverallStats) -> dict:
        return dataclasses.asdict(artifact)

    def decode_artifact(self, payload: dict) -> OverallStats:
        return OverallStats(**payload)


def compute_overall_stats(views: Iterable[SocketView]) -> OverallStats:
    """Compute the merged-dataset § 4.1 statistics."""
    stage = fold_views(OverallStage(), views)
    return stage.finalize(StageContext())
