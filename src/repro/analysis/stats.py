"""The §4.1 prose statistics."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.analysis.classify import SocketView


@dataclass(frozen=True)
class OverallStats:
    """Merged-dataset statistics quoted in §4.1's text.

    Attributes:
        total_sockets: All sockets across all crawls.
        pct_cross_origin: % of sockets contacting a third-party domain.
        unique_third_party_receivers: Distinct third-party receiver
            domains (the paper: 382).
        unique_aa_receivers: Distinct A&A receiver domains (20).
        unique_aa_initiators: Distinct A&A initiator domains (94).
        avg_sockets_per_socket_site: Mean sockets per (crawl, site)
            among sites with sockets (6–12 in the paper).
        pct_aa_receivers_ge_10_initiators: % of A&A receivers contacted
            by ≥10 distinct initiators (>47%).
        disappeared_initiators: A&A initiators present in the first
            crawl but absent from the last (56).
        sockets_per_aa_initiator: Mean sockets per A&A initiator domain.
        sockets_per_non_aa_initiator: Mean sockets per non-A&A
            initiator domain — §4.1 observes A&A entities are involved
            in "an order of magnitude more" connections.
        aa_involvement_ratio: The former divided by the latter.
    """

    total_sockets: int
    pct_cross_origin: float
    unique_third_party_receivers: int
    unique_aa_receivers: int
    unique_aa_initiators: int
    avg_sockets_per_socket_site: float
    pct_aa_receivers_ge_10_initiators: float
    disappeared_initiators: int
    sockets_per_aa_initiator: float = 0.0
    sockets_per_non_aa_initiator: float = 0.0

    @property
    def aa_involvement_ratio(self) -> float:
        """How many times busier an A&A initiator is than a benign one."""
        if not self.sockets_per_non_aa_initiator:
            return float("inf") if self.sockets_per_aa_initiator else 0.0
        return self.sockets_per_aa_initiator / self.sockets_per_non_aa_initiator


def compute_overall_stats(views: list[SocketView]) -> OverallStats:
    """Compute the merged-dataset § 4.1 statistics."""
    total = len(views)
    cross = sum(1 for v in views if v.record.cross_origin)
    third_party_receivers = {
        v.receiver_domain for v in views if v.record.cross_origin
    }
    aa_receivers = {v.receiver_domain for v in views if v.aa_received}
    aa_initiators = {v.initiator_domain for v in views if v.aa_initiated}

    per_site: Counter = Counter()
    for view in views:
        per_site[(view.crawl, view.record.site_domain)] += 1
    avg_per_site = (
        sum(per_site.values()) / len(per_site) if per_site else 0.0
    )

    initiators_per_receiver: dict[str, set[str]] = {}
    for view in views:
        if view.aa_received:
            initiators_per_receiver.setdefault(
                view.receiver_domain, set()
            ).add(view.initiator_domain)
    ge10 = sum(
        1 for initiators in initiators_per_receiver.values()
        if len(initiators) >= 10
    )
    pct_ge10 = (
        100.0 * ge10 / len(initiators_per_receiver)
        if initiators_per_receiver else 0.0
    )

    aa_counts: Counter = Counter()
    non_aa_counts: Counter = Counter()
    for view in views:
        bucket = aa_counts if view.aa_initiated else non_aa_counts
        bucket[view.initiator_domain] += 1
    sockets_per_aa = (
        sum(aa_counts.values()) / len(aa_counts) if aa_counts else 0.0
    )
    sockets_per_non_aa = (
        sum(non_aa_counts.values()) / len(non_aa_counts)
        if non_aa_counts else 0.0
    )

    crawls = sorted({v.crawl for v in views})
    disappeared = 0
    if len(crawls) >= 2:
        first = {
            v.initiator_domain for v in views
            if v.crawl == crawls[0] and v.aa_initiated
        }
        last = {
            v.initiator_domain for v in views
            if v.crawl == crawls[-1] and v.aa_initiated
        }
        disappeared = len(first - last)

    return OverallStats(
        total_sockets=total,
        pct_cross_origin=100.0 * cross / total if total else 0.0,
        unique_third_party_receivers=len(third_party_receivers),
        unique_aa_receivers=len(aa_receivers),
        unique_aa_initiators=len(aa_initiators),
        avg_sockets_per_socket_site=avg_per_site,
        pct_aa_receivers_ge_10_initiators=pct_ge10,
        disappeared_initiators=disappeared,
        sockets_per_aa_initiator=sockets_per_aa,
        sockets_per_non_aa_initiator=sockets_per_non_aa,
    )
