"""Content-addressed cache for finalized stage artifacts.

Every cache entry is addressed by a SHA-256 over

* the dataset fingerprint (hash of the canonical dataset byte stream —
  see :func:`repro.crawler.persistence.dataset_fingerprint`),
* the stage name and its code ``version``, and
* the stage's configuration token,

so editing the dataset, bumping a stage's version, or changing its
configuration each mint a fresh key and force a recompute, while an
unchanged ``repro analyze`` run is a pure cache hit. Entries are one
small JSON file each under the cache root (``results/cache/`` by
default), named ``<stage>-<key prefix>.json`` so the directory stays
human-scannable.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.analysis.stage import AnalysisStage
from repro.util.atomicio import atomic_write

if TYPE_CHECKING:
    from repro.labeling.aa_labeler import AaLabeler
    from repro.labeling.resolver import DomainResolver

CACHE_FORMAT_VERSION = 1
DEFAULT_CACHE_DIR = Path("results/cache")


def stage_key(fingerprint: str, stage: AnalysisStage) -> str:
    """The content address of one stage's artifact for one dataset."""
    material = "\n".join((
        f"cache-format={CACHE_FORMAT_VERSION}",
        f"dataset={fingerprint}",
        f"stage={stage.name}",
        f"version={stage.version}",
        f"config={stage.config_token()}",
    ))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class StageCache:
    """Load/store finalized stage artifacts by content address."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, stage_name: str, key: str) -> Path:
        return self.root / f"{stage_name}-{key[:16]}.json"

    def load(self, stage_name: str, key: str) -> Any | None:
        """The encoded artifact under ``key``, or ``None`` on a miss.

        A corrupt or key-mismatched file (e.g. a truncated write or a
        16-hex-prefix collision) counts as a miss and is recomputed
        over, never trusted.
        """
        path = self._path(stage_name, key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("key") != key
            or payload.get("cache_format") != CACHE_FORMAT_VERSION
        ):
            self.misses += 1
            return None
        self.hits += 1
        return payload["artifact"]

    def store(
        self, stage: AnalysisStage, key: str, encoded_artifact: Any
    ) -> Path:
        """Persist one stage's encoded artifact; returns its path."""
        path = self._path(stage.name, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "cache_format": CACHE_FORMAT_VERSION,
            "key": key,
            "stage": stage.name,
            "version": stage.version,
            "config": stage.config_token(),
            "artifact": encoded_artifact,
        }
        atomic_write(
            path,
            json.dumps(payload, sort_keys=True, separators=(",", ":"))
            + "\n",
        )
        return path


# -- the per-slice state cache (incremental analysis) ----------------------


def labeler_fingerprint(
    labeler: "AaLabeler", resolver: "DomainResolver"
) -> str:
    """Content address of the derived labeling environment.

    Folding classifies views through the labeler and the Cloudfront
    resolver, so cached *state* is only reusable while both are
    unchanged; new imports shift the tag counts, the derived A&A set
    drifts, and every state key mints fresh — the safety property that
    makes incremental analysis exact rather than approximate.
    """
    hasher = hashlib.sha256()
    hasher.update(f"threshold={labeler.threshold}\n".encode("utf-8"))
    for domain in sorted(labeler.aa_domains):
        hasher.update(f"aa={domain}\n".encode("utf-8"))
    for host, target in sorted(resolver.cloudfront_mapping.items()):
        hasher.update(f"cf={host}->{target}\n".encode("utf-8"))
    return hasher.hexdigest()


def state_key(
    lines_sha: str, labeler_fp: str, stage: AnalysisStage
) -> str:
    """The content address of one stage's folded state for one slice."""
    material = "\n".join((
        f"state-format={CACHE_FORMAT_VERSION}",
        f"slice={lines_sha}",
        f"labeler={labeler_fp}",
        f"stage={stage.name}",
        f"version={stage.version}",
        f"config={stage.config_token()}",
    ))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class StateCache:
    """Load/store per-slice folded stage state by content address.

    Same shape as :class:`StageCache` (one small JSON file per entry,
    corrupt entries are misses), but holds encoded *accumulator* state
    (:meth:`AnalysisStage.encode_state`) rather than finalized
    artifacts — the unit the incremental engine merges.
    """

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, stage_name: str, key: str) -> Path:
        return self.root / f"state-{stage_name}-{key[:16]}.json"

    def load(self, stage_name: str, key: str) -> Any | None:
        """The encoded state under ``key``, or ``None`` on a miss."""
        path = self._path(stage_name, key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("key") != key
            or payload.get("cache_format") != CACHE_FORMAT_VERSION
        ):
            self.misses += 1
            return None
        self.hits += 1
        return payload["state"]

    def store(
        self, stage: AnalysisStage, key: str, encoded_state: Any
    ) -> Path:
        """Persist one slice's folded state; returns its path."""
        path = self._path(stage.name, key)
        payload = {
            "cache_format": CACHE_FORMAT_VERSION,
            "key": key,
            "stage": stage.name,
            "version": stage.version,
            "config": stage.config_token(),
            "state": encoded_state,
        }
        atomic_write(
            path,
            json.dumps(payload, sort_keys=True, separators=(",", ":"))
            + "\n",
        )
        return path
