"""Content-addressed cache for finalized stage artifacts.

Every cache entry is addressed by a SHA-256 over

* the dataset fingerprint (hash of the canonical dataset byte stream —
  see :func:`repro.crawler.persistence.dataset_fingerprint`),
* the stage name and its code ``version``, and
* the stage's configuration token,

so editing the dataset, bumping a stage's version, or changing its
configuration each mint a fresh key and force a recompute, while an
unchanged ``repro analyze`` run is a pure cache hit. Entries are one
small JSON file each under the cache root (``results/cache/`` by
default), named ``<stage>-<key prefix>.json`` so the directory stays
human-scannable.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from repro.analysis.stage import AnalysisStage

CACHE_FORMAT_VERSION = 1
DEFAULT_CACHE_DIR = Path("results/cache")


def stage_key(fingerprint: str, stage: AnalysisStage) -> str:
    """The content address of one stage's artifact for one dataset."""
    material = "\n".join((
        f"cache-format={CACHE_FORMAT_VERSION}",
        f"dataset={fingerprint}",
        f"stage={stage.name}",
        f"version={stage.version}",
        f"config={stage.config_token()}",
    ))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class StageCache:
    """Load/store finalized stage artifacts by content address."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, stage_name: str, key: str) -> Path:
        return self.root / f"{stage_name}-{key[:16]}.json"

    def load(self, stage_name: str, key: str) -> Any | None:
        """The encoded artifact under ``key``, or ``None`` on a miss.

        A corrupt or key-mismatched file (e.g. a truncated write or a
        16-hex-prefix collision) counts as a miss and is recomputed
        over, never trusted.
        """
        path = self._path(stage_name, key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("key") != key
            or payload.get("cache_format") != CACHE_FORMAT_VERSION
        ):
            self.misses += 1
            return None
        self.hits += 1
        return payload["artifact"]

    def store(
        self, stage: AnalysisStage, key: str, encoded_artifact: Any
    ) -> Path:
        """Persist one stage's encoded artifact; returns its path."""
        path = self._path(stage.name, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "cache_format": CACHE_FORMAT_VERSION,
            "key": key,
            "stage": stage.name,
            "version": stage.version,
            "config": stage.config_token(),
            "artifact": encoded_artifact,
        }
        path.write_text(
            json.dumps(payload, sort_keys=True, separators=(",", ":"))
            + "\n",
            encoding="utf-8",
        )
        return path
