"""The single-pass streaming analysis engine.

One O(views) sweep: each socket record is classified once
(:func:`~repro.analysis.classify.classify_one`) and the resulting view
is folded into every pending stage accumulator, replacing the
per-table full-list rescans of the materialized path. Memory stays
bounded by the accumulators (domain sets and integer counters), not
the record count — a dataset file is streamed from disk and never
materialized.

With a :class:`~repro.analysis.cache.StageCache`, stages whose content
address (dataset fingerprint × stage version × config) already has an
entry are decoded from the cache and skipped by the sweep; when every
stage hits, the sweep is skipped entirely and re-analysis is O(cache).

Shard-parallel folding uses the same stages: :func:`fold_shard` builds
shard-local partials and :func:`merge_stage_lists` folds them together
without a barrier, byte-identical to a sequential fold.

:meth:`AnalysisEngine.run_incremental` applies the same merge algebra
along the *time* axis instead of the shard axis: a dataset grown by
``repro spool import`` is described as an ordered list of
:class:`SegmentSlice`\\ s (record ranges content-addressed by the hash
of their canonical lines), each slice's per-stage folded state is
cached in a :class:`~repro.analysis.cache.StateCache`, and re-analysis
after new imports folds only the new slices — the old ones restore
from cache without their records ever being re-read.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from itertools import islice
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from repro.analysis.cache import (
    StageCache,
    StateCache,
    labeler_fingerprint,
    stage_key,
    state_key,
)
from repro.analysis.classify import SocketView, classify_one
from repro.analysis.stage import (
    AnalysisStage,
    StageContext,
    default_stages,
)
from repro.crawler.dataset import DatasetMeta, SocketRecord, StudyDataset
from repro.labeling.aa_labeler import AaLabeler
from repro.labeling.resolver import DomainResolver

if TYPE_CHECKING:
    from repro.obs import Obs


class DatasetSourceError(ValueError):
    """A dataset source cannot be opened or fingerprinted."""


@dataclass(frozen=True)
class SegmentSlice:
    """One contiguous record range of a dataset, content-addressed.

    The spool importer appends each imported segment's records as a
    contiguous run of dataset lines and journals the run as a slice:
    the record-index range ``[start, stop)`` plus the SHA-256 over the
    canonical record lines in that range. The hash — not the segment
    file, which may since have been quota-evicted — is what addresses
    the slice's cached per-stage state, so incremental analysis keeps
    working after the spool itself is gone.
    """

    segment_id: str
    start: int
    stop: int
    lines_sha: str


@dataclass
class DatasetSource:
    """Where observations come from: a live dataset or a saved file.

    Attributes:
        dataset: The aggregate side (tag counts, HTTP counters, chain
            signatures) — never the socket-record list on the file
            path.
        meta: Typed dataset metadata.
    """

    dataset: StudyDataset
    meta: DatasetMeta
    _records: Callable[[], Iterable[SocketRecord]]
    _fingerprint: Callable[[], str]
    _ranged: (
        Callable[[int, int | None], Iterable[SocketRecord]] | None
    ) = None
    _cached_fingerprint: str | None = field(default=None, init=False)

    def records(self) -> Iterable[SocketRecord]:
        """A fresh iterable over the socket records."""
        return self._records()

    def records_range(
        self, start: int, stop: int | None = None
    ) -> Iterable[SocketRecord]:
        """A fresh iterable over records ``[start, stop)``.

        File sources decode only the requested line range; in-memory
        sources slice the record list.
        """
        if self._ranged is not None:
            return self._ranged(start, stop)
        return islice(self._records(), start, stop)

    def fingerprint(self) -> str:
        """The dataset's content address (computed once, then cached)."""
        if self._cached_fingerprint is None:
            self._cached_fingerprint = self._fingerprint()
        return self._cached_fingerprint

    @classmethod
    def from_dataset(cls, dataset: StudyDataset) -> "DatasetSource":
        """Analyze a live in-memory dataset."""
        from repro.crawler.persistence import dataset_fingerprint

        return cls(
            dataset=dataset,
            meta=dataset.meta,
            _records=lambda: iter(dataset.socket_records),
            _fingerprint=lambda: dataset_fingerprint(dataset),
        )

    @classmethod
    def from_file(
        cls, path, engine=None
    ) -> "DatasetSource":
        """Stream a saved v2 dataset file (``repro study --dataset-out``)."""
        from repro.crawler.persistence import open_dataset

        reader = open_dataset(path, engine=engine)
        return cls(
            dataset=reader.dataset,
            meta=reader.meta,
            _records=reader.iter_records,
            _fingerprint=reader.fingerprint,
            _ranged=reader.iter_records,
        )


@dataclass
class AnalysisResult:
    """Everything one engine run produced.

    Attributes:
        meta: The dataset metadata analyzed.
        labeler / resolver: The derived A&A labels and Cloudfront
            mapping.
        artifacts: Stage name → finalized artifact.
        computed: Stage names recomputed by this run's sweep.
        cached: Stage names served from the cache.
        views_folded: Socket views classified by the sweep (0 when
            every stage hit the cache).
        segments_folded: Dataset slices whose records were re-read and
            folded by an incremental run (0 on the full path).
        segments_cached: Dataset slices fully restored from the state
            cache by an incremental run.
    """

    meta: DatasetMeta
    labeler: AaLabeler
    resolver: DomainResolver
    artifacts: dict[str, Any]
    computed: tuple[str, ...]
    cached: tuple[str, ...]
    views_folded: int = 0
    segments_folded: int = 0
    segments_cached: int = 0

    def __getitem__(self, name: str) -> Any:
        return self.artifacts[name]


class AnalysisEngine:
    """Runs stages over a dataset source in one streaming sweep."""

    def __init__(
        self,
        stages: Sequence[AnalysisStage] | None = None,
        cache: StageCache | None = None,
        obs: "Obs | None" = None,
    ) -> None:
        self.stages = (
            list(stages) if stages is not None else default_stages()
        )
        self.cache = cache
        self.obs = obs

    def _span(self, stage: str):
        return (
            self.obs.span("analyze", stage=stage)
            if self.obs is not None else nullcontext()
        )

    def run(
        self,
        source: DatasetSource,
        view_sink: Callable[[SocketView], None] | None = None,
    ) -> AnalysisResult:
        """Classify once, fold every pending stage, finalize, cache.

        ``view_sink`` receives every classified view in record order
        (the study runner uses it to keep ``StudyResult.views``);
        passing ``None`` keeps the run memory-bounded.
        """
        with self._span("labeling"):
            labeler = source.dataset.derive_labeler()
            resolver = source.dataset.derive_resolver(labeler)
        ctx = StageContext(
            meta=source.meta,
            labeler=labeler,
            resolver=resolver,
            engine=source.dataset.engine,
            dataset=source.dataset,
        )

        artifacts: dict[str, Any] = {}
        cached: list[str] = []
        keys: dict[str, str] = {}
        pending = list(self.stages)
        if self.cache is not None:
            fingerprint = source.fingerprint()
            pending = []
            for stage in self.stages:
                key = stage_key(fingerprint, stage)
                keys[stage.name] = key
                payload = self.cache.load(stage.name, key)
                if payload is not None:
                    artifacts[stage.name] = stage.decode_artifact(payload)
                    cached.append(stage.name)
                else:
                    pending.append(stage)

        views_folded = 0
        if pending or view_sink is not None:
            counts = dict.fromkeys(
                ("views", "aa_sockets", "aa_initiated", "aa_received"), 0
            )
            with self._span("classify"):
                for record in source.records():
                    view = classify_one(record, labeler, resolver)
                    counts["views"] += 1
                    if view.is_aa_socket:
                        counts["aa_sockets"] += 1
                    if view.aa_initiated:
                        counts["aa_initiated"] += 1
                    if view.aa_received:
                        counts["aa_received"] += 1
                    if view_sink is not None:
                        view_sink(view)
                    for stage in pending:
                        stage.fold(view)
            views_folded = counts["views"]
            if self.obs is not None:
                metrics = self.obs.metrics
                for name in (
                    "views", "aa_sockets", "aa_initiated", "aa_received"
                ):
                    metrics.counter(f"analysis.{name}").add(counts[name])
        if self.obs is not None:
            self.obs.metrics.counter("analysis.aa_domains_labeled").add(
                len(labeler)
            )

        for stage in pending:
            with self._span(stage.name):
                artifact = stage.finalize(ctx)
            artifacts[stage.name] = artifact
            if self.cache is not None:
                self.cache.store(
                    stage, keys[stage.name], stage.encode_artifact(artifact)
                )

        if self.obs is not None and self.cache is not None:
            self.obs.metrics.counter("analysis.cache.hits").add(len(cached))
            self.obs.metrics.counter("analysis.cache.misses").add(
                len(pending)
            )

        return AnalysisResult(
            meta=source.meta,
            labeler=labeler,
            resolver=resolver,
            artifacts=artifacts,
            computed=tuple(stage.name for stage in pending),
            cached=tuple(cached),
            views_folded=views_folded,
        )

    def run_incremental(
        self,
        source: DatasetSource,
        slices: Sequence[SegmentSlice],
        state_cache: StateCache,
    ) -> AnalysisResult:
        """Fold only the slices whose per-stage state is not cached.

        ``slices`` must cover the source's record region, in record
        order, without gaps or overlaps — the spool import journal
        provides exactly that (the CLI gap-fills synthetic base slices
        for records predating the journal). For every (slice, stage)
        pair whose state key misses, the slice's records are decoded
        once and folded into all missing stages together; cached pairs
        restore without touching the records. Slice-local partials are
        then merged in slice order and finalized — the same associative
        algebra :func:`fold_shard`/:func:`merge_stage_lists` use for
        shard parallelism, so the artifacts are identical to a full
        :meth:`run`.
        """
        with self._span("labeling"):
            labeler = source.dataset.derive_labeler()
            resolver = source.dataset.derive_resolver(labeler)
        ctx = StageContext(
            meta=source.meta,
            labeler=labeler,
            resolver=resolver,
            engine=source.dataset.engine,
            dataset=source.dataset,
        )

        artifacts: dict[str, Any] = {}
        cached: list[str] = []
        keys: dict[str, str] = {}
        pending = list(self.stages)
        if self.cache is not None:
            fingerprint = source.fingerprint()
            pending = []
            for stage in self.stages:
                key = stage_key(fingerprint, stage)
                keys[stage.name] = key
                payload = self.cache.load(stage.name, key)
                if payload is not None:
                    artifacts[stage.name] = stage.decode_artifact(payload)
                    cached.append(stage.name)
                else:
                    pending.append(stage)

        views_folded = 0
        segments_folded = 0
        segments_cached = 0
        merged: list[AnalysisStage] = [stage.spawn() for stage in pending]
        if pending:
            labeler_fp = labeler_fingerprint(labeler, resolver)
            # Probe first: per slice, spawn partials, restore the
            # cached (slice, stage) states, and note the missing ones.
            plan: list[tuple[
                SegmentSlice,
                list[AnalysisStage],
                list[tuple[AnalysisStage, AnalysisStage, str]],
            ]] = []
            for entry in slices:
                partials = [stage.spawn() for stage in pending]
                missing: list[tuple[AnalysisStage, AnalysisStage, str]] = []
                for stage, partial in zip(pending, partials):
                    key = state_key(entry.lines_sha, labeler_fp, stage)
                    payload = state_cache.load(stage.name, key)
                    if payload is not None:
                        partial.restore_state(payload)
                    else:
                        missing.append((stage, partial, key))
                if missing:
                    segments_folded += 1
                else:
                    segments_cached += 1
                plan.append((entry, partials, missing))

            # Fold each contiguous run of missing slices in a single
            # streaming pass — one ranged read per run, not per slice,
            # so a cold start costs one sweep and a warm one only the
            # new tail.
            i = 0
            while i < len(plan):
                if not plan[i][2]:
                    i += 1
                    continue
                j = i
                while (
                    j + 1 < len(plan)
                    and plan[j + 1][2]
                    and plan[j + 1][0].start == plan[j][0].stop
                ):
                    j += 1
                run = plan[i:j + 1]
                cursor = 0
                index = run[0][0].start
                with self._span("classify"):
                    for record in source.records_range(
                        run[0][0].start, run[-1][0].stop
                    ):
                        while index >= run[cursor][0].stop:
                            cursor += 1
                        view = classify_one(record, labeler, resolver)
                        views_folded += 1
                        for _, partial, _ in run[cursor][2]:
                            partial.fold(view)
                        index += 1
                for _, _, missing in run:
                    for stage, partial, key in missing:
                        state_cache.store(
                            stage, key, partial.encode_state()
                        )
                i = j + 1

            for _, partials, _ in plan:
                merge_stage_lists([merged, partials])

        for stage in merged:
            with self._span(stage.name):
                artifact = stage.finalize(ctx)
            artifacts[stage.name] = artifact
            if self.cache is not None:
                self.cache.store(
                    stage, keys[stage.name], stage.encode_artifact(artifact)
                )

        if self.obs is not None:
            metrics = self.obs.metrics
            metrics.counter("analysis.incremental.slices_folded").add(
                segments_folded
            )
            metrics.counter("analysis.incremental.slices_cached").add(
                segments_cached
            )
            metrics.counter("analysis.views").add(views_folded)
            if self.cache is not None:
                metrics.counter("analysis.cache.hits").add(len(cached))
                metrics.counter("analysis.cache.misses").add(len(pending))

        return AnalysisResult(
            meta=source.meta,
            labeler=labeler,
            resolver=resolver,
            artifacts=artifacts,
            computed=tuple(stage.name for stage in pending),
            cached=tuple(cached),
            views_folded=views_folded,
            segments_folded=segments_folded,
            segments_cached=segments_cached,
        )


def fold_shard(
    stages: Sequence[AnalysisStage], views: Iterable[SocketView]
) -> list[AnalysisStage]:
    """Fold one shard's views into fresh accumulators.

    The returned partials inherit each stage's configuration via
    ``spawn()`` and can be combined with :func:`merge_stage_lists` —
    in any order and grouping — without changing a byte of any
    finalized artifact.
    """
    partials = [stage.spawn() for stage in stages]
    for view in views:
        for stage in partials:
            stage.fold(view)
    return partials


def merge_stage_lists(
    parts: Sequence[Sequence[AnalysisStage]],
) -> list[AnalysisStage]:
    """Merge shard-local stage lists element-wise into one list."""
    if not parts:
        return []
    merged = list(parts[0])
    for part in parts[1:]:
        if len(part) != len(merged):
            raise ValueError(
                "shard stage lists differ in length: "
                f"{len(part)} vs {len(merged)}"
            )
        for accumulated, incoming in zip(merged, part):
            if type(accumulated) is not type(incoming):
                raise ValueError(
                    "shard stage lists differ in stage order: "
                    f"{type(accumulated).__name__} vs "
                    f"{type(incoming).__name__}"
                )
            accumulated.merge(incoming)
    return merged
