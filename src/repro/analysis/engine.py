"""The single-pass streaming analysis engine.

One O(views) sweep: each socket record is classified once
(:func:`~repro.analysis.classify.classify_one`) and the resulting view
is folded into every pending stage accumulator, replacing the
per-table full-list rescans of the materialized path. Memory stays
bounded by the accumulators (domain sets and integer counters), not
the record count — a dataset file is streamed from disk and never
materialized.

With a :class:`~repro.analysis.cache.StageCache`, stages whose content
address (dataset fingerprint × stage version × config) already has an
entry are decoded from the cache and skipped by the sweep; when every
stage hits, the sweep is skipped entirely and re-analysis is O(cache).

Shard-parallel folding uses the same stages: :func:`fold_shard` builds
shard-local partials and :func:`merge_stage_lists` folds them together
without a barrier, byte-identical to a sequential fold.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from repro.analysis.cache import StageCache, stage_key
from repro.analysis.classify import SocketView, classify_one
from repro.analysis.stage import (
    AnalysisStage,
    StageContext,
    default_stages,
)
from repro.crawler.dataset import DatasetMeta, SocketRecord, StudyDataset
from repro.labeling.aa_labeler import AaLabeler
from repro.labeling.resolver import DomainResolver

if TYPE_CHECKING:
    from repro.obs import Obs


class DatasetSourceError(ValueError):
    """A dataset source cannot be opened or fingerprinted."""


@dataclass
class DatasetSource:
    """Where observations come from: a live dataset or a saved file.

    Attributes:
        dataset: The aggregate side (tag counts, HTTP counters, chain
            signatures) — never the socket-record list on the file
            path.
        meta: Typed dataset metadata.
    """

    dataset: StudyDataset
    meta: DatasetMeta
    _records: Callable[[], Iterable[SocketRecord]]
    _fingerprint: Callable[[], str]
    _cached_fingerprint: str | None = field(default=None, init=False)

    def records(self) -> Iterable[SocketRecord]:
        """A fresh iterable over the socket records."""
        return self._records()

    def fingerprint(self) -> str:
        """The dataset's content address (computed once, then cached)."""
        if self._cached_fingerprint is None:
            self._cached_fingerprint = self._fingerprint()
        return self._cached_fingerprint

    @classmethod
    def from_dataset(cls, dataset: StudyDataset) -> "DatasetSource":
        """Analyze a live in-memory dataset."""
        from repro.crawler.persistence import dataset_fingerprint

        return cls(
            dataset=dataset,
            meta=dataset.meta,
            _records=lambda: iter(dataset.socket_records),
            _fingerprint=lambda: dataset_fingerprint(dataset),
        )

    @classmethod
    def from_file(
        cls, path, engine=None
    ) -> "DatasetSource":
        """Stream a saved v2 dataset file (``repro study --dataset-out``)."""
        from repro.crawler.persistence import open_dataset

        reader = open_dataset(path, engine=engine)
        return cls(
            dataset=reader.dataset,
            meta=reader.meta,
            _records=reader.iter_records,
            _fingerprint=reader.fingerprint,
        )


@dataclass
class AnalysisResult:
    """Everything one engine run produced.

    Attributes:
        meta: The dataset metadata analyzed.
        labeler / resolver: The derived A&A labels and Cloudfront
            mapping.
        artifacts: Stage name → finalized artifact.
        computed: Stage names recomputed by this run's sweep.
        cached: Stage names served from the cache.
        views_folded: Socket views classified by the sweep (0 when
            every stage hit the cache).
    """

    meta: DatasetMeta
    labeler: AaLabeler
    resolver: DomainResolver
    artifacts: dict[str, Any]
    computed: tuple[str, ...]
    cached: tuple[str, ...]
    views_folded: int = 0

    def __getitem__(self, name: str) -> Any:
        return self.artifacts[name]


class AnalysisEngine:
    """Runs stages over a dataset source in one streaming sweep."""

    def __init__(
        self,
        stages: Sequence[AnalysisStage] | None = None,
        cache: StageCache | None = None,
        obs: "Obs | None" = None,
    ) -> None:
        self.stages = (
            list(stages) if stages is not None else default_stages()
        )
        self.cache = cache
        self.obs = obs

    def _span(self, stage: str):
        return (
            self.obs.span("analyze", stage=stage)
            if self.obs is not None else nullcontext()
        )

    def run(
        self,
        source: DatasetSource,
        view_sink: Callable[[SocketView], None] | None = None,
    ) -> AnalysisResult:
        """Classify once, fold every pending stage, finalize, cache.

        ``view_sink`` receives every classified view in record order
        (the study runner uses it to keep ``StudyResult.views``);
        passing ``None`` keeps the run memory-bounded.
        """
        with self._span("labeling"):
            labeler = source.dataset.derive_labeler()
            resolver = source.dataset.derive_resolver(labeler)
        ctx = StageContext(
            meta=source.meta,
            labeler=labeler,
            resolver=resolver,
            engine=source.dataset.engine,
            dataset=source.dataset,
        )

        artifacts: dict[str, Any] = {}
        cached: list[str] = []
        keys: dict[str, str] = {}
        pending = list(self.stages)
        if self.cache is not None:
            fingerprint = source.fingerprint()
            pending = []
            for stage in self.stages:
                key = stage_key(fingerprint, stage)
                keys[stage.name] = key
                payload = self.cache.load(stage.name, key)
                if payload is not None:
                    artifacts[stage.name] = stage.decode_artifact(payload)
                    cached.append(stage.name)
                else:
                    pending.append(stage)

        views_folded = 0
        if pending or view_sink is not None:
            counts = dict.fromkeys(
                ("views", "aa_sockets", "aa_initiated", "aa_received"), 0
            )
            with self._span("classify"):
                for record in source.records():
                    view = classify_one(record, labeler, resolver)
                    counts["views"] += 1
                    if view.is_aa_socket:
                        counts["aa_sockets"] += 1
                    if view.aa_initiated:
                        counts["aa_initiated"] += 1
                    if view.aa_received:
                        counts["aa_received"] += 1
                    if view_sink is not None:
                        view_sink(view)
                    for stage in pending:
                        stage.fold(view)
            views_folded = counts["views"]
            if self.obs is not None:
                metrics = self.obs.metrics
                for name in (
                    "views", "aa_sockets", "aa_initiated", "aa_received"
                ):
                    metrics.counter(f"analysis.{name}").add(counts[name])
        if self.obs is not None:
            self.obs.metrics.counter("analysis.aa_domains_labeled").add(
                len(labeler)
            )

        for stage in pending:
            with self._span(stage.name):
                artifact = stage.finalize(ctx)
            artifacts[stage.name] = artifact
            if self.cache is not None:
                self.cache.store(
                    stage, keys[stage.name], stage.encode_artifact(artifact)
                )

        if self.obs is not None and self.cache is not None:
            self.obs.metrics.counter("analysis.cache.hits").add(len(cached))
            self.obs.metrics.counter("analysis.cache.misses").add(
                len(pending)
            )

        return AnalysisResult(
            meta=source.meta,
            labeler=labeler,
            resolver=resolver,
            artifacts=artifacts,
            computed=tuple(stage.name for stage in pending),
            cached=tuple(cached),
            views_folded=views_folded,
        )


def fold_shard(
    stages: Sequence[AnalysisStage], views: Iterable[SocketView]
) -> list[AnalysisStage]:
    """Fold one shard's views into fresh accumulators.

    The returned partials inherit each stage's configuration via
    ``spawn()`` and can be combined with :func:`merge_stage_lists` —
    in any order and grouping — without changing a byte of any
    finalized artifact.
    """
    partials = [stage.spawn() for stage in stages]
    for view in views:
        for stage in partials:
            stage.fold(view)
    return partials


def merge_stage_lists(
    parts: Sequence[Sequence[AnalysisStage]],
) -> list[AnalysisStage]:
    """Merge shard-local stage lists element-wise into one list."""
    if not parts:
        return []
    merged = list(parts[0])
    for part in parts[1:]:
        if len(part) != len(merged):
            raise ValueError(
                "shard stage lists differ in length: "
                f"{len(part)} vs {len(merged)}"
            )
        for accumulated, incoming in zip(merged, part):
            if type(accumulated) is not type(incoming):
                raise ValueError(
                    "shard stage lists differ in stage order: "
                    f"{type(accumulated).__name__} vs "
                    f"{type(incoming).__name__}"
                )
            accumulated.merge(incoming)
    return merged
