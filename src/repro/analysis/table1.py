"""Table 1: high-level statistics per crawl."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.classify import SocketView


@dataclass(frozen=True)
class Table1Row:
    """One crawl's row of Table 1.

    Attributes:
        crawl: Crawl index.
        label: Crawl window label.
        pct_sites_with_sockets: % of crawled sites with ≥1 socket.
        pct_sockets_aa_initiators: % of sockets initiated by an A&A
            domain's resource.
        unique_aa_initiators: # distinct A&A initiator domains.
        pct_sockets_aa_receivers: % of sockets received by an A&A
            domain.
        unique_aa_receivers: # distinct A&A receiver domains.
        total_sockets: Socket count (not printed by the paper; kept
            for diagnostics).
        sites_crawled: Denominator for the site percentage.
    """

    crawl: int
    label: str
    pct_sites_with_sockets: float
    pct_sockets_aa_initiators: float
    unique_aa_initiators: int
    pct_sockets_aa_receivers: float
    unique_aa_receivers: int
    total_sockets: int
    sites_crawled: int


def compute_table1(
    views: list[SocketView],
    crawl_sites: dict[int, list[tuple[str, int]]],
    crawl_labels: dict[int, str],
) -> list[Table1Row]:
    """Compute one row per crawl, in crawl order."""
    rows: list[Table1Row] = []
    for crawl in sorted(crawl_sites):
        crawl_views = [v for v in views if v.crawl == crawl]
        total = len(crawl_views)
        sites_with_sockets = {v.record.site_domain for v in crawl_views}
        aa_initiated = [v for v in crawl_views if v.aa_initiated]
        aa_received = [v for v in crawl_views if v.aa_received]
        site_count = len(crawl_sites[crawl])
        rows.append(Table1Row(
            crawl=crawl,
            label=crawl_labels.get(crawl, f"crawl {crawl}"),
            pct_sites_with_sockets=(
                100.0 * len(sites_with_sockets) / site_count if site_count else 0.0
            ),
            pct_sockets_aa_initiators=(
                100.0 * len(aa_initiated) / total if total else 0.0
            ),
            unique_aa_initiators=len({v.initiator_domain for v in aa_initiated}),
            pct_sockets_aa_receivers=(
                100.0 * len(aa_received) / total if total else 0.0
            ),
            unique_aa_receivers=len({v.receiver_domain for v in aa_received}),
            total_sockets=total,
            sites_crawled=site_count,
        ))
    return rows
