"""Table 1: high-level statistics per crawl."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable

from repro.analysis.classify import SocketView
from repro.analysis.stage import (
    AnalysisStage,
    StageContext,
    fold_views,
    register_stage,
)
from repro.crawler.dataset import DatasetMeta


@dataclass(frozen=True)
class Table1Row:
    """One crawl's row of Table 1.

    Attributes:
        crawl: Crawl index.
        label: Crawl window label.
        pct_sites_with_sockets: % of crawled sites with ≥1 socket.
        pct_sockets_aa_initiators: % of sockets initiated by an A&A
            domain's resource.
        unique_aa_initiators: # distinct A&A initiator domains.
        pct_sockets_aa_receivers: % of sockets received by an A&A
            domain.
        unique_aa_receivers: # distinct A&A receiver domains.
        total_sockets: Socket count (not printed by the paper; kept
            for diagnostics).
        sites_crawled: Denominator for the site percentage.
    """

    crawl: int
    label: str
    pct_sites_with_sockets: float
    pct_sockets_aa_initiators: float
    unique_aa_initiators: int
    pct_sockets_aa_receivers: float
    unique_aa_receivers: int
    total_sockets: int
    sites_crawled: int


@register_stage
class Table1Stage(AnalysisStage):
    """Per-crawl socket totals and A&A shares, folded in one sweep.

    Accumulates integer counts and domain sets only; every percentage
    is computed at ``finalize`` so folds and merges commute exactly.
    """

    name = "table1"
    version = "1"

    def __init__(self) -> None:
        self._totals: dict[int, int] = {}
        self._sites: dict[int, set[str]] = {}
        self._aa_initiated: dict[int, int] = {}
        self._aa_received: dict[int, int] = {}
        self._initiator_domains: dict[int, set[str]] = {}
        self._receiver_domains: dict[int, set[str]] = {}

    def fold(self, view: SocketView) -> None:
        crawl = view.crawl
        self._totals[crawl] = self._totals.get(crawl, 0) + 1
        self._sites.setdefault(crawl, set()).add(view.record.site_domain)
        if view.aa_initiated:
            self._aa_initiated[crawl] = self._aa_initiated.get(crawl, 0) + 1
            self._initiator_domains.setdefault(crawl, set()).add(
                view.initiator_domain
            )
        if view.aa_received:
            self._aa_received[crawl] = self._aa_received.get(crawl, 0) + 1
            self._receiver_domains.setdefault(crawl, set()).add(
                view.receiver_domain
            )

    def merge(self, other: "Table1Stage") -> None:
        for crawl, count in other._totals.items():
            self._totals[crawl] = self._totals.get(crawl, 0) + count
        for crawl, count in other._aa_initiated.items():
            self._aa_initiated[crawl] = (
                self._aa_initiated.get(crawl, 0) + count
            )
        for crawl, count in other._aa_received.items():
            self._aa_received[crawl] = self._aa_received.get(crawl, 0) + count
        for crawl, sites in other._sites.items():
            self._sites.setdefault(crawl, set()).update(sites)
        for crawl, domains in other._initiator_domains.items():
            self._initiator_domains.setdefault(crawl, set()).update(domains)
        for crawl, domains in other._receiver_domains.items():
            self._receiver_domains.setdefault(crawl, set()).update(domains)

    def finalize(self, ctx: StageContext) -> list[Table1Row]:
        rows: list[Table1Row] = []
        for crawl_meta in sorted(ctx.meta.crawls, key=lambda c: c.index):
            crawl = crawl_meta.index
            total = self._totals.get(crawl, 0)
            site_count = len(crawl_meta.sites)
            sites_with_sockets = len(self._sites.get(crawl, ()))
            aa_initiated = self._aa_initiated.get(crawl, 0)
            aa_received = self._aa_received.get(crawl, 0)
            rows.append(Table1Row(
                crawl=crawl,
                label=crawl_meta.label,
                pct_sites_with_sockets=(
                    100.0 * sites_with_sockets / site_count
                    if site_count else 0.0
                ),
                pct_sockets_aa_initiators=(
                    100.0 * aa_initiated / total if total else 0.0
                ),
                unique_aa_initiators=len(
                    self._initiator_domains.get(crawl, ())
                ),
                pct_sockets_aa_receivers=(
                    100.0 * aa_received / total if total else 0.0
                ),
                unique_aa_receivers=len(self._receiver_domains.get(crawl, ())),
                total_sockets=total,
                sites_crawled=site_count,
            ))
        return rows

    def encode_artifact(self, artifact: list[Table1Row]) -> list[dict]:
        return [dataclasses.asdict(row) for row in artifact]

    def decode_artifact(self, payload: list[dict]) -> list[Table1Row]:
        return [Table1Row(**row) for row in payload]


def compute_table1(
    views: Iterable[SocketView],
    meta: DatasetMeta,
) -> list[Table1Row]:
    """Compute one row per crawl, in crawl order.

    ``meta`` is the dataset's :class:`DatasetMeta` (e.g.
    ``dataset.meta``, or :meth:`DatasetMeta.from_mappings` when
    starting from raw site/label mappings).
    """
    stage = fold_views(Table1Stage(), views)
    return stage.finalize(StageContext(meta=meta))
