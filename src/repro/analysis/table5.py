"""Table 5: items sent/received over A&A sockets vs HTTP/S to A&A domains."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.classify import SocketView
from repro.analysis.stage import (
    AnalysisStage,
    StageContext,
    fold_views,
    register_stage,
)
from repro.content.items import (
    RECEIVED_CLASSES,
    SENT_ITEMS,
    ReceivedClass,
    SentItem,
)
from repro.content.sent import SentDataAnalyzer
from repro.crawler.dataset import StudyDataset
from repro.labeling.aa_labeler import AaLabeler
from repro.labeling.resolver import DomainResolver

_ANALYZER = SentDataAnalyzer()


@dataclass(frozen=True)
class Table5Cell:
    """One (item, channel) cell: count and percentage."""

    count: int
    percent: float


@dataclass
class Table5:
    """The full table.

    Attributes:
        ws_total: A&A sockets (the WebSocket denominators).
        http_total: HTTP/S requests to A&A domains.
        sent_ws / sent_http: Item → cell, sent direction.
        received_ws / received_http: Class → cell, received direction.
        ws_sent_nothing / ws_received_nothing: "No data" rows.
        fingerprinting_sockets: Sockets exfiltrating fingerprint items.
        fingerprinting_pairs: Unique (initiator, receiver) pairs doing
            so, with the top receiver's share (§4.3's 97% statistic).
        dom_receivers: Receivers of serialized DOMs.
    """

    ws_total: int = 0
    http_total: int = 0
    sent_ws: dict[SentItem, Table5Cell] = field(default_factory=dict)
    sent_http: dict[SentItem, Table5Cell] = field(default_factory=dict)
    received_ws: dict[ReceivedClass, Table5Cell] = field(default_factory=dict)
    received_http: dict[ReceivedClass, Table5Cell] = field(default_factory=dict)
    ws_sent_nothing: Table5Cell = Table5Cell(0, 0.0)
    ws_received_nothing: Table5Cell = Table5Cell(0, 0.0)
    fingerprinting_sockets: int = 0
    fingerprinting_pairs: int = 0
    fingerprinting_top_receiver: str = ""
    fingerprinting_top_receiver_share: float = 0.0
    dom_receivers: tuple[str, ...] = ()


@register_stage
class Table5Stage(AnalysisStage):
    """Sent/received item counts over A&A sockets, folded in one sweep.

    The WebSocket half accumulates from the view stream; the HTTP half
    is aggregated by the dataset itself (per-host request counters), so
    it is evaluated at ``finalize`` against the derived labeler.
    """

    name = "table5"
    version = "1"

    def __init__(self) -> None:
        self._ws_total = 0
        self._sent: Counter = Counter()
        self._received: Counter = Counter()
        self._sent_nothing = 0
        self._received_nothing = 0
        self._fp_pairs: Counter = Counter()
        self._fp_sockets = 0
        self._dom_receivers: set[str] = set()

    def fold(self, view: SocketView) -> None:
        if not view.is_aa_socket:
            return
        self._ws_total += 1
        items = view.record.sent_items
        for item in items:
            self._sent[item] += 1
        if view.record.sent_nothing:
            self._sent_nothing += 1
        for cls in view.record.received_classes:
            self._received[cls] += 1
        if view.record.received_nothing:
            self._received_nothing += 1
        if _ANALYZER.is_fingerprinting(set(items)):
            self._fp_sockets += 1
            self._fp_pairs[(view.initiator_domain, view.receiver_domain)] += 1
        if SentItem.DOM in items:
            self._dom_receivers.add(view.receiver_domain)

    def merge(self, other: "Table5Stage") -> None:
        self._ws_total += other._ws_total
        self._sent.update(other._sent)
        self._received.update(other._received)
        self._sent_nothing += other._sent_nothing
        self._received_nothing += other._received_nothing
        self._fp_pairs.update(other._fp_pairs)
        self._fp_sockets += other._fp_sockets
        self._dom_receivers.update(other._dom_receivers)

    def finalize(self, ctx: StageContext) -> Table5:
        table = Table5()
        table.ws_total = self._ws_total
        total = table.ws_total or 1
        table.sent_ws = {
            item: Table5Cell(self._sent[item],
                             100.0 * self._sent[item] / total)
            for item in SENT_ITEMS
        }
        table.received_ws = {
            cls: Table5Cell(self._received[cls],
                            100.0 * self._received[cls] / total)
            for cls in RECEIVED_CLASSES
        }
        table.ws_sent_nothing = Table5Cell(
            self._sent_nothing, 100.0 * self._sent_nothing / total
        )
        table.ws_received_nothing = Table5Cell(
            self._received_nothing, 100.0 * self._received_nothing / total
        )
        table.fingerprinting_sockets = self._fp_sockets
        table.fingerprinting_pairs = len(self._fp_pairs)
        if self._fp_pairs:
            by_receiver: Counter = Counter()
            for (_, receiver), _count in self._fp_pairs.items():
                by_receiver[receiver] += 1
            # Deterministic tie-break: highest pair count, then
            # lexicographically smallest receiver — fold/merge order
            # must not leak into the artifact.
            top_receiver, top_count = max(
                sorted(by_receiver.items()), key=lambda kv: kv[1]
            )
            table.fingerprinting_top_receiver = top_receiver
            table.fingerprinting_top_receiver_share = (
                100.0 * top_count / len(self._fp_pairs)
            )
        table.dom_receivers = tuple(sorted(self._dom_receivers))

        # --- HTTP side: requests to A&A domains. --------------------------
        dataset, labeler, resolver = ctx.dataset, ctx.labeler, ctx.resolver
        http_total = 0
        http_sent: Counter = Counter()
        http_received: Counter = Counter()
        if dataset is not None and labeler is not None and resolver is not None:
            for host, count in dataset.http_requests_by_host.items():
                if not labeler.is_aa(resolver.effective_domain(host)):
                    continue
                http_total += count
                bucket = dataset.http_items_by_host.get(host)
                if bucket:
                    http_sent.update(bucket)
                received = dataset.http_received_by_host.get(host)
                if received:
                    http_received.update(received)
        table.http_total = http_total
        denom = http_total or 1
        table.sent_http = {
            item: Table5Cell(http_sent[item],
                             100.0 * http_sent[item] / denom)
            for item in SENT_ITEMS
        }
        table.received_http = {
            cls: Table5Cell(http_received[cls],
                            100.0 * http_received[cls] / denom)
            for cls in RECEIVED_CLASSES
        }
        return table

    def encode_artifact(self, artifact: Table5) -> dict:
        from repro.analysis._codecs import encode_table5

        return encode_table5(artifact)

    def decode_artifact(self, payload: dict) -> Table5:
        from repro.analysis._codecs import decode_table5

        return decode_table5(payload)


def compute_table5(
    dataset: StudyDataset,
    views: Iterable[SocketView],
    labeler: AaLabeler | None = None,
    resolver: DomainResolver | None = None,
) -> Table5:
    """Compute the table over the merged dataset."""
    labeler = labeler or dataset.derive_labeler()
    resolver = resolver or dataset.derive_resolver(labeler)
    stage = fold_views(Table5Stage(), views)
    return stage.finalize(StageContext(
        labeler=labeler, resolver=resolver, dataset=dataset
    ))
