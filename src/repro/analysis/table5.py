"""Table 5: items sent/received over A&A sockets vs HTTP/S to A&A domains."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.analysis.classify import SocketView
from repro.content.items import (
    RECEIVED_CLASSES,
    SENT_ITEMS,
    ReceivedClass,
    SentItem,
)
from repro.content.sent import SentDataAnalyzer
from repro.crawler.dataset import StudyDataset
from repro.labeling.aa_labeler import AaLabeler
from repro.labeling.resolver import DomainResolver

_ANALYZER = SentDataAnalyzer()


@dataclass(frozen=True)
class Table5Cell:
    """One (item, channel) cell: count and percentage."""

    count: int
    percent: float


@dataclass
class Table5:
    """The full table.

    Attributes:
        ws_total: A&A sockets (the WebSocket denominators).
        http_total: HTTP/S requests to A&A domains.
        sent_ws / sent_http: Item → cell, sent direction.
        received_ws / received_http: Class → cell, received direction.
        ws_sent_nothing / ws_received_nothing: "No data" rows.
        fingerprinting_sockets: Sockets exfiltrating fingerprint items.
        fingerprinting_pairs: Unique (initiator, receiver) pairs doing
            so, with the top receiver's share (§4.3's 97% statistic).
        dom_receivers: Receivers of serialized DOMs.
    """

    ws_total: int = 0
    http_total: int = 0
    sent_ws: dict[SentItem, Table5Cell] = field(default_factory=dict)
    sent_http: dict[SentItem, Table5Cell] = field(default_factory=dict)
    received_ws: dict[ReceivedClass, Table5Cell] = field(default_factory=dict)
    received_http: dict[ReceivedClass, Table5Cell] = field(default_factory=dict)
    ws_sent_nothing: Table5Cell = Table5Cell(0, 0.0)
    ws_received_nothing: Table5Cell = Table5Cell(0, 0.0)
    fingerprinting_sockets: int = 0
    fingerprinting_pairs: int = 0
    fingerprinting_top_receiver: str = ""
    fingerprinting_top_receiver_share: float = 0.0
    dom_receivers: tuple[str, ...] = ()


def compute_table5(
    dataset: StudyDataset,
    views: list[SocketView],
    labeler: AaLabeler | None = None,
    resolver: DomainResolver | None = None,
) -> Table5:
    """Compute the table over the merged dataset."""
    labeler = labeler or dataset.derive_labeler()
    resolver = resolver or dataset.derive_resolver(labeler)
    table = Table5()

    # --- WebSocket side: the A&A sockets. --------------------------------
    aa_views = [v for v in views if v.is_aa_socket]
    table.ws_total = len(aa_views)
    sent_counts: Counter = Counter()
    recv_counts: Counter = Counter()
    sent_nothing = 0
    received_nothing = 0
    fp_pairs: Counter = Counter()
    fp_sockets = 0
    dom_receivers: set[str] = set()
    for view in aa_views:
        items = view.record.sent_items
        for item in items:
            sent_counts[item] += 1
        if view.record.sent_nothing:
            sent_nothing += 1
        for cls in view.record.received_classes:
            recv_counts[cls] += 1
        if view.record.received_nothing:
            received_nothing += 1
        if _ANALYZER.is_fingerprinting(set(items)):
            fp_sockets += 1
            fp_pairs[(view.initiator_domain, view.receiver_domain)] += 1
        if SentItem.DOM in items:
            dom_receivers.add(view.receiver_domain)
    total = table.ws_total or 1
    table.sent_ws = {
        item: Table5Cell(sent_counts[item], 100.0 * sent_counts[item] / total)
        for item in SENT_ITEMS
    }
    table.received_ws = {
        cls: Table5Cell(recv_counts[cls], 100.0 * recv_counts[cls] / total)
        for cls in RECEIVED_CLASSES
    }
    table.ws_sent_nothing = Table5Cell(sent_nothing, 100.0 * sent_nothing / total)
    table.ws_received_nothing = Table5Cell(
        received_nothing, 100.0 * received_nothing / total
    )
    table.fingerprinting_sockets = fp_sockets
    table.fingerprinting_pairs = len(fp_pairs)
    if fp_pairs:
        by_receiver: Counter = Counter()
        for (_, receiver), _count in fp_pairs.items():
            by_receiver[receiver] += 1
        top_receiver, top_count = by_receiver.most_common(1)[0]
        table.fingerprinting_top_receiver = top_receiver
        table.fingerprinting_top_receiver_share = (
            100.0 * top_count / len(fp_pairs)
        )
    table.dom_receivers = tuple(sorted(dom_receivers))

    # --- HTTP side: requests to A&A domains. ------------------------------
    http_total = 0
    http_sent: Counter = Counter()
    http_received: Counter = Counter()
    for host, count in dataset.http_requests_by_host.items():
        if not labeler.is_aa(resolver.effective_domain(host)):
            continue
        http_total += count
        bucket = dataset.http_items_by_host.get(host)
        if bucket:
            http_sent.update(bucket)
        received = dataset.http_received_by_host.get(host)
        if received:
            http_received.update(received)
    table.http_total = http_total
    denom = http_total or 1
    table.sent_http = {
        item: Table5Cell(http_sent[item], 100.0 * http_sent[item] / denom)
        for item in SENT_ITEMS
    }
    table.received_http = {
        cls: Table5Cell(
            http_received[cls], 100.0 * http_received[cls] / denom
        )
        for cls in RECEIVED_CLASSES
    }
    return table
