"""Type-tagged JSON codec for stage accumulator *state*.

The artifact cache stores what a stage :meth:`finalize`\\ s; the
incremental path (:meth:`AnalysisEngine.run_incremental`) additionally
caches what a stage *accumulates* per dataset slice — domain sets,
Counters keyed by tuples or enums, nested dicts — so a slice folded
once never has its records re-read.

Accumulator state is richer than JSON: sets, ``Counter``\\ s, tuple and
enum keys. Each non-JSON value is wrapped in a single-key tag object
(``{"~set": [...]}`` …); containers encode recursively, and mapping
entries are emitted as sorted key/value *pairs* so equal states encode
to equal bytes regardless of insertion order. The round trip is exact:
``decode_value(encode_value(v)) == v`` with types preserved — the
property ``tests/spool`` pins over every registered stage.

Strings, numbers, booleans and ``None`` pass through untouched; a
plain dict is itself encoded as ``{"~map": ...}``, so tag keys can
never collide with data.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any

from repro.content.items import ReceivedClass, SentItem


def _sort_token(encoded: Any) -> str:
    return json.dumps(encoded, sort_keys=True, separators=(",", ":"))


def _encode_pairs(items) -> list:
    pairs = [
        [encode_value(key), encode_value(value)] for key, value in items
    ]
    pairs.sort(key=lambda pair: _sort_token(pair[0]))
    return pairs


def encode_value(value: Any) -> Any:
    """Encode one accumulator value as tagged, canonical JSON data."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, SentItem):
        return {"~sent": value.value}
    if isinstance(value, ReceivedClass):
        return {"~recv": value.value}
    if isinstance(value, Counter):
        return {"~counter": _encode_pairs(value.items())}
    if isinstance(value, dict):
        return {"~map": _encode_pairs(value.items())}
    if isinstance(value, frozenset):
        return {"~frozenset": sorted(
            (encode_value(v) for v in value), key=_sort_token
        )}
    if isinstance(value, set):
        return {"~set": sorted(
            (encode_value(v) for v in value), key=_sort_token
        )}
    if isinstance(value, tuple):
        return {"~tuple": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return {"~list": [encode_value(v) for v in value]}
    raise TypeError(
        f"cannot encode stage state value of type {type(value).__name__}"
    )


def decode_value(payload: Any) -> Any:
    """Invert :func:`encode_value`, restoring the original types."""
    if payload is None or isinstance(payload, (bool, int, float, str)):
        return payload
    if isinstance(payload, dict):
        if len(payload) != 1:
            raise ValueError(f"malformed tagged value: {payload!r}")
        tag, body = next(iter(payload.items()))
        if tag == "~sent":
            return SentItem(body)
        if tag == "~recv":
            return ReceivedClass(body)
        if tag == "~counter":
            return Counter({
                decode_value(key): decode_value(value)
                for key, value in body
            })
        if tag == "~map":
            return {
                decode_value(key): decode_value(value)
                for key, value in body
            }
        if tag == "~frozenset":
            return frozenset(decode_value(v) for v in body)
        if tag == "~set":
            return {decode_value(v) for v in body}
        if tag == "~tuple":
            return tuple(decode_value(v) for v in body)
        if tag == "~list":
            return [decode_value(v) for v in body]
        raise ValueError(f"unknown state tag {tag!r}")
    raise ValueError(
        f"cannot decode stage state payload of type "
        f"{type(payload).__name__}"
    )
