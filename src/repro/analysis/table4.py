"""Table 4: top initiator/receiver pairs communicating via WebSockets."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable

from repro.analysis.classify import SocketView
from repro.analysis.stage import (
    AnalysisStage,
    StageContext,
    fold_views,
    register_stage,
)
from repro.net.domains import display_name


@dataclass(frozen=True)
class Table4Row:
    """One cross-domain pair's row.

    Attributes:
        initiator: Initiator display name.
        receiver: Receiver display name.
        initiator_is_aa / receiver_is_aa: Bold flags from the paper.
        socket_count: Sockets between the pair (merged dataset).
    """

    initiator: str
    receiver: str
    initiator_is_aa: bool
    receiver_is_aa: bool
    socket_count: int


@dataclass(frozen=True)
class Table4:
    """The pair table plus the aggregated self-pair row.

    Attributes:
        rows: Top cross-domain pairs by socket count.
        self_pair_sockets: Total "A&A domain to itself" sockets.
    """

    rows: tuple[Table4Row, ...]
    self_pair_sockets: int


@register_stage
class Table4Stage(AnalysisStage):
    """A&A socket counts per (initiator, receiver) pair.

    Only *A&A sockets* qualify (§3.2 attribution: an A&A initiator,
    receiver, or chain ancestor). Pairs where initiator and receiver
    share a domain are aggregated into the self-pair row, as the paper
    does.
    """

    name = "table4"
    version = "1"

    def __init__(self, top: int = 15) -> None:
        self.top = top
        self._counts: dict[tuple[str, str], int] = {}
        self._flags: dict[tuple[str, str], tuple[bool, bool]] = {}
        self._self_pairs = 0

    def spawn(self) -> "Table4Stage":
        return Table4Stage(self.top)

    def config_token(self) -> str:
        return f"top={self.top}"

    def fold(self, view: SocketView) -> None:
        if not view.is_aa_socket:
            return
        if view.is_self_pair:
            self._self_pairs += 1
            return
        key = (view.initiator_domain, view.receiver_domain)
        self._counts[key] = self._counts.get(key, 0) + 1
        self._flags[key] = (view.aa_initiated, view.aa_received)

    def merge(self, other: "Table4Stage") -> None:
        for key, count in other._counts.items():
            self._counts[key] = self._counts.get(key, 0) + count
        self._flags.update(other._flags)
        self._self_pairs += other._self_pairs

    def finalize(self, ctx: StageContext) -> Table4:
        rows = [
            Table4Row(
                initiator=display_name(initiator),
                receiver=display_name(receiver),
                initiator_is_aa=self._flags[(initiator, receiver)][0],
                receiver_is_aa=self._flags[(initiator, receiver)][1],
                socket_count=self._counts[(initiator, receiver)],
            )
            for initiator, receiver in sorted(self._counts)
        ]
        rows.sort(key=lambda r: (-r.socket_count, r.initiator, r.receiver))
        return Table4(rows=tuple(rows[:self.top]),
                      self_pair_sockets=self._self_pairs)

    def encode_artifact(self, artifact: Table4) -> dict:
        return {
            "rows": [dataclasses.asdict(row) for row in artifact.rows],
            "self_pair_sockets": artifact.self_pair_sockets,
        }

    def decode_artifact(self, payload: dict) -> Table4:
        return Table4(
            rows=tuple(Table4Row(**row) for row in payload["rows"]),
            self_pair_sockets=payload["self_pair_sockets"],
        )


def compute_table4(views: Iterable[SocketView], top: int = 15) -> Table4:
    """Aggregate A&A sockets per (initiator, receiver) pair."""
    stage = fold_views(Table4Stage(top), views)
    return stage.finalize(StageContext())
