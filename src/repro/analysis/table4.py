"""Table 4: top initiator/receiver pairs communicating via WebSockets."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.classify import SocketView
from repro.net.domains import display_name


@dataclass(frozen=True)
class Table4Row:
    """One cross-domain pair's row.

    Attributes:
        initiator: Initiator display name.
        receiver: Receiver display name.
        initiator_is_aa / receiver_is_aa: Bold flags from the paper.
        socket_count: Sockets between the pair (merged dataset).
    """

    initiator: str
    receiver: str
    initiator_is_aa: bool
    receiver_is_aa: bool
    socket_count: int


@dataclass(frozen=True)
class Table4:
    """The pair table plus the aggregated self-pair row.

    Attributes:
        rows: Top cross-domain pairs by socket count.
        self_pair_sockets: Total "A&A domain to itself" sockets.
    """

    rows: tuple[Table4Row, ...]
    self_pair_sockets: int


def compute_table4(views: list[SocketView], top: int = 15) -> Table4:
    """Aggregate A&A sockets per (initiator, receiver) pair.

    Only *A&A sockets* qualify (§3.2 attribution: an A&A initiator,
    receiver, or chain ancestor). Pairs where initiator and receiver
    share a domain are aggregated into the self-pair row, as the paper
    does.
    """
    counts: dict[tuple[str, str], int] = {}
    flags: dict[tuple[str, str], tuple[bool, bool]] = {}
    self_pairs = 0
    for view in views:
        if not view.is_aa_socket:
            continue
        if view.is_self_pair:
            self_pairs += 1
            continue
        key = (view.initiator_domain, view.receiver_domain)
        counts[key] = counts.get(key, 0) + 1
        flags[key] = (view.aa_initiated, view.aa_received)
    rows = [
        Table4Row(
            initiator=display_name(initiator),
            receiver=display_name(receiver),
            initiator_is_aa=flags[(initiator, receiver)][0],
            receiver_is_aa=flags[(initiator, receiver)][1],
            socket_count=count,
        )
        for (initiator, receiver), count in counts.items()
    ]
    rows.sort(key=lambda r: (-r.socket_count, r.initiator, r.receiver))
    return Table4(rows=tuple(rows[:top]), self_pair_sockets=self_pairs)
