"""Table 3: top A&A WebSocket receivers by number of unique initiators."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable

from repro.analysis.classify import SocketView
from repro.analysis.stage import (
    AnalysisStage,
    StageContext,
    fold_views,
    register_stage,
)
from repro.net.domains import display_name


@dataclass(frozen=True)
class Table3Row:
    """One A&A receiver's row.

    Attributes:
        receiver: Short display name.
        receiver_domain: Full second-level domain.
        initiators_total: # unique initiator domains.
        initiators_aa: # unique A&A initiator domains.
        socket_count: Total sockets received.
    """

    receiver: str
    receiver_domain: str
    initiators_total: int
    initiators_aa: int
    socket_count: int


@register_stage
class Table3Stage(AnalysisStage):
    """Per-A&A-receiver initiator sets, folded in one sweep."""

    name = "table3"
    version = "1"

    def __init__(self, top: int = 15) -> None:
        self.top = top
        self._initiators: dict[str, set[str]] = {}
        self._initiators_aa: dict[str, set[str]] = {}
        self._counts: dict[str, int] = {}

    def spawn(self) -> "Table3Stage":
        return Table3Stage(self.top)

    def config_token(self) -> str:
        return f"top={self.top}"

    def fold(self, view: SocketView) -> None:
        if not view.aa_received:
            return
        receiver = view.receiver_domain
        self._initiators.setdefault(receiver, set()).add(
            view.initiator_domain
        )
        if view.aa_initiated:
            self._initiators_aa.setdefault(receiver, set()).add(
                view.initiator_domain
            )
        self._counts[receiver] = self._counts.get(receiver, 0) + 1

    def merge(self, other: "Table3Stage") -> None:
        for receiver, initiators in other._initiators.items():
            self._initiators.setdefault(receiver, set()).update(initiators)
        for receiver, initiators in other._initiators_aa.items():
            self._initiators_aa.setdefault(receiver, set()).update(initiators)
        for receiver, count in other._counts.items():
            self._counts[receiver] = self._counts.get(receiver, 0) + count

    def finalize(self, ctx: StageContext) -> list[Table3Row]:
        rows = [
            Table3Row(
                receiver=display_name(domain),
                receiver_domain=domain,
                initiators_total=len(self._initiators[domain]),
                initiators_aa=len(self._initiators_aa.get(domain, ())),
                socket_count=self._counts[domain],
            )
            for domain in sorted(self._initiators)
        ]
        rows.sort(key=lambda r: (-r.initiators_total, -r.socket_count,
                                 r.receiver))
        return rows[:self.top]

    def encode_artifact(self, artifact: list[Table3Row]) -> list[dict]:
        return [dataclasses.asdict(row) for row in artifact]

    def decode_artifact(self, payload: list[dict]) -> list[Table3Row]:
        return [Table3Row(**row) for row in payload]


def compute_table3(
    views: Iterable[SocketView], top: int = 15
) -> list[Table3Row]:
    """Aggregate per A&A receiver over the merged dataset."""
    stage = fold_views(Table3Stage(top), views)
    return stage.finalize(StageContext())


def aa_initiator_share(views: Iterable[SocketView]) -> float:
    """§4.2: share of initiators contacting A&A receivers that are A&A.

    The paper reports ~2.5%: the overwhelming majority of initiators
    creating sockets to A&A receivers are benign domains or first-party
    publishers. Computed over unique initiator domains.
    """
    initiators: set[str] = set()
    aa_initiators: set[str] = set()
    for view in views:
        if not view.aa_received:
            continue
        initiators.add(view.initiator_domain)
        if view.aa_initiated:
            aa_initiators.add(view.initiator_domain)
    if not initiators:
        return 0.0
    return 100.0 * len(aa_initiators) / len(initiators)
