"""Table 3: top A&A WebSocket receivers by number of unique initiators."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.classify import SocketView
from repro.net.domains import display_name


@dataclass(frozen=True)
class Table3Row:
    """One A&A receiver's row.

    Attributes:
        receiver: Short display name.
        receiver_domain: Full second-level domain.
        initiators_total: # unique initiator domains.
        initiators_aa: # unique A&A initiator domains.
        socket_count: Total sockets received.
    """

    receiver: str
    receiver_domain: str
    initiators_total: int
    initiators_aa: int
    socket_count: int


def compute_table3(views: list[SocketView], top: int = 15) -> list[Table3Row]:
    """Aggregate per A&A receiver over the merged dataset."""
    initiators: dict[str, set[str]] = {}
    initiators_aa: dict[str, set[str]] = {}
    counts: dict[str, int] = {}
    for view in views:
        if not view.aa_received:
            continue
        receiver = view.receiver_domain
        initiators.setdefault(receiver, set()).add(view.initiator_domain)
        if view.aa_initiated:
            initiators_aa.setdefault(receiver, set()).add(view.initiator_domain)
        counts[receiver] = counts.get(receiver, 0) + 1
    rows = [
        Table3Row(
            receiver=display_name(domain),
            receiver_domain=domain,
            initiators_total=len(initiators[domain]),
            initiators_aa=len(initiators_aa.get(domain, ())),
            socket_count=counts[domain],
        )
        for domain in initiators
    ]
    rows.sort(key=lambda r: (-r.initiators_total, -r.socket_count, r.receiver))
    return rows[:top]


def aa_initiator_share(views: list[SocketView]) -> float:
    """§4.2: share of initiators contacting A&A receivers that are A&A.

    The paper reports ~2.5%: the overwhelming majority of initiators
    creating sockets to A&A receivers are benign domains or first-party
    publishers. Computed over unique initiator domains.
    """
    initiators: set[str] = set()
    aa_initiators: set[str] = set()
    for view in views:
        if not view.aa_received:
            continue
        initiators.add(view.initiator_domain)
        if view.aa_initiated:
            aa_initiators.add(view.initiator_domain)
    if not initiators:
        return 0.0
    return 100.0 * len(aa_initiators) / len(initiators)
