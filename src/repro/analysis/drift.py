"""Initiator drift across crawls (§4.1's "Before and After").

Tracks which A&A initiators appear, persist, and disappear between
crawls — the analysis behind the paper's headline that 56 initiators
(including DoubleClick, Facebook, and AddThis) vanished after the
Chrome 58 patch while WebSocket-dependent services carried on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.analysis.classify import SocketView
from repro.analysis.stage import (
    AnalysisStage,
    StageContext,
    fold_views,
    register_stage,
)


@dataclass(frozen=True)
class InitiatorDrift:
    """A&A initiator population dynamics over the study.

    Attributes:
        per_crawl: Crawl index → set of A&A initiator domains.
        persistent: Initiators present in every crawl.
        disappeared_after_patch: Present pre-patch (crawls 0/1), absent
            in every post-patch crawl.
        appeared_after_patch: First seen post-patch.
        churn: (crawl, crawl+1) → (gained, lost) counts.
    """

    per_crawl: dict[int, frozenset[str]]
    persistent: frozenset[str]
    disappeared_after_patch: frozenset[str]
    appeared_after_patch: frozenset[str]
    churn: dict[tuple[int, int], tuple[int, int]]

    @property
    def survival_rate(self) -> float:
        """Share of pre-patch initiators still active post-patch."""
        pre = set().union(*(self.per_crawl.get(c, frozenset())
                            for c in (0, 1))) if self.per_crawl else set()
        if not pre:
            return 0.0
        post = set().union(*(self.per_crawl.get(c, frozenset())
                             for c in (2, 3)))
        return len(pre & post) / len(pre)


@register_stage
class DriftStage(AnalysisStage):
    """Per-crawl A&A initiator sets, folded in one sweep."""

    name = "drift"
    version = "1"

    def __init__(
        self,
        pre_patch: tuple[int, ...] = (0, 1),
        post_patch: tuple[int, ...] = (2, 3),
    ) -> None:
        self.pre_patch = pre_patch
        self.post_patch = post_patch
        self._per_crawl: dict[int, set[str]] = {}

    def spawn(self) -> "DriftStage":
        return DriftStage(self.pre_patch, self.post_patch)

    def config_token(self) -> str:
        pre = ",".join(str(c) for c in self.pre_patch)
        post = ",".join(str(c) for c in self.post_patch)
        return f"pre=({pre}),post=({post})"

    def fold(self, view: SocketView) -> None:
        if view.aa_initiated:
            self._per_crawl.setdefault(view.crawl, set()).add(
                view.initiator_domain
            )

    def merge(self, other: "DriftStage") -> None:
        for crawl, domains in other._per_crawl.items():
            self._per_crawl.setdefault(crawl, set()).update(domains)

    def finalize(self, ctx: StageContext) -> InitiatorDrift:
        per_crawl = self._per_crawl
        crawls = sorted(per_crawl)
        persistent = (
            frozenset(set.intersection(*(per_crawl[c] for c in crawls)))
            if crawls else frozenset()
        )
        pre = set().union(*(per_crawl.get(c, set()) for c in self.pre_patch))
        post = set().union(*(per_crawl.get(c, set()) for c in self.post_patch))
        churn: dict[tuple[int, int], tuple[int, int]] = {}
        for a, b in zip(crawls, crawls[1:]):
            gained = len(per_crawl[b] - per_crawl[a])
            lost = len(per_crawl[a] - per_crawl[b])
            churn[(a, b)] = (gained, lost)
        return InitiatorDrift(
            per_crawl={
                c: frozenset(domains) for c, domains in per_crawl.items()
            },
            persistent=persistent,
            disappeared_after_patch=frozenset(pre - post),
            appeared_after_patch=frozenset(post - pre),
            churn=churn,
        )

    def encode_artifact(self, artifact: InitiatorDrift) -> dict:
        from repro.analysis._codecs import encode_drift

        return encode_drift(artifact)

    def decode_artifact(self, payload: dict) -> InitiatorDrift:
        from repro.analysis._codecs import decode_drift

        return decode_drift(payload)


def compute_initiator_drift(
    views: Iterable[SocketView],
    pre_patch: tuple[int, ...] = (0, 1),
    post_patch: tuple[int, ...] = (2, 3),
) -> InitiatorDrift:
    """Compute initiator dynamics from classified sockets."""
    stage = fold_views(DriftStage(pre_patch, post_patch), views)
    return stage.finalize(StageContext())


def render_drift(drift: InitiatorDrift, majors: frozenset[str] = frozenset({
    "doubleclick.net", "facebook.net", "google.com", "addthis.com",
    "googlesyndication.com", "adnxs.com", "sharethis.com", "twitter.com",
})) -> str:
    """Text summary of the drift analysis."""
    lines = []
    for crawl in sorted(drift.per_crawl):
        lines.append(f"crawl {crawl}: {len(drift.per_crawl[crawl])} "
                     f"A&A initiators")
    lines.append(f"persistent across all crawls: {len(drift.persistent)}")
    lines.append(f"disappeared after the patch: "
                 f"{len(drift.disappeared_after_patch)} "
                 f"(incl. {len(drift.disappeared_after_patch & majors)} "
                 f"major ad platforms)")
    lines.append(f"appeared only after the patch: "
                 f"{len(drift.appeared_after_patch)}")
    lines.append(f"pre-patch initiator survival rate: "
                 f"{100 * drift.survival_rate:.0f}%")
    for (a, b), (gained, lost) in sorted(drift.churn.items()):
        lines.append(f"crawl {a}→{b}: +{gained} / -{lost}")
    return "\n".join(lines)
