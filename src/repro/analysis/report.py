"""Fixed-width text rendering of the reproduced tables and figure."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.ads import render_ad_delivery
from repro.analysis.blocking import BlockingStats
from repro.analysis.drift import render_drift
from repro.analysis.figure3 import Figure3Series, coarse_series
from repro.analysis.stats import OverallStats
from repro.analysis.table1 import Table1Row
from repro.analysis.table2 import Table2Row
from repro.analysis.table3 import Table3Row
from repro.analysis.table4 import Table4
from repro.analysis.table5 import Table5
from repro.content.items import RECEIVED_CLASSES, SENT_ITEMS
from repro.obs import ObsSummary, render_obs_summary
from repro.staticlint.diagnostics import LintReport
from repro.staticlint.runner import FullLintResult

if TYPE_CHECKING:
    from repro.analysis.engine import AnalysisResult


def _fmt(rows: list[list[str]], header: list[str]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _bold(name: str, is_aa: bool) -> str:
    """The paper bolds A&A domains; we star them."""
    return f"{name}*" if is_aa else name


def render_table1(rows: list[Table1Row]) -> str:
    """Table 1 as text."""
    body = [
        [
            row.label,
            f"{row.pct_sites_with_sockets:.1f}",
            f"{row.pct_sockets_aa_initiators:.1f}",
            str(row.unique_aa_initiators),
            f"{row.pct_sockets_aa_receivers:.1f}",
            str(row.unique_aa_receivers),
        ]
        for row in rows
    ]
    return _fmt(body, [
        "Crawl Dates", "% Sites w/ Sockets", "% Sockets w/ A&A Init.",
        "# Uniq A&A Init.", "% Sockets w/ A&A Recv.", "# Uniq A&A Recv.",
    ])


def render_table2(rows: list[Table2Row]) -> str:
    """Table 2 as text (A&A initiators starred)."""
    body = [
        [
            _bold(row.initiator, row.is_aa),
            str(row.receivers_total),
            str(row.receivers_aa),
            str(row.socket_count),
        ]
        for row in rows
    ]
    return _fmt(body, ["Initiator", "# Recv (Total)", "# Recv (A&A)",
                       "Socket Count"])


def render_table3(rows: list[Table3Row]) -> str:
    """Table 3 as text."""
    body = [
        [
            row.receiver,
            str(row.initiators_total),
            str(row.initiators_aa),
            str(row.socket_count),
        ]
        for row in rows
    ]
    return _fmt(body, ["Receiver", "# Init (Total)", "# Init (A&A)",
                       "Socket Count"])


def render_table4(table: Table4) -> str:
    """Table 4 as text, self-pair aggregate last."""
    body = [
        [
            _bold(row.initiator, row.initiator_is_aa),
            _bold(row.receiver, row.receiver_is_aa),
            str(row.socket_count),
        ]
        for row in table.rows
    ]
    body.append(["A&A domain to itself", "", f"{table.self_pair_sockets:,}"])
    return _fmt(body, ["Initiator", "Receiver", "Socket Count"])


def render_table5(table: Table5) -> str:
    """Table 5 as text: sent and received halves, WS vs HTTP/S."""
    body = []
    for item in SENT_ITEMS:
        ws = table.sent_ws.get(item)
        http = table.sent_http.get(item)
        body.append([
            item.value,
            f"{ws.count:,}" if ws else "0",
            f"{ws.percent:.2f}" if ws else "0.00",
            f"{http.count:,}" if http else "0",
            f"{http.percent:.2f}" if http else "0.00",
        ])
    body.append([
        "No data",
        f"{table.ws_sent_nothing.count:,}",
        f"{table.ws_sent_nothing.percent:.2f}",
        "-", "-",
    ])
    sent = _fmt(body, ["Sent Item", "WS Count", "WS %", "HTTP Count", "HTTP %"])
    body = []
    for cls in RECEIVED_CLASSES:
        ws = table.received_ws.get(cls)
        http = table.received_http.get(cls)
        body.append([
            cls.value,
            f"{ws.count:,}" if ws else "0",
            f"{ws.percent:.2f}" if ws else "0.00",
            f"{http.count:,}" if http else "0",
            f"{http.percent:.2f}" if http else "0.00",
        ])
    body.append([
        "No data",
        f"{table.ws_received_nothing.count:,}",
        f"{table.ws_received_nothing.percent:.2f}",
        "-", "-",
    ])
    received = _fmt(body, ["Received Item", "WS Count", "WS %",
                           "HTTP Count", "HTTP %"])
    notes = (
        f"(A&A sockets: {table.ws_total:,}; HTTP/S requests to A&A: "
        f"{table.http_total:,})\n"
        f"Fingerprinting: {table.fingerprinting_sockets:,} sockets across "
        f"{table.fingerprinting_pairs} initiator/receiver pairs; top "
        f"receiver {table.fingerprinting_top_receiver} in "
        f"{table.fingerprinting_top_receiver_share:.0f}% of pairs.\n"
        f"DOM exfiltration receivers: {', '.join(table.dom_receivers)}"
    )
    return f"{sent}\n\n{received}\n\n{notes}"


def render_figure3(series: Figure3Series, groups: int = 10) -> str:
    """Figure 3 as a coarse text series."""
    body = [
        [label, f"{aa:.2f}", f"{non:.2f}", str(pubs)]
        for label, aa, non, pubs in coarse_series(series, groups)
    ]
    table = _fmt(body, ["Rank Range", "% w/ A&A Sockets",
                        "% w/ non-A&A Sockets", "Publishers"])
    return (
        f"{table}\n"
        f"Overall A&A / non-A&A ratio: {series.overall_ratio:.1f}x; "
        f"top-10K ratio: {series.top10k_ratio:.1f}x"
    )


def render_figure3_chart(series: Figure3Series, width: int = 40) -> str:
    """Figure 3 as a unicode bar chart (A&A vs non-A&A per rank band).

    Rank bands are uneven on purpose: the crawl sample (like the
    paper's) covers the head of the ranking densely and the tail
    sparsely, so tail bands are aggregated and each band shows its
    publisher count.
    """
    def _aggregate(lo_bin: int, hi_bin: int) -> tuple[float, float, int]:
        pubs = sum(series.publishers_per_bin[lo_bin:hi_bin])
        if not pubs:
            return 0.0, 0.0, 0
        aa = sum(series.aa_fraction[i] * series.publishers_per_bin[i]
                 for i in range(lo_bin, hi_bin)) / pubs
        non = sum(series.non_aa_fraction[i] * series.publishers_per_bin[i]
                  for i in range(lo_bin, hi_bin)) / pubs
        return aa, non, pubs

    bands = ((0, 1, "0-10K"), (1, 2, "10-20K"), (2, 5, "20-50K"),
             (5, 10, "50-100K"), (10, 50, "100-500K"), (50, 100, "500K-1M"))
    rows = [(label, *_aggregate(lo, hi)[0:2], _aggregate(lo, hi)[2])
            for lo, hi, label in bands]
    # Scale bars to the densest (most trustworthy) bands only, so a
    # noisy 20-publisher tail band cannot flatten the head.
    trusted = [max(aa, non) for _, aa, non, pubs in rows if pubs >= 200]
    peak = max(trusted, default=1.0) or 1.0
    lines = ["Publishers with sockets, by Alexa rank "
             "(█ A&A, ░ non-A&A; band %, n = publishers sampled):"]
    for label, aa, non, pubs in rows:
        if not pubs:
            lines.append(f"{label:>10s} | (no publishers sampled)")
            continue
        aa_bar = "█" * min(width, max(1 if aa > 0 else 0,
                                      round(width * aa / peak)))
        non_bar = "░" * min(width, max(1 if non > 0 else 0,
                                       round(width * non / peak)))
        sparse = "  ⚠ sparse band" if pubs < 200 else ""
        lines.append(f"{label:>10s} | {aa_bar} {aa:.2f}  (n={pubs}){sparse}")
        lines.append(f"{'':>10s} | {non_bar} {non:.2f}")
    return "\n".join(lines)


def render_overall(stats: OverallStats) -> str:
    """§4.1 prose statistics as text."""
    return "\n".join([
        f"Total sockets (merged): {stats.total_sockets:,}",
        f"Cross-origin sockets: {stats.pct_cross_origin:.1f}%",
        f"Unique third-party receiver domains: "
        f"{stats.unique_third_party_receivers}",
        f"Unique A&A receiver domains: {stats.unique_aa_receivers}",
        f"Unique A&A initiator domains: {stats.unique_aa_initiators}",
        f"Avg sockets per socket-using site/crawl: "
        f"{stats.avg_sockets_per_socket_site:.1f}",
        f"A&A receivers contacted by >=10 initiators: "
        f"{stats.pct_aa_receivers_ge_10_initiators:.0f}%",
        f"A&A initiators that disappeared (first to last crawl): "
        f"{stats.disappeared_initiators}",
        f"Sockets per A&A initiator vs non-A&A initiator: "
        f"{stats.sockets_per_aa_initiator:.1f} vs "
        f"{stats.sockets_per_non_aa_initiator:.1f} "
        f"({stats.aa_involvement_ratio:.1f}x)",
    ])


def render_blocking(stats: BlockingStats) -> str:
    """§4.2 blocking statistics as text."""
    return "\n".join([
        f"A&A socket chains blocked by EasyList/EasyPrivacy: "
        f"{stats.pct_socket_chains_blocked:.1f}% "
        f"({stats.socket_chains_blocked:,}/{stats.socket_chains:,})",
        f"All A&A chains blocked: {stats.pct_aa_chains_blocked:.1f}% "
        f"({stats.aa_chains_blocked:,}/{stats.aa_chains:,})",
    ])


def render_obs(summary: ObsSummary) -> str:
    """The study's observability section: per-stage timings, per-crawl
    attribution, and the harvested metrics snapshot."""
    return render_obs_summary(summary)


def render_lint_report(report: LintReport, show_hints: bool = True) -> str:
    """A lint report as a fixed-width diagnostics table."""
    if not report:
        return "(no findings)"
    body = []
    for diag in report.sorted_by_severity():
        hint = diag.fix_hint if show_hints else ""
        body.append([diag.severity.value, diag.rule_id, diag.source,
                     diag.message, hint])
    header = ["Sev", "Rule", "Source", "Finding", "Fix hint"]
    if not show_hints:
        body = [row[:4] for row in body]
        header = header[:4]
    return _fmt(body, header)


def render_lint(result: FullLintResult) -> str:
    """The full ``repro lint`` output: summary, verdicts, diagnostics."""
    sections: list[str] = []
    if result.filter_analysis is not None:
        analysis = result.filter_analysis
        universe = analysis.universe
        blocked = sum(1 for b in analysis.blocked if b)
        sections.append(
            f"FILTER LISTS — {sum(len(fl) for fl in analysis.lists)} rules, "
            f"{len(universe.probes)} probe URLs ({blocked} blocked)\n"
            f"ws blindspot domains: {len(analysis.blindspot_domains)} "
            f"({', '.join(analysis.blindspot_domains[:6])}"
            f"{', …' if len(analysis.blindspot_domains) > 6 else ''})\n"
            f"ws covered domains: {len(analysis.ws_covered_domains)}\n"
            + render_lint_report(analysis.report)
        )
    if result.listener_verdicts:
        body = [[label, verdict.value]
                for label, verdict in result.listener_verdicts]
        xchecks = []
        for label, records in result.cross_checks.items():
            agree = sum(1 for r in records if r.agree)
            xchecks.append(
                f"  {label}: static verdict matches dynamic dispatch for "
                f"{agree}/{len(records)} receivers"
            )
        sections.append(
            "WEBREQUEST LISTENERS\n"
            + _fmt(body, ["Configuration", "Verdict"])
            + "\nstatic-vs-dynamic cross-check:\n"
            + "\n".join(xchecks)
        )
    if result.self_report is not None:
        sections.append(
            "DETERMINISM (src/repro)\n"
            + render_lint_report(result.self_report)
        )
    if result.api_report is not None:
        sections.append(
            "API BOUNDARIES (src/repro)\n"
            + render_lint_report(result.api_report)
        )
    if result.flow_report is not None:
        lines = ["WHOLE-PROGRAM FLOW (src/repro)"]
        analysis = result.flow_analysis
        if analysis is not None:
            edges = sum(len(v) for v in analysis.graph.calls.values())
            effectful = sum(1 for e in analysis.effects.values() if e)
            lines.append(
                f"{len(analysis.graph.nodes)} functions, {edges} call "
                f"edges, {effectful} effectful after fixpoint; "
                f"parsed {analysis.parsed_files} file(s), "
                f"{analysis.cached_files} from cache"
            )
        if result.baselined:
            lines.append(
                f"{result.baselined} accepted finding(s) demoted to "
                f"warnings by staticlint-baseline.json"
            )
        lines.append(render_lint_report(result.flow_report))
        sections.append("\n".join(lines))
    counts = result.report.counts()
    sections.append(
        f"{len(result.report)} finding(s): "
        + (", ".join(f"{rule} x{n}" for rule, n in sorted(counts.items()))
           if counts else "none")
        + f"\nexit code: {result.exit_code}"
    )
    return "\n\n".join(sections)


def render_analysis(result: "AnalysisResult") -> str:
    """The full ``repro analyze`` report over a saved dataset.

    Renders whichever stage artifacts the engine produced, in the
    study's section order; the text for each shared stage is
    byte-identical to the corresponding ``repro study`` section.
    """
    meta = result.meta
    crawls = sorted(meta.crawls, key=lambda crawl: crawl.index)
    header = (
        f"DATASET — {len(crawls)} crawl(s): "
        + "; ".join(
            f"{crawl.index} · {crawl.label} ({len(crawl.sites)} sites)"
            for crawl in crawls
        )
    )
    renderers = (
        ("table1", "TABLE 1 — socket prevalence per crawl", render_table1),
        ("table2", "TABLE 2 — top initiators", render_table2),
        ("table3", "TABLE 3 — top A&A receivers", render_table3),
        ("table4", "TABLE 4 — initiator/receiver pairs", render_table4),
        ("table5", "TABLE 5 — content analysis", render_table5),
        ("figure3", "FIGURE 3 — usage by rank", render_figure3),
        ("overall", "", render_overall),
        ("blocking", "", render_blocking),
        ("drift", "", render_drift),
        ("ads", "", render_ad_delivery),
    )
    sections = [header]
    for name, title, renderer in renderers:
        if name not in result.artifacts:
            continue
        text = renderer(result.artifacts[name])
        sections.append(f"{title}\n{text}" if title else text)
    return "\n\n".join(sections)
