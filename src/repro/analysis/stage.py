"""The unified ``AnalysisStage`` API.

Every published artifact — Tables 1–5, Figure 3, the §4.1 prose
statistics, the §4.2 blocking analysis, initiator drift, and the §4.3
ad-delivery analysis — is computed by a *stage*: a small accumulator
that

* ``fold``\\ s classified socket views one at a time (so a single
  O(views) sweep feeds every stage without materializing or rescanning
  the view list),
* ``merge``\\ s with another accumulator of the same stage (so
  shard-local partial aggregates from :mod:`repro.parallel` workers
  can be combined without a barrier — folds are associative and
  order-insensitive), and
* ``finalize``\\ s against a :class:`StageContext` carrying everything
  that is *not* part of the view stream (dataset metadata, the derived
  A&A labeler, the filter engine, the dataset's aggregate counters).

Stages carry a ``name`` and ``version``; together with the dataset
fingerprint and the stage configuration they form the content address
under which :mod:`repro.analysis.cache` stores finalized artifacts.
Bump ``version`` whenever a stage's output could change for the same
input — that is what invalidates stale cache entries.

The registry maps stage names to classes; modules register their stage
with the :func:`register_stage` decorator and
:func:`default_stages` instantiates them in canonical report order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, ClassVar, Iterable

from repro.crawler.dataset import DatasetMeta

if TYPE_CHECKING:
    from repro.analysis.classify import SocketView
    from repro.crawler.dataset import StudyDataset
    from repro.filters import FilterEngine
    from repro.labeling.aa_labeler import AaLabeler
    from repro.labeling.resolver import DomainResolver


@dataclass(frozen=True)
class StageContext:
    """Everything a stage may need beyond the view stream.

    Attributes:
        meta: Typed dataset metadata (crawl labels and site lists —
            the Table 1 denominators and Figure 3 bins).
        labeler: The derived A&A domain set.
        resolver: Host → effective-domain resolution (Cloudfront
            tenants mapped).
        engine: The filter engine, for post-hoc ``would_block``
            evaluation (blocking and ad-delivery stages).
        dataset: The dataset's aggregate counters (HTTP item counts,
            chain signatures) — *not* its socket records; those arrive
            through ``fold``.
    """

    meta: DatasetMeta = field(default_factory=DatasetMeta)
    labeler: "AaLabeler | None" = None
    resolver: "DomainResolver | None" = None
    engine: "FilterEngine | None" = None
    dataset: "StudyDataset | None" = None


class AnalysisStage:
    """Base class for single-pass analysis accumulators.

    Subclasses set the ``name``/``version`` class attributes, register
    themselves with :func:`register_stage`, and implement the
    fold/merge/finalize triple plus the artifact cache codec. The
    contract the property tests pin:

    * ``fold`` must be order-insensitive up to ``finalize`` — folding
      a permutation of the same views yields an equal artifact;
    * ``merge`` must be associative and agree with folding the
      concatenation;
    * ``finalize`` must not mutate the accumulator's semantics (it may
      be called after further folds in principle, but the engine calls
      it exactly once).
    """

    name: ClassVar[str]
    version: ClassVar[str]

    def fold(self, view: "SocketView") -> None:
        """Absorb one classified socket view."""
        raise NotImplementedError

    def merge(self, other: "AnalysisStage") -> None:
        """Fold another accumulator of the same stage into this one."""
        raise NotImplementedError

    def finalize(self, ctx: StageContext) -> Any:
        """Produce the stage's artifact from the accumulated state."""
        raise NotImplementedError

    def spawn(self) -> "AnalysisStage":
        """A fresh, empty accumulator with this stage's configuration.

        Stages with configuration knobs override this so shard-local
        partials inherit the knobs.
        """
        return type(self)()

    def config_token(self) -> str:
        """Canonical string of the stage's configuration.

        Part of the cache key: two instances with different
        configuration must return different tokens.
        """
        return ""

    def encode_artifact(self, artifact: Any) -> Any:
        """Encode a finalized artifact as JSON-able data (for caching)."""
        raise NotImplementedError

    def decode_artifact(self, payload: Any) -> Any:
        """Reconstruct an artifact from :meth:`encode_artifact` output."""
        raise NotImplementedError

    def encode_state(self) -> Any:
        """Encode the *accumulator* state as canonical JSON-able data.

        Used by the incremental engine to cache per-slice partial
        folds. The default covers every built-in stage: accumulator
        state lives in underscore-prefixed instance attributes
        (configuration in public ones), encoded with the type-tagged
        codec in :mod:`repro.analysis.state`. Stages holding state the
        codec cannot express override the pair.
        """
        from repro.analysis.state import encode_value

        return {
            key: encode_value(value)
            for key, value in sorted(vars(self).items())
            if key.startswith("_")
        }

    def restore_state(self, payload: Any) -> None:
        """Invert :meth:`encode_state` onto a fresh accumulator."""
        from repro.analysis.state import decode_value

        for key, value in payload.items():
            setattr(self, key, decode_value(value))


def fold_views(
    stage: AnalysisStage, views: Iterable["SocketView"]
) -> AnalysisStage:
    """Fold an iterable of views into a stage; returns the stage."""
    for view in views:
        stage.fold(view)
    return stage


# -- registry ---------------------------------------------------------------

_REGISTRY: dict[str, type[AnalysisStage]] = {}

# Canonical report order (the order the study report prints artifacts).
_CANONICAL_ORDER: tuple[str, ...] = (
    "table1", "table2", "table3", "table4", "table5",
    "figure3", "blocking", "overall", "drift", "ads",
)

# The subset a four-crawl study computes (StudyResult's artifact fields).
STUDY_STAGE_NAMES: tuple[str, ...] = _CANONICAL_ORDER[:8]


def register_stage(cls: type[AnalysisStage]) -> type[AnalysisStage]:
    """Class decorator adding a stage to the global registry."""
    existing = _REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"stage name {cls.name!r} already registered by {existing!r}"
        )
    _REGISTRY[cls.name] = cls
    return cls


def _ensure_registered() -> None:
    """Import every built-in stage module (idempotent)."""
    from repro.analysis import (  # noqa: F401  (import-for-effect)
        ads,
        blocking,
        drift,
        figure3,
        stats,
        table1,
        table2,
        table3,
        table4,
        table5,
    )


def registered_stages() -> dict[str, type[AnalysisStage]]:
    """Name → stage class for every registered stage."""
    _ensure_registered()
    return dict(_REGISTRY)


def default_stages(names: Iterable[str] | None = None) -> list[AnalysisStage]:
    """Fresh default-configured instances, in canonical report order.

    With ``names``, instantiates exactly those stages in the given
    order; unknown names raise ``KeyError``.
    """
    registry = registered_stages()
    if names is None:
        extras = sorted(set(registry) - set(_CANONICAL_ORDER))
        names = [n for n in _CANONICAL_ORDER if n in registry] + extras
    return [registry[name]() for name in names]


def study_stages() -> list[AnalysisStage]:
    """The stages a four-crawl study computes, in report order."""
    return default_stages(STUDY_STAGE_NAMES)
