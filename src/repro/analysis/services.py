"""Behavioral classification of WebSocket receivers (§4.2's taxonomy).

The paper sorts the A&A receivers by business model — session replay,
live chat, real-time infrastructure, advertising — from manual
inspection. This module infers the same taxonomy *from observed socket
behaviour alone*: what a receiver gets sent (DOMs, fingerprints,
identifiers) and what it pushes back (HTML bubbles, ad units, JSON
updates). Tests verify the inference rediscovers the registry's
ground-truth roles.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.analysis.classify import SocketView
from repro.content.items import ReceivedClass, SentItem
from repro.content.sent import SentDataAnalyzer

_ANALYZER = SentDataAnalyzer()


@dataclass
class ServiceProfile:
    """Aggregated wire behaviour of one receiver domain.

    Attributes:
        receiver_domain: The receiver.
        sockets: Socket count observed.
        html_share: Fraction of sockets receiving HTML.
        json_share: Fraction receiving JSON.
        dom_share: Fraction with serialized-DOM uploads.
        fingerprint_share: Fraction sending ≥3 fingerprint items.
        ad_unit_share: Fraction delivering ad units.
        cookie_share: Fraction carrying a cookie.
    """

    receiver_domain: str
    sockets: int = 0
    html_share: float = 0.0
    json_share: float = 0.0
    dom_share: float = 0.0
    fingerprint_share: float = 0.0
    ad_unit_share: float = 0.0
    cookie_share: float = 0.0

    @property
    def inferred_role(self) -> str:
        """The service class the behaviour implies."""
        if self.ad_unit_share > 0.2:
            return "ad_server"
        if self.dom_share > 0.05:
            return "session_replay"
        if self.fingerprint_share > 0.5:
            return "fingerprinting"
        if self.html_share > 0.35:
            return "chat_or_comments"
        if self.json_share > 0.25 or self.sockets > 0:
            return "realtime_feed"
        return "other"


def profile_receivers(
    views: list[SocketView], min_sockets: int = 3
) -> dict[str, ServiceProfile]:
    """Build behaviour profiles for every A&A receiver."""
    groups: dict[str, list[SocketView]] = defaultdict(list)
    for view in views:
        if view.aa_received:
            groups[view.receiver_domain].append(view)
    profiles: dict[str, ServiceProfile] = {}
    for domain, group in groups.items():
        if len(group) < min_sockets:
            continue
        n = len(group)
        profiles[domain] = ServiceProfile(
            receiver_domain=domain,
            sockets=n,
            html_share=sum(
                ReceivedClass.HTML in v.record.received_classes for v in group
            ) / n,
            json_share=sum(
                ReceivedClass.JSON in v.record.received_classes for v in group
            ) / n,
            dom_share=sum(
                SentItem.DOM in v.record.sent_items for v in group
            ) / n,
            fingerprint_share=sum(
                _ANALYZER.is_fingerprinting(set(v.record.sent_items))
                for v in group
            ) / n,
            ad_unit_share=sum(
                bool(v.record.ad_units) for v in group
            ) / n,
            cookie_share=sum(
                SentItem.COOKIE in v.record.sent_items for v in group
            ) / n,
        )
    return profiles


def render_service_taxonomy(profiles: dict[str, ServiceProfile]) -> str:
    """Text rendering of the inferred taxonomy, grouped by role."""
    by_role: dict[str, list[ServiceProfile]] = defaultdict(list)
    for profile in profiles.values():
        by_role[profile.inferred_role].append(profile)
    lines = []
    for role in sorted(by_role):
        members = sorted(by_role[role], key=lambda p: -p.sockets)
        names = ", ".join(p.receiver_domain for p in members[:8])
        lines.append(f"{role}: {names}")
    return "\n".join(lines)
