"""Table 2: top WebSocket initiators by number of unique receivers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.classify import SocketView
from repro.net.domains import display_name


@dataclass(frozen=True)
class Table2Row:
    """One initiator's row.

    Attributes:
        initiator: Short display name (``doubleclick``).
        initiator_domain: Full second-level domain.
        is_aa: Whether the initiator is A&A (bold in the paper).
        receivers_total: # unique receiver domains.
        receivers_aa: # unique A&A receiver domains.
        socket_count: Total sockets initiated.
    """

    initiator: str
    initiator_domain: str
    is_aa: bool
    receivers_total: int
    receivers_aa: int
    socket_count: int


def compute_table2(
    views: list[SocketView],
    top: int = 15,
    exclude_first_party_initiators: bool = False,
) -> list[Table2Row]:
    """Aggregate per initiator over the merged dataset.

    Publisher first-party initiators are included by default, as in the
    paper (slither.io tops its own sockets); they rank low anyway since
    each publisher contacts only its own handful of vendors.
    """
    receivers: dict[str, set[str]] = {}
    receivers_aa: dict[str, set[str]] = {}
    counts: dict[str, int] = {}
    aa_flags: dict[str, bool] = {}
    for view in views:
        initiator = view.initiator_domain
        if exclude_first_party_initiators and _is_first_party(view):
            continue
        receivers.setdefault(initiator, set()).add(view.receiver_domain)
        if view.aa_received:
            receivers_aa.setdefault(initiator, set()).add(view.receiver_domain)
        counts[initiator] = counts.get(initiator, 0) + 1
        aa_flags[initiator] = view.aa_initiated
    rows = [
        Table2Row(
            initiator=display_name(domain),
            initiator_domain=domain,
            is_aa=aa_flags[domain],
            receivers_total=len(receivers[domain]),
            receivers_aa=len(receivers_aa.get(domain, ())),
            socket_count=counts[domain],
        )
        for domain in receivers
    ]
    rows.sort(key=lambda r: (-r.receivers_total, -r.socket_count, r.initiator))
    return rows[:top]


def _is_first_party(view: SocketView) -> bool:
    from repro.net.domains import registrable_domain

    return view.initiator_domain == registrable_domain(
        view.record.first_party_host
    )
