"""Table 2: top WebSocket initiators by number of unique receivers."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable

from repro.analysis.classify import SocketView
from repro.analysis.stage import (
    AnalysisStage,
    StageContext,
    fold_views,
    register_stage,
)
from repro.net.domains import display_name


@dataclass(frozen=True)
class Table2Row:
    """One initiator's row.

    Attributes:
        initiator: Short display name (``doubleclick``).
        initiator_domain: Full second-level domain.
        is_aa: Whether the initiator is A&A (bold in the paper).
        receivers_total: # unique receiver domains.
        receivers_aa: # unique A&A receiver domains.
        socket_count: Total sockets initiated.
    """

    initiator: str
    initiator_domain: str
    is_aa: bool
    receivers_total: int
    receivers_aa: int
    socket_count: int


@register_stage
class Table2Stage(AnalysisStage):
    """Per-initiator receiver sets, folded in one sweep.

    Publisher first-party initiators are included by default, as in the
    paper (slither.io tops its own sockets); they rank low anyway since
    each publisher contacts only its own handful of vendors.
    """

    name = "table2"
    version = "1"

    def __init__(
        self,
        top: int = 15,
        exclude_first_party_initiators: bool = False,
    ) -> None:
        self.top = top
        self.exclude_first_party_initiators = exclude_first_party_initiators
        self._receivers: dict[str, set[str]] = {}
        self._receivers_aa: dict[str, set[str]] = {}
        self._counts: dict[str, int] = {}
        self._aa_flags: dict[str, bool] = {}

    def spawn(self) -> "Table2Stage":
        return Table2Stage(self.top, self.exclude_first_party_initiators)

    def config_token(self) -> str:
        return (
            f"top={self.top},"
            f"exclude_first_party={self.exclude_first_party_initiators}"
        )

    def fold(self, view: SocketView) -> None:
        if self.exclude_first_party_initiators and _is_first_party(view):
            return
        initiator = view.initiator_domain
        self._receivers.setdefault(initiator, set()).add(view.receiver_domain)
        if view.aa_received:
            self._receivers_aa.setdefault(initiator, set()).add(
                view.receiver_domain
            )
        self._counts[initiator] = self._counts.get(initiator, 0) + 1
        # The A&A flag is a property of the initiator domain, so every
        # view of the same initiator agrees — last write is safe.
        self._aa_flags[initiator] = view.aa_initiated

    def merge(self, other: "Table2Stage") -> None:
        for initiator, receivers in other._receivers.items():
            self._receivers.setdefault(initiator, set()).update(receivers)
        for initiator, receivers in other._receivers_aa.items():
            self._receivers_aa.setdefault(initiator, set()).update(receivers)
        for initiator, count in other._counts.items():
            self._counts[initiator] = self._counts.get(initiator, 0) + count
        self._aa_flags.update(other._aa_flags)

    def finalize(self, ctx: StageContext) -> list[Table2Row]:
        rows = [
            Table2Row(
                initiator=display_name(domain),
                initiator_domain=domain,
                is_aa=self._aa_flags[domain],
                receivers_total=len(self._receivers[domain]),
                receivers_aa=len(self._receivers_aa.get(domain, ())),
                socket_count=self._counts[domain],
            )
            for domain in sorted(self._receivers)
        ]
        rows.sort(key=lambda r: (-r.receivers_total, -r.socket_count,
                                 r.initiator))
        return rows[:self.top]

    def encode_artifact(self, artifact: list[Table2Row]) -> list[dict]:
        return [dataclasses.asdict(row) for row in artifact]

    def decode_artifact(self, payload: list[dict]) -> list[Table2Row]:
        return [Table2Row(**row) for row in payload]


def compute_table2(
    views: Iterable[SocketView],
    top: int = 15,
    exclude_first_party_initiators: bool = False,
) -> list[Table2Row]:
    """Aggregate per initiator over the merged dataset."""
    stage = fold_views(
        Table2Stage(top, exclude_first_party_initiators), views
    )
    return stage.finalize(StageContext())


def _is_first_party(view: SocketView) -> bool:
    from repro.net.domains import registrable_domain

    return view.initiator_domain == registrable_domain(
        view.record.first_party_host
    )
