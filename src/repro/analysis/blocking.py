"""The §4.2 post-hoc blocking analysis.

"We used the EasyList and EasyPrivacy rule lists to determine if
scripts in the inclusion chains leading to A&A sockets would have been
blocked. We find that only ∼5% of these A&A chains would have been
blocked. In contrast, ∼27% of A&A chains in our overall dataset are
blocked by these rule lists."

A chain is *blocked* when any script along it matches the lists (with
exception rules honored); it is an *A&A chain* when any of its hosts
resolves to an A&A domain. The socket-chain statistic shows why the
WRB mattered: the initiating scripts of A&A sockets are overwhelmingly
not list-matched, so blocking the socket itself was the only defence.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable

from repro.analysis.classify import SocketView
from repro.analysis.stage import (
    AnalysisStage,
    StageContext,
    fold_views,
    register_stage,
)
from repro.crawler.dataset import StudyDataset
from repro.filters import FilterEngine
from repro.labeling.aa_labeler import AaLabeler
from repro.labeling.resolver import DomainResolver
from repro.net.http import ResourceType

# Party context for post-hoc rule evaluation: the chains under study
# are third-party inclusions, so any non-colliding first-party works.
_GENERIC_FIRST_PARTY = "https://publisher-context.example/"


@dataclass(frozen=True)
class BlockingStats:
    """The two chain-blocking percentages plus raw counts.

    Attributes:
        socket_chains: A&A socket chains examined.
        socket_chains_blocked: … of which had a blocked script.
        pct_socket_chains_blocked: The paper's ~5% number.
        aa_chains: All A&A inclusion chains (weighted by occurrence).
        aa_chains_blocked: … of which had a blocked script.
        pct_aa_chains_blocked: The paper's ~27% number.
    """

    socket_chains: int
    socket_chains_blocked: int
    pct_socket_chains_blocked: float
    aa_chains: int
    aa_chains_blocked: int
    pct_aa_chains_blocked: float


def _chain_has_blocked_script(
    script_urls: tuple[str, ...],
    engine: FilterEngine,
    cache: dict[str, bool],
) -> bool:
    for url in script_urls:
        verdict = cache.get(url)
        if verdict is None:
            verdict = engine.would_block(
                url, ResourceType.SCRIPT, _GENERIC_FIRST_PARTY
            )
            cache[url] = verdict
        if verdict:
            return True
    return False


@register_stage
class BlockingStage(AnalysisStage):
    """Chain-blocking populations, folded in one sweep.

    The fold only deduplicates the script-URL chains of A&A sockets
    (with occurrence counts); all filter-engine evaluation happens at
    ``finalize``, where the engine and the derived labels are in
    scope. The aggregate A&A-chain population comes from the dataset's
    chain-signature table at ``finalize`` too.
    """

    name = "blocking"
    version = "1"

    def __init__(self) -> None:
        self._socket_chains = 0
        self._chain_urls: dict[tuple[str, ...], int] = {}

    def fold(self, view: SocketView) -> None:
        if not view.is_aa_socket:
            return
        self._socket_chains += 1
        urls = view.record.chain_script_urls
        self._chain_urls[urls] = self._chain_urls.get(urls, 0) + 1

    def merge(self, other: "BlockingStage") -> None:
        self._socket_chains += other._socket_chains
        for urls, count in other._chain_urls.items():
            self._chain_urls[urls] = self._chain_urls.get(urls, 0) + count

    def finalize(self, ctx: StageContext) -> BlockingStats:
        dataset = ctx.dataset
        engine = ctx.engine or (dataset.engine if dataset else None)
        labeler, resolver = ctx.labeler, ctx.resolver
        cache: dict[str, bool] = {}

        socket_blocked = 0
        if engine is not None:
            for urls in sorted(self._chain_urls):
                if _chain_has_blocked_script(urls, engine, cache):
                    socket_blocked += self._chain_urls[urls]

        aa_chains = 0
        aa_blocked = 0
        if (
            dataset is not None and engine is not None
            and labeler is not None and resolver is not None
        ):
            for signature, count in dataset.chain_signatures.items():
                is_aa = any(
                    resolver.effective_domain(host) in labeler.aa_domains
                    for host in signature.hosts
                )
                if not is_aa:
                    continue
                aa_chains += count
                if _chain_has_blocked_script(
                    signature.script_urls, engine, cache
                ):
                    aa_blocked += count

        return BlockingStats(
            socket_chains=self._socket_chains,
            socket_chains_blocked=socket_blocked,
            pct_socket_chains_blocked=(
                100.0 * socket_blocked / self._socket_chains
                if self._socket_chains else 0.0
            ),
            aa_chains=aa_chains,
            aa_chains_blocked=aa_blocked,
            pct_aa_chains_blocked=(
                100.0 * aa_blocked / aa_chains if aa_chains else 0.0
            ),
        )

    def encode_artifact(self, artifact: BlockingStats) -> dict:
        return dataclasses.asdict(artifact)

    def decode_artifact(self, payload: dict) -> BlockingStats:
        return BlockingStats(**payload)


def compute_blocking_stats(
    dataset: StudyDataset,
    views: Iterable[SocketView],
    labeler: AaLabeler | None = None,
    resolver: DomainResolver | None = None,
) -> BlockingStats:
    """Evaluate both chain populations against the filter lists."""
    labeler = labeler or dataset.derive_labeler()
    resolver = resolver or dataset.derive_resolver(labeler)
    stage = fold_views(BlockingStage(), views)
    return stage.finalize(StageContext(
        labeler=labeler, resolver=resolver,
        engine=dataset.engine, dataset=dataset,
    ))
