"""Package-private JSON codecs for cached stage artifacts.

Each ``encode_*`` turns a finalized artifact into plain JSON-able data
(sorted, canonical) and the matching ``decode_*`` reconstructs an
equal artifact. Flat row dataclasses encode themselves via ``asdict``
inside their stage; this module only holds the artifacts with enum
keys, frozensets, or Counters.

This module is private to :mod:`repro.analysis` — import the stage
classes from the package instead. The API-PRIVATE staticlint rule
flags imports of it from outside the package.
"""

from __future__ import annotations

from collections import Counter

from repro.analysis.ads import AdDeliveryStats
from repro.analysis.drift import InitiatorDrift
from repro.analysis.figure3 import Figure3Series
from repro.analysis.table5 import Table5, Table5Cell
from repro.content.items import ReceivedClass, SentItem


def _encode_cell(cell: Table5Cell) -> list:
    return [cell.count, cell.percent]


def _decode_cell(payload: list) -> Table5Cell:
    return Table5Cell(count=payload[0], percent=payload[1])


def _encode_cells(cells: dict) -> dict:
    return {key.value: _encode_cell(cell) for key, cell in cells.items()}


def encode_table5(table: Table5) -> dict:
    return {
        "ws_total": table.ws_total,
        "http_total": table.http_total,
        "sent_ws": _encode_cells(table.sent_ws),
        "sent_http": _encode_cells(table.sent_http),
        "received_ws": _encode_cells(table.received_ws),
        "received_http": _encode_cells(table.received_http),
        "ws_sent_nothing": _encode_cell(table.ws_sent_nothing),
        "ws_received_nothing": _encode_cell(table.ws_received_nothing),
        "fingerprinting_sockets": table.fingerprinting_sockets,
        "fingerprinting_pairs": table.fingerprinting_pairs,
        "fingerprinting_top_receiver": table.fingerprinting_top_receiver,
        "fingerprinting_top_receiver_share":
            table.fingerprinting_top_receiver_share,
        "dom_receivers": list(table.dom_receivers),
    }


def decode_table5(payload: dict) -> Table5:
    return Table5(
        ws_total=payload["ws_total"],
        http_total=payload["http_total"],
        sent_ws={
            SentItem(key): _decode_cell(cell)
            for key, cell in payload["sent_ws"].items()
        },
        sent_http={
            SentItem(key): _decode_cell(cell)
            for key, cell in payload["sent_http"].items()
        },
        received_ws={
            ReceivedClass(key): _decode_cell(cell)
            for key, cell in payload["received_ws"].items()
        },
        received_http={
            ReceivedClass(key): _decode_cell(cell)
            for key, cell in payload["received_http"].items()
        },
        ws_sent_nothing=_decode_cell(payload["ws_sent_nothing"]),
        ws_received_nothing=_decode_cell(payload["ws_received_nothing"]),
        fingerprinting_sockets=payload["fingerprinting_sockets"],
        fingerprinting_pairs=payload["fingerprinting_pairs"],
        fingerprinting_top_receiver=payload["fingerprinting_top_receiver"],
        fingerprinting_top_receiver_share=
            payload["fingerprinting_top_receiver_share"],
        dom_receivers=tuple(payload["dom_receivers"]),
    )


def encode_figure3(series: Figure3Series) -> dict:
    # float("inf") survives the round-trip: json emits Infinity and
    # parses it back (allow_nan is the default on both sides).
    return {
        "bins": list(series.bins),
        "aa_fraction": list(series.aa_fraction),
        "non_aa_fraction": list(series.non_aa_fraction),
        "publishers_per_bin": list(series.publishers_per_bin),
        "overall_ratio": series.overall_ratio,
        "top10k_ratio": series.top10k_ratio,
    }


def decode_figure3(payload: dict) -> Figure3Series:
    return Figure3Series(
        bins=tuple(payload["bins"]),
        aa_fraction=tuple(payload["aa_fraction"]),
        non_aa_fraction=tuple(payload["non_aa_fraction"]),
        publishers_per_bin=tuple(payload["publishers_per_bin"]),
        overall_ratio=payload["overall_ratio"],
        top10k_ratio=payload["top10k_ratio"],
    )


def encode_drift(drift: InitiatorDrift) -> dict:
    return {
        "per_crawl": {
            str(crawl): sorted(domains)
            for crawl, domains in sorted(drift.per_crawl.items())
        },
        "persistent": sorted(drift.persistent),
        "disappeared_after_patch": sorted(drift.disappeared_after_patch),
        "appeared_after_patch": sorted(drift.appeared_after_patch),
        "churn": [
            [a, b, gained, lost]
            for (a, b), (gained, lost) in sorted(drift.churn.items())
        ],
    }


def decode_drift(payload: dict) -> InitiatorDrift:
    return InitiatorDrift(
        per_crawl={
            int(crawl): frozenset(domains)
            for crawl, domains in payload["per_crawl"].items()
        },
        persistent=frozenset(payload["persistent"]),
        disappeared_after_patch=frozenset(
            payload["disappeared_after_patch"]
        ),
        appeared_after_patch=frozenset(payload["appeared_after_patch"]),
        churn={
            (a, b): (gained, lost)
            for a, b, gained, lost in payload["churn"]
        },
    )


def encode_ads(stats: AdDeliveryStats) -> dict:
    return {
        "sockets_with_ads": stats.sockets_with_ads,
        "total_units": stats.total_units,
        "receivers": {
            domain: count
            for domain, count in sorted(stats.receivers.items())
        },
        "creative_hosts": {
            host: count
            for host, count in sorted(stats.creative_hosts.items())
        },
        "unlisted_creative_units": stats.unlisted_creative_units,
        "sample_captions": list(stats.sample_captions),
    }


def decode_ads(payload: dict) -> AdDeliveryStats:
    return AdDeliveryStats(
        sockets_with_ads=payload["sockets_with_ads"],
        total_units=payload["total_units"],
        receivers=Counter(payload["receivers"]),
        creative_hosts=Counter(payload["creative_hosts"]),
        unlisted_creative_units=payload["unlisted_creative_units"],
        sample_captions=list(payload["sample_captions"]),
    )
