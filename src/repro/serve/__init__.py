"""`repro serve`: the measurement system as a high-QPS query service.

One immutable :class:`~repro.serve.snapshot.ServeSnapshot` (compiled
filter engines per study phase, WRB pre/post-58 policy, A&A labeling
state, cached table/figure artifacts) is shared by N workers through a
:class:`~repro.serve.service.ServeService` and answered over the
versioned wire types of :mod:`repro.serve.types` (``SERVE_VERSION``).
Snapshots hot-swap atomically: new queries lease the new snapshot
immediately, in-flight queries drain on the old one, zero queries are
dropped, and every response echoes the fingerprint of the snapshot
that answered it.

The sanctioned external entry point is :mod:`repro.api`; the SERVE-RO
flow zone keeps the serving modules (service/types/workers) statically
read-only over snapshots.
"""

from repro.serve.httpd import ServeHTTPServer, make_server
from repro.serve.service import ServeService, SwapError
from repro.serve.snapshot import (
    ServeSnapshot,
    build_dataset_snapshot,
    build_scale_snapshot,
    resource_type_for,
    snapshot_fingerprint,
)
from repro.serve.transcript import (
    generate_query_mix,
    transcript_lines,
    write_transcript,
)
from repro.serve.types import (
    ENDPOINTS,
    SERVE_SCHEMAS,
    SERVE_VERSION,
    ArtifactRequest,
    ArtifactResponse,
    BatchCheckRequest,
    BatchCheckResponse,
    BatchClassifyRequest,
    BatchClassifyResponse,
    CheckRequest,
    CheckResponse,
    ClassifyRequest,
    ClassifyResponse,
    ServeError,
    ServeProtocolError,
    ServeRequest,
    ServeResult,
    SnapshotInfo,
    SnapshotRequest,
    decode_request,
    encode_request,
    result_line,
)
from repro.serve.workers import run_workers

__all__ = [
    "SERVE_VERSION",
    "SERVE_SCHEMAS",
    "ENDPOINTS",
    # Wire types.
    "CheckRequest",
    "CheckResponse",
    "ClassifyRequest",
    "ClassifyResponse",
    "ArtifactRequest",
    "ArtifactResponse",
    "SnapshotRequest",
    "SnapshotInfo",
    "BatchCheckRequest",
    "BatchCheckResponse",
    "BatchClassifyRequest",
    "BatchClassifyResponse",
    "ServeError",
    "ServeProtocolError",
    "ServeRequest",
    "ServeResult",
    "decode_request",
    "encode_request",
    "result_line",
    # Snapshot + service.
    "ServeSnapshot",
    "ServeService",
    "SwapError",
    "build_scale_snapshot",
    "build_dataset_snapshot",
    "snapshot_fingerprint",
    "resource_type_for",
    # Execution frontends.
    "run_workers",
    "generate_query_mix",
    "transcript_lines",
    "write_transcript",
    "ServeHTTPServer",
    "make_server",
]
