"""A stdlib HTTP frontend over :class:`ServeService`.

``POST /v1/query`` takes one wire envelope (see
:mod:`repro.serve.types`) and returns the response envelope;
``GET /v1/snapshot`` is the health/version probe. The server is a
:class:`ThreadingHTTPServer`, so concurrent requests exercise exactly
the shared-snapshot path the in-process workers do.

This is the operational wrapper, not the determinism surface — the
byte-identical transcript contract is tested on the in-process script
runner (:mod:`repro.serve.transcript`), where no socket framing can
intervene.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING

from repro.serve.types import (
    ServeProtocolError,
    SnapshotRequest,
    decode_request,
    result_line,
)

if TYPE_CHECKING:
    from repro.serve.service import ServeService


class _ServeHandler(BaseHTTPRequestHandler):
    server: "ServeHTTPServer"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # no per-request stderr noise; obs has the counters

    def _reply(self, status: int, payload: str) -> None:
        body = payload.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:
        if self.path.rstrip("/") != "/v1/snapshot":
            self._reply(404, json.dumps(
                {"ok": False,
                 "error": {"code": "not-found", "message": self.path}}
            ))
            return
        result = self.server.service.handle(SnapshotRequest())
        self._reply(200, result_line(result))

    def do_POST(self) -> None:
        if self.path.rstrip("/") != "/v1/query":
            self._reply(404, json.dumps(
                {"ok": False,
                 "error": {"code": "not-found", "message": self.path}}
            ))
            return
        length = int(self.headers.get("Content-Length", "0"))
        try:
            envelope = json.loads(self.rfile.read(length) or b"{}")
            request = decode_request(envelope)
        except (ValueError, ServeProtocolError) as exc:
            code = getattr(exc, "code", "bad-request")
            self._reply(400, json.dumps(
                {"ok": False,
                 "error": {"code": code, "message": str(exc)}}
            ))
            return
        result = self.server.service.handle(request)
        self._reply(200 if result.ok else 400, result_line(result))


class ServeHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ServeService`."""

    daemon_threads = True

    def __init__(self, service: "ServeService", address=("127.0.0.1", 0)):
        super().__init__(address, _ServeHandler)
        self.service = service

    @property
    def port(self) -> int:
        """The bound port (useful after binding port 0)."""
        return self.server_address[1]


def make_server(
    service: "ServeService", host: str = "127.0.0.1", port: int = 0
) -> ServeHTTPServer:
    """Bind (but do not start) an HTTP frontend for ``service``."""
    return ServeHTTPServer(service, (host, port))
