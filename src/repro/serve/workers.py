"""N worker frontends over one :class:`ServeService`.

Workers are threads sharing the service (and through it, the current
snapshot) — the shape the compiled engine was built for: the index is
immutable, matching with ``stats=None`` is read-only, so concurrent
workers need no coordination beyond the service's snapshot lease.

Determinism contract: responses are collected *by request index*, so
the response stream is in request order for any worker count — the
transcript bytes for a query stream are identical at ``--workers 1``
and ``--workers 8`` (pinned by tests and the CI ``serve-smoke`` job).
Work is dealt round-robin by index, which keeps the assignment itself
deterministic too (only scheduling interleaving varies, and nothing
observable depends on it).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Sequence

from repro.serve.types import ServeRequest, ServeResult

if TYPE_CHECKING:
    from repro.serve.service import ServeService


def run_workers(
    service: "ServeService",
    requests: Sequence[ServeRequest],
    workers: int = 1,
) -> list[ServeResult]:
    """Answer ``requests`` on ``workers`` threads, in request order.

    Every request is answered exactly once (the zero-drop guarantee a
    hot-swap must preserve); the returned list aligns index-for-index
    with ``requests``.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    results: list[ServeResult | None] = [None] * len(requests)
    if workers == 1 or len(requests) <= 1:
        for index, request in enumerate(requests):
            results[index] = service.handle(request)
        return results  # type: ignore[return-value]

    def worker(offset: int) -> None:
        for index in range(offset, len(requests), workers):
            results[index] = service.handle(requests[index])

    threads = [
        threading.Thread(
            target=worker, args=(offset,), name=f"serve-worker-{offset}"
        )
        for offset in range(workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    missing = sum(1 for r in results if r is None)
    if missing:
        raise RuntimeError(f"{missing} queries dropped")  # pragma: no cover
    return results  # type: ignore[return-value]
