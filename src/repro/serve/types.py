"""The versioned `repro serve` wire types (``SERVE_VERSION 1``).

Every endpoint has a frozen request dataclass and a frozen response
dataclass; the CLI, the in-process service, the HTTP frontend, and the
tests all share these — there is no second, informal encoding. The
wire envelope is::

    request:  {"endpoint": "check", "v": 1, "body": {...}}
    response: {"endpoint": "check", "v": 1, "fingerprint": "…",
               "ok": true, "body": {...}}
              {"endpoint": "check", "v": 1, "fingerprint": "…",
               "ok": false, "error": {"code": "…", "message": "…"}}

``fingerprint`` is the content address of the :class:`ServeSnapshot`
that answered — the hot-swap observability hook: a batched request is
answered entirely from one snapshot, so every response in it echoes
the same fingerprint, and queries racing a swap see either the old or
the new fingerprint, never a blend.

JSON schemas for every body are generated from the dataclasses
themselves (:data:`SERVE_SCHEMAS`), so the documented schema cannot
drift from the implementation.
"""

from __future__ import annotations

import dataclasses
import json
import typing
from dataclasses import dataclass, field
from typing import Any

#: Wire-format version. Bump on any incompatible request/response change.
SERVE_VERSION = 1


class ServeProtocolError(ValueError):
    """A request that cannot be decoded into a typed endpoint request.

    Attributes:
        code: Stable machine-readable error code for the wire error
            object (``bad-request``, ``unknown-endpoint``,
            ``version-mismatch``).
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


# -- endpoint requests ------------------------------------------------------


@dataclass(frozen=True)
class CheckRequest:
    """Would this request/WebSocket be blocked, pre- and post-Chrome-58?

    Attributes:
        url: Request URL (http/https/ws/wss).
        resource_type: ``chrome.webRequest`` resource type string
            (``"websocket"`` for socket handshakes).
        first_party_url: Top-level page URL providing party context.
        phase: Study-phase name selecting a compiled list; ``""`` means
            the snapshot's default (first) phase.
    """

    url: str
    resource_type: str = "script"
    first_party_url: str = ""
    phase: str = ""


@dataclass(frozen=True)
class CheckResponse:
    """The verdict, the decisive rules, and the WRB pre/post-58 split.

    Attributes:
        url / resource_type / phase: Echo of the resolved request.
        matched: Whether any blocking rule matched (pre-exception).
        blocked: Engine verdict after exception processing.
        rule: Raw text of the decisive blocking rule (``""`` if none).
        exception_rule: Raw text of the rescuing exception (``""``).
        list_name: List contributing the decisive rule.
        wrb_suppressed: True when a pre-58 Chrome would never deliver
            this request to ``onBeforeRequest`` (the WebSocket bug the
            paper is about) — the extension cannot block what it never
            sees.
        pre58_blocked: Effective verdict under Chrome < 58.
        post58_blocked: Effective verdict once the WRB fix landed.
    """

    url: str
    resource_type: str
    phase: str
    matched: bool
    blocked: bool
    rule: str
    exception_rule: str
    list_name: str
    wrb_suppressed: bool
    pre58_blocked: bool
    post58_blocked: bool


@dataclass(frozen=True)
class ClassifyRequest:
    """Is this domain ad-and-analytics under ``a(d) ≥ 0.1·n(d)``?"""

    domain: str


@dataclass(frozen=True)
class ClassifyResponse:
    """The A&A decision with its evidence.

    Attributes:
        domain: Echo of the queried host/domain.
        registrable_domain: The second-level domain actually labeled.
        is_aa: The labeler's decision.
        aa_count / non_aa_count: ``a(d)`` and ``n(d)`` from the
            snapshot's tag corpus (both 0 for never-observed domains).
        threshold: The ratio the snapshot's labeler used.
    """

    domain: str
    registrable_domain: str
    is_aa: bool
    aa_count: int
    non_aa_count: int
    threshold: float


@dataclass(frozen=True)
class ArtifactRequest:
    """Fetch a cached table/figure artifact by stage name.

    Attributes:
        stage: Stage name (``table1`` … ``figure3`` …).
        fingerprint: Dataset fingerprint the artifact must belong to;
            ``""`` accepts the snapshot's own dataset fingerprint.
    """

    stage: str
    fingerprint: str = ""


@dataclass(frozen=True)
class ArtifactResponse:
    """One cached artifact (or a recorded miss).

    Attributes:
        stage: Echo of the requested stage.
        fingerprint: Dataset fingerprint the artifact was computed for.
        found: Whether the snapshot holds this artifact.
        artifact: The JSON-encoded stage artifact (``None`` on a miss).
    """

    stage: str
    fingerprint: str
    found: bool
    artifact: Any = None


@dataclass(frozen=True)
class SnapshotRequest:
    """Version/fingerprint/health of the currently served snapshot."""


@dataclass(frozen=True)
class SnapshotInfo:
    """The snapshot endpoint's body.

    Attributes:
        serve_version: Wire-format version (:data:`SERVE_VERSION`).
        snapshot_version: Monotonic snapshot counter (bumps per swap).
        fingerprint: Content address of the snapshot.
        phases: Phase names, default phase first.
        rule_counts: Phase name → compiled rule count.
        aa_domains: Size of the A&A label set.
        artifact_stages: Stage names with cached artifacts.
        dataset_fingerprint: Content address of the labeling dataset.
        healthy: Liveness flag (always True from a serving snapshot —
            the endpoint existing is the health check).
    """

    serve_version: int
    snapshot_version: int
    fingerprint: str
    phases: tuple[str, ...]
    rule_counts: dict[str, int]
    aa_domains: int
    artifact_stages: tuple[str, ...]
    dataset_fingerprint: str
    healthy: bool


@dataclass(frozen=True)
class BatchCheckRequest:
    """Many checks answered atomically from one snapshot."""

    items: tuple[CheckRequest, ...] = ()


@dataclass(frozen=True)
class BatchCheckResponse:
    """Per-item verdicts, in request order."""

    items: tuple[CheckResponse, ...] = ()


@dataclass(frozen=True)
class BatchClassifyRequest:
    """Many A&A decisions answered atomically from one snapshot."""

    items: tuple[ClassifyRequest, ...] = ()


@dataclass(frozen=True)
class BatchClassifyResponse:
    """Per-item decisions, in request order."""

    items: tuple[ClassifyResponse, ...] = ()


@dataclass(frozen=True)
class ServeError:
    """The error body of a failed response."""

    code: str
    message: str


ServeRequest = (
    CheckRequest
    | ClassifyRequest
    | ArtifactRequest
    | SnapshotRequest
    | BatchCheckRequest
    | BatchClassifyRequest
)

#: Endpoint name → (request type, response type).
ENDPOINTS: dict[str, tuple[type, type]] = {
    "check": (CheckRequest, CheckResponse),
    "classify": (ClassifyRequest, ClassifyResponse),
    "artifact": (ArtifactRequest, ArtifactResponse),
    "snapshot": (SnapshotRequest, SnapshotInfo),
    "batch_check": (BatchCheckRequest, BatchCheckResponse),
    "batch_classify": (BatchClassifyRequest, BatchClassifyResponse),
}

_REQUEST_ENDPOINT = {req: name for name, (req, _) in ENDPOINTS.items()}

# Nested request/response payload fields that decode into dataclasses.
_NESTED_ITEM_TYPES: dict[type, type] = {
    BatchCheckRequest: CheckRequest,
    BatchClassifyRequest: ClassifyRequest,
    BatchCheckResponse: CheckResponse,
    BatchClassifyResponse: ClassifyResponse,
}


@dataclass(frozen=True)
class ServeResult:
    """One response envelope: what one endpoint call produced.

    Attributes:
        endpoint: Endpoint name.
        fingerprint: Fingerprint of the snapshot that answered.
        ok: Whether ``body`` (vs ``error``) is populated.
        body: The endpoint's typed response on success.
        error: The typed error on failure.
    """

    endpoint: str
    fingerprint: str
    ok: bool
    body: Any = None
    error: ServeError | None = None

    def to_json(self) -> dict:
        """The canonical wire dict for this result."""
        payload: dict[str, Any] = {
            "endpoint": self.endpoint,
            "v": SERVE_VERSION,
            "fingerprint": self.fingerprint,
            "ok": self.ok,
        }
        if self.ok:
            payload["body"] = _body_to_json(self.body)
        else:
            payload["error"] = dataclasses.asdict(self.error)
        return payload


def _body_to_json(body: Any) -> Any:
    if dataclasses.is_dataclass(body) and not isinstance(body, type):
        out = {}
        for f in dataclasses.fields(body):
            value = getattr(body, f.name)
            if isinstance(value, tuple):
                value = [_body_to_json(v) for v in value]
            out[f.name] = _body_to_json(value) if dataclasses.is_dataclass(
                value
            ) else value
        return out
    return body


def encode_request(request: ServeRequest) -> dict:
    """The wire envelope for a typed request."""
    endpoint = _REQUEST_ENDPOINT.get(type(request))
    if endpoint is None:
        raise ServeProtocolError(
            "bad-request", f"not a serve request: {type(request).__name__}"
        )
    return {
        "endpoint": endpoint,
        "v": SERVE_VERSION,
        "body": _body_to_json(request),
    }


def _decode_body(cls: type, payload: Any) -> Any:
    if not isinstance(payload, dict):
        raise ServeProtocolError(
            "bad-request", f"{cls.__name__} body must be an object"
        )
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - names)
    if unknown:
        raise ServeProtocolError(
            "bad-request",
            f"unknown {cls.__name__} field(s): {', '.join(unknown)}",
        )
    kwargs = dict(payload)
    item_type = _NESTED_ITEM_TYPES.get(cls)
    if item_type is not None and "items" in kwargs:
        items = kwargs["items"]
        if not isinstance(items, list):
            raise ServeProtocolError(
                "bad-request", f"{cls.__name__}.items must be an array"
            )
        kwargs["items"] = tuple(
            _decode_body(item_type, item) for item in items
        )
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ServeProtocolError("bad-request", str(exc)) from exc


def decode_request(envelope: Any) -> ServeRequest:
    """Parse one wire envelope into a typed endpoint request.

    Raises:
        ServeProtocolError: On a malformed envelope, an unknown
            endpoint, or a serve-version mismatch.
    """
    if not isinstance(envelope, dict):
        raise ServeProtocolError("bad-request", "envelope must be an object")
    version = envelope.get("v", SERVE_VERSION)
    if version != SERVE_VERSION:
        raise ServeProtocolError(
            "version-mismatch",
            f"serve version {version!r} unsupported (want {SERVE_VERSION})",
        )
    endpoint = envelope.get("endpoint")
    pair = ENDPOINTS.get(endpoint)
    if pair is None:
        raise ServeProtocolError(
            "unknown-endpoint", f"unknown endpoint: {endpoint!r}"
        )
    return _decode_body(pair[0], envelope.get("body", {}))


def result_line(result: ServeResult) -> str:
    """One canonical transcript line (sorted keys, compact separators).

    This is the byte-identity surface: the same query stream must
    yield the same transcript bytes across runs and worker counts.
    """
    return json.dumps(
        result.to_json(), sort_keys=True, separators=(",", ":")
    )


# -- generated JSON schemas -------------------------------------------------


def _type_schema(annotation: Any) -> dict:
    origin = typing.get_origin(annotation)
    if origin is tuple:
        args = [a for a in typing.get_args(annotation) if a is not Ellipsis]
        item = args[0] if args else Any
        return {"type": "array", "items": _type_schema(item)}
    if origin is dict:
        args = typing.get_args(annotation)
        value = args[1] if len(args) == 2 else Any
        return {"type": "object", "additionalProperties": _type_schema(value)}
    if annotation is str:
        return {"type": "string"}
    if annotation is bool:
        return {"type": "boolean"}
    if annotation is int:
        return {"type": "integer"}
    if annotation is float:
        return {"type": "number"}
    if dataclasses.is_dataclass(annotation):
        return _dataclass_schema(annotation)
    return {}  # Any


def _dataclass_schema(cls: type) -> dict:
    hints = typing.get_type_hints(cls)
    properties = {}
    required = []
    for f in dataclasses.fields(cls):
        properties[f.name] = _type_schema(hints[f.name])
        if (
            f.default is dataclasses.MISSING
            and f.default_factory is dataclasses.MISSING
        ):
            required.append(f.name)
    schema: dict[str, Any] = {
        "type": "object",
        "properties": properties,
        "additionalProperties": False,
    }
    if required:
        schema["required"] = required
    return schema


def _build_schemas() -> dict[str, dict]:
    schemas = {}
    for endpoint, (request_type, response_type) in ENDPOINTS.items():
        schemas[endpoint] = {
            "serve_version": SERVE_VERSION,
            "request": _dataclass_schema(request_type),
            "response": _dataclass_schema(response_type),
        }
    return schemas


#: Endpoint → generated request/response JSON schemas, straight from
#: the dataclasses above (the README embeds these; tests pin them).
SERVE_SCHEMAS: dict[str, dict] = _build_schemas()
