"""The immutable unit of serving: one :class:`ServeSnapshot`.

A snapshot bundles everything a query needs — the compiled filter
engine for each study phase's list, the Chrome WRB policy version, the
derived A&A labeling state with its evidence counts, and the cached
table/figure artifacts keyed by dataset fingerprint — behind a single
content-address ``fingerprint``. Workers share one snapshot by
reference and never mutate it (matching passes ``stats=None``; the
SERVE-RO flow zone pins the serving modules statically read-only), so
hot-swapping is a single reference assignment in
:class:`repro.serve.service.ServeService` plus a drain of in-flight
leases on the old snapshot.

Builders live here — deliberately *outside* the SERVE-RO zone, because
building may sweep a dataset through the analysis engine (which can
write the stage cache). Serving never builds.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

from repro.analysis import AnalysisEngine, DatasetSource
from repro.extension import WEBREQUEST_BUG_FIX_VERSION
from repro.filters import CompiledFilterEngine
from repro.labeling import AaLabeler, DomainTagCounter
from repro.net.http import ResourceType
from repro.serve.types import SERVE_VERSION
from repro.util.urls import parse_url
from repro.web.filterlists import (
    LIST_SCALES,
    generate_filter_lists,
    generate_request_corpus,
)

if TYPE_CHECKING:
    from repro.analysis import StageCache
    from repro.crawler.dataset import StudyDataset
    from repro.filters import FilterList
    from repro.obs import Obs

#: Corpus size used to derive a deterministic tag corpus for synthetic
#: scale snapshots (each request's host is tagged by its own verdict).
_SCALE_TAG_CORPUS = 800


@dataclass(frozen=True)
class ServeSnapshot:
    """Everything one query needs, immutable and shareable.

    Attributes:
        version: Monotonic counter; a swap must strictly increase it.
        fingerprint: Content address over every serving-relevant input
            (list contents per phase, WRB version, labeling state,
            artifact keys, dataset fingerprint, wire version).
        phases: Phase names, default phase first.
        engines: Phase name → compiled engine (never mutated; all
            matching passes explicit stats).
        wrb_fix_version: Chrome major that fixed the WebRequest bug.
        labeler: The derived A&A domain set.
        tag_counter: The ``a(d)/n(d)`` evidence behind the labeler.
        artifacts: Stage name → JSON-encoded finalized artifact.
        dataset_fingerprint: Content address of the dataset the
            labeling state and artifacts came from.
    """

    version: int
    fingerprint: str
    phases: tuple[str, ...]
    engines: Mapping[str, CompiledFilterEngine]
    wrb_fix_version: int
    labeler: AaLabeler
    tag_counter: DomainTagCounter
    artifacts: Mapping[str, Any]
    dataset_fingerprint: str

    @property
    def default_phase(self) -> str:
        """The phase served when a request names none."""
        return self.phases[0]

    def engine_for(self, phase: str) -> CompiledFilterEngine | None:
        """The phase's engine, or ``None`` for an unknown phase."""
        return self.engines.get(phase or self.default_phase)

    def rule_counts(self) -> dict[str, int]:
        """Phase name → compiled rule count, in phase order."""
        return {
            phase: self.engines[phase].rule_count for phase in self.phases
        }


def snapshot_fingerprint(
    *,
    phase_lists: Mapping[str, "list[FilterList]"],
    labeler: AaLabeler,
    artifacts: Mapping[str, Any],
    dataset_fingerprint: str,
    wrb_fix_version: int = WEBREQUEST_BUG_FIX_VERSION,
) -> str:
    """Content address of a snapshot's serving-relevant inputs.

    Two snapshots with the same lists, policy, labeling state, and
    artifacts answer every query identically — and get the same
    fingerprint; any list update bumps it (the swap-visibility signal
    clients key on).
    """
    digest = hashlib.sha256()
    digest.update(f"serve-version={SERVE_VERSION}\n".encode())
    digest.update(f"wrb-fix={wrb_fix_version}\n".encode())
    for phase in phase_lists:
        digest.update(f"phase={phase}\n".encode())
        for filter_list in phase_lists[phase]:
            digest.update(f"list={filter_list.name}\n".encode())
            for rule in filter_list.rules:
                digest.update(rule.raw.encode())
                digest.update(b"\n")
    digest.update(f"threshold={labeler.threshold!r}\n".encode())
    for domain in sorted(labeler.aa_domains):
        digest.update(f"aa={domain}\n".encode())
    for stage in sorted(artifacts):
        digest.update(f"artifact={stage}\n".encode())
    digest.update(f"dataset={dataset_fingerprint}\n".encode())
    return digest.hexdigest()[:16]


def _assemble(
    *,
    version: int,
    phase_lists: Mapping[str, "list[FilterList]"],
    labeler: AaLabeler,
    tag_counter: DomainTagCounter,
    artifacts: Mapping[str, Any],
    dataset_fingerprint: str,
) -> ServeSnapshot:
    engines = {
        phase: CompiledFilterEngine(lists)
        for phase, lists in phase_lists.items()
    }
    return ServeSnapshot(
        version=version,
        fingerprint=snapshot_fingerprint(
            phase_lists=phase_lists,
            labeler=labeler,
            artifacts=artifacts,
            dataset_fingerprint=dataset_fingerprint,
        ),
        phases=tuple(phase_lists),
        engines=engines,
        wrb_fix_version=WEBREQUEST_BUG_FIX_VERSION,
        labeler=labeler,
        tag_counter=tag_counter,
        artifacts=dict(artifacts),
        dataset_fingerprint=dataset_fingerprint,
    )


def build_scale_snapshot(
    scale: str = "10k",
    *,
    seed: int = 2018,
    version: int = 1,
    phases: Mapping[str, int] | None = None,
) -> ServeSnapshot:
    """A snapshot over calibrated EasyList-scale synthetic lists.

    Args:
        scale: ``repro lists`` scale key (``10k``/``50k``/``100k``).
        seed: List-generation seed; also seeds the derived tag corpus.
        version: Snapshot version to stamp.
        phases: Phase name → list seed, for multi-phase snapshots
            (each phase compiles its own generated list — the
            arms-race shape where lists evolve between study phases).
            ``None`` means one ``"live"`` phase at ``seed``.

    The labeling state is derived deterministically: a request corpus
    sampled from the lists is matched through the default phase's
    engine and each URL's host is tagged with its own verdict, giving
    an ``a(d)/n(d)`` corpus whose labeler agrees with the lists.
    """
    if scale not in LIST_SCALES:
        raise ValueError(
            f"unknown scale {scale!r} (want one of {sorted(LIST_SCALES)})"
        )
    rule_count = LIST_SCALES[scale]
    phase_seeds = dict(phases) if phases else {"live": seed}
    # Keep the default list *name*: it feeds the generator's RNG key,
    # and scale snapshots must compile exactly the lists that
    # `generate_filter_lists(rule_count, seed=...)` callers (the query
    # mix, `repro lists`) produce. Phases differ by seed only.
    phase_lists = {
        phase: generate_filter_lists(rule_count, seed=phase_seed)
        for phase, phase_seed in phase_seeds.items()
    }
    default_lists = next(iter(phase_lists.values()))
    engine = CompiledFilterEngine(default_lists)
    tag_counter = DomainTagCounter()
    corpus = generate_request_corpus(
        default_lists, _SCALE_TAG_CORPUS, seed=seed
    )
    for url, resource_type, first_party in corpus:
        host = parse_url(url).host
        if not host:
            continue
        verdict = engine.match(
            url, resource_type, first_party, stats=None
        )
        tag_counter.observe(host, verdict.matched)
    labeler = AaLabeler.from_counts(tag_counter)
    return _assemble(
        version=version,
        phase_lists=phase_lists,
        labeler=labeler,
        tag_counter=tag_counter,
        artifacts={},
        dataset_fingerprint=f"lists:{scale}:seed={seed}",
    )


def build_dataset_snapshot(
    dataset: "StudyDataset",
    lists: "list[FilterList]",
    *,
    version: int = 1,
    cache: "StageCache | None" = None,
    obs: "Obs | None" = None,
) -> ServeSnapshot:
    """A snapshot over a crawled study dataset.

    Labeling state comes from the dataset's tag corpus (the paper's
    ``a(d) ≥ 0.1·n(d)`` derivation); artifacts come from one analysis
    sweep, served from ``cache`` where warm. The artifact endpoint
    then answers table/figure queries by the dataset's fingerprint
    without re-running analysis.
    """
    source = DatasetSource.from_dataset(dataset)
    analysis = AnalysisEngine(cache=cache, obs=obs)
    result = analysis.run(source)
    artifacts = {
        stage.name: stage.encode_artifact(result.artifacts[stage.name])
        for stage in analysis.stages
        if stage.name in result.artifacts
    }
    phase_lists = {"study": list(lists)}
    return _assemble(
        version=version,
        phase_lists=phase_lists,
        labeler=result.labeler,
        tag_counter=dataset.tag_counter,
        artifacts=artifacts,
        dataset_fingerprint=source.fingerprint(),
    )


def resource_type_for(name: str) -> ResourceType:
    """Map a wire resource-type string to :class:`ResourceType`.

    Accepts the wire values (``"xmlhttprequest"``) and the enum names
    (``"XHR"``), case-insensitively.
    """
    try:
        return ResourceType(name.lower())
    except ValueError:
        pass
    try:
        return ResourceType[name.upper()]
    except KeyError:
        raise ValueError(f"unknown resource type {name!r}") from None
