"""Scripted query mixes and response transcripts.

The serve determinism contract is tested end to end with scripted
runs: a seeded query mix (URLs sampled from the snapshot's own lists,
so checks exercise hits, exceptions, and misses) is answered by the
service and every response envelope is written as one canonical JSON
line. Same stream ⇒ byte-identical transcript, across runs *and*
across worker counts — `cmp` in CI's ``serve-smoke`` job is the gate.

This module owns the only filesystem write in the serve package
(:func:`write_transcript`), which is why it sits outside the SERVE-RO
flow zone: serving itself is statically read-only.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.serve.types import (
    ArtifactRequest,
    BatchCheckRequest,
    CheckRequest,
    ClassifyRequest,
    ServeRequest,
    ServeResult,
    SnapshotRequest,
    result_line,
)
from repro.util.atomicio import atomic_open
from repro.util.rng import RngStream
from repro.util.urls import parse_url
from repro.web.filterlists import generate_request_corpus

if TYPE_CHECKING:
    from repro.filters import FilterList

#: Endpoint mix of a generated query stream (weights sum to 1.0):
#: mostly single checks, a realistic share of batches and classifies,
#: an occasional artifact fetch and health poll.
_MIX = (
    ("check", 0.62),
    ("batch_check", 0.10),
    ("classify", 0.20),
    ("artifact", 0.04),
    ("snapshot", 0.04),
)

_BATCH_SIZE = 16

_ARTIFACT_STAGES = ("table1", "table2", "figure3")


def generate_query_mix(
    lists: "Sequence[FilterList]",
    count: int,
    *,
    seed: int = 2018,
) -> list[ServeRequest]:
    """A deterministic stream of ``count`` typed serve requests.

    Check URLs come from :func:`generate_request_corpus` over the same
    lists the snapshot compiled (≈45% hit-derived, so verdicts are a
    real mix); classify domains are the hosts of those URLs.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    corpus = generate_request_corpus(
        lists, max(count, _BATCH_SIZE * 2), seed=seed
    )
    rng = RngStream(seed, "serve", "query-mix", count)
    requests: list[ServeRequest] = []
    cursor = 0

    def next_check() -> CheckRequest:
        nonlocal cursor
        url, resource_type, first_party = corpus[cursor % len(corpus)]
        cursor += 1
        return CheckRequest(
            url=url,
            resource_type=resource_type.value,
            first_party_url=first_party,
        )

    while len(requests) < count:
        draw = rng.random()
        acc = 0.0
        endpoint = _MIX[-1][0]
        for name, weight in _MIX:
            acc += weight
            if draw < acc:
                endpoint = name
                break
        if endpoint == "check":
            requests.append(next_check())
        elif endpoint == "batch_check":
            requests.append(BatchCheckRequest(items=tuple(
                next_check() for _ in range(_BATCH_SIZE)
            )))
        elif endpoint == "classify":
            url, _, _ = corpus[cursor % len(corpus)]
            cursor += 1
            host = parse_url(url).host or "example.com"
            requests.append(ClassifyRequest(domain=host))
        elif endpoint == "artifact":
            stage = _ARTIFACT_STAGES[
                rng.randint(0, len(_ARTIFACT_STAGES) - 1)
            ]
            requests.append(ArtifactRequest(stage=stage))
        else:
            requests.append(SnapshotRequest())
    return requests


def transcript_lines(results: Iterable[ServeResult]) -> list[str]:
    """Canonical one-line-per-response transcript records."""
    return [result_line(result) for result in results]


def write_transcript(
    path: str | Path, results: Iterable[ServeResult]
) -> int:
    """Write the response transcript atomically; returns line count.

    The byte-identity artifact: `cmp`-equal across reruns of the same
    query stream, whatever the worker count.
    """
    lines = transcript_lines(results)
    with atomic_open(Path(path)) as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)
