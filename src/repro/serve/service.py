"""The query service: N workers, one shared snapshot, atomic hot-swap.

:class:`ServeService` holds a reference to the current
:class:`~repro.serve.snapshot.ServeSnapshot` and dispatches typed
requests against it. The concurrency contract:

* Every request (and every *batch*) is answered entirely from one
  snapshot, taken under a lease at dispatch time — so a response
  always carries exactly one snapshot fingerprint, and a batch's items
  are mutually consistent even if a swap lands mid-batch.
* :meth:`ServeService.swap` installs the new snapshot atomically
  (a single reference assignment under the lock — new requests lease
  the new snapshot immediately, nothing is rejected or dropped) and
  then blocks until every lease on the old snapshot is released, so
  the caller knows when the old engines are unreachable and
  collectable.
* Matching never mutates shared state: engines are called with
  ``stats=None`` and per-endpoint telemetry goes to the service's own
  obs registry. The SERVE-RO flow zone pins this module statically
  read-only (no filesystem writes reachable from serving).

Endpoint latency is recorded into per-endpoint histograms
(``serve.latency_us.<endpoint>``) on the optional obs registry — they
feed ``repro perf`` reporting, never the response transcript (which
must stay byte-identical across runs, worker counts, and hardware).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro.util.obsclock import WallClock

from repro.net.domains import registrable_domain
from repro.net.http import ResourceType
from repro.serve.snapshot import ServeSnapshot, resource_type_for
from repro.serve.types import (
    SERVE_VERSION,
    ArtifactRequest,
    ArtifactResponse,
    BatchCheckRequest,
    BatchCheckResponse,
    BatchClassifyRequest,
    BatchClassifyResponse,
    CheckRequest,
    CheckResponse,
    ClassifyRequest,
    ClassifyResponse,
    ServeError,
    ServeProtocolError,
    ServeRequest,
    ServeResult,
    SnapshotInfo,
    SnapshotRequest,
)

if TYPE_CHECKING:
    from repro.obs import Obs

#: Microsecond bounds for the per-endpoint latency histograms.
_LATENCY_BOUNDS_US = (
    5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0, 10_000.0, 50_000.0,
)


class SwapError(RuntimeError):
    """A snapshot swap that would violate the version monotonicity."""


class ServeService:
    """Dispatches typed serve requests against the current snapshot."""

    def __init__(
        self, snapshot: ServeSnapshot, obs: "Obs | None" = None
    ) -> None:
        self._cond = threading.Condition()
        self._current = snapshot
        self._inflight: dict[int, int] = {}
        self.obs = obs
        # Latency wants wall time, not deterministic ticks; WallClock
        # is the sanctioned counter, and its readings only ever reach
        # obs histograms — never the response transcript.
        self._wall = WallClock()
        self.served = 0
        self.swaps = 0

    @property
    def snapshot(self) -> ServeSnapshot:
        """The snapshot new requests will lease right now."""
        with self._cond:
            return self._current

    @contextmanager
    def lease(self) -> Iterator[ServeSnapshot]:
        """Pin one snapshot for the duration of one request/batch.

        The lease is what makes the swap atomic from a client's view:
        everything answered inside it comes from one snapshot.
        """
        with self._cond:
            snapshot = self._current
            self._inflight[snapshot.version] = (
                self._inflight.get(snapshot.version, 0) + 1
            )
        try:
            yield snapshot
        finally:
            with self._cond:
                remaining = self._inflight[snapshot.version] - 1
                if remaining:
                    self._inflight[snapshot.version] = remaining
                else:
                    del self._inflight[snapshot.version]
                    self._cond.notify_all()

    def swap(self, snapshot: ServeSnapshot) -> dict:
        """Install ``snapshot`` and drain the old one.

        New requests see the new snapshot the moment it is installed;
        the call then blocks until every in-flight lease on the old
        snapshot has been released. Zero queries are dropped: a query
        is answered by whichever snapshot it leased.

        Returns:
            A swap report: old/new fingerprints and versions.

        Raises:
            SwapError: If ``snapshot.version`` does not increase.
        """
        with self._cond:
            old = self._current
            if snapshot.version <= old.version:
                raise SwapError(
                    f"snapshot version must increase: "
                    f"{snapshot.version} <= {old.version}"
                )
            self._current = snapshot
            self._cond.wait_for(
                lambda: self._inflight.get(old.version, 0) == 0
            )
            self.swaps += 1
        return {
            "old_fingerprint": old.fingerprint,
            "new_fingerprint": snapshot.fingerprint,
            "old_version": old.version,
            "new_version": snapshot.version,
        }

    # -- dispatch ----------------------------------------------------------

    def handle(self, request: ServeRequest) -> ServeResult:
        """Answer one typed request from one leased snapshot."""
        start = self._wall.now()
        with self.lease() as snapshot:
            result = self._dispatch(snapshot, request)
        self.served += 1
        if self.obs is not None:
            elapsed_us = (self._wall.now() - start) / 1e3
            self.obs.metrics.counter(
                f"serve.requests.{result.endpoint}"
            ).inc()
            self.obs.metrics.histogram(
                f"serve.latency_us.{result.endpoint}", _LATENCY_BOUNDS_US
            ).observe(elapsed_us)
            if not result.ok:
                self.obs.metrics.counter("serve.errors").inc()
        return result

    def _dispatch(
        self, snapshot: ServeSnapshot, request: ServeRequest
    ) -> ServeResult:
        try:
            if isinstance(request, CheckRequest):
                return self._ok(
                    snapshot, "check", self._check(snapshot, request)
                )
            if isinstance(request, ClassifyRequest):
                return self._ok(
                    snapshot, "classify", self._classify(snapshot, request)
                )
            if isinstance(request, ArtifactRequest):
                return self._ok(
                    snapshot, "artifact", self._artifact(snapshot, request)
                )
            if isinstance(request, SnapshotRequest):
                return self._ok(
                    snapshot, "snapshot", self._snapshot_info(snapshot)
                )
            if isinstance(request, BatchCheckRequest):
                return self._ok(
                    snapshot,
                    "batch_check",
                    BatchCheckResponse(items=tuple(
                        self._check(snapshot, item)
                        for item in request.items
                    )),
                )
            if isinstance(request, BatchClassifyRequest):
                return self._ok(
                    snapshot,
                    "batch_classify",
                    BatchClassifyResponse(items=tuple(
                        self._classify(snapshot, item)
                        for item in request.items
                    )),
                )
            raise ServeProtocolError(
                "bad-request",
                f"unsupported request type {type(request).__name__}",
            )
        except ServeProtocolError as exc:
            endpoint = _ENDPOINT_OF.get(type(request), "unknown")
            return ServeResult(
                endpoint=endpoint,
                fingerprint=snapshot.fingerprint,
                ok=False,
                error=ServeError(code=exc.code, message=str(exc)),
            )

    @staticmethod
    def _ok(snapshot: ServeSnapshot, endpoint: str, body) -> ServeResult:
        return ServeResult(
            endpoint=endpoint,
            fingerprint=snapshot.fingerprint,
            ok=True,
            body=body,
        )

    # -- endpoints ---------------------------------------------------------

    def _check(
        self, snapshot: ServeSnapshot, request: CheckRequest
    ) -> CheckResponse:
        engine = snapshot.engine_for(request.phase)
        if engine is None:
            raise ServeProtocolError(
                "unknown-phase",
                f"unknown phase {request.phase!r} "
                f"(snapshot has {', '.join(snapshot.phases)})",
            )
        try:
            resource_type = resource_type_for(request.resource_type)
        except ValueError as exc:
            raise ServeProtocolError("bad-request", str(exc)) from exc
        verdict = engine.match(
            request.url,
            resource_type,
            request.first_party_url,
            stats=None,
        )
        # The paper's split: pre-58 Chrome never delivered WebSocket
        # requests to onBeforeRequest, so the extension's verdict is
        # moot — the handshake always proceeds.
        wrb_suppressed = resource_type is ResourceType.WEBSOCKET
        return CheckResponse(
            url=request.url,
            resource_type=resource_type.value,
            phase=request.phase or snapshot.default_phase,
            matched=verdict.matched,
            blocked=verdict.blocked,
            rule=verdict.rule.raw if verdict.rule else "",
            exception_rule=(
                verdict.exception_rule.raw if verdict.exception_rule else ""
            ),
            list_name=verdict.list_name,
            wrb_suppressed=wrb_suppressed,
            pre58_blocked=verdict.blocked and not wrb_suppressed,
            post58_blocked=verdict.blocked,
        )

    def _classify(
        self, snapshot: ServeSnapshot, request: ClassifyRequest
    ) -> ClassifyResponse:
        if not request.domain:
            raise ServeProtocolError("bad-request", "domain is required")
        domain = registrable_domain(request.domain)
        aa_count, non_aa_count = snapshot.tag_counter.counts(domain)
        return ClassifyResponse(
            domain=request.domain,
            registrable_domain=domain,
            is_aa=snapshot.labeler.is_aa(request.domain),
            aa_count=aa_count,
            non_aa_count=non_aa_count,
            threshold=snapshot.labeler.threshold,
        )

    def _artifact(
        self, snapshot: ServeSnapshot, request: ArtifactRequest
    ) -> ArtifactResponse:
        if not request.stage:
            raise ServeProtocolError("bad-request", "stage is required")
        wanted = request.fingerprint or snapshot.dataset_fingerprint
        found = (
            wanted == snapshot.dataset_fingerprint
            and request.stage in snapshot.artifacts
        )
        return ArtifactResponse(
            stage=request.stage,
            fingerprint=snapshot.dataset_fingerprint,
            found=found,
            artifact=snapshot.artifacts[request.stage] if found else None,
        )

    def _snapshot_info(self, snapshot: ServeSnapshot) -> SnapshotInfo:
        return SnapshotInfo(
            serve_version=SERVE_VERSION,
            snapshot_version=snapshot.version,
            fingerprint=snapshot.fingerprint,
            phases=snapshot.phases,
            rule_counts=snapshot.rule_counts(),
            aa_domains=len(snapshot.labeler),
            artifact_stages=tuple(sorted(snapshot.artifacts)),
            dataset_fingerprint=snapshot.dataset_fingerprint,
            healthy=True,
        )


_ENDPOINT_OF = {
    CheckRequest: "check",
    ClassifyRequest: "classify",
    ArtifactRequest: "artifact",
    SnapshotRequest: "snapshot",
    BatchCheckRequest: "batch_check",
    BatchClassifyRequest: "batch_classify",
}
