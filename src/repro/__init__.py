"""Reproduction of *How Tracking Companies Circumvented Ad Blockers
Using WebSockets* (Bashir et al., IMC 2018).

Top-level convenience imports cover the objects a downstream user
reaches for first; the subpackages hold the full system (see README
§Architecture).
"""

__version__ = "1.0.0"

from repro.browser import Browser
from repro.experiments import (
    DEFAULT_CONFIG,
    FULL_CONFIG,
    TINY_CONFIG,
    StudyConfig,
    StudyResult,
    run_study,
)
from repro.inclusion import InclusionTreeBuilder
from repro.web.server import SyntheticWeb, WebScale

__all__ = [
    "__version__",
    "Browser",
    "InclusionTreeBuilder",
    "SyntheticWeb",
    "WebScale",
    "StudyConfig",
    "StudyResult",
    "run_study",
    "TINY_CONFIG",
    "DEFAULT_CONFIG",
    "FULL_CONFIG",
]
