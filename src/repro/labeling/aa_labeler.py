"""The ``a(d) ≥ 0.1 · n(d)`` labeler.

From the paper: each resource in the tagged corpus is labeled A&A or
non-A&A by the EasyList/EasyPrivacy rules; for every second-level
domain *d*, ``a(d)`` and ``n(d)`` count those labels, and *d* enters
the A&A set when ``a(d) ≥ 0.1 · n(d)`` — filtering out domains that
are flagged less than ~10% of the time to eliminate false positives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.domains import registrable_domain


@dataclass
class DomainTagCounter:
    """Per-domain tag counts over the crawl corpus.

    Attributes:
        aa: ``a(d)`` — resources of the domain matched by the lists.
        non_aa: ``n(d)`` — resources not matched.
    """

    aa: dict[str, int] = field(default_factory=dict)
    non_aa: dict[str, int] = field(default_factory=dict)

    def observe(self, host: str, matched: bool, weight: int = 1) -> None:
        """Record one tagged resource observation."""
        domain = registrable_domain(host)
        bucket = self.aa if matched else self.non_aa
        bucket[domain] = bucket.get(domain, 0) + weight

    def merge(self, other: "DomainTagCounter") -> None:
        """Fold another counter into this one."""
        for domain, count in other.aa.items():
            self.aa[domain] = self.aa.get(domain, 0) + count
        for domain, count in other.non_aa.items():
            self.non_aa[domain] = self.non_aa.get(domain, 0) + count

    def domains(self) -> set[str]:
        """Every observed domain (the set *D* of the paper)."""
        return set(self.aa) | set(self.non_aa)

    def counts(self, domain: str) -> tuple[int, int]:
        """``(a(d), n(d))`` for a domain."""
        return self.aa.get(domain, 0), self.non_aa.get(domain, 0)


@dataclass(frozen=True)
class AaLabeler:
    """The derived A&A domain set.

    Attributes:
        aa_domains: Second-level domains labeled A&A.
        threshold: The ratio used (0.1 in the paper).
    """

    aa_domains: frozenset[str]
    threshold: float = 0.1

    @classmethod
    def from_counts(
        cls, counter: DomainTagCounter, threshold: float = 0.1
    ) -> "AaLabeler":
        """Apply the paper's rule to a tag-count corpus.

        A domain with zero A&A observations is never labeled (the rule
        would vacuously hold when ``n(d) = 0``, but an unobserved-as-A&A
        domain has no evidence at all).
        """
        labeled = set()
        for domain in counter.domains():
            a, n = counter.counts(domain)
            if a > 0 and a >= threshold * n:
                labeled.add(domain)
        return cls(aa_domains=frozenset(labeled), threshold=threshold)

    def is_aa(self, host_or_domain: str) -> bool:
        """Whether a host's second-level domain is labeled A&A."""
        return registrable_domain(host_or_domain) in self.aa_domains

    def __len__(self) -> int:
        return len(self.aa_domains)
