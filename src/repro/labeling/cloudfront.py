"""Cloudfront tenant mapping (§3.2's manual-mapping step, automated).

Amazon's Cloudfront CDN hosts arbitrary tenants under one registrable
domain, so second-level aggregation would blame ``cloudfront.net`` for
every tenant's behaviour. The paper manually mapped 13 fully-qualified
Cloudfront subdomains to the A&A companies hosting content there, by
"examining the order of resource loads in the corresponding inclusion
chains" — in most cases a one-to-one relationship between a company's
JavaScript and a specific subdomain.

This module automates that procedure: it accumulates, for every
``*.cloudfront.net`` host, the second-level domains immediately
preceding or succeeding it in inclusion chains, and maps the host to
the dominant adjacent A&A domain when the relationship is clear.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.labeling.aa_labeler import AaLabeler
from repro.net.domains import registrable_domain

CLOUDFRONT_SUFFIX = ".cloudfront.net"


def is_cloudfront_host(host: str) -> bool:
    """Whether a host is a Cloudfront distribution subdomain."""
    return host.endswith(CLOUDFRONT_SUFFIX)


@dataclass
class CloudfrontMapper:
    """Adjacency accumulator and mapping derivation.

    Attributes:
        adjacency: cf-host → Counter of adjacent second-level domains.
        dominance: Minimum share of adjacency mass the winning domain
            must hold for a confident mapping (the paper reports the
            mapping was "trivial" — near one-to-one).
    """

    adjacency: dict[str, Counter] = field(default_factory=dict)
    dominance: float = 0.6

    def observe_chain(self, chain_hosts: list[str]) -> None:
        """Record adjacencies from one inclusion chain (hosts, root first)."""
        for index, host in enumerate(chain_hosts):
            if not is_cloudfront_host(host):
                continue
            counter = self.adjacency.setdefault(host, Counter())
            for neighbor_index in (index - 1, index + 1):
                if 0 <= neighbor_index < len(chain_hosts):
                    neighbor = chain_hosts[neighbor_index]
                    if is_cloudfront_host(neighbor):
                        continue
                    counter[registrable_domain(neighbor)] += 1

    def derive_mapping(self, labeler: AaLabeler) -> dict[str, str]:
        """cf-host → tenant domain, for hosts adjacent to A&A domains.

        Only adjacent domains that are themselves A&A-labeled are
        candidates (the publisher embedding the script is adjacent too,
        but differs per chain and is rarely dominant; the tenant's own
        beacon/script domains repeat).
        """
        mapping: dict[str, str] = {}
        for host, counter in self.adjacency.items():
            aa_counts = {
                domain: count
                for domain, count in counter.items()
                if labeler.is_aa(domain)
            }
            if not aa_counts:
                continue
            winner, winner_count = max(aa_counts.items(), key=lambda kv: kv[1])
            if winner_count >= self.dominance * sum(aa_counts.values()):
                mapping[host] = winner
        return mapping
