"""A&A domain labeling (§3.2).

Derives the set of Advertising & Analytics second-level domains from a
corpus of filter-list-tagged resource observations using the paper's
rule ``a(d) ≥ 0.1 · n(d)``, then layers on the Cloudfront CDN mapping
(A&A companies serving their code from ``*.cloudfront.net`` subdomains
must be attributed to the tenant, not to Amazon).
"""

from repro.labeling.aa_labeler import AaLabeler, DomainTagCounter
from repro.labeling.cloudfront import CloudfrontMapper
from repro.labeling.resolver import DomainResolver

__all__ = ["DomainTagCounter", "AaLabeler", "CloudfrontMapper", "DomainResolver"]
