"""Host → effective second-level domain resolution.

Combines plain eTLD+1 extraction with the derived Cloudfront tenant
mapping, so every analysis stage attributes CDN-hosted A&A code to the
company that actually operates it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.domains import registrable_domain


@dataclass(frozen=True)
class DomainResolver:
    """Resolves hosts to the second-level domain analyses should use.

    Attributes:
        cloudfront_mapping: fully-qualified Cloudfront host → tenant
            second-level domain (from
            :class:`~repro.labeling.cloudfront.CloudfrontMapper`).
    """

    cloudfront_mapping: dict[str, str] = field(default_factory=dict)

    def effective_domain(self, host: str) -> str:
        """The domain a host's behaviour should be attributed to."""
        mapped = self.cloudfront_mapping.get(host)
        if mapped is not None:
            return mapped
        return registrable_domain(host)

    def effective_domains(self, hosts: list[str]) -> list[str]:
        """Map a chain of hosts, preserving order."""
        return [self.effective_domain(h) for h in hosts]
