"""JSON-lines persistence helpers.

Crawl datasets and CDP event logs can be written to and restored from
JSONL files, mirroring how the original study archived raw crawl output.
Dataclass-aware encoding keeps the call sites simple.
"""

from __future__ import annotations

import dataclasses
import datetime as dt
import gzip
import json
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro.util.atomicio import atomic_open


def to_jsonable(value: Any) -> Any:
    """Convert dataclasses/datetimes/sets into JSON-encodable structures."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dt.datetime):
        return value.isoformat()
    if isinstance(value, (set, frozenset)):
        return sorted(to_jsonable(v) for v in value)
    if isinstance(value, tuple):
        return [to_jsonable(v) for v in value]
    if isinstance(value, list):
        return [to_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    return value


def dumps(value: Any) -> str:
    """Serialize a value (dataclasses welcome) to compact JSON."""
    return json.dumps(to_jsonable(value), separators=(",", ":"), sort_keys=True)


def _open_for_read(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def write_jsonl(path: str | Path, records: Iterable[Any]) -> int:
    """Write records to a JSONL (optionally .gz) file; returns the count.

    The write is atomic (temp file + rename): a crash mid-write leaves
    the previous file intact rather than a torn one.
    """
    path = Path(path)
    count = 0
    with atomic_open(path) as handle:
        for record in records:
            handle.write(dumps(record))
            handle.write("\n")
            count += 1
    return count


def iter_lines(path: str | Path) -> Iterator[str]:
    """Yield raw text lines (newlines included) from a (``.gz``) file.

    The streaming counterpart of reading the file whole — used to
    fingerprint datasets without materializing them.
    """
    with _open_for_read(Path(path)) as handle:
        yield from handle


def read_jsonl(
    path: str | Path, decoder: Callable[[dict], Any] | None = None
) -> Iterator[Any]:
    """Yield records from a JSONL (optionally .gz) file."""
    path = Path(path)
    with _open_for_read(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            yield decoder(record) if decoder else record
