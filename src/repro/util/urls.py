"""Lightweight URL parsing tailored to the simulator's needs.

The crawler, filter engine, and inclusion-tree builder all reason about
URLs. We use a small parsed representation rather than round-tripping
through :mod:`urllib.parse` everywhere, both for speed (filter matching is
the hot path) and so that scheme handling for ``ws``/``wss`` is explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

WEBSOCKET_SCHEMES = frozenset({"ws", "wss"})
HTTP_SCHEMES = frozenset({"http", "https"})
KNOWN_SCHEMES = WEBSOCKET_SCHEMES | HTTP_SCHEMES | {"data", "blob", "about"}

_DEFAULT_PORTS = {"http": 80, "ws": 80, "https": 443, "wss": 443}


class UrlError(ValueError):
    """Raised when a URL cannot be parsed."""


@dataclass(frozen=True)
class ParsedUrl:
    """A parsed absolute URL.

    Attributes:
        scheme: Lower-cased scheme, e.g. ``"https"`` or ``"wss"``.
        host: Lower-cased host name (no port).
        port: Explicit or default port for the scheme.
        path: Path beginning with ``/`` (``/`` for empty paths).
        query: Query string without the leading ``?`` (may be empty).
    """

    scheme: str
    host: str
    port: int
    path: str
    query: str

    @property
    def is_websocket(self) -> bool:
        """Whether this is a ws:// or wss:// URL."""
        return self.scheme in WEBSOCKET_SCHEMES

    @property
    def is_secure(self) -> bool:
        """Whether the transport is TLS (https or wss)."""
        return self.scheme in ("https", "wss")

    @property
    def origin(self) -> str:
        """Scheme+host(+non-default port) origin string."""
        default = _DEFAULT_PORTS.get(self.scheme)
        if default is not None and self.port == default:
            return f"{self.scheme}://{self.host}"
        return f"{self.scheme}://{self.host}:{self.port}"

    def __str__(self) -> str:
        url = f"{self.origin}{self.path}"
        if self.query:
            url = f"{url}?{self.query}"
        return url

    def with_path(self, path: str, query: str = "") -> "ParsedUrl":
        """Return a copy pointing at a different path/query on this host."""
        if not path.startswith("/"):
            path = "/" + path
        return ParsedUrl(self.scheme, self.host, self.port, path, query)


@lru_cache(maxsize=65536)
def parse_url(url: str) -> ParsedUrl:
    """Parse an absolute URL string into a :class:`ParsedUrl`.

    Args:
        url: An absolute URL with an explicit scheme.

    Raises:
        UrlError: If the URL has no scheme, an empty host, or a bad port.
    """
    scheme, sep, rest = url.partition("://")
    if not sep:
        raise UrlError(f"URL has no scheme: {url!r}")
    scheme = scheme.lower()
    hostport, slash, tail = rest.partition("/")
    path_and_query = slash + tail if slash else "/"
    if "?" in hostport:
        # Query directly after the authority (no path), e.g. http://x.com?a=1
        hostport, _, query_only = hostport.partition("?")
        path_and_query = "/?" + query_only
    path, _, query = path_and_query.partition("?")
    host, _, port_text = hostport.partition(":")
    host = host.lower().rstrip(".")
    if not host:
        raise UrlError(f"URL has no host: {url!r}")
    if port_text:
        try:
            port = int(port_text)
        except ValueError as exc:
            raise UrlError(f"bad port in URL: {url!r}") from exc
        if not 0 < port < 65536:
            raise UrlError(f"port out of range in URL: {url!r}")
    else:
        default = _DEFAULT_PORTS.get(scheme)
        if default is None:
            port = 0
        else:
            port = default
    return ParsedUrl(scheme=scheme, host=host, port=port, path=path or "/", query=query)


def host_of(url: str) -> str:
    """Return the lower-cased host of an absolute URL."""
    return parse_url(url).host


def same_host(url_a: str, url_b: str) -> bool:
    """Whether two absolute URLs share a host."""
    return host_of(url_a) == host_of(url_b)


def resolve_relative(base: str, target: str) -> str:
    """Resolve ``target`` against ``base`` like a browser would (subset).

    Supports absolute URLs, scheme-relative (``//host/...``),
    host-relative (``/path``), and naive relative paths.
    """
    if "://" in target:
        return target
    parsed = parse_url(base)
    if target.startswith("//"):
        return f"{parsed.scheme}:{target}"
    if target.startswith("/"):
        path, _, query = target.partition("?")
        return str(parsed.with_path(path, query))
    # Relative to the base path's directory.
    directory = parsed.path.rsplit("/", 1)[0]
    path, _, query = target.partition("?")
    return str(parsed.with_path(f"{directory}/{path}", query))
