"""Atomic file writes: temp file + rename, in the target directory.

Every durable artifact this repo produces — datasets, reports, traces,
bench JSON, cache entries, the staticlint baseline — must never be
observable half-written: a crash mid-write would otherwise leave a
torn file that a later run trusts (a cache entry that parses but lies,
a dataset missing its tail). The fix is the classic one: write the
full content to a temporary file *in the same directory* (so the
rename cannot cross filesystems), fsync it, then ``os.replace`` onto
the final name. Readers see either the old bytes or the new bytes,
never a mixture.

Two entry points:

* :func:`atomic_write` — one-shot text (or bytes) replacement.
* :func:`atomic_open` — a context manager yielding a writable handle
  (gzip-aware, mirroring :mod:`repro.util.serialization`); commit
  happens on clean exit, and an exception discards the temp file,
  leaving any previous version untouched.

The spool's *segments* deliberately do not use this module: a spool
segment is an append-only write-ahead log whose torn tail is handled
by :mod:`repro.spool.recovery`, not by atomicity.
"""

from __future__ import annotations

import gzip
import io
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

__all__ = ["atomic_write", "atomic_open", "fsync_dir"]


def fsync_dir(path: str | Path) -> None:
    """fsync a directory so a just-renamed entry survives power loss.

    Best-effort: some platforms/filesystems refuse directory fds;
    durability there degrades to the rename's own guarantees.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _temp_path(target: Path) -> Path:
    # Deterministic name (no PID/time): single-writer per artifact is
    # the repo-wide contract, and a stale temp from a crashed run is
    # silently overwritten by the next successful write.
    return target.parent / f".{target.name}.tmp"


def atomic_write(
    path: str | Path, data: str | bytes, encoding: str = "utf-8"
) -> Path:
    """Replace ``path``'s content atomically; returns the path.

    The parent directory is created if missing. ``data`` may be text
    or bytes; text is encoded with ``encoding``.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    raw = data.encode(encoding) if isinstance(data, str) else data
    temp = _temp_path(target)
    fd = os.open(str(temp), os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(raw)
            handle.flush()
            os.fsync(handle.fileno())
    except BaseException:
        temp.unlink(missing_ok=True)
        raise
    os.replace(temp, target)
    fsync_dir(target.parent)
    return target


@contextmanager
def atomic_open(path: str | Path) -> Iterator:
    """Open ``path`` for atomic text writing (``.gz`` supported).

    Yields a text handle backed by a same-directory temp file; on
    clean exit the temp replaces ``path``, on exception it is removed
    and ``path`` keeps its previous content (or stays absent).
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    temp = _temp_path(target)
    raw = open(temp, "wb")
    if target.suffix == ".gz":
        # Pin mtime=0 so equal content gzips to equal bytes — the
        # dataset fingerprint tests compare .gz twins byte for byte.
        inner = gzip.GzipFile(filename="", fileobj=raw, mode="wb", mtime=0)
    else:
        inner = raw
    text = io.TextIOWrapper(inner, encoding="utf-8")
    try:
        yield text
        text.flush()
        if inner is not raw:
            inner.close()
        raw.flush()
        os.fsync(raw.fileno())
        raw.close()
    except BaseException:
        try:
            text.close()
        except Exception:
            pass
        try:
            raw.close()
        except Exception:
            pass
        temp.unlink(missing_ok=True)
        raise
    os.replace(temp, target)
    fsync_dir(target.parent)
