"""Simulated wall-clock time.

The paper's crawler waited ~60 seconds between page visits and each crawl
spans several calendar days. Re-creating that with real sleeps would be
absurd, so the whole system runs on a :class:`SimClock` that advances only
when told to. Timestamps flow into CDP events, cookie creation dates (the
"First Seen" item of Table 5), and crawl metadata.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field

UTC = dt.timezone.utc


def parse_date(text: str) -> dt.datetime:
    """Parse ``YYYY-MM-DD`` into a UTC-midnight datetime."""
    return dt.datetime.strptime(text, "%Y-%m-%d").replace(tzinfo=UTC)


@dataclass
class SimClock:
    """A monotonically advancing simulated clock.

    Attributes:
        now: The current simulated instant (UTC).
    """

    now: dt.datetime = field(default_factory=lambda: parse_date("2017-04-02"))

    def advance(self, seconds: float) -> dt.datetime:
        """Advance the clock by a positive number of seconds."""
        if seconds < 0:
            raise ValueError("SimClock cannot run backwards")
        self.now = self.now + dt.timedelta(seconds=seconds)
        return self.now

    def set_to(self, instant: dt.datetime) -> None:
        """Jump to a later instant (e.g. the start of the next crawl)."""
        if instant < self.now:
            raise ValueError("SimClock cannot run backwards")
        self.now = instant

    def timestamp(self) -> float:
        """POSIX timestamp of the current instant."""
        return self.now.timestamp()

    def isoformat(self) -> str:
        """ISO-8601 text of the current instant."""
        return self.now.isoformat()
