"""Small text helpers shared across packages."""

from __future__ import annotations

import base64
import string

_SLUG_ALLOWED = set(string.ascii_lowercase + string.digits + "-")


def slugify(text: str) -> str:
    """Lower-case and squash a string into a DNS-label-safe slug."""
    out = []
    previous_dash = False
    for ch in text.lower():
        if ch in _SLUG_ALLOWED and ch != "-":
            out.append(ch)
            previous_dash = False
        elif not previous_dash and out:
            out.append("-")
            previous_dash = True
    return "".join(out).strip("-") or "x"


def b64_text(data: bytes) -> str:
    """Standard base64 text of raw bytes."""
    return base64.b64encode(data).decode("ascii")


def truncate(text: str, limit: int = 120) -> str:
    """Truncate long strings for logging, appending an ellipsis."""
    if len(text) <= limit:
        return text
    return text[: limit - 1] + "…"


def format_count(value: int) -> str:
    """Format an integer with thousands separators, matching the paper."""
    return f"{value:,}"


def format_percent(value: float, digits: int = 2) -> str:
    """Format a ratio in [0,1] as a percentage string."""
    return f"{100.0 * value:.{digits}f}"
