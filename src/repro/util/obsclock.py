"""The observability clock: deterministic monotonic "ticks".

Span timings and trace files must be **byte-identical across same-seed
runs** (DESIGN.md §5 extends the calibration contract to telemetry), so
the obs layer cannot read the host's monotonic clock. Instead it runs on
a :class:`TickClock`: a counter that advances only when instrumented
work happens — every metric increment, published CDP event, and span
boundary charges one or more ticks. A span's duration in ticks is
therefore a deterministic *work proxy*: the amount of instrumented
activity that happened while the span was open, stable across hosts,
Python versions, and ``PYTHONHASHSEED`` values.

For real before/after performance numbers (benchmarks, profiling
sessions) the same interface is available over the host's performance
counter as :class:`WallClock`. That variant is the single sanctioned
home of ``time.perf_counter_ns`` — the DET-OBS linter rule
(:mod:`repro.staticlint.determinism`) forbids direct
``time.perf_counter``/``time.monotonic`` calls anywhere else in
``src/repro``.
"""

from __future__ import annotations

import time


class TickClock:
    """Deterministic monotonic clock counting instrumented work units.

    Attributes:
        ticks: The current tick count (monotonically non-decreasing).
    """

    deterministic = True

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("TickClock cannot start before tick 0")
        self.ticks = start

    def now(self) -> int:
        """The current tick count (does not advance)."""
        return self.ticks

    def tick(self, n: int = 1) -> int:
        """Advance by ``n`` work units; returns the new tick count."""
        if n < 0:
            raise ValueError("TickClock cannot run backwards")
        self.ticks += n
        return self.ticks


class WallClock:
    """The same interface over the host's performance counter.

    ``now()``/``tick()`` return nanoseconds from an arbitrary origin.
    Use only where bit-reproducibility is explicitly not required
    (benchmark breakdowns, ad-hoc profiling); ``repro study --trace``
    always runs on :class:`TickClock`.
    """

    deterministic = False

    def __init__(self) -> None:
        self._origin = time.perf_counter_ns()

    def now(self) -> int:
        """Nanoseconds since this clock was created."""
        return time.perf_counter_ns() - self._origin

    def tick(self, n: int = 1) -> int:
        """Reads the counter; ``n`` is ignored (time advances itself)."""
        return self.now()
