"""Deterministic, stream-keyed random number generation.

Every stochastic decision in the simulator draws from an :class:`RngStream`
keyed by a human-readable path such as ``("crawl", "apr-02", "site",
"cnn.com", "page", 3)``.  Two properties follow:

* **Reproducibility** — the same root seed and key always produce the same
  draw sequence, regardless of the order in which other streams are used.
* **Independence** — adding draws to one stream never perturbs another, so
  experiments stay comparable when the simulation grows new features.

The key is hashed with SHA-256 (not Python's randomized ``hash``) so
results are stable across interpreter invocations.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")

_KEY_SEPARATOR = "\x1f"  # ASCII unit separator: cannot appear in key parts.


def derive_seed(root_seed: int, *key_parts: object) -> int:
    """Derive a 64-bit seed from a root seed and a structured key.

    Args:
        root_seed: The experiment-level seed.
        *key_parts: Hashable path components (stringified). Avoid embedding
            the unit-separator character in string parts.

    Returns:
        A deterministic 64-bit integer seed.
    """
    material = _KEY_SEPARATOR.join([str(root_seed)] + [str(p) for p in key_parts])
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngStream:
    """A named, independent random stream.

    Wraps :class:`random.Random` seeded via :func:`derive_seed`, and adds
    the handful of distributions the simulator needs (Zipf, bounded
    Pareto, Bernoulli) so call sites stay declarative.
    """

    def __init__(self, root_seed: int, *key_parts: object) -> None:
        self._key = tuple(str(p) for p in key_parts)
        self._root_seed = root_seed
        self._random = random.Random(derive_seed(root_seed, *key_parts))

    @property
    def key(self) -> tuple[str, ...]:
        """The stream's key path."""
        return self._key

    def child(self, *key_parts: object) -> "RngStream":
        """Create an independent sub-stream extending this stream's key."""
        return RngStream(self._root_seed, *self._key, *key_parts)

    # -- primitive draws ---------------------------------------------------

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high], inclusive."""
        return self._random.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._random.uniform(low, high)

    def choice(self, items: Sequence[T]) -> T:
        """Pick one item uniformly."""
        return self._random.choice(items)

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        """Sample ``k`` distinct items (or all of them when fewer exist)."""
        k = min(k, len(items))
        return self._random.sample(items, k)

    def shuffled(self, items: Iterable[T]) -> list[T]:
        """Return a new list with the items in random order."""
        out = list(items)
        self._random.shuffle(out)
        return out

    def bernoulli(self, probability: float) -> bool:
        """True with the given probability (clamped to [0, 1])."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._random.random() < probability

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal draw."""
        return self._random.gauss(mu, sigma)

    def expovariate(self, rate: float) -> float:
        """Exponential draw with the given rate."""
        return self._random.expovariate(rate)

    # -- structured draws --------------------------------------------------

    def poisson(self, mean: float) -> int:
        """Poisson draw (Knuth's algorithm; mean kept small in practice)."""
        if mean <= 0.0:
            return 0
        if mean > 50.0:
            # Normal approximation keeps the loop bounded for large means.
            return max(0, int(round(self._random.gauss(mean, math.sqrt(mean)))))
        threshold = math.exp(-mean)
        count = 0
        product = self._random.random()
        while product > threshold:
            count += 1
            product *= self._random.random()
        return count

    def zipf_index(self, n: int, exponent: float = 1.0) -> int:
        """Draw an index in [0, n) with Zipfian popularity (rank 0 hottest).

        Uses inverse-CDF sampling over the exact normalization, computed
        lazily and cached per (n, exponent).
        """
        if n <= 0:
            raise ValueError("zipf_index requires n >= 1")
        cdf = self._zipf_cdf(n, exponent)
        u = self._random.random()
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] >= u:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Pick one item with probability proportional to its weight."""
        if len(items) != len(weights):
            raise ValueError("items and weights must align")
        return self._random.choices(items, weights=weights, k=1)[0]

    def bounded_pareto(self, low: float, high: float, alpha: float = 1.2) -> float:
        """Draw from a Pareto distribution truncated to [low, high]."""
        if not 0 < low < high:
            raise ValueError("require 0 < low < high")
        u = self._random.random()
        la, ha = low**alpha, high**alpha
        return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)

    # -- internals ----------------------------------------------------------

    _zipf_cache: dict[tuple[int, float], list[float]] = {}

    @classmethod
    def _zipf_cdf(cls, n: int, exponent: float) -> list[float]:
        key = (n, exponent)
        cached = cls._zipf_cache.get(key)
        if cached is not None:
            return cached
        weights = [1.0 / (rank**exponent) for rank in range(1, n + 1)]
        total = sum(weights)
        acc = 0.0
        cdf = []
        for w in weights:
            acc += w / total
            cdf.append(acc)
        cdf[-1] = 1.0
        cls._zipf_cache[key] = cdf
        return cdf

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(key={'/'.join(self._key)!r})"
