"""Shared utilities: deterministic RNG streams, URLs, time, serialization."""

from repro.util.rng import RngStream, derive_seed
from repro.util.simtime import SimClock
from repro.util.urls import ParsedUrl, parse_url

__all__ = [
    "RngStream",
    "derive_seed",
    "SimClock",
    "ParsedUrl",
    "parse_url",
]
