"""The compiled rule index: EasyList-scale filter matching.

Real EasyList/EasyPrivacy are tens of thousands of rules; the
interpreted :class:`~repro.filters.engine.FilterEngine` keeps every
no-reliable-token rule in one generic bucket and regex-tests each
offered candidate, which stops scaling long before 50k rules. This
module compiles the same parsed rules into an immutable index that
keeps candidate sets tiny and avoids the regex engine for the most
common rule shape entirely:

* **Boundary-aware token sharding** — each rule is indexed under ONE
  reliable literal token (see :meth:`FilterRule.token_details` for the
  reliability rule that fixes the PR-9 false-negative bug), chosen by
  *least-loaded* bucket: global token frequencies are counted first and
  every rule picks its rarest reliable token, which flattens the hot
  buckets popular tokens (``ads``, ``banner``, …) would otherwise
  create.
* **Hostname trie lane** — every ``||host...`` rule is keyed by its
  literal host span in a character trie: a rule's own host is far more
  selective than any token it shares with thousands of others
  (``com``, ``gif``), and lookup cost is bounded by the URL's
  authority length, not the rule count. Lookup walks the trie from
  every label-boundary position of the URL's authority — the exact set
  of positions the ``||`` regex prefix can anchor at — so the lane
  offers a superset of the true matches by construction, on the raw
  URL string (no parsed-host detour that crafted URLs could
  desynchronize).
* **Pure-host fast path** — rules whose whole pattern is ``||host^``
  or ``||host`` (the bulk of EasyList) are decided by string scanning
  over the authority, never compiling or running their regex.
* **Bit-mask pre-filters** — each entry carries an int resource-type
  mask and party tri-state; candidates fail these (and the ``$domain=``
  constraint) before any regex runs.
* **Exception short-circuit** — the exception index records the union
  mask of resource types its rules can ever apply to; when a block hit
  needs exception processing, a single bit test skips the whole
  exception pass for types no exception covers.

Equivalence contract: for every URL/context,
``CompiledFilterEngine.match`` returns the same verdict AND the same
decisive rules (lowest list-order applicable match, for both
polarities) as :class:`FilterEngine` and :func:`linear_match`. The
hypothesis suite in ``tests/filters/test_equivalence.py`` pins all
three against each other.

The index is immutable after construction and picklable (plain tuples
and dicts), so the parallel executor's forked workers and the future
``repro serve`` hot-swap can share one snapshot.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, Sequence

from repro.filters.engine import (
    _URL_TOKEN_RE,
    OWN_STATS,
    EngineStats,
    MatchResult,
)
from repro.filters.rules import SCHEME_RE, FilterList, FilterRule
from repro.net.domains import is_third_party
from repro.net.http import ResourceType
from repro.util.urls import parse_url

# Stable bit per resource type (enum definition order).
RESOURCE_BIT: dict[ResourceType, int] = {
    rtype: 1 << i for i, rtype in enumerate(ResourceType)
}

# Chars the ``^`` separator class does NOT match, on a lowered URL.
# (Explicit set rather than str.isalnum(): the regex class is ASCII.)
_NOT_SEPARATOR = frozenset("abcdefghijklmnopqrstuvwxyz0123456789_-.%")

# Matcher kinds, decided at compile time per rule.
_KIND_REGEX = 0  # anything we run the rule's compiled regex for
_KIND_HOST_SEP = 1  # pattern is exactly ``||host^``
_KIND_HOST_BARE = 2  # pattern is exactly ``||host``

# Entry tuple layout (tuples keep the hot loop allocation-free and the
# whole index trivially picklable).
_E_ORDER = 0
_E_TYPE_MASK = 1
_E_THIRD_PARTY = 2
_E_HAS_DOMAINS = 3
_E_KIND = 4
_E_HOST_SPAN = 5
_E_LITERAL = 6
_E_RULE = 7
_E_LIST = 8

CompiledEntry = tuple[
    int, int, "bool | None", bool, int, str, str, FilterRule, str
]

# Terminal keys in the host trie's plain-dict nodes (ints can never
# collide with single-char edge keys). Each terminal is split by what
# the lane walk itself proves: reaching a ``_T_ANY`` terminal verifies
# the whole pattern of a ``||host`` rule (span is a prefix at an anchor
# position), while ``_T_SEP`` (``||host^`` rules) additionally requires
# the boundary char after the span to be separator-class — checked once
# per terminal by the walk, not once per entry.
_T_ANY = 0
_T_SEP = 1

_WILDCARD_SPLIT_RE = re.compile(r"[*^|]+")

_AUTHORITY_END_RE = re.compile(r"[/?#]")


def type_mask(resource_types: frozenset[ResourceType]) -> int:
    """The int bitmap of a rule's resource-type set."""
    mask = 0
    for rtype in resource_types:
        mask |= RESOURCE_BIT[rtype]
    return mask


def _literal_prescreen(rule: FilterRule) -> str:
    """The longest literal fragment any matching lowered URL must
    contain, or ``""`` when no sound prescreen exists.

    Fragments between wildcards/anchors/separators are emitted by
    ``pattern_to_regex`` as escaped literals, so a failed substring
    probe (C-speed) rejects a candidate without touching the regex
    engine. ``$match-case`` rules get no prescreen: their path region
    is case-sensitive while scheme/host stay insensitive, so no single
    casing of a fragment is guaranteed present in one casing of the
    URL.
    """
    if rule.options.match_case:
        return ""
    fragments = _WILDCARD_SPLIT_RE.split(rule.pattern)
    longest = max(fragments, key=len)
    return longest.lower() if len(longest) >= 3 else ""


def _compile_entry(order: int, rule: FilterRule, list_name: str) -> CompiledEntry:
    options = rule.options
    span = rule.host_anchor_literal()
    kind = _KIND_REGEX
    if span:
        rest = rule.pattern[2 + len(span):]
        if rest == "":
            kind = _KIND_HOST_BARE
        elif rest == "^":
            kind = _KIND_HOST_SEP
    return (
        order,
        type_mask(options.resource_types),
        options.third_party,
        bool(options.include_domains or options.exclude_domains),
        kind,
        span,
        _literal_prescreen(rule) if kind == _KIND_REGEX else "",
        rule,
        list_name,
    )


def authority_span(lowered_url: str) -> tuple[int, int] | None:
    """The [start, end) span of the URL's authority, or ``None``.

    Start is the char after a valid ``scheme://`` prefix (the same
    scheme grammar the ``||`` anchor regex requires); end is the first
    ``/``, ``?``, or ``#`` after it. Computed on the lowered URL so the
    result is valid for the case-insensitive scheme/host region of
    anchored rules.
    """
    scheme = SCHEME_RE.match(lowered_url)
    if scheme is None:
        return None
    start = scheme.end()
    end = _AUTHORITY_END_RE.search(lowered_url, start)
    if end is None:
        return start, len(lowered_url)
    return start, end.start()


def _anchor_positions(lowered_url: str, auth: tuple[int, int]) -> Iterator[int]:
    """Positions where a ``||`` host span may begin: the authority
    start and the char after every ``.`` inside the authority."""
    start, end = auth
    yield start
    dot = lowered_url.find(".", start, end)
    while dot >= 0:
        yield dot + 1
        dot = lowered_url.find(".", dot + 1, end)


def host_anchor_matches(
    lowered_url: str,
    auth: tuple[int, int] | None,
    span: str,
    needs_separator: bool,
) -> bool:
    """Whether ``||span`` matches, by string scan instead of regex.

    Replicates the anchor regex exactly: the span must start at an
    anchor position, and (for ``||span^`` rules) be followed by a
    separator-class char or the URL end.
    """
    if auth is None:
        return False
    for position in _anchor_positions(lowered_url, auth):
        if not lowered_url.startswith(span, position):
            continue
        if not needs_separator:
            return True
        boundary = position + len(span)
        if boundary >= len(lowered_url):
            return True
        if lowered_url[boundary] not in _NOT_SEPARATOR:
            return True
    return False


_TYPE_BITS = tuple(RESOURCE_BIT.values())

# MatchResult is frozen; every miss can share one instance.
_NO_MATCH = MatchResult(blocked=False)

# Lane tags so ``best_match`` can charge the right telemetry counter.
_LANE_TOKEN = 0
_LANE_HOST = 1
_LANE_GENERIC = 2

#: A logical bucket after freezing: ``(resource-type bit, third_party)``
#: key -> order-sorted entry list. ``best_match`` reads exactly one key
#: per request, so entries whose type mask or party tri-state cannot
#: apply are never iterated at all.
FrozenBucket = dict[tuple[int, bool], list[CompiledEntry]]


def _freeze_bucket(entries: list[CompiledEntry]) -> FrozenBucket:
    """Split one order-sorted bucket by every (type bit, party) it can
    serve. Entries with no type/party constraint fan out to all their
    keys; append order preserves order-sortedness per key."""
    frozen: FrozenBucket = {}
    for entry in entries:
        mask = entry[_E_TYPE_MASK]
        required_party = entry[_E_THIRD_PARTY]
        parties = (
            (True, False) if required_party is None else (required_party,)
        )
        for bit in _TYPE_BITS:
            if mask & bit:
                for party in parties:
                    frozen.setdefault((bit, party), []).append(entry)
    return frozen


def _freeze_trie(node: dict) -> None:
    """Freeze every terminal bucket of the host trie, in place."""
    for key, value in node.items():
        if isinstance(key, int):
            node[key] = _freeze_bucket(value)
        else:
            _freeze_trie(value)


class _CompiledIndex:
    """One polarity's compiled storage: token buckets, host trie lane,
    generic bucket. Buckets are order-sorted by construction and frozen
    into per-``(type, party)`` sub-buckets before first use."""

    __slots__ = ("_by_token", "_pairs", "_sharded", "_trie", "_generic",
                 "_exception", "type_presence", "size")

    #: Token buckets larger than this are re-sharded under (primary,
    #: secondary) token pairs; a pair bucket is only offered when the
    #: URL contains *both* tokens, so hot shared words ("ads", zipf
    #: heads) stop dominating the candidate stream.
    _PAIR_SHARD_THRESHOLD = 24

    def __init__(
        self,
        entries: Sequence[tuple[CompiledEntry, list[str]]],
        exception: bool,
    ) -> None:
        self._exception = exception
        self._by_token: dict[str, FrozenBucket] = {}
        self._pairs: dict[tuple[str, str], FrozenBucket] = {}
        self._sharded: dict[str, bool] = {}
        self._trie: dict = {}
        self._generic: FrozenBucket = {}
        self.type_presence = 0
        self.size = len(entries)

        # Pass 1: global reliable-token frequencies (host-anchored
        # rules never consume a token slot, so they don't count).
        frequency: dict[str, int] = {}
        for entry, tokens in entries:
            if entry[_E_HOST_SPAN]:
                continue
            for token in dict.fromkeys(tokens):
                frequency[token] = frequency.get(token, 0) + 1

        # Pass 2: shard each rule. Host-anchored rules go to the trie
        # lane — a rule's own host span is far more selective than any
        # shared token ("com", "gif"), and lookup cost is bounded by
        # the URL's authority length, not the rule count. The rest go
        # under their least-loaded reliable token (ties: longer, then
        # lexicographically smaller — deterministic), or the generic
        # bucket when no reliable token exists.
        load_key = lambda t: (frequency[t], -len(t), t)  # noqa: E731
        staged: dict[str, list[tuple[CompiledEntry, list[str]]]] = {}
        generic: list[CompiledEntry] = []
        for entry, tokens in entries:
            self.type_presence |= entry[_E_TYPE_MASK]
            if entry[_E_HOST_SPAN]:
                node = self._trie
                for ch in entry[_E_HOST_SPAN]:
                    node = node.setdefault(ch, {})
                terminal = (
                    _T_SEP if entry[_E_KIND] == _KIND_HOST_SEP else _T_ANY
                )
                node.setdefault(terminal, []).append(entry)
            elif tokens:
                token = min(tokens, key=load_key)
                staged.setdefault(token, []).append((entry, tokens))
            else:
                generic.append(entry)

        # Pass 3: re-shard oversized token buckets under token *pairs*.
        # An entry with a second reliable token moves to the
        # ``(primary, secondary)`` bucket, offered only when the URL
        # contains both tokens; single-token entries stay behind in the
        # (now much smaller) residual bucket. Append order preserves
        # the global order-sortedness of every bucket.
        residuals: dict[str, list[CompiledEntry]] = {}
        pairs: dict[tuple[str, str], list[CompiledEntry]] = {}
        for token, staged_bucket in staged.items():
            bucket = residuals.setdefault(token, [])
            if len(staged_bucket) <= self._PAIR_SHARD_THRESHOLD:
                bucket.extend(entry for entry, _ in staged_bucket)
                continue
            self._sharded[token] = True
            for entry, tokens in staged_bucket:
                others = [t for t in dict.fromkeys(tokens) if t != token]
                if others:
                    secondary = min(others, key=load_key)
                    pairs.setdefault((token, secondary), []).append(entry)
                else:
                    bucket.append(entry)

        # Pass 4: freeze. Every bucket splits into per-(type, party)
        # sub-buckets so the hot loop never sees an inapplicable entry.
        self._by_token = {
            token: _freeze_bucket(bucket)
            for token, bucket in residuals.items()
            if bucket
        }
        self._pairs = {
            pair: _freeze_bucket(bucket) for pair, bucket in pairs.items()
        }
        self._generic = _freeze_bucket(generic)
        _freeze_trie(self._trie)

    def _lane_buckets(
        self, lowered_url: str, auth: tuple[int, int] | None
    ) -> Iterator[FrozenBucket]:
        trie = self._trie
        if not trie or auth is None:
            return
        seen: set[int] = set()
        n = len(lowered_url)
        for position in _anchor_positions(lowered_url, auth):
            node = trie
            i = position
            while True:
                bucket = node.get(_T_ANY)
                if bucket is not None and id(bucket) not in seen:
                    seen.add(id(bucket))
                    yield bucket
                bucket = node.get(_T_SEP)
                if bucket is not None and id(bucket) not in seen:
                    # ``||span^``: the boundary char after the span (the
                    # walk is exactly there) must be separator-class or
                    # URL end. A not-yet-satisfied terminal stays
                    # unseen — a later anchor position may satisfy it.
                    if i >= n or lowered_url[i] not in _NOT_SEPARATOR:
                        seen.add(id(bucket))
                        yield bucket
                if i >= n:
                    break
                node = node.get(lowered_url[i])
                if node is None:
                    break
                i += 1

    def buckets(
        self,
        lowered_url: str,
        url_tokens: Sequence[str],
        auth: tuple[int, int] | None,
    ) -> Iterator[tuple[FrozenBucket, int]]:
        """``(frozen bucket, lane)`` pairs: a superset of every rule in
        this index that can match the URL lives under some key of some
        yielded bucket. Each per-key sub-bucket is order-sorted."""
        tokens = list(dict.fromkeys(url_tokens))
        by_token = self._by_token
        pairs = self._pairs
        sharded = self._sharded
        for token in tokens:
            bucket = by_token.get(token)
            if bucket is not None:
                yield bucket, _LANE_TOKEN
            if token in sharded:
                for other in tokens:
                    if other == token:
                        continue
                    bucket = pairs.get((token, other))
                    if bucket is not None:
                        yield bucket, _LANE_TOKEN
        for bucket in self._lane_buckets(lowered_url, auth):
            yield bucket, _LANE_HOST
        if self._generic:
            yield self._generic, _LANE_GENERIC

    def _charge(self, stats: EngineStats, lane: int, count: int) -> None:
        """Candidate telemetry, split by polarity (combined fields stay
        exact sums of the per-polarity ones)."""
        if lane == _LANE_TOKEN:
            stats.token_buckets += 1
            stats.token_candidates += count
            if self._exception:
                stats.exception_token_buckets += 1
                stats.exception_token_candidates += count
            else:
                stats.block_token_buckets += 1
                stats.block_token_candidates += count
        elif lane == _LANE_HOST:
            stats.host_candidates += count
        else:
            stats.generic_candidates += count
            if self._exception:
                stats.exception_generic_candidates += count
            else:
                stats.block_generic_candidates += count

    def best_match(
        self,
        url: str,
        lowered_url: str,
        url_tokens: Sequence[str],
        auth: tuple[int, int] | None,
        type_bit: int,
        third_party: bool,
        first_party_host: str,
        stats: EngineStats | None = None,
    ) -> CompiledEntry | None:
        """The lowest-order applicable matching entry, or ``None``."""
        best: CompiledEntry | None = None
        best_order = 1 << 62
        key = (type_bit, third_party)
        for bucket, lane in self.buckets(lowered_url, url_tokens, auth):
            sub = bucket.get(key)
            if sub is None:
                continue
            if stats is not None:
                self._charge(stats, lane, len(sub))
            # Type mask and party already hold for every entry under
            # this key — the freeze step filtered them at build time.
            # The literal prescreen rejects almost every candidate that
            # gets this far, so it runs before the ``$domain=`` check.
            for entry in sub:
                if entry[0] >= best_order:  # _E_ORDER
                    break  # sub-bucket is order-sorted; no later entry wins
                if entry[4] == _KIND_REGEX:  # _E_KIND
                    literal = entry[6]  # _E_LITERAL
                    if literal and literal not in lowered_url:
                        continue  # C-speed reject before the regex
                    if entry[3] and not entry[  # _E_HAS_DOMAINS
                        7  # _E_RULE
                    ].options.domains_allow(first_party_host):
                        continue
                    if not entry[7].matches_url(url):  # _E_RULE
                        continue
                elif entry[3] and not entry[7].options.domains_allow(
                    first_party_host
                ):
                    continue
                # _KIND_HOST_SEP / _KIND_HOST_BARE need no further
                # pattern check: host entries are only ever offered by
                # the lane walk, which already verified span + boundary.
                best = entry
                best_order = entry[0]
                break
        return best


class CompiledFilterEngine:
    """Drop-in :class:`FilterEngine` replacement built for 10k–100k-rule
    lists: same constructor, same ``match``/``would_block``/``stats``
    surface, same verdicts and decisive rules — provably, see the
    module docstring's equivalence contract."""

    def __init__(self, lists: Iterable[FilterList]) -> None:
        self.lists = list(lists)
        self.stats = EngineStats()
        blocks: list[tuple[CompiledEntry, list[str]]] = []
        exceptions: list[tuple[CompiledEntry, list[str]]] = []
        order = 0
        for filter_list in self.lists:
            for rule in filter_list.rules:
                compiled = (
                    _compile_entry(order, rule, filter_list.name),
                    rule.index_tokens(),
                )
                (exceptions if rule.is_exception else blocks).append(compiled)
                order += 1
        self._blocks = _CompiledIndex(blocks, exception=False)
        self._exceptions = _CompiledIndex(exceptions, exception=True)

    @property
    def rule_count(self) -> int:
        """Total number of indexed rules across all lists."""
        return self._blocks.size + self._exceptions.size

    def match(
        self,
        url: str,
        resource_type: ResourceType,
        first_party_url: str,
        stats: EngineStats | None = OWN_STATS,
    ) -> MatchResult:
        """Evaluate one request (see :meth:`FilterEngine.match`).

        Pass ``stats`` explicitly (caller-owned, or ``None`` for no
        recording) when the engine is shared across threads: the index
        itself is immutable, so with a non-default ``stats`` the call
        is read-only on the engine and safe under concurrent readers.
        """
        if stats is OWN_STATS:
            stats = self.stats
        if stats is not None:
            stats.matches += 1
        lowered = url.lower()
        url_tokens = _URL_TOKEN_RE.findall(lowered)
        auth = authority_span(lowered)
        type_bit = RESOURCE_BIT[resource_type]
        third_party = bool(first_party_url) and is_third_party(url, first_party_url)
        first_party_host = (
            parse_url(first_party_url).host if first_party_url else ""
        )

        block_hit = self._blocks.best_match(
            url, lowered, url_tokens, auth, type_bit,
            third_party, first_party_host, stats,
        )
        if block_hit is None:
            return _NO_MATCH

        if self._exceptions.type_presence & type_bit:
            exception_hit = self._exceptions.best_match(
                url, lowered, url_tokens, auth, type_bit,
                third_party, first_party_host, stats,
            )
            if exception_hit is not None:
                if stats is not None:
                    stats.exception_overrides += 1
                return MatchResult(
                    blocked=False,
                    rule=block_hit[_E_RULE],
                    exception_rule=exception_hit[_E_RULE],
                    list_name=exception_hit[_E_LIST],
                )
        if stats is not None:
            stats.blocked += 1
        return MatchResult(
            blocked=True, rule=block_hit[_E_RULE], list_name=block_hit[_E_LIST]
        )

    def would_block(
        self, url: str, resource_type: ResourceType, first_party_url: str
    ) -> bool:
        """Shorthand for ``match(...).blocked``."""
        return self.match(url, resource_type, first_party_url).blocked

    def candidate_rules(self, url: str) -> list[tuple[int, FilterRule]]:
        """Every ``(global_order, rule)`` the index offers for a URL,
        both polarities.

        The reuse surface for :mod:`repro.staticlint.filterlint`: the
        probe analyzer only match-tests rules the index would offer,
        which is sound because offered candidates are a superset of
        true matches (the same guarantee ``match`` relies on). Global
        order is file order across lists — identical to the numbering
        filterlint assigns its own indexed rules.
        """
        lowered = url.lower()
        url_tokens = _URL_TOKEN_RE.findall(lowered)
        auth = authority_span(lowered)
        offered: dict[int, FilterRule] = {}
        for index in (self._blocks, self._exceptions):
            for bucket, _lane in index.buckets(lowered, url_tokens, auth):
                # An entry fans out to one sub-bucket per (type, party)
                # key it serves; dedup by global order.
                for sub in bucket.values():
                    for entry in sub:
                        offered.setdefault(entry[_E_ORDER], entry[_E_RULE])
        return sorted(offered.items())
