"""The filter matching engine.

Given a request (URL, resource type, first-party context), decide whether
the combined lists block it. Matching uses a token index: every rule is
sharded under the literal tokens its pattern requires, so a URL only
tries the rules whose tokens it actually contains, plus a small generic
bucket. This is the same design real blockers use and keeps the post-hoc
chain analysis (hundreds of thousands of URLs) fast.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.filters.rules import FilterList, FilterRule
from repro.net.domains import is_third_party
from repro.net.http import ResourceType
from repro.util.urls import parse_url

_URL_TOKEN_RE = re.compile(r"[a-z0-9]{3,}")


@dataclass
class EngineStats:
    """Always-on match telemetry, harvested by the obs layer.

    Candidate counts are *offered* candidates: when a token bucket (or
    the generic bucket) is reached, its full length is charged, even if
    the caller stops early on a hit — i.e. they measure index
    selectivity, not rules actually regex-tested.

    Attributes:
        matches: ``match()`` calls.
        blocked: Calls that ended blocked.
        exception_overrides: Calls where an exception rule rescued a
            request a blocking rule had matched.
        token_buckets: Token-index buckets reached.
        token_candidates: Rules offered from token buckets.
        generic_candidates: Rules offered from generic buckets.
    """

    matches: int = 0
    blocked: int = 0
    exception_overrides: int = 0
    token_buckets: int = 0
    token_candidates: int = 0
    generic_candidates: int = 0

    def as_counts(self) -> dict[str, int]:
        """The stats as a plain name→count mapping."""
        return {
            "matches": self.matches,
            "blocked": self.blocked,
            "exception_overrides": self.exception_overrides,
            "token_buckets": self.token_buckets,
            "token_candidates": self.token_candidates,
            "generic_candidates": self.generic_candidates,
        }

    def snapshot(self) -> "EngineStats":
        """A frozen copy, for before/after delta attribution."""
        return EngineStats(**self.as_counts())

    def delta_since(self, since: "EngineStats") -> dict[str, int]:
        """Per-field growth since an earlier :meth:`snapshot`.

        How the study runner attributes match telemetry to the crawl
        that caused it (``filters.by_crawl.*``) while the cumulative
        ``filters.*`` counters stay additive across crawls.
        """
        before = since.as_counts()
        return {
            key: value - before[key]
            for key, value in self.as_counts().items()
        }

    def merge(self, other: "EngineStats") -> None:
        """Fold another engine's stats in (all fields additive)."""
        self.matches += other.matches
        self.blocked += other.blocked
        self.exception_overrides += other.exception_overrides
        self.token_buckets += other.token_buckets
        self.token_candidates += other.token_candidates
        self.generic_candidates += other.generic_candidates


@dataclass(frozen=True)
class MatchResult:
    """Outcome of evaluating a request against the engine.

    Attributes:
        blocked: Final verdict after exception processing.
        rule: The blocking rule that matched, if any.
        exception_rule: The exception rule that rescued the request, if any.
        list_name: Name of the list contributing the decisive rule.
    """

    blocked: bool
    rule: FilterRule | None = None
    exception_rule: FilterRule | None = None
    list_name: str = ""

    @property
    def matched(self) -> bool:
        """Whether any blocking rule matched, regardless of exceptions."""
        return self.rule is not None


class _RuleIndex:
    """Token-sharded rule storage for one polarity (block or exception)."""

    def __init__(self) -> None:
        self._by_token: dict[str, list[tuple[FilterRule, str]]] = {}
        self._generic: list[tuple[FilterRule, str]] = []
        self.size = 0

    def add(self, rule: FilterRule, list_name: str) -> None:
        tokens = rule.index_tokens()
        self.size += 1
        if not tokens:
            self._generic.append((rule, list_name))
            return
        # Index under the longest token: fewest false candidates.
        token = max(tokens, key=len)
        self._by_token.setdefault(token, []).append((rule, list_name))

    def candidates(
        self, url_tokens: Sequence[str], stats: EngineStats | None = None
    ) -> Iterable[tuple[FilterRule, str]]:
        seen_buckets: set[int] = set()
        for token in url_tokens:
            bucket = self._by_token.get(token)
            if bucket is not None and id(bucket) not in seen_buckets:
                seen_buckets.add(id(bucket))
                if stats is not None:
                    stats.token_buckets += 1
                    stats.token_candidates += len(bucket)
                yield from bucket
        if stats is not None:
            stats.generic_candidates += len(self._generic)
        yield from self._generic


class FilterEngine:
    """Evaluates requests against one or more parsed filter lists."""

    def __init__(self, lists: Iterable[FilterList]) -> None:
        self.lists = list(lists)
        self.stats = EngineStats()
        self._blocks = _RuleIndex()
        self._exceptions = _RuleIndex()
        for filter_list in self.lists:
            for rule in filter_list.rules:
                index = self._exceptions if rule.is_exception else self._blocks
                index.add(rule, filter_list.name)

    @property
    def rule_count(self) -> int:
        """Total number of indexed rules across all lists."""
        return self._blocks.size + self._exceptions.size

    def match(
        self,
        url: str,
        resource_type: ResourceType,
        first_party_url: str,
    ) -> MatchResult:
        """Evaluate one request.

        Args:
            url: The request URL (http/https/ws/wss).
            resource_type: What kind of resource is being fetched. Pass
                :attr:`ResourceType.WEBSOCKET` for socket handshakes.
            first_party_url: Top-level page URL providing party context.

        Returns:
            The match verdict. ``blocked`` is True only when a blocking
            rule matches and no exception rule does.
        """
        stats = self.stats
        stats.matches += 1
        lowered = url.lower()
        url_tokens = _URL_TOKEN_RE.findall(lowered)
        third_party = bool(first_party_url) and is_third_party(url, first_party_url)
        first_party_host = parse_url(first_party_url).host if first_party_url else ""

        block_hit: tuple[FilterRule, str] | None = None
        for rule, list_name in self._blocks.candidates(url_tokens, stats):
            if rule.options.applies_to(resource_type, third_party, first_party_host):
                if rule.matches_url(url):
                    block_hit = (rule, list_name)
                    break
        if block_hit is None:
            return MatchResult(blocked=False)

        for rule, list_name in self._exceptions.candidates(url_tokens, stats):
            if rule.options.applies_to(resource_type, third_party, first_party_host):
                if rule.matches_url(url):
                    stats.exception_overrides += 1
                    return MatchResult(
                        blocked=False,
                        rule=block_hit[0],
                        exception_rule=rule,
                        list_name=list_name,
                    )
        stats.blocked += 1
        return MatchResult(blocked=True, rule=block_hit[0], list_name=block_hit[1])

    def would_block(
        self, url: str, resource_type: ResourceType, first_party_url: str
    ) -> bool:
        """Shorthand for ``match(...).blocked``."""
        return self.match(url, resource_type, first_party_url).blocked
