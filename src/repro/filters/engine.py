"""The filter matching engine.

Given a request (URL, resource type, first-party context), decide whether
the combined lists block it. Matching uses a token index: every rule is
sharded under one of the literal tokens its pattern *guarantees* in any
matching URL (see :meth:`FilterRule.index_tokens` for the reliability
rule), so a URL only tries the rules whose tokens it actually contains,
plus a small generic bucket. This is the same design real blockers use
and keeps the post-hoc chain analysis (hundreds of thousands of URLs)
fast.

Three matchers share one semantics:

* :func:`linear_match` — the executable specification: a brute-force
  scan of every rule in list order. Slow, obviously correct.
* :class:`FilterEngine` — this module's interpreted token index.
* :class:`repro.filters.compiled.CompiledFilterEngine` — the compiled
  index for EasyList-scale lists (host lane, bit-mask pre-filters).

All three return the same verdict *and* the same decisive rules: the
blocking rule reported is always the first applicable match in list
order, and likewise for the rescuing exception. The equivalence is
pinned by the hypothesis property suite in
``tests/filters/test_equivalence.py``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, cast

from repro.filters.rules import FilterList, FilterRule
from repro.net.domains import is_third_party
from repro.net.http import ResourceType
from repro.util.urls import parse_url

_URL_TOKEN_RE = re.compile(r"[a-z0-9]{3,}")

#: Sentinel default for ``match(stats=...)``: record telemetry into the
#: engine-owned ``self.stats`` (the historical single-threaded
#: behaviour). Callers sharing one engine across threads/workers must
#: instead pass an ``EngineStats`` they own — or ``None`` to skip
#: recording — so ``match`` never mutates shared state (the
#: ``repro.serve`` snapshot contract).
OWN_STATS: "EngineStats" = cast("EngineStats", object())

# One indexed rule: (global order, rule, owning list name). Global order
# is file order across lists — the tiebreak that makes the decisive
# rule canonical across all three matchers.
IndexEntry = tuple[int, FilterRule, str]


@dataclass
class EngineStats:
    """Always-on match telemetry, harvested by the obs layer.

    Candidate counts are *offered* candidates: when a token bucket (or
    the generic bucket) is reached, its full length is charged, even if
    the caller stops early on a hit — i.e. they measure index
    selectivity, not rules actually regex-tested.

    The ``token_buckets`` / ``token_candidates`` / ``generic_candidates``
    fields are the historical combined counters (kept for backward
    compatibility); since PR 9 they are exact sums of the per-polarity
    ``block_*`` / ``exception_*`` fields, which keep block-index
    selectivity from being conflated with exception-index selectivity
    (the exception index is only consulted after a block hit, so its
    offer profile is very different).

    Attributes:
        matches: ``match()`` calls.
        blocked: Calls that ended blocked.
        exception_overrides: Calls where an exception rule rescued a
            request a blocking rule had matched.
        token_buckets: Token-index buckets reached (both polarities).
        token_candidates: Rules offered from token buckets (both).
        generic_candidates: Rules offered from generic buckets (both).
        block_token_buckets: Token buckets reached in the block index.
        block_token_candidates: Rules offered from block token buckets.
        block_generic_candidates: Rules offered from the block generic
            bucket.
        exception_token_buckets: Token buckets reached in the exception
            index.
        exception_token_candidates: Rules offered from exception token
            buckets.
        exception_generic_candidates: Rules offered from the exception
            generic bucket.
        host_candidates: Rules offered from the compiled engine's
            hostname lane (both polarities; always 0 on the interpreted
            engine, which has no lane). Not folded into the combined
            token/generic fields so their historical meaning is
            preserved.
    """

    matches: int = 0
    blocked: int = 0
    exception_overrides: int = 0
    token_buckets: int = 0
    token_candidates: int = 0
    generic_candidates: int = 0
    block_token_buckets: int = 0
    block_token_candidates: int = 0
    block_generic_candidates: int = 0
    exception_token_buckets: int = 0
    exception_token_candidates: int = 0
    exception_generic_candidates: int = 0
    host_candidates: int = 0

    def as_counts(self) -> dict[str, int]:
        """The stats as a plain name→count mapping."""
        return {
            "matches": self.matches,
            "blocked": self.blocked,
            "exception_overrides": self.exception_overrides,
            "token_buckets": self.token_buckets,
            "token_candidates": self.token_candidates,
            "generic_candidates": self.generic_candidates,
            "block_token_buckets": self.block_token_buckets,
            "block_token_candidates": self.block_token_candidates,
            "block_generic_candidates": self.block_generic_candidates,
            "exception_token_buckets": self.exception_token_buckets,
            "exception_token_candidates": self.exception_token_candidates,
            "exception_generic_candidates": self.exception_generic_candidates,
            "host_candidates": self.host_candidates,
        }

    def snapshot(self) -> "EngineStats":
        """A frozen copy, for before/after delta attribution."""
        return EngineStats(**self.as_counts())

    def delta_since(self, since: "EngineStats") -> dict[str, int]:
        """Per-field growth since an earlier :meth:`snapshot`.

        How the study runner attributes match telemetry to the crawl
        that caused it (``filters.by_crawl.*``) while the cumulative
        ``filters.*`` counters stay additive across crawls.
        """
        before = since.as_counts()
        return {
            key: value - before[key]
            for key, value in self.as_counts().items()
        }

    def merge(self, other: "EngineStats") -> None:
        """Fold another engine's stats in (all fields additive)."""
        for key, value in other.as_counts().items():
            setattr(self, key, getattr(self, key) + value)


@dataclass(frozen=True)
class MatchResult:
    """Outcome of evaluating a request against the engine.

    Attributes:
        blocked: Final verdict after exception processing.
        rule: The blocking rule that matched, if any — always the
            *first* applicable match in list order (canonical across
            the interpreted, compiled, and linear matchers).
        exception_rule: The exception rule that rescued the request, if
            any (same first-in-list-order contract).
        list_name: Name of the list contributing the decisive rule.
    """

    blocked: bool
    rule: FilterRule | None = None
    exception_rule: FilterRule | None = None
    list_name: str = ""

    @property
    def matched(self) -> bool:
        """Whether any blocking rule matched, regardless of exceptions."""
        return self.rule is not None


class _RuleIndex:
    """Token-sharded rule storage for one polarity (block or exception).

    Buckets hold entries in ascending global order (insertion order is
    list order), so a per-bucket scan can stop as soon as entries can
    no longer beat the best match found in earlier buckets.
    """

    def __init__(self, exception: bool) -> None:
        self._exception = exception
        self._by_token: dict[str, list[IndexEntry]] = {}
        self._generic: list[IndexEntry] = []
        self.size = 0

    def add(self, order: int, rule: FilterRule, list_name: str) -> None:
        tokens = rule.index_tokens()
        self.size += 1
        entry = (order, rule, list_name)
        if not tokens:
            # No reliable token: the rule must be offered for every URL.
            # (Indexing under an unreliable token here is exactly the
            # false-negative bug this engine used to have.)
            self._generic.append(entry)
            return
        # Index under the longest reliable token: fewest false
        # candidates without global bucket statistics (the compiled
        # engine improves on this with least-loaded selection).
        token = max(tokens, key=len)
        self._by_token.setdefault(token, []).append(entry)

    def buckets(
        self, url_tokens: Sequence[str], stats: EngineStats | None = None
    ) -> Iterator[list[IndexEntry]]:
        """Order-sorted candidate buckets for a tokenized URL."""
        seen: set[str] = set()
        for token in url_tokens:
            if token in seen:
                continue
            seen.add(token)
            bucket = self._by_token.get(token)
            if bucket is not None:
                if stats is not None:
                    stats.token_buckets += 1
                    stats.token_candidates += len(bucket)
                    if self._exception:
                        stats.exception_token_buckets += 1
                        stats.exception_token_candidates += len(bucket)
                    else:
                        stats.block_token_buckets += 1
                        stats.block_token_candidates += len(bucket)
                yield bucket
        if stats is not None:
            stats.generic_candidates += len(self._generic)
            if self._exception:
                stats.exception_generic_candidates += len(self._generic)
            else:
                stats.block_generic_candidates += len(self._generic)
        if self._generic:
            yield self._generic

    def best_match(
        self,
        url: str,
        url_tokens: Sequence[str],
        resource_type: ResourceType,
        third_party: bool,
        first_party_host: str,
        stats: EngineStats | None = None,
    ) -> IndexEntry | None:
        """The lowest-order applicable matching entry, or ``None``."""
        best: IndexEntry | None = None
        for bucket in self.buckets(url_tokens, stats):
            for entry in bucket:
                if best is not None and entry[0] >= best[0]:
                    break  # bucket is order-sorted; no later entry wins
                rule = entry[1]
                if rule.options.applies_to(
                    resource_type, third_party, first_party_host
                ) and rule.matches_url(url):
                    best = entry
                    break
        return best


class FilterEngine:
    """Evaluates requests against one or more parsed filter lists."""

    def __init__(self, lists: Iterable[FilterList]) -> None:
        self.lists = list(lists)
        self.stats = EngineStats()
        self._blocks = _RuleIndex(exception=False)
        self._exceptions = _RuleIndex(exception=True)
        order = 0
        for filter_list in self.lists:
            for rule in filter_list.rules:
                index = self._exceptions if rule.is_exception else self._blocks
                index.add(order, rule, filter_list.name)
                order += 1

    @property
    def rule_count(self) -> int:
        """Total number of indexed rules across all lists."""
        return self._blocks.size + self._exceptions.size

    def match(
        self,
        url: str,
        resource_type: ResourceType,
        first_party_url: str,
        stats: EngineStats | None = OWN_STATS,
    ) -> MatchResult:
        """Evaluate one request.

        Args:
            url: The request URL (http/https/ws/wss).
            resource_type: What kind of resource is being fetched. Pass
                :attr:`ResourceType.WEBSOCKET` for socket handshakes.
            first_party_url: Top-level page URL providing party context.
            stats: Where to record match telemetry. Defaults to the
                engine-owned ``self.stats``; pass a caller-owned
                :class:`EngineStats` (merge deltas yourself) or ``None``
                (no recording) when the engine is shared across threads
                — with either, ``match`` is read-only on the engine.

        Returns:
            The match verdict. ``blocked`` is True only when a blocking
            rule matches and no exception rule does.
        """
        if stats is OWN_STATS:
            stats = self.stats
        if stats is not None:
            stats.matches += 1
        lowered = url.lower()
        url_tokens = _URL_TOKEN_RE.findall(lowered)
        third_party = bool(first_party_url) and is_third_party(url, first_party_url)
        first_party_host = parse_url(first_party_url).host if first_party_url else ""

        block_hit = self._blocks.best_match(
            url, url_tokens, resource_type, third_party, first_party_host, stats
        )
        if block_hit is None:
            return MatchResult(blocked=False)

        exception_hit = self._exceptions.best_match(
            url, url_tokens, resource_type, third_party, first_party_host, stats
        )
        if exception_hit is not None:
            if stats is not None:
                stats.exception_overrides += 1
            return MatchResult(
                blocked=False,
                rule=block_hit[1],
                exception_rule=exception_hit[1],
                list_name=exception_hit[2],
            )
        if stats is not None:
            stats.blocked += 1
        return MatchResult(blocked=True, rule=block_hit[1], list_name=block_hit[2])

    def would_block(
        self, url: str, resource_type: ResourceType, first_party_url: str
    ) -> bool:
        """Shorthand for ``match(...).blocked``."""
        return self.match(url, resource_type, first_party_url).blocked


def linear_match(
    lists: Sequence[FilterList],
    url: str,
    resource_type: ResourceType,
    first_party_url: str,
) -> MatchResult:
    """Brute-force reference matcher: scan every rule in list order.

    The executable specification the indexed engines are property-tested
    against — no index, no pre-filters, nothing to get wrong. O(rules)
    per call, so only tests and audits should use it.
    """
    third_party = bool(first_party_url) and is_third_party(url, first_party_url)
    first_party_host = parse_url(first_party_url).host if first_party_url else ""

    block_hit: tuple[FilterRule, str] | None = None
    for filter_list in lists:
        for rule in filter_list.rules:
            if rule.is_exception:
                continue
            if rule.options.applies_to(
                resource_type, third_party, first_party_host
            ) and rule.matches_url(url):
                block_hit = (rule, filter_list.name)
                break
        if block_hit is not None:
            break
    if block_hit is None:
        return MatchResult(blocked=False)

    for filter_list in lists:
        for rule in filter_list.rules:
            if not rule.is_exception:
                continue
            if rule.options.applies_to(
                resource_type, third_party, first_party_host
            ) and rule.matches_url(url):
                return MatchResult(
                    blocked=False,
                    rule=block_hit[0],
                    exception_rule=rule,
                    list_name=filter_list.name,
                )
    return MatchResult(blocked=True, rule=block_hit[0], list_name=block_hit[1])
