"""Parser for Adblock-Plus filter list text.

Handles the network-rule subset of the syntax plus enough of the rest
(comments, headers, element-hiding) to consume real list files without
choking. Unsupported options mark a rule as skipped rather than silently
misinterpreting it — the same conservative stance real blockers take.
"""

from __future__ import annotations

from repro.filters.rules import (
    ALL_TYPES,
    DEFAULT_TYPES,
    TYPE_OPTION_NAMES,
    FilterList,
    FilterRule,
    RuleOptions,
)
from repro.net.http import ResourceType


class FilterParseError(ValueError):
    """Raised for syntactically invalid filter rules in strict mode."""


# Options we recognize but that do not constrain our simulated requests.
_IGNORABLE_OPTIONS = frozenset(
    {"popup", "genericblock", "generichide", "elemhide", "object", "object-subrequest"}
)

_HIDING_MARKERS = ("##", "#@#", "#?#", "#$#")


def _parse_options(option_text: str) -> RuleOptions | None:
    """Parse the ``$opt1,opt2=...`` suffix; ``None`` = unsupported rule."""
    include_types: set[ResourceType] = set()
    exclude_types: set[ResourceType] = set()
    third_party: bool | None = None
    include_domains: list[str] = []
    exclude_domains: list[str] = []
    match_case = False
    for raw_option in option_text.split(","):
        option = raw_option.strip()
        if not option:
            continue
        lowered = option.lower()
        if lowered == "match-case":
            match_case = True
        elif lowered == "third-party":
            third_party = True
        elif lowered == "~third-party":
            third_party = False
        elif lowered in TYPE_OPTION_NAMES:
            include_types.add(TYPE_OPTION_NAMES[lowered])
        elif lowered.startswith("~") and lowered[1:] in TYPE_OPTION_NAMES:
            exclude_types.add(TYPE_OPTION_NAMES[lowered[1:]])
        elif lowered.startswith("domain="):
            # Entries keep their full hostname: ``~blog.news.com`` must
            # stay more specific than ``news.com`` for ABP's
            # most-specific-entry-wins resolution to work.
            for entry in option[len("domain=") :].split("|"):
                entry = entry.strip().lower()
                if not entry or entry == "~":
                    continue
                if entry.startswith("~"):
                    exclude_domains.append(entry[1:])
                else:
                    include_domains.append(entry)
        elif lowered in _IGNORABLE_OPTIONS:
            continue
        else:
            return None  # Unknown option: skip the rule, like real blockers.
    if include_types:
        resource_types = frozenset(include_types)
    elif exclude_types:
        resource_types = frozenset(ALL_TYPES - exclude_types)
    else:
        resource_types = DEFAULT_TYPES
    return RuleOptions(
        resource_types=resource_types,
        third_party=third_party,
        include_domains=tuple(sorted(set(include_domains))),
        exclude_domains=tuple(sorted(set(exclude_domains))),
        match_case=match_case,
    )


def parse_filter_line(line: str) -> FilterRule | None:
    """Parse one line of a filter list.

    Returns:
        The parsed network rule, or ``None`` for blanks, comments,
        headers, element-hiding rules, and rules with unsupported
        options.
    """
    text = line.strip()
    if not text or text.startswith("!") or text.startswith("["):
        return None
    if any(marker in text for marker in _HIDING_MARKERS):
        return None
    is_exception = text.startswith("@@")
    body = text[2:] if is_exception else text
    if not body:
        return None
    pattern, sep, option_text = _split_options(body)
    options = _parse_options(option_text) if sep else RuleOptions()
    if options is None:
        return None
    if not pattern:
        if not sep:
            return None
        # Options-only rules (``@@$document,domain=x`` and friends)
        # constrain by context alone: the pattern matches everything.
        pattern = "*"
    if any(ch.isspace() for ch in pattern):
        return None  # URLs cannot contain whitespace; the rule is junk.
    return FilterRule(
        raw=text, pattern=pattern, is_exception=is_exception, options=options
    )


def _split_options(body: str) -> tuple[str, bool, str]:
    """Split ``pattern$options`` at the last ``$`` that starts options.

    A ``$`` inside a URL pattern is rare but legal; ABP treats the last
    ``$`` whose suffix looks like an option list as the separator. A
    leading ``$`` (empty pattern) is a legal options-only rule.
    """
    idx = body.rfind("$")
    if idx < 0 or idx == len(body) - 1:
        return body, False, ""
    return body[:idx], True, body[idx + 1 :]


def parse_filter_list(name: str, text: str, strict: bool = False) -> FilterList:
    """Parse a whole filter list file into a :class:`FilterList`.

    Args:
        name: List name for reporting.
        text: Raw file contents.
        strict: When True, raise on lines that are neither parseable
            rules nor recognized non-rules.
    """
    parsed = FilterList(name=name)
    text = text.removeprefix("\ufeff")  # strip a UTF-8 BOM if present
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("!") or stripped.startswith("["):
            continue
        if any(marker in stripped for marker in _HIDING_MARKERS):
            parsed.hiding_rule_count += 1
            continue
        rule = parse_filter_line(stripped)
        if rule is None:
            if strict:
                raise FilterParseError(f"unsupported filter rule: {stripped!r}")
            parsed.skipped_lines.append(stripped)
            continue
        rule.line = lineno
        parsed.rules.append(rule)
    return parsed
