"""Loading filter lists from disk.

The bundled synthetic lists cover the synthetic ecosystem, but the
engine parses genuine ABP syntax — this loader builds an engine from
real EasyList/EasyPrivacy files for users who have them.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.filters.compiled import CompiledFilterEngine
from repro.filters.engine import FilterEngine
from repro.filters.parser import parse_filter_list
from repro.filters.rules import FilterList


def load_filter_file(path: str | Path, name: str | None = None) -> FilterList:
    """Parse one filter-list file (UTF-8; BOM tolerated)."""
    path = Path(path)
    text = path.read_text(encoding="utf-8-sig")
    return parse_filter_list(name or path.stem, text)


def load_filter_engine(
    paths: Iterable[str | Path], *, compiled: bool = True
) -> CompiledFilterEngine | FilterEngine:
    """Build an engine from one or more filter-list files.

    Compiled by default — at real-EasyList scale (tens of thousands of
    rules) the compiled index is the only engine with sane per-match
    cost. Pass ``compiled=False`` for the interpreted reference.
    """
    lists = [load_filter_file(path) for path in paths]
    if not lists:
        raise ValueError("no filter lists given")
    if compiled:
        return CompiledFilterEngine(lists)
    return FilterEngine(lists)
