"""Adblock-Plus-compatible filter list engine.

Implements the network-blocking subset of the ABP filter syntax that
EasyList and EasyPrivacy rely on: ``||`` / ``|`` anchors, ``*``
wildcards, ``^`` separators, ``@@`` exception rules, and the
``$script/$image/$websocket/$third-party/$domain=`` option vocabulary.
Element-hiding rules are recognized and skipped (they do not affect
network measurements).

The engine serves two distinct roles from the paper:

* tagging resources as A&A vs non-A&A to derive the A&A domain set
  (§3.2), and
* the post-hoc "would this chain have been blocked?" analysis (§4.2).
"""

from repro.filters.compiled import CompiledFilterEngine
from repro.filters.engine import (
    OWN_STATS,
    EngineStats,
    FilterEngine,
    MatchResult,
    linear_match,
)
from repro.filters.loader import load_filter_engine, load_filter_file
from repro.filters.parser import FilterParseError, parse_filter_line, parse_filter_list
from repro.filters.rules import (
    DEFAULT_TYPES,
    SCHEME_RE,
    FilterList,
    FilterRule,
    RuleOptions,
)

__all__ = [
    "CompiledFilterEngine",
    "EngineStats",
    "FilterEngine",
    "MatchResult",
    "OWN_STATS",
    "linear_match",
    "FilterParseError",
    "parse_filter_line",
    "parse_filter_list",
    "load_filter_engine",
    "load_filter_file",
    "FilterRule",
    "FilterList",
    "RuleOptions",
    "DEFAULT_TYPES",
    "SCHEME_RE",
]
