"""Filter rule data model.

A parsed rule carries its activation options (resource types, party
constraint, domain constraints) and a compiled regular expression for the
URL pattern. Compilation happens lazily so list parsing stays fast even
for rules that never get near the hot path.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.net.domains import registrable_domain
from repro.net.http import ResourceType

# Option keywords that select resource types, mapped onto our enum.
TYPE_OPTION_NAMES: dict[str, ResourceType] = {
    "script": ResourceType.SCRIPT,
    "image": ResourceType.IMAGE,
    "stylesheet": ResourceType.STYLESHEET,
    "xmlhttprequest": ResourceType.XHR,
    "websocket": ResourceType.WEBSOCKET,
    "font": ResourceType.FONT,
    "media": ResourceType.MEDIA,
    "ping": ResourceType.PING,
    "subdocument": ResourceType.SUB_FRAME,
    "document": ResourceType.MAIN_FRAME,
    "other": ResourceType.OTHER,
}

ALL_TYPES: frozenset[ResourceType] = frozenset(ResourceType)

# Types implied by a rule with no type options, per ABP semantics:
# everything except main_frame documents (those need an explicit
# ``$document``).
DEFAULT_TYPES: frozenset[ResourceType] = frozenset(
    t for t in ResourceType if t != ResourceType.MAIN_FRAME
)


@dataclass(frozen=True)
class RuleOptions:
    """Activation constraints parsed from the ``$...`` suffix.

    Attributes:
        resource_types: Types this rule applies to.
        third_party: ``True`` = only third-party requests, ``False`` =
            only first-party, ``None`` = either.
        include_domains: If non-empty, the first-party host must be one
            of these domains or a subdomain of one. Entries keep their
            full hostname (``blog.news.com`` stays distinct from
            ``news.com``), per ABP's ``$domain=`` semantics.
        exclude_domains: First-party domains (and their subdomains) on
            which the rule is inert. When an exclude entry is more
            specific than a matching include entry, the exclude wins —
            this is what makes ``$domain=news.com|~blog.news.com``
            meaningful.
        match_case: Whether the pattern is case-sensitive.
    """

    resource_types: frozenset[ResourceType] = DEFAULT_TYPES
    third_party: bool | None = None
    include_domains: tuple[str, ...] = ()
    exclude_domains: tuple[str, ...] = ()
    match_case: bool = False

    def applies_to(
        self,
        resource_type: ResourceType,
        is_third_party_request: bool,
        first_party_host: str,
    ) -> bool:
        """Whether the request context satisfies every constraint."""
        if resource_type not in self.resource_types:
            return False
        if self.third_party is not None and is_third_party_request != self.third_party:
            return False
        if self.include_domains or self.exclude_domains:
            host = first_party_host.lower() if first_party_host else ""
            return self._domain_constraint_allows(host)
        return True

    def domains_allow(self, first_party_host: str) -> bool:
        """Just the ``$domain=`` constraint (the compiled engine's
        pre-filter calls this after its own type/party bit checks)."""
        if not (self.include_domains or self.exclude_domains):
            return True
        host = first_party_host.lower() if first_party_host else ""
        return self._domain_constraint_allows(host)

    def _domain_constraint_allows(self, host: str) -> bool:
        """ABP ``$domain=`` resolution: the most specific entry wins."""
        best_length = -1
        best_is_include = False
        for entry in self.include_domains:
            if _host_within(host, entry) and len(entry) > best_length:
                best_length, best_is_include = len(entry), True
        for entry in self.exclude_domains:
            if _host_within(host, entry) and len(entry) >= best_length:
                # On equal specificity the exclusion wins (ABP's tilde
                # entries are carve-outs from broader includes).
                if len(entry) > best_length or best_is_include:
                    best_length, best_is_include = len(entry), False
        if self.include_domains:
            return best_length >= 0 and best_is_include
        return best_length < 0


def _host_within(host: str, entry: str) -> bool:
    """Whether ``host`` is ``entry`` or one of its subdomains."""
    return host == entry or host.endswith("." + entry)


# Characters that terminate the literal host span of a ``||`` rule body:
# wildcards/anchors plus the first char that leaves the authority.
_HOST_SPAN_BREAKERS = frozenset("*^|/:?")

# A URL scheme as the ``||`` prefix accepts it, matched against the
# lowered URL when extracting the authority span.
SCHEME_RE = re.compile(r"[a-z][a-z0-9+.-]*://")


def host_span_length(body: str) -> int:
    """Length of the leading literal host span of a ``||`` rule body."""
    for i, ch in enumerate(body):
        if ch in _HOST_SPAN_BREAKERS:
            return i
    return len(body)


def pattern_to_regex(pattern: str) -> str:
    """Translate an ABP URL pattern to a Python regex (ABP reference rules).

    * ``||`` start anchor: beginning of the host portion of the URL.
    * ``|`` at the start / end: URL start / end.
    * ``*``: any character run (including none).
    * ``^``: a separator — any char that is not alphanumeric or one of
      ``_ - . %``, or the end of the URL.

    The scheme and host region of anchored patterns is wrapped in a
    scoped ``(?i:...)`` group: ABP's ``$match-case`` applies to the
    *pattern*, while schemes and hosts are case-normalized by browsers
    before matching — so ``||DoubleClick.net^$match-case`` must still
    match ``HTTP://x.doubleclick.net/``. Without the group, compiling
    under ``match_case`` (no ``re.IGNORECASE``) silently broke the
    ``[a-z][a-z0-9+.-]*://`` scheme prefix for upper-case scheme URLs.
    Unanchored patterns carry no scheme/host region of their own and
    are left untouched.
    """
    if pattern.startswith("||"):
        body = pattern[2:]
        split = host_span_length(body)
        prefix = (
            r"(?i:^[a-z][a-z0-9+.-]*://(?:[^/?#]*\.)?"
            + re.escape(body[:split].lower())
            + r")"
        )
        body = body[split:]
    elif pattern.startswith("|"):
        body = pattern[1:]
        scheme = SCHEME_RE.match(body.lower())
        if scheme is not None:
            split = scheme.end() + host_span_length(body[scheme.end():])
            prefix = "(?i:^" + re.escape(body[:split].lower()) + ")"
            body = body[split:]
        else:
            prefix = "^"
    else:
        prefix = ""
        body = pattern
    if body.endswith("|"):
        suffix = "$"
        body = body[:-1]
    else:
        suffix = ""
    out: list[str] = []
    for ch in body:
        if ch == "*":
            out.append(".*")
        elif ch == "^":
            out.append(r"(?:[^a-zA-Z0-9_\-.%]|$)")
        else:
            out.append(re.escape(ch))
    return prefix + "".join(out) + suffix


_TOKEN_RE = re.compile(r"[a-z0-9]{3,}")
# The alphabet of URL index tokens (maximal runs of these make tokens).
_TOKEN_CHARS = frozenset("abcdefghijklmnopqrstuvwxyz0123456789")


@dataclass
class FilterRule:
    """One parsed network-filter rule.

    Attributes:
        raw: The original filter text, e.g. ``||doubleclick.net^$third-party``.
        pattern: The URL pattern portion (anchors intact, options stripped).
        is_exception: ``True`` for ``@@`` exception (whitelist) rules.
        options: Parsed activation options.
        line: 1-based line number in the source list file (0 for rules
            built outside :func:`~repro.filters.parser.parse_filter_list`).
    """

    raw: str
    pattern: str
    is_exception: bool
    options: RuleOptions = field(default_factory=RuleOptions)
    line: int = field(default=0, compare=False)
    _regex: re.Pattern[str] | None = field(default=None, repr=False, compare=False)

    @property
    def regex(self) -> re.Pattern[str]:
        """The compiled URL-matching regex (compiled on first use)."""
        if self._regex is None:
            flags = 0 if self.options.match_case else re.IGNORECASE
            self._regex = re.compile(pattern_to_regex(self.pattern), flags)
        return self._regex

    def matches_url(self, url: str) -> bool:
        """Whether the URL pattern matches (context checked separately)."""
        return self.regex.search(url) is not None

    def anchor_domain(self) -> str | None:
        """For ``||domain...`` rules, the anchoring registrable domain.

        The host chars are lowered before the public-suffix lookup:
        hostnames are case-insensitive, and ``||DoubleClick.net^`` must
        anchor to ``doubleclick.net``, not a case-mismatched string the
        rest of the pipeline (which works on lowered hosts) never sees.
        """
        if not self.pattern.startswith("||"):
            return None
        body = self.pattern[2:]
        host_chars: list[str] = []
        for ch in body:
            if ch.isalnum() or ch in ".-":
                host_chars.append(ch)
            else:
                break
        host = "".join(host_chars).strip(".").lower()
        if not host or "." not in host:
            return None
        return registrable_domain(host)

    def host_anchor_literal(self) -> str:
        """The lowered literal host span of a ``||`` rule ('' otherwise).

        The span runs from the anchor to the first wildcard/anchor/
        authority-leaving char — the part of the pattern the hostname
        index lane can key on. Unlike :meth:`anchor_domain` it is the
        raw span (no public-suffix collapsing) and is non-empty for
        hosts without a dot.
        """
        if not self.pattern.startswith("||"):
            return ""
        body = self.pattern[2:]
        return body[: host_span_length(body)].lower()

    def token_details(self) -> list[tuple[str, bool]]:
        """Every literal token of the pattern with its reliability bit.

        A token is a maximal ≥3-char ``[a-z0-9]`` run inside the
        pattern's literal text (lowered). It is *reliable* — guaranteed
        to appear as a maximal alphanumeric run in every matching URL,
        and therefore safe to index the rule under — only when both of
        its edges are bounded:

        * by a literal non-alphanumeric char (``/``, ``.``, ``-``, …):
          the matching URL contains that char right next to the token;
        * by ``^``: the separator class excludes alphanumerics, and a
          ``^`` adjacent to a token can only have matched a real
          separator char or the URL end;
        * by an anchored pattern edge: ``|`` is the URL start/end, and
          the ``||`` prefix always puts ``://`` or ``.`` before the
          first host char.

        A token abutting ``*`` or an *unanchored* pattern edge is
        unreliable: the neighboring URL text may extend the
        alphanumeric run, so the URL tokenizer (which emits only
        maximal runs) never produces the token and an index keyed on it
        silently drops matches — ``/ads*banner`` indexed under
        ``banner`` is never offered for ``/adsbanner123``.
        """
        pattern = self.pattern
        if pattern.startswith("||"):
            body = pattern[2:]
            left_anchored = True
        elif pattern.startswith("|"):
            body = pattern[1:]
            left_anchored = True
        else:
            body = pattern
            left_anchored = False
        if body.endswith("|"):
            body = body[:-1]
            right_anchored = True
        else:
            right_anchored = False
        lowered = body.lower()
        details: list[tuple[str, bool]] = []
        i, n = 0, len(lowered)
        while i < n:
            if lowered[i] not in _TOKEN_CHARS:
                i += 1
                continue
            j = i
            while j < n and lowered[j] in _TOKEN_CHARS:
                j += 1
            if j - i >= 3:
                left_ok = left_anchored if i == 0 else lowered[i - 1] != "*"
                right_ok = right_anchored if j == n else lowered[j] != "*"
                details.append((lowered[i:j], left_ok and right_ok))
            i = j
        return details

    def index_tokens(self) -> list[str]:
        """Reliable literal tokens that must appear in any matching URL.

        Used by the matchers to shard rules: a rule is only tried
        against URLs containing one of its tokens, so only tokens whose
        :meth:`token_details` reliability bit is set may be returned —
        indexing under an unreliable token causes silent false
        negatives (the PR-9 token-index bug).
        """
        return [token for token, reliable in self.token_details() if reliable]


@dataclass
class FilterList:
    """A named collection of parsed rules (one EasyList, one EasyPrivacy…).

    Attributes:
        name: List name, e.g. ``"easylist"``.
        rules: Network rules in file order.
        hiding_rule_count: Count of element-hiding rules that were
            recognized and skipped.
        skipped_lines: Unparseable or unsupported lines, for diagnostics.
    """

    name: str
    rules: list[FilterRule] = field(default_factory=list)
    hiding_rule_count: int = 0
    skipped_lines: list[str] = field(default_factory=list)

    @property
    def block_rules(self) -> list[FilterRule]:
        """Blocking (non-exception) rules."""
        return [r for r in self.rules if not r.is_exception]

    @property
    def exception_rules(self) -> list[FilterRule]:
        """``@@`` exception rules."""
        return [r for r in self.rules if r.is_exception]

    def __len__(self) -> int:
        return len(self.rules)
