"""Filter rule data model.

A parsed rule carries its activation options (resource types, party
constraint, domain constraints) and a compiled regular expression for the
URL pattern. Compilation happens lazily so list parsing stays fast even
for rules that never get near the hot path.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.net.domains import registrable_domain
from repro.net.http import ResourceType

# Option keywords that select resource types, mapped onto our enum.
TYPE_OPTION_NAMES: dict[str, ResourceType] = {
    "script": ResourceType.SCRIPT,
    "image": ResourceType.IMAGE,
    "stylesheet": ResourceType.STYLESHEET,
    "xmlhttprequest": ResourceType.XHR,
    "websocket": ResourceType.WEBSOCKET,
    "font": ResourceType.FONT,
    "media": ResourceType.MEDIA,
    "ping": ResourceType.PING,
    "subdocument": ResourceType.SUB_FRAME,
    "document": ResourceType.MAIN_FRAME,
    "other": ResourceType.OTHER,
}

ALL_TYPES: frozenset[ResourceType] = frozenset(ResourceType)

# Types implied by a rule with no type options, per ABP semantics:
# everything except main_frame documents (those need an explicit
# ``$document``).
DEFAULT_TYPES: frozenset[ResourceType] = frozenset(
    t for t in ResourceType if t != ResourceType.MAIN_FRAME
)


@dataclass(frozen=True)
class RuleOptions:
    """Activation constraints parsed from the ``$...`` suffix.

    Attributes:
        resource_types: Types this rule applies to.
        third_party: ``True`` = only third-party requests, ``False`` =
            only first-party, ``None`` = either.
        include_domains: If non-empty, the first-party host must be one
            of these domains or a subdomain of one. Entries keep their
            full hostname (``blog.news.com`` stays distinct from
            ``news.com``), per ABP's ``$domain=`` semantics.
        exclude_domains: First-party domains (and their subdomains) on
            which the rule is inert. When an exclude entry is more
            specific than a matching include entry, the exclude wins —
            this is what makes ``$domain=news.com|~blog.news.com``
            meaningful.
        match_case: Whether the pattern is case-sensitive.
    """

    resource_types: frozenset[ResourceType] = DEFAULT_TYPES
    third_party: bool | None = None
    include_domains: tuple[str, ...] = ()
    exclude_domains: tuple[str, ...] = ()
    match_case: bool = False

    def applies_to(
        self,
        resource_type: ResourceType,
        is_third_party_request: bool,
        first_party_host: str,
    ) -> bool:
        """Whether the request context satisfies every constraint."""
        if resource_type not in self.resource_types:
            return False
        if self.third_party is not None and is_third_party_request != self.third_party:
            return False
        if self.include_domains or self.exclude_domains:
            host = first_party_host.lower() if first_party_host else ""
            return self._domain_constraint_allows(host)
        return True

    def _domain_constraint_allows(self, host: str) -> bool:
        """ABP ``$domain=`` resolution: the most specific entry wins."""
        best_length = -1
        best_is_include = False
        for entry in self.include_domains:
            if _host_within(host, entry) and len(entry) > best_length:
                best_length, best_is_include = len(entry), True
        for entry in self.exclude_domains:
            if _host_within(host, entry) and len(entry) >= best_length:
                # On equal specificity the exclusion wins (ABP's tilde
                # entries are carve-outs from broader includes).
                if len(entry) > best_length or best_is_include:
                    best_length, best_is_include = len(entry), False
        if self.include_domains:
            return best_length >= 0 and best_is_include
        return best_length < 0


def _host_within(host: str, entry: str) -> bool:
    """Whether ``host`` is ``entry`` or one of its subdomains."""
    return host == entry or host.endswith("." + entry)


def pattern_to_regex(pattern: str) -> str:
    """Translate an ABP URL pattern to a Python regex (ABP reference rules).

    * ``||`` start anchor: beginning of the host portion of the URL.
    * ``|`` at the start / end: URL start / end.
    * ``*``: any character run (including none).
    * ``^``: a separator — any char that is not alphanumeric or one of
      ``_ - . %``, or the end of the URL.
    """
    if pattern.startswith("||"):
        prefix = r"^[a-z][a-z0-9+.-]*://(?:[^/?#]*\.)?"
        body = pattern[2:]
    elif pattern.startswith("|"):
        prefix = "^"
        body = pattern[1:]
    else:
        prefix = ""
        body = pattern
    if body.endswith("|"):
        suffix = "$"
        body = body[:-1]
    else:
        suffix = ""
    out: list[str] = []
    for ch in body:
        if ch == "*":
            out.append(".*")
        elif ch == "^":
            out.append(r"(?:[^a-zA-Z0-9_\-.%]|$)")
        else:
            out.append(re.escape(ch))
    return prefix + "".join(out) + suffix


_TOKEN_RE = re.compile(r"[a-z0-9]{3,}")
# Characters at which literal runs end for token extraction purposes.
_BREAKERS = set("*^|")


@dataclass
class FilterRule:
    """One parsed network-filter rule.

    Attributes:
        raw: The original filter text, e.g. ``||doubleclick.net^$third-party``.
        pattern: The URL pattern portion (anchors intact, options stripped).
        is_exception: ``True`` for ``@@`` exception (whitelist) rules.
        options: Parsed activation options.
        line: 1-based line number in the source list file (0 for rules
            built outside :func:`~repro.filters.parser.parse_filter_list`).
    """

    raw: str
    pattern: str
    is_exception: bool
    options: RuleOptions = field(default_factory=RuleOptions)
    line: int = field(default=0, compare=False)
    _regex: re.Pattern[str] | None = field(default=None, repr=False, compare=False)

    @property
    def regex(self) -> re.Pattern[str]:
        """The compiled URL-matching regex (compiled on first use)."""
        if self._regex is None:
            flags = 0 if self.options.match_case else re.IGNORECASE
            self._regex = re.compile(pattern_to_regex(self.pattern), flags)
        return self._regex

    def matches_url(self, url: str) -> bool:
        """Whether the URL pattern matches (context checked separately)."""
        return self.regex.search(url) is not None

    def anchor_domain(self) -> str | None:
        """For ``||domain...`` rules, the anchoring registrable domain."""
        if not self.pattern.startswith("||"):
            return None
        body = self.pattern[2:]
        host_chars: list[str] = []
        for ch in body:
            if ch.isalnum() or ch in ".-":
                host_chars.append(ch)
            else:
                break
        host = "".join(host_chars).strip(".")
        if not host or "." not in host:
            return None
        return registrable_domain(host)

    def index_tokens(self) -> list[str]:
        """Literal tokens that must appear in any matching URL.

        Used by the matcher to shard rules: a rule is only tried against
        URLs containing one of its tokens. Tokens are maximal ≥3-char
        alphanumeric runs inside literal (non-wildcard) spans.
        """
        literal: list[str] = []
        span: list[str] = []
        body = self.pattern.lstrip("|")
        for ch in body:
            if ch in _BREAKERS:
                literal.append("".join(span))
                span = []
            else:
                span.append(ch)
        literal.append("".join(span))
        tokens: list[str] = []
        for chunk in literal:
            tokens.extend(_TOKEN_RE.findall(chunk.lower()))
        return tokens


@dataclass
class FilterList:
    """A named collection of parsed rules (one EasyList, one EasyPrivacy…).

    Attributes:
        name: List name, e.g. ``"easylist"``.
        rules: Network rules in file order.
        hiding_rule_count: Count of element-hiding rules that were
            recognized and skipped.
        skipped_lines: Unparseable or unsupported lines, for diagnostics.
    """

    name: str
    rules: list[FilterRule] = field(default_factory=list)
    hiding_rule_count: int = 0
    skipped_lines: list[str] = field(default_factory=list)

    @property
    def block_rules(self) -> list[FilterRule]:
        """Blocking (non-exception) rules."""
        return [r for r in self.rules if not r.is_exception]

    @property
    def exception_rules(self) -> list[FilterRule]:
        """``@@`` exception rules."""
        return [r for r in self.rules if r.is_exception]

    def __len__(self) -> int:
        return len(self.rules)
