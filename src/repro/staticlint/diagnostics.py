"""The unified diagnostic model shared by all three analyzers.

Every finding — a dead filter rule, a scheme-blind webRequest pattern, a
wall-clock read in the simulator — is a :class:`Diagnostic`: a stable
rule id, a severity, a source location, a human message, and (when the
fix is mechanical) a fix hint. Analyzers return :class:`LintReport`
objects, which merge and render uniformly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable


class Severity(enum.Enum):
    """How bad a finding is.

    ERROR findings fail CI (``repro lint --self``); WARNING findings
    describe real but non-breaking defects; INFO findings are
    observations (e.g. redundant exception coverage).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Sort key: errors first."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Diagnostic:
    """One finding.

    Attributes:
        rule_id: Stable identifier, e.g. ``FL-WS-BLINDSPOT``. The prefix
            names the analyzer (``FL`` filter lists, ``WR`` webRequest,
            ``DET`` determinism, ``API`` boundaries, ``FLOW`` the
            whole-program effect analyzer).
        severity: See :class:`Severity`.
        source: Location string — ``listname:line`` for filter rules,
            ``path:line`` for source findings, a pattern string for
            webRequest findings.
        message: Human-readable description of the defect.
        fix_hint: A mechanical fix when one exists (e.g. the exact rule
            to add), else empty.
        trace: For interprocedural findings, the call chain from the
            violating entry point to the effect's origin, as display
            names (``repro.crawler.crawler.Crawler.crawl_site``, …).
        baseline_key: A line-number-free identity used to match the
            finding against ``staticlint-baseline.json`` entries; empty
            for findings that are never baselined.
    """

    rule_id: str
    severity: Severity
    source: str
    message: str
    fix_hint: str = ""
    trace: tuple[str, ...] = ()
    baseline_key: str = ""

    @property
    def file(self) -> str:
        """The path part of ``source`` (everything before a trailing
        ``:line``), or the whole source when it carries no line."""
        path, _, line = self.source.rpartition(":")
        return path if path and line.isdigit() else self.source

    @property
    def line(self) -> int:
        """The line part of ``source``, or 0 when it carries none."""
        _, _, line = self.source.rpartition(":")
        return int(line) if line.isdigit() else 0

    def sort_key(self) -> tuple:
        """Canonical ordering: (file, line, rule, message) — stable
        regardless of the order analyzers emitted findings in."""
        return (self.file, self.line, self.rule_id, self.message,
                self.fix_hint)

    def to_json(self) -> dict:
        """The machine-readable form emitted by ``repro lint --json``."""
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "source": self.source,
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "fix_hint": self.fix_hint,
            "trace": list(self.trace),
            "baseline_key": self.baseline_key,
        }

    def format(self) -> str:
        """One-line rendering: ``severity rule-id source: message``."""
        text = f"{self.severity.value:7s} {self.rule_id:16s} {self.source}: {self.message}"
        if self.fix_hint:
            text += f"  [fix: {self.fix_hint}]"
        return text


@dataclass
class LintReport:
    """An ordered collection of diagnostics from one or more analyzers.

    Attributes:
        diagnostics: Findings in analyzer emission order (already
            deterministic: analyzers iterate rules/files in stable
            order).
    """

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        """Append one finding."""
        self.diagnostics.append(diagnostic)

    def extend(self, other: "LintReport | Iterable[Diagnostic]") -> None:
        """Merge another report (or plain diagnostics) into this one."""
        if isinstance(other, LintReport):
            self.diagnostics.extend(other.diagnostics)
        else:
            self.diagnostics.extend(other)

    @property
    def categories(self) -> list[str]:
        """Distinct rule ids present, sorted."""
        return sorted({d.rule_id for d in self.diagnostics})

    @property
    def errors(self) -> list[Diagnostic]:
        """ERROR-severity findings only."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def by_rule(self, rule_id: str) -> list[Diagnostic]:
        """Findings for one rule id."""
        return [d for d in self.diagnostics if d.rule_id == rule_id]

    def counts(self) -> dict[str, int]:
        """Findings per rule id, keyed in sorted order."""
        out: dict[str, int] = {}
        for rule_id in self.categories:
            out[rule_id] = len(self.by_rule(rule_id))
        return out

    def sorted_by_severity(self) -> list[Diagnostic]:
        """Diagnostics with errors first, stable within a severity."""
        return sorted(self.diagnostics, key=lambda d: d.severity.rank)

    def canonical(self) -> "LintReport":
        """A byte-stable view: findings stable-sorted by (file, line,
        rule, message) and exact duplicates (same rule, source, and
        message — e.g. the same defect reached by two analyzers or two
        traversal orders) collapsed to one.

        ``repro lint`` renders and serializes only canonical reports,
        so output bytes never depend on analyzer traversal order.
        """
        seen: set[tuple[str, str, str]] = set()
        out = LintReport()
        for diag in sorted(self.diagnostics, key=Diagnostic.sort_key):
            identity = (diag.rule_id, diag.source, diag.message)
            if identity in seen:
                continue
            seen.add(identity)
            out.add(diag)
        return out

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)
