"""Content-addressed cache for per-file analysis facts.

Same scheme as the analysis stage cache (:mod:`repro.analysis.cache`):
every entry is one small JSON file whose key is a SHA-256 over

* the cache format and facts-extraction version,
* the file's display path, and
* the SHA-256 of its source text,

so editing a file, moving it, or changing the extractor each mint a
fresh key, while a warm ``repro lint --self`` run loads every file's
:class:`~repro.staticlint.modgraph.FileFacts` from the cache and
**re-parses nothing** — only the (cheap) cross-file link, fixpoint, and
rule passes re-run. Entries land under ``results/cache/staticlint/`` by
default, named ``<stem>-<key prefix>.json`` so the directory stays
human-scannable; CI persists the directory via ``actions/cache`` keyed
on the source hashes.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.staticlint.modgraph import FACTS_VERSION, FileFacts
from repro.util.atomicio import atomic_write

CACHE_FORMAT_VERSION = 1
DEFAULT_FLOW_CACHE_DIR = Path("results/cache/staticlint")


def facts_key(path: str, source_sha: str) -> str:
    """The content address of one file's extracted facts."""
    material = "\n".join((
        f"cache-format={CACHE_FORMAT_VERSION}",
        f"facts-version={FACTS_VERSION}",
        f"path={path}",
        f"source={source_sha}",
    ))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class FactsCache:
    """Load/store per-file facts by content address."""

    def __init__(self, root: str | Path = DEFAULT_FLOW_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, display: str, key: str) -> Path:
        stem = Path(display).stem or "file"
        return self.root / f"{stem}-{key[:16]}.json"

    def load(self, display: str, source_sha: str) -> FileFacts | None:
        """The cached facts for one file, or None on a miss.

        A corrupt or key-mismatched entry (truncated write, 16-hex
        prefix collision) counts as a miss and is re-extracted over,
        never trusted.
        """
        key = facts_key(display, source_sha)
        path = self._path(display, key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("key") != key
            or payload.get("cache_format") != CACHE_FORMAT_VERSION
            or not isinstance(payload.get("facts"), dict)
        ):
            self.misses += 1
            return None
        try:
            facts = FileFacts.from_json(payload["facts"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        if facts.sha256 != source_sha or facts.path != display:
            self.misses += 1
            return None
        self.hits += 1
        return facts

    def store(self, facts: FileFacts) -> Path:
        """Persist one file's extracted facts; returns the entry path."""
        key = facts_key(facts.path, facts.sha256)
        path = self._path(facts.path, key)
        payload = {
            "cache_format": CACHE_FORMAT_VERSION,
            "key": key,
            "facts": facts.to_json(),
        }
        atomic_write(
            path,
            json.dumps(payload, sort_keys=True, separators=(",", ":"))
            + "\n",
        )
        return path
