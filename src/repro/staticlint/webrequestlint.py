"""Franken-style static analysis of ``webRequest`` listener registrations.

The paper's §5 (and Franken et al.) showed that whether an extension can
see a WebSocket is decidable *statically* from two facts: the Chrome
major version (the WRB suppresses dispatch entirely before 58) and the
listener's URL match patterns (``http://*``/``https://*`` never match
``ws://`` URLs even on patched Chrome). This module reproduces that
analysis over our simulated extension host, and cross-validates the
static verdict against the dynamic outcome by actually dispatching a
handshake through :class:`~repro.extension.webrequest.WebRequestApi` —
the same mechanism ``bench_wrb.py`` ablates at crawl scale.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.extension.adblocker import AdBlockerExtension
from repro.extension.webrequest import (
    WEBREQUEST_BUG_FIX_VERSION,
    RequestFilter,
    WebRequestApi,
)
from repro.filters import FilterEngine, FilterList
from repro.net.http import HttpRequest, ResourceType
from repro.staticlint.diagnostics import Diagnostic, LintReport, Severity
from repro.staticlint.filterlint import analyze_filter_lists
from repro.staticlint.probes import THIRD_PARTY_CONTEXT
from repro.web.model import FIRST_PARTY

_WS_SCHEMES = frozenset({"ws", "wss"})
_ALL_SCHEMES = frozenset({"http", "https", "ws", "wss"})


class ListenerVerdict(enum.Enum):
    """Static classification of one listener registration."""

    VULNERABLE = "vulnerable"  # cannot see any WebSocket handshake
    PARTIAL = "partially-covered"  # sees ws or wss, not both
    SAFE = "safe"  # sees every WebSocket handshake


def pattern_schemes(pattern: str) -> frozenset[str]:
    """URL schemes a Chrome match pattern can cover."""
    if pattern == "<all_urls>":
        return _ALL_SCHEMES
    scheme, sep, _ = pattern.partition("://")
    if not sep:
        return frozenset()
    if scheme == "*":
        return _ALL_SCHEMES
    return frozenset({scheme})


def classify_listener(
    url_patterns: tuple[str, ...],
    chrome_major: int,
    resource_types: tuple[ResourceType, ...] = (),
) -> tuple[ListenerVerdict, LintReport]:
    """Statically classify a listener's WebSocket visibility.

    Args:
        url_patterns: The ``onBeforeRequest`` filter's match patterns.
        chrome_major: Browser major version (pre-58 suffers the WRB).
        resource_types: The filter's resource-type restriction, if any.

    Returns:
        The verdict plus the diagnostics explaining it.
    """
    report = LintReport()
    source = f"chrome{chrome_major} patterns={','.join(url_patterns)}"
    if chrome_major < WEBREQUEST_BUG_FIX_VERSION:
        report.add(Diagnostic(
            rule_id="WR-WRB",
            severity=Severity.ERROR,
            source=source,
            message=(
                f"Chrome {chrome_major} < {WEBREQUEST_BUG_FIX_VERSION}: "
                f"the webRequest bug suppresses WebSocket dispatch "
                f"entirely — no pattern can help (Chromium issue 129353)"
            ),
            fix_hint=f"require Chrome >= {WEBREQUEST_BUG_FIX_VERSION}",
        ))
        return ListenerVerdict.VULNERABLE, report
    if resource_types and ResourceType.WEBSOCKET not in resource_types:
        report.add(Diagnostic(
            rule_id="WR-TYPE-BLIND",
            severity=Severity.ERROR,
            source=source,
            message=(
                "listener's resource-type filter omits 'websocket'; "
                "handshakes are filtered out before dispatch"
            ),
            fix_hint="add ResourceType.WEBSOCKET to the type filter",
        ))
        return ListenerVerdict.VULNERABLE, report
    covered: set[str] = set()
    for pattern in url_patterns:
        covered |= pattern_schemes(pattern)
    missing = sorted(_WS_SCHEMES - covered)
    if len(missing) == 2:
        report.add(Diagnostic(
            rule_id="WR-SCHEME-BLIND",
            severity=Severity.ERROR,
            source=source,
            message=(
                "URL patterns cover no WebSocket scheme — the Franken "
                "et al. pitfall: http://*-style patterns silently fail "
                "to match ws:// even on patched Chrome"
            ),
            fix_hint="add ws://* and wss://* (or <all_urls>)",
        ))
        return ListenerVerdict.VULNERABLE, report
    if missing:
        report.add(Diagnostic(
            rule_id="WR-PARTIAL",
            severity=Severity.WARNING,
            source=source,
            message=f"URL patterns miss the {missing[0]}:// scheme",
            fix_hint=f"add {missing[0]}://*",
        ))
        return ListenerVerdict.PARTIAL, report
    return ListenerVerdict.SAFE, report


def classify_request_filter(
    request_filter: RequestFilter, chrome_major: int
) -> tuple[ListenerVerdict, LintReport]:
    """Classify an assembled :class:`RequestFilter`."""
    return classify_listener(
        request_filter.url_patterns, chrome_major, request_filter.resource_types
    )


@dataclass(frozen=True)
class CoverageRecord:
    """Static-vs-dynamic comparison for one receiver domain.

    Attributes:
        domain: Receiver registrable domain.
        ws_url: The handshake URL probed.
        static_blindspot: Filter-list analyzer says the domain's ws
            traffic escapes the lists.
        static_blocked: Full static prediction — listener verdict AND
            list coverage say the handshake is cancelled.
        dynamic_blocked: What actually happened when the handshake was
            dispatched through the simulated webRequest API.
        agree: ``static_blocked == dynamic_blocked``.
    """

    domain: str
    ws_url: str
    static_blindspot: bool
    static_blocked: bool
    dynamic_blocked: bool

    @property
    def agree(self) -> bool:
        return self.static_blocked == self.dynamic_blocked


def receiver_companies(registry) -> list:
    """Registry companies that receive WebSockets, sorted by domain."""
    keys = set()
    for spec in registry.socket_specs:
        receiver = spec.receiver
        if receiver == FIRST_PARTY or receiver.startswith("TAIL:"):
            continue
        keys.add(receiver)
    companies = [registry.companies[key] for key in keys]
    return sorted(companies, key=lambda c: c.domain)


def cross_validate_receivers(
    lists: list[FilterList],
    registry,
    chrome_major: int,
    websocket_aware: bool = True,
) -> list[CoverageRecord]:
    """Compare static verdicts against dynamic dispatch, per receiver.

    Static side: the filter-list analyzer's blindspot/coverage verdict
    combined with :func:`classify_listener` over the blocker's actual
    patterns. Dynamic side: install the blocker on a fresh simulated
    ``WebRequestApi`` at the given Chrome version and dispatch one
    handshake per receiver — the per-receiver reduction of the
    ``bench_wrb.py`` ablation.
    """
    analysis = analyze_filter_lists(lists, registry=registry)
    ws_covered = set(analysis.ws_covered_domains)
    blindspots = set(analysis.blindspot_domains)

    engine = FilterEngine(lists)
    extension = AdBlockerExtension(engine, websocket_aware=websocket_aware)
    patterns = (
        ("http://*", "https://*", "ws://*", "wss://*")
        if websocket_aware
        else ("http://*", "https://*")
    )
    verdict, _ = classify_listener(patterns, chrome_major)

    records: list[CoverageRecord] = []
    for company in receiver_companies(registry):
        ws_url = f"wss://{company.resolved_ws_host()}/socket"
        static_blocked = (
            verdict is not ListenerVerdict.VULNERABLE
            and company.domain in ws_covered
        )
        records.append(CoverageRecord(
            domain=company.domain,
            ws_url=ws_url,
            static_blindspot=company.domain in blindspots,
            static_blocked=static_blocked,
            dynamic_blocked=_dispatch_blocked(
                extension, chrome_major, ws_url
            ),
        ))
    return records


def _dispatch_blocked(
    extension: AdBlockerExtension, chrome_major: int, ws_url: str
) -> bool:
    """Dynamically dispatch one handshake; True when it was cancelled."""
    api = WebRequestApi(chrome_major)
    extension.install(api)
    request = HttpRequest(
        url=ws_url,
        resource_type=ResourceType.WEBSOCKET,
        first_party_url=THIRD_PARTY_CONTEXT,
    )
    return not api.dispatch_on_before_request(request)


def cross_validation_report(records: list[CoverageRecord]) -> LintReport:
    """Diagnostics for any static/dynamic disagreement (ERROR each)."""
    report = LintReport()
    for record in records:
        if record.agree:
            continue
        report.add(Diagnostic(
            rule_id="WR-XCHECK",
            severity=Severity.ERROR,
            source=record.domain,
            message=(
                f"static verdict (blocked={record.static_blocked}) "
                f"disagrees with dynamic dispatch "
                f"(blocked={record.dynamic_blocked}) for {record.ws_url}"
            ),
        ))
    return report
