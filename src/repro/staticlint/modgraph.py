"""The single-parse whole-program core behind every source linter.

``repro lint --self`` used to parse every file under ``src/repro`` once
per linter (determinism, API boundaries). This module parses the tree
exactly once and extracts, in one combined AST walk per file:

* the per-file **determinism diagnostics** (the DET-* rules, via the
  same visitor :mod:`repro.staticlint.determinism` uses standalone);
* the **import records** that feed the API-boundary rule and the
  architecture-layering rule (:class:`~repro.staticlint.apilint.ImportRecord`);
* a **def/call skeleton** — every function and method, the calls it
  makes (resolved file-locally through import aliases), and its direct
  **effect seeds** from the known-call tables in
  :mod:`repro.staticlint.effects`.

The extracted :class:`FileFacts` are plain JSON and content-addressed
by source SHA-256 (:mod:`repro.staticlint.cache`), so a warm run
re-parses nothing. :func:`build_graph` then links the per-file facts
into a :class:`ProjectGraph`: a conservative cross-module call-graph
approximation (exact for imported names and module attributes,
unique-name matching for otherwise-unresolved method calls) plus the
module-level import graph, on which :mod:`repro.staticlint.flow` runs
its effect fixpoint and zone contracts.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.staticlint.apilint import (
    ImportRecord,
    _module_of,
    collect_import_records,
)
from repro.staticlint.determinism import (
    _DeterminismVisitor,
    _Findings,
    exemption_flags,
)
from repro.staticlint.diagnostics import Diagnostic, LintReport, Severity
from repro.staticlint.effects import (
    BLOCKING_IO,
    GLOBAL_MUTATE,
    SEED_METHOD,
    open_mode_effects,
    seed_for_call,
)

#: Bumped whenever extraction semantics change, so cached FileFacts
#: from older analyzers can never be trusted by newer ones.
FACTS_VERSION = 1

MODULE_BODY = "<module>"


@dataclass(frozen=True)
class CallSite:
    """One call made by a function, as extracted file-locally.

    ``kind`` is one of ``local`` (resolved to a qualpath in the same
    module), ``localname`` (a bare top-level name in the same module),
    ``dotted`` (an absolute dotted path resolved through this file's
    import aliases — may name project or stdlib code), or ``method``
    (an attribute call whose receiver could not be typed; linked by
    unique method name, if any).
    """

    kind: str
    target: str
    lineno: int

    def to_json(self) -> list:
        return [self.kind, self.target, self.lineno]

    @classmethod
    def from_json(cls, payload: list) -> "CallSite":
        return cls(kind=payload[0], target=payload[1], lineno=payload[2])


@dataclass(frozen=True)
class EffectSeed:
    """One direct effect observed in a function body."""

    effect: str
    call: str
    lineno: int

    def to_json(self) -> list:
        return [self.effect, self.call, self.lineno]

    @classmethod
    def from_json(cls, payload: list) -> "EffectSeed":
        return cls(effect=payload[0], call=payload[1], lineno=payload[2])


@dataclass
class FunctionFacts:
    """One function's (or the module body's) extracted skeleton."""

    lineno: int = 0
    calls: list[CallSite] = field(default_factory=list)
    seeds: list[EffectSeed] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "lineno": self.lineno,
            "calls": [c.to_json() for c in self.calls],
            "seeds": [s.to_json() for s in self.seeds],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "FunctionFacts":
        return cls(
            lineno=payload["lineno"],
            calls=[CallSite.from_json(c) for c in payload["calls"]],
            seeds=[EffectSeed.from_json(s) for s in payload["seeds"]],
        )


@dataclass
class FileFacts:
    """Everything the analyzers need from one source file.

    JSON-serializable so it can be content-addressed by ``sha256`` and
    reused across runs without re-parsing the file.
    """

    module: str
    path: str
    sha256: str
    is_package: bool
    imports: list[ImportRecord] = field(default_factory=list)
    functions: dict[str, FunctionFacts] = field(default_factory=dict)
    classes: dict[str, list[str]] = field(default_factory=dict)
    det: list[Diagnostic] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "facts_version": FACTS_VERSION,
            "module": self.module,
            "path": self.path,
            "sha256": self.sha256,
            "is_package": self.is_package,
            "imports": [r.to_json() for r in self.imports],
            "functions": {
                qual: fn.to_json()
                for qual, fn in sorted(self.functions.items())
            },
            "classes": {
                name: methods
                for name, methods in sorted(self.classes.items())
            },
            "det": [
                {
                    "rule": d.rule_id, "severity": d.severity.value,
                    "source": d.source, "message": d.message,
                    "fix_hint": d.fix_hint,
                }
                for d in self.det
            ],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "FileFacts":
        return cls(
            module=payload["module"],
            path=payload["path"],
            sha256=payload["sha256"],
            is_package=payload["is_package"],
            imports=[ImportRecord.from_json(r) for r in payload["imports"]],
            functions={
                qual: FunctionFacts.from_json(fn)
                for qual, fn in payload["functions"].items()
            },
            classes=dict(payload["classes"]),
            det=[
                Diagnostic(
                    rule_id=d["rule"], severity=Severity(d["severity"]),
                    source=d["source"], message=d["message"],
                    fix_hint=d["fix_hint"],
                )
                for d in payload["det"]
            ],
        )


def source_sha256(source: str) -> str:
    """The content address of one file's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


# -- extraction ------------------------------------------------------------


def _collect_defs(tree: ast.Module) -> tuple[dict[str, int], dict[str, list[str]], set[str]]:
    """Pre-pass: (qualpath -> def lineno, class qual -> methods,
    top-level names) so calls can resolve to defs that appear later in
    the file."""
    functions: dict[str, int] = {}
    classes: dict[str, list[str]] = {}
    top_level: set[str] = set()

    def walk(body: list[ast.stmt], prefix: str, class_qual: str | None) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = prefix + node.name
                functions[qual] = node.lineno
                if class_qual is not None:
                    classes[class_qual].append(node.name)
                if not prefix:
                    top_level.add(node.name)
                walk(node.body, qual + ".", None)
            elif isinstance(node, ast.ClassDef):
                qual = prefix + node.name
                classes.setdefault(qual, [])
                if not prefix:
                    top_level.add(node.name)
                walk(node.body, qual + ".", qual)

    walk(tree.body, "", None)
    return functions, classes, top_level


def _dotted_parts(expr: ast.expr) -> list[str] | None:
    """Flatten ``a.b.c`` attribute chains of plain names, else None."""
    parts: list[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        parts.append(expr.id)
        parts.reverse()
        return parts
    return None


class _ExtractVisitor(_DeterminismVisitor):
    """The combined single-pass walk: determinism checks (inherited)
    plus def/call/effect-seed extraction, in one traversal."""

    def __init__(
        self,
        findings: _Findings,
        exempt_entropy: bool,
        exempt_perf: bool,
        fault_module: bool,
        facts: FileFacts,
    ) -> None:
        super().__init__(findings, exempt_entropy, exempt_perf, fault_module)
        self.facts = facts
        # (kind, name) scope stack; kind is "func" or "class".
        self.scope: list[tuple[str, str]] = []
        # Local import alias maps, populated in visit order (imports
        # precede uses in well-formed code, matching the inherited
        # determinism visitor's own binding semantics).
        self.plain_aliases: dict[str, str] = {}
        self.from_bindings: dict[str, tuple[str, str]] = {}

    # -- scope bookkeeping -------------------------------------------------

    def _qual(self) -> str:
        return ".".join(name for _, name in self.scope)

    def _current_function(self) -> FunctionFacts:
        """The innermost enclosing function record (module body when
        the scope holds no function)."""
        for index in range(len(self.scope), 0, -1):
            if self.scope[index - 1][0] == "func":
                qual = ".".join(name for _, name in self.scope[:index])
                return self.facts.functions[qual]
        return self.facts.functions[MODULE_BODY]

    def _enclosing_class(self) -> str | None:
        for index in range(len(self.scope), 0, -1):
            if self.scope[index - 1][0] == "class":
                return ".".join(name for _, name in self.scope[:index])
        return None

    def _visit_def(self, node, kind: str) -> None:
        # Decorators, defaults, and annotations evaluate in the
        # enclosing scope; only the body belongs to the new one.
        for decorator in node.decorator_list:
            self.visit(decorator)
        if kind == "func":
            for default in list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]:
                self.visit(default)
        else:
            for base in list(node.bases) + list(node.keywords):
                self.visit(base)
        parent = self._current_function() if kind == "func" else None
        self.scope.append((kind, node.name))
        qual = self._qual()
        if kind == "func":
            record = self.facts.functions.setdefault(
                qual, FunctionFacts(lineno=node.lineno)
            )
            record.lineno = node.lineno
            if parent is not self.facts.functions[MODULE_BODY]:
                # A nested def may escape as a callback: conservatively
                # assume the enclosing function can invoke it.
                parent.calls.append(CallSite("local", qual, node.lineno))
        for child in node.body:
            self.visit(child)
        self.scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_def(node, "func")

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_def(node, "func")

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_def(node, "class")

    # -- imports -----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.plain_aliases[bound] = target
        super().visit_Import(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and not node.level:
            for alias in node.names:
                bound = alias.asname or alias.name
                self.from_bindings[bound] = (node.module, alias.name)
        super().visit_ImportFrom(node)

    # -- effects -----------------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        record = self._current_function()
        for name in node.names:
            record.seeds.append(EffectSeed(
                GLOBAL_MUTATE, f"global {name}", node.lineno
            ))
        self.generic_visit(node)

    def _absolute_dotted(self, parts: list[str]) -> str | None:
        """Resolve a dotted call chain through this file's import
        aliases to an absolute path, or None when the base is not an
        imported binding (a local variable, a parameter, ...)."""
        base = parts[0]
        if base in self.plain_aliases:
            return ".".join([self.plain_aliases[base], *parts[1:]])
        if base in self.from_bindings:
            module, name = self.from_bindings[base]
            return ".".join([module, name, *parts[1:]])
        return None

    def _seed(self, record: FunctionFacts, effects, call: str,
              lineno: int) -> None:
        for effect in sorted(effects):
            record.seeds.append(EffectSeed(effect, call, lineno))

    def _extract_call(self, node: ast.Call) -> None:
        record = self._current_function()
        lineno = node.lineno
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.from_bindings:
                module, orig = self.from_bindings[name]
                dotted = f"{module}.{orig}"
                record.calls.append(CallSite("dotted", dotted, lineno))
                self._seed(record, seed_for_call(dotted), dotted, lineno)
            elif name in ("open", "input"):
                self._seed(record, seed_for_call(f"builtins.{name}"),
                           name, lineno)
            else:
                # Module-level defs and classes; the linker drops
                # names that resolve to neither. (Bare calls of nested
                # helpers are covered by the implicit parent edge added
                # at definition time.)
                record.calls.append(CallSite("localname", name, lineno))
            return
        parts = _dotted_parts(func) if isinstance(func, ast.Attribute) else None
        if parts is not None and len(parts) >= 2:
            if parts[0] in ("self", "cls") and len(parts) == 2:
                enclosing = self._enclosing_class()
                attr = parts[1]
                if enclosing is not None and f"{enclosing}.{attr}" in (
                    self.facts.functions
                ):
                    record.calls.append(CallSite(
                        "local", f"{enclosing}.{attr}", lineno
                    ))
                else:
                    record.calls.append(CallSite("method", attr, lineno))
                self._seed_method(record, attr, node, lineno)
                return
            dotted = self._absolute_dotted(parts)
            if dotted is not None:
                record.calls.append(CallSite("dotted", dotted, lineno))
                self._seed(record, seed_for_call(dotted), dotted, lineno)
                return
            if parts[0] in self.facts.classes and len(parts) == 2:
                # Class.method(...) on a locally defined class.
                qual = f"{parts[0]}.{parts[1]}"
                if qual in self.facts.functions:
                    record.calls.append(CallSite("local", qual, lineno))
                    return
        if isinstance(func, ast.Attribute):
            record.calls.append(CallSite("method", func.attr, lineno))
            self._seed_method(record, func.attr, node, lineno)

    def _seed_method(self, record: FunctionFacts, attr: str,
                     node: ast.Call, lineno: int) -> None:
        """Receiver-independent method seeds: unmistakable filesystem
        verbs, plus ``.open(mode)`` with a literal mode string."""
        effects = SEED_METHOD.get(attr)
        if effects is not None:
            self._seed(record, effects, f".{attr}", lineno)
            return
        if attr == "open":
            mode = "r"
            if node.args and isinstance(node.args[0], ast.Constant) and (
                isinstance(node.args[0].value, str)
            ):
                mode = node.args[0].value
            for keyword in node.keywords:
                if keyword.arg == "mode" and isinstance(
                    keyword.value, ast.Constant
                ) and isinstance(keyword.value.value, str):
                    mode = keyword.value.value
            self._seed(record, open_mode_effects(mode), ".open", lineno)

    def visit_Call(self, node: ast.Call) -> None:
        self._extract_call(node)
        super().visit_Call(node)


def extract_file_facts(path: str, source: str) -> FileFacts:
    """Parse one file (the only parse it will ever get) and extract
    everything every linter needs from it."""
    display = Path(path)
    facts = FileFacts(
        module=_module_of(path),
        path=path,
        sha256=source_sha256(source),
        is_package=display.name == "__init__.py",
    )
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        facts.det.append(Diagnostic(
            rule_id="DET-SYNTAX",
            severity=Severity.ERROR,
            source=f"{path}:{error.lineno or 0}",
            message=f"cannot parse: {error.msg}",
        ))
        return facts
    lines = source.splitlines()
    functions, classes, _ = _collect_defs(tree)
    facts.functions[MODULE_BODY] = FunctionFacts(lineno=0)
    for qual, lineno in sorted(functions.items()):
        facts.functions[qual] = FunctionFacts(lineno=lineno)
    facts.classes = {qual: methods for qual, methods in sorted(classes.items())}
    facts.imports = collect_import_records(tree, lines)
    exempt_entropy, exempt_perf, fault_module = exemption_flags(display)
    findings = _Findings(path, lines)
    _ExtractVisitor(
        findings, exempt_entropy, exempt_perf, fault_module, facts
    ).visit(tree)
    facts.det = findings.diagnostics
    return facts


# -- linking ---------------------------------------------------------------


@dataclass(frozen=True)
class GraphNode:
    """One function (or module body) in the linked project graph."""

    node_id: str
    module: str
    qual: str
    path: str
    lineno: int
    seeds: tuple[EffectSeed, ...]

    @property
    def display(self) -> str:
        if self.qual == MODULE_BODY:
            return self.module
        return f"{self.module}.{self.qual}"


@dataclass
class ProjectGraph:
    """The linked whole-program view the flow analyzer runs on.

    Attributes:
        root_package: The top package name (``repro``).
        facts: Per-module extracted facts, keyed by dotted module.
        nodes: Every function node, keyed by ``module:qualpath``.
        calls: Call-graph edges per node id (sorted, deduplicated).
        module_imports: Per-module project-internal import targets as
            (target module, line) pairs, for layering and cycles.
    """

    root_package: str
    facts: dict[str, FileFacts]
    nodes: dict[str, GraphNode]
    calls: dict[str, tuple[str, ...]]
    module_imports: dict[str, list[tuple[str, int]]]

    def seed_index(self) -> dict[str, tuple[EffectSeed, ...]]:
        """Node id -> direct effect seeds (the fixpoint's input)."""
        return {
            node_id: node.seeds
            for node_id, node in sorted(self.nodes.items())
        }


def _resolve_relative(module: str, is_package: bool, level: int,
                      target: str) -> str | None:
    """Absolute dotted path of a relative import, or None when the
    level escapes the root package."""
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    if level > 1:
        if level - 1 >= len(parts):
            return None
        parts = parts[: len(parts) - (level - 1)]
    if not parts:
        return None
    return ".".join(parts + ([target] if target else []))


class _Linker:
    """Resolves per-file call sites into cross-module graph edges."""

    def __init__(self, facts: dict[str, FileFacts], root_package: str) -> None:
        self.facts = facts
        self.root = root_package
        # Method-name index: last qual component -> node ids, for the
        # conservative unique-name fallback.
        self.methods: dict[str, list[str]] = {}
        for module in sorted(facts):
            for qual in sorted(facts[module].functions):
                if qual == MODULE_BODY:
                    continue
                name = qual.rsplit(".", 1)[-1]
                self.methods.setdefault(name, []).append(f"{module}:{qual}")

    def _in_project(self, dotted: str) -> bool:
        return dotted == self.root or dotted.startswith(self.root + ".")

    def resolve_export(
        self, module: str, name: str, _visited: frozenset = frozenset()
    ) -> tuple[str, str] | None:
        """What ``from module import name`` ultimately names:
        ``("func", node_id)``, ``("class", "module:Class")``, or
        ``("module", dotted)`` — chasing re-export chains through
        ``__init__`` files. None when unresolvable."""
        if (module, name) in _visited:
            return None
        _visited = _visited | {(module, name)}
        facts = self.facts.get(module)
        if facts is None:
            return None
        if name in facts.functions:
            return "func", f"{module}:{name}"
        if name in facts.classes:
            return "class", f"{module}:{name}"
        if f"{module}.{name}" in self.facts:
            return "module", f"{module}.{name}"
        for record in facts.imports:
            if record.bound != name:
                continue
            if record.name:
                origin = record.module
                if record.level:
                    origin = _resolve_relative(
                        module, facts.is_package, record.level, record.module
                    ) or ""
                if self._in_project(origin):
                    return self.resolve_export(origin, record.name, _visited)
                return None
            if self._in_project(record.module):
                return "module", record.module
        return None

    def _class_target(self, ref: str, method: str) -> str | None:
        """``module:Class`` + method -> the method's node id, if any."""
        module, _, class_qual = ref.partition(":")
        qual = f"{class_qual}.{method}"
        facts = self.facts.get(module)
        if facts is not None and qual in facts.functions:
            return f"{module}:{qual}"
        return None

    def _resolve_dotted(self, dotted: str) -> str | None:
        """An absolute dotted call (``repro.x.f``, ``repro.x.C``,
        ``repro.x.C.m``) -> callee node id, or None for stdlib or
        unresolvable paths."""
        if not self._in_project(dotted):
            return None
        parts = dotted.split(".")
        # Longest known module prefix, leaving at least one name part.
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            if module not in self.facts:
                continue
            rest = parts[split:]
            resolved = self.resolve_export(module, rest[0])
            if resolved is None:
                return None
            kind, ref = resolved
            if kind == "func" and len(rest) == 1:
                return ref
            if kind == "class":
                if len(rest) == 1:
                    return self._class_target(ref, "__init__")
                if len(rest) == 2:
                    return self._class_target(ref, rest[1])
            if kind == "module" and len(rest) >= 2:
                return self._resolve_dotted(".".join([ref, *rest[1:]]))
            return None
        return None

    def resolve_call(self, module: str, site: CallSite) -> str | None:
        facts = self.facts[module]
        if site.kind == "local":
            if site.target in facts.functions:
                return f"{module}:{site.target}"
            if site.target in facts.classes:
                return self._class_target(f"{module}:{site.target}",
                                          "__init__")
            return None
        if site.kind == "localname":
            name = site.target
            if name in facts.functions:
                return f"{module}:{name}"
            if name in facts.classes:
                return self._class_target(f"{module}:{name}", "__init__")
            return None
        if site.kind == "dotted":
            dotted = site.target
            resolved = self._resolve_dotted(dotted)
            if resolved is not None:
                return resolved
            # ``from repro.x import f`` produces ``repro.x.f`` even
            # when ``repro.x`` re-exports f from deeper down; the
            # dotted resolver above already chased that. A class
            # import called directly is instantiation:
            return None
        if site.kind == "method":
            candidates = self.methods.get(site.target, ())
            if len(candidates) == 1:
                return candidates[0]
            return None
        return None


def build_graph(
    facts_list: list[FileFacts], root_package: str = "repro"
) -> ProjectGraph:
    """Link per-file facts into the whole-program graph."""
    facts = {f.module: f for f in sorted(facts_list, key=lambda f: f.module)}
    linker = _Linker(facts, root_package)

    nodes: dict[str, GraphNode] = {}
    calls: dict[str, tuple[str, ...]] = {}
    module_imports: dict[str, list[tuple[str, int]]] = {}

    for module in sorted(facts):
        file_facts = facts[module]
        for qual in sorted(file_facts.functions):
            fn = file_facts.functions[qual]
            node_id = f"{module}:{qual}"
            nodes[node_id] = GraphNode(
                node_id=node_id,
                module=module,
                qual=qual,
                path=file_facts.path,
                lineno=fn.lineno,
                seeds=tuple(fn.seeds),
            )
            resolved = set()
            for site in fn.calls:
                callee = linker.resolve_call(module, site)
                if callee is not None and callee != node_id:
                    resolved.add(callee)
            calls[node_id] = tuple(sorted(resolved))

        targets: list[tuple[str, int]] = []
        for record in file_facts.imports:
            target = record.module
            if record.level:
                target = _resolve_relative(
                    module, file_facts.is_package, record.level, record.module
                ) or ""
            if not target or not linker._in_project(target):
                continue
            # ``from repro import analysis`` really depends on
            # ``repro.analysis``; resolve name-as-submodule.
            if record.name and f"{target}.{record.name}" in facts:
                target = f"{target}.{record.name}"
            if target in facts and target != module:
                targets.append((target, record.lineno))
        module_imports[module] = targets

    return ProjectGraph(
        root_package=root_package,
        facts=facts,
        nodes=nodes,
        calls=calls,
        module_imports=module_imports,
    )
