"""AST lint enforcing the repro's determinism (calibration) contract.

DESIGN.md §5 promises bit-reproducible studies: every random draw comes
from the seeded, stream-keyed RNG (`repro.util.rng`), every timestamp
from the simulated clock (`repro.util.simtime`), and every telemetry
tick from the obs clock (`repro.util.obsclock`). This linter makes the
promise checkable in CI, with five rules:

* ``DET-WALLCLOCK`` — reading the host's wall clock (``time.time()``,
  ``datetime.now()``, ``date.today()``, ``time.localtime()``, …);
* ``DET-OBS`` — reading the host's monotonic/performance counters
  (``time.perf_counter``, ``time.monotonic`` and their ``_ns``
  variants): span timings must come from the deterministic obs clock,
  or trace files stop being byte-reproducible;
* ``DET-RANDOM`` — unseeded entropy: importing ``random`` or
  ``secrets``, ``uuid.uuid4()``, ``os.urandom()``;
* ``DET-ORDER`` — hash-order-dependent iteration: looping over a set
  expression (string hashing is randomized per process, so iteration
  order is not reproducible), ``list(set(...))``, unsorted
  ``os.listdir()``, or calling builtin ``hash()``;
* ``DET-FAULT`` — any import of ``random``, ``secrets``, ``time``, or
  ``datetime`` inside ``repro/faults/``: fault injection must be pure
  seeded decision logic (same seed + same profile ⇒ same faults), so
  the whole module families are off-limits there, not just the
  clock-reading calls the other rules catch.

Files under ``repro/util/`` are the sanctioned wrappers and are exempt
from DET-RANDOM; ``repro/util/obsclock.py`` — the one sanctioned home
of the performance counter — is additionally exempt from DET-OBS.
DET-WALLCLOCK and DET-ORDER are never exempted. A finding on a line
containing the pragma ``det: allow`` is suppressed.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.staticlint.diagnostics import Diagnostic, LintReport, Severity

_PRAGMA = "det: allow"

# Attribute calls on the `time` module that read the host wall clock.
_TIME_ATTRS = frozenset({
    "time", "time_ns", "localtime", "gmtime", "ctime",
})
# Monotonic / performance counters: DET-OBS territory.
_PERF_ATTRS = frozenset({
    "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns",
})
# Constructor-style wall-clock reads on datetime / date classes.
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})


class _Findings:
    """Shared accumulator with pragma suppression."""

    def __init__(self, path: str, source_lines: list[str]) -> None:
        self.path = path
        self.lines = source_lines
        self.diagnostics: list[Diagnostic] = []

    def add(self, node: ast.AST, rule_id: str, message: str,
            fix_hint: str = "") -> None:
        lineno = getattr(node, "lineno", 0)
        if 1 <= lineno <= len(self.lines) and _PRAGMA in self.lines[lineno - 1]:
            return
        self.diagnostics.append(Diagnostic(
            rule_id=rule_id,
            severity=Severity.ERROR if rule_id != "DET-ORDER"
            else Severity.WARNING,
            source=f"{self.path}:{lineno}",
            message=message,
            fix_hint=fix_hint,
        ))


class _DeterminismVisitor(ast.NodeVisitor):
    """One file's worth of determinism checking."""

    def __init__(
        self,
        findings: _Findings,
        exempt_entropy: bool,
        exempt_perf: bool = False,
        fault_module: bool = False,
    ) -> None:
        self.findings = findings
        self.exempt_entropy = exempt_entropy
        self.exempt_perf = exempt_perf
        self.fault_module = fault_module
        # Names bound to interesting modules/classes by imports.
        self.time_modules: set[str] = set()
        self.datetime_modules: set[str] = set()
        self.datetime_classes: set[str] = set()
        self.date_classes: set[str] = set()
        self.uuid_modules: set[str] = set()
        self.os_modules: set[str] = set()
        # Direct from-imports of clock functions: name -> (original, rule).
        self.direct_clock: dict[str, tuple[str, str]] = {}

    # -- imports -----------------------------------------------------------

    _FAULT_FORBIDDEN = frozenset({"random", "secrets", "time", "datetime"})

    def _check_fault_import(self, node: ast.AST, module: str) -> bool:
        """DET-FAULT when a fault module imports a forbidden module."""
        top = module.split(".")[0]
        if not (self.fault_module and top in self._FAULT_FORBIDDEN):
            return False
        self.findings.add(
            node, "DET-FAULT",
            f"import of {top!r} inside repro.faults: fault injection "
            f"must be pure seeded decision logic",
            "draw from the injector's RngStream lane; take timestamps "
            "from the caller's SimClock",
        )
        return True

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if self._check_fault_import(node, alias.name):
                continue
            if alias.name == "time":
                self.time_modules.add(bound)
            elif alias.name == "datetime":
                self.datetime_modules.add(bound)
            elif alias.name == "uuid":
                self.uuid_modules.add(bound)
            elif alias.name == "os":
                self.os_modules.add(bound)
            elif alias.name in ("random", "secrets") and not self.exempt_entropy:
                self.findings.add(
                    node, "DET-RANDOM",
                    f"import of {alias.name!r}: all entropy must come "
                    f"from repro.util.rng's seeded streams",
                    "use RngStream (repro.util.rng)",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if self._check_fault_import(node, module):
            self.generic_visit(node)
            return
        for alias in node.names:
            bound = alias.asname or alias.name
            if module == "datetime":
                if alias.name == "datetime":
                    self.datetime_classes.add(bound)
                elif alias.name == "date":
                    self.date_classes.add(bound)
            elif module == "time" and alias.name in _TIME_ATTRS:
                self.direct_clock[bound] = (f"time.{alias.name}",
                                            "DET-WALLCLOCK")
            elif module == "time" and alias.name in _PERF_ATTRS:
                if not self.exempt_perf:
                    self.direct_clock[bound] = (f"time.{alias.name}",
                                                "DET-OBS")
            elif module in ("random", "secrets") and not self.exempt_entropy:
                self.findings.add(
                    node, "DET-RANDOM",
                    f"import from {module!r}: all entropy must come "
                    f"from repro.util.rng's seeded streams",
                    "use RngStream (repro.util.rng)",
                )
        self.generic_visit(node)

    # -- calls -------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            self._check_name_call(node, func.id)
        elif isinstance(func, ast.Attribute):
            self._check_attribute_call(node, func)
        self.generic_visit(node)

    def _check_name_call(self, node: ast.Call, name: str) -> None:
        if name in self.direct_clock:
            original, rule = self.direct_clock[name]
            self.findings.add(
                node, rule,
                f"{original}() reads the host clock",
                "use SimClock (repro.util.simtime)"
                if rule == "DET-WALLCLOCK"
                else "use the obs clock (repro.util.obsclock)",
            )
        elif name == "hash":
            self.findings.add(
                node, "DET-ORDER",
                "builtin hash() is randomized per process for strings",
                "use repro.util.rng.derive_seed (SHA-256 based)",
            )
        elif name in ("list", "tuple") and node.args:
            arg = node.args[0]
            if _is_set_expression(arg):
                self.findings.add(
                    node, "DET-ORDER",
                    "materializing a set preserves hash order, which is "
                    "not reproducible across processes",
                    "wrap in sorted(...)",
                )

    def _check_attribute_call(self, node: ast.Call, func: ast.Attribute) -> None:
        attr = func.attr
        base = func.value
        base_name = base.id if isinstance(base, ast.Name) else None
        if base_name in self.time_modules and attr in _TIME_ATTRS:
            self.findings.add(
                node, "DET-WALLCLOCK",
                f"time.{attr}() reads the host clock",
                "use SimClock (repro.util.simtime)",
            )
            return
        if base_name in self.time_modules and attr in _PERF_ATTRS:
            if not self.exempt_perf:
                self.findings.add(
                    node, "DET-OBS",
                    f"time.{attr}() reads the host's monotonic counter; "
                    f"span timings must be deterministic",
                    "use the obs clock (repro.util.obsclock)",
                )
            return
        if attr in _DATETIME_ATTRS:
            if base_name in self.datetime_classes or base_name in self.date_classes:
                self.findings.add(
                    node, "DET-WALLCLOCK",
                    f"{base_name}.{attr}() reads the host clock",
                    "use SimClock (repro.util.simtime)",
                )
                return
            # dt.datetime.now() / datetime.date.today() chains.
            if (
                isinstance(base, ast.Attribute)
                and base.attr in ("datetime", "date")
                and isinstance(base.value, ast.Name)
                and base.value.id in self.datetime_modules
            ):
                self.findings.add(
                    node, "DET-WALLCLOCK",
                    f"datetime.{base.attr}.{attr}() reads the host clock",
                    "use SimClock (repro.util.simtime)",
                )
                return
        if not self.exempt_entropy:
            if base_name in self.uuid_modules and attr in ("uuid1", "uuid4"):
                self.findings.add(
                    node, "DET-RANDOM",
                    f"uuid.{attr}() draws unseeded entropy",
                    "derive ids from RngStream draws",
                )
                return
            if base_name in self.os_modules and attr == "urandom":
                self.findings.add(
                    node, "DET-RANDOM",
                    "os.urandom() draws unseeded entropy",
                    "use RngStream (repro.util.rng)",
                )
                return
        if base_name in self.os_modules and attr in ("listdir", "scandir"):
            self.findings.add(
                node, "DET-ORDER",
                f"os.{attr}() yields entries in filesystem order",
                "wrap in sorted(...)",
            )

    # -- iteration order ---------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def _check_iteration(self, iter_node: ast.expr) -> None:
        if _is_set_expression(iter_node):
            self.findings.add(
                iter_node, "DET-ORDER",
                "iterating a set visits elements in hash order, which "
                "is not reproducible across processes",
                "iterate sorted(...) instead",
            )


def _is_set_expression(node: ast.expr) -> bool:
    """Whether the expression evaluates to a freshly built set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


def lint_parsed(
    tree: ast.AST,
    path: str,
    lines: list[str],
    exempt_entropy: bool = False,
    exempt_perf: bool = False,
    fault_module: bool = False,
) -> LintReport:
    """Lint an already-parsed module (no re-parse).

    This is the entry point the single-parse core
    (:mod:`repro.staticlint.modgraph`) uses: it parses each file once
    and feeds the same tree to every linter.
    """
    report = LintReport()
    findings = _Findings(path, lines)
    _DeterminismVisitor(findings, exempt_entropy, exempt_perf,
                        fault_module).visit(tree)
    report.extend(findings.diagnostics)
    return report


def lint_source_text(
    path: str,
    source: str,
    exempt_entropy: bool = False,
    exempt_perf: bool = False,
    fault_module: bool = False,
) -> LintReport:
    """Lint one file's source text.

    Args:
        path: Display path for diagnostics.
        source: The file contents.
        exempt_entropy: Suppress DET-RANDOM findings (for the
            sanctioned ``repro.util`` wrappers).
        exempt_perf: Suppress DET-OBS findings (for the sanctioned
            obs clock, ``repro.util.obsclock``). DET-WALLCLOCK and
            DET-ORDER are never exempted.
        fault_module: Apply the stricter DET-FAULT rule (for files
            under ``repro/faults/``).
    """
    report = LintReport()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        report.add(Diagnostic(
            rule_id="DET-SYNTAX",
            severity=Severity.ERROR,
            source=f"{path}:{error.lineno or 0}",
            message=f"cannot parse: {error.msg}",
        ))
        return report
    report.extend(lint_parsed(tree, path, source.splitlines(),
                              exempt_entropy, exempt_perf, fault_module))
    return report


def _is_util_path(path: Path) -> bool:
    return "util" in path.parts


def _is_obs_clock(path: Path) -> bool:
    return _is_util_path(path) and path.name == "obsclock.py"


def _is_fault_path(path: Path) -> bool:
    return "faults" in path.parts


def exemption_flags(path: Path) -> tuple[bool, bool, bool]:
    """The per-file lint policy for a source path, as the
    ``(exempt_entropy, exempt_perf, fault_module)`` flag triple that
    :func:`lint_parsed` takes — shared with the single-parse core so
    both walks apply identical sanctioning."""
    return _is_util_path(path), _is_obs_clock(path), _is_fault_path(path)


def lint_paths(paths: list[Path], root: Path | None = None) -> LintReport:
    """Lint Python files, exempting the sanctioned ``repro/util``
    wrappers (entropy) and the obs clock (performance counters), and
    holding ``repro/faults/`` to the stricter DET-FAULT rule."""
    report = LintReport()
    for path in sorted(paths):
        display = str(path.relative_to(root)) if root else str(path)
        report.extend(lint_source_text(
            display,
            path.read_text(encoding="utf-8"),
            exempt_entropy=_is_util_path(path),
            exempt_perf=_is_obs_clock(path),
            fault_module=_is_fault_path(path),
        ))
    return report


def lint_self() -> LintReport:
    """Lint the installed ``repro`` package itself (the CI gate).

    The package root is located from this file's own path rather than
    ``import repro`` so staticlint keeps zero imports of the
    composition root (FLOW-LAYER polices that from the other side).
    """
    package_root = Path(__file__).resolve().parents[1]
    return lint_paths(
        list(package_root.rglob("*.py")), root=package_root.parent
    )
