"""Static analysis of parsed filter lists.

Four defect families, all grounded in the probe universe of
:mod:`repro.staticlint.probes` (so every judgement is checkable by
running the real matching engine — the property tests do exactly that):

* **dead rules** (``FL-DEAD``) — match nothing the synthetic web can
  ever request; the static analogue of the stale blacklist entries
  Hashmi et al. measured accumulating in EasyList over years;
* **shadowed rules** (``FL-SHADOW``) — every probe they match is
  already matched by an earlier same-polarity rule, so removing them
  changes no decision;
* **exception defects** (``FL-EXC-USELESS``, ``FL-EXC-DUP``) — ``@@``
  rules that never rescue a blocked request, or that duplicate another
  exception's coverage exactly;
* **WebSocket blindspots** (``FL-WS-BLINDSPOT``) — the headline:
  domains whose HTTP(S) traffic the lists block while every
  ``ws://``/``wss://`` probe to the same registrable domain gets
  through. This statically predicts the circumvention surface the
  paper measured dynamically (and ``bench_wrb.py`` re-measures).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.filters import CompiledFilterEngine, FilterList, FilterRule
from repro.net.domains import is_third_party, registrable_domain
from repro.staticlint.diagnostics import Diagnostic, LintReport, Severity
from repro.staticlint.probes import UrlProbe, UrlUniverse
from repro.util.urls import parse_url


@dataclass
class _IndexedRule:
    """One rule with its provenance and the probes it matches."""

    list_name: str
    position: int  # 1-based rule index within its list (line when known)
    order: int  # global order across all lists
    rule: FilterRule
    matched: list[int] = field(default_factory=list)

    @property
    def location(self) -> str:
        line = getattr(self.rule, "line", 0) or self.position
        return f"{self.list_name}:{line}"


@dataclass
class _ProbeContext:
    """Pre-computed request context for one probe."""

    probe: UrlProbe
    third_party: bool
    first_party_host: str
    domain: str  # registrable domain of the probe URL's host


def _probe_contexts(universe: UrlUniverse) -> list[_ProbeContext]:
    contexts = []
    for probe in universe.probes:
        first_party_host = (
            parse_url(probe.first_party_url).host if probe.first_party_url else ""
        )
        third_party = bool(probe.first_party_url) and is_third_party(
            probe.url, probe.first_party_url
        )
        contexts.append(
            _ProbeContext(
                probe=probe,
                third_party=third_party,
                first_party_host=first_party_host,
                domain=registrable_domain(parse_url(probe.url).host),
            )
        )
    return contexts


def _match_all_probes(
    lists: list[FilterList],
    indexed: list[_IndexedRule],
    contexts: list[_ProbeContext],
) -> None:
    """Fill every ``entry.matched`` with applicable matching probe
    indices, via the compiled engine's candidate machinery.

    For each probe only the rules the compiled index *offers* for its
    URL are match-tested — sound because offered candidates are a
    superset of true matches (the engine's own correctness guarantee,
    pinned by the equivalence suite), and the fix for the longest-token
    probe skip this analyzer previously shared with the old engine.
    """
    compiled = CompiledFilterEngine(lists)
    for i, ctx in enumerate(contexts):
        for order, rule in compiled.candidate_rules(ctx.probe.url):
            if not rule.options.applies_to(
                ctx.probe.resource_type, ctx.third_party, ctx.first_party_host
            ):
                continue
            if rule.matches_url(ctx.probe.url):
                indexed[order].matched.append(i)


@dataclass
class FilterListAnalysis:
    """Everything the filter-list analyzer derived.

    Attributes:
        lists: The lists analyzed, in order.
        universe: The probe universe judged against.
        report: All diagnostics.
        blocked: Final per-probe decision (blocking rule matched, no
            exception matched), aligned with ``universe.probes``.
        dead / shadowed / useless_exceptions / duplicate_exceptions:
            The offending rules, in file order.
        blindspot_domains: Registrable domains with blocked HTTP(S)
            probes but no blocked WebSocket probe.
        ws_covered_domains: Domains with at least one blocked WebSocket
            probe (the complement used by the webRequest cross-check).
    """

    lists: list[FilterList]
    universe: UrlUniverse
    report: LintReport
    blocked: list[bool]
    dead: list[FilterRule]
    shadowed: list[FilterRule]
    useless_exceptions: list[FilterRule]
    duplicate_exceptions: list[FilterRule]
    blindspot_domains: list[str]
    ws_covered_domains: list[str]


def analyze_filter_lists(
    lists: list[FilterList],
    registry=None,
    universe: UrlUniverse | None = None,
) -> FilterListAnalysis:
    """Run the full filter-list analysis.

    Args:
        lists: Parsed lists, in engine order (earlier lists shadow
            later ones, exactly as the engine concatenates them).
        registry: Optional company registry; when given, the universe
            is the synthetic web's own URL space (plus rule-derived
            WebSocket probes).
        universe: Explicit probe universe, overriding both defaults.
    """
    if universe is None:
        if registry is not None:
            universe = UrlUniverse.combined(registry, lists)
        else:
            universe = UrlUniverse.from_rules(lists)
    contexts = _probe_contexts(universe)

    indexed: list[_IndexedRule] = []
    order = 0
    for filter_list in lists:
        for position, rule in enumerate(filter_list.rules, start=1):
            entry = _IndexedRule(
                list_name=filter_list.name,
                position=position,
                order=order,
                rule=rule,
            )
            indexed.append(entry)
            order += 1
    _match_all_probes(lists, indexed, contexts)

    blocks = [e for e in indexed if not e.rule.is_exception]
    exceptions = [e for e in indexed if e.rule.is_exception]

    probe_count = len(contexts)
    block_hits: list[set[int]] = [set() for _ in range(probe_count)]
    exception_hits: list[set[int]] = [set() for _ in range(probe_count)]
    for entry in blocks:
        for i in entry.matched:
            block_hits[i].add(entry.order)
    for entry in exceptions:
        for i in entry.matched:
            exception_hits[i].add(entry.order)
    blocked = [
        bool(block_hits[i]) and not exception_hits[i] for i in range(probe_count)
    ]

    report = LintReport()
    dead: list[FilterRule] = []
    shadowed: list[FilterRule] = []
    useless: list[FilterRule] = []
    duplicates: list[FilterRule] = []

    exception_signatures: dict[frozenset[int], _IndexedRule] = {}
    for entry in indexed:
        rule = entry.rule
        if not entry.matched:
            dead.append(rule)
            report.add(Diagnostic(
                rule_id="FL-DEAD",
                severity=Severity.WARNING,
                source=entry.location,
                message=(
                    f"rule {rule.raw!r} matches none of the "
                    f"{probe_count} probes in the URL universe"
                ),
                fix_hint="remove the rule or widen its pattern",
            ))
            continue
        if rule.is_exception:
            rescued = [i for i in entry.matched if block_hits[i]]
            if not rescued:
                useless.append(rule)
                report.add(Diagnostic(
                    rule_id="FL-EXC-USELESS",
                    severity=Severity.WARNING,
                    source=entry.location,
                    message=(
                        f"exception {rule.raw!r} neutralizes no blocking "
                        f"rule: none of its {len(entry.matched)} matched "
                        f"probes is blocked"
                    ),
                    fix_hint="remove the exception",
                ))
                continue
            signature = frozenset(entry.matched)
            earlier = exception_signatures.get(signature)
            if earlier is not None:
                duplicates.append(rule)
                report.add(Diagnostic(
                    rule_id="FL-EXC-DUP",
                    severity=Severity.INFO,
                    source=entry.location,
                    message=(
                        f"exception {rule.raw!r} rescues exactly the same "
                        f"probes as {earlier.rule.raw!r} "
                        f"({earlier.location})"
                    ),
                    fix_hint="keep one of the two exceptions",
                ))
                continue
            exception_signatures[signature] = entry
            hits = exception_hits
        else:
            hits = block_hits
        shadowing = _shadowing_rule(entry, hits, indexed)
        if shadowing is not None:
            shadowed.append(rule)
            by = (
                f"earlier rule {shadowing.rule.raw!r} ({shadowing.location})"
                if isinstance(shadowing, _IndexedRule)
                else "earlier rules collectively"
            )
            report.add(Diagnostic(
                rule_id="FL-SHADOW",
                severity=Severity.WARNING,
                source=entry.location,
                message=(
                    f"rule {rule.raw!r} is shadowed: every probe it "
                    f"matches ({len(entry.matched)}) is matched by {by}"
                ),
                fix_hint="remove the rule; no decision changes",
            ))

    blindspots, ws_covered = _websocket_analysis(
        contexts, blocked, blocks, report
    )

    return FilterListAnalysis(
        lists=lists,
        universe=universe,
        report=report,
        blocked=blocked,
        dead=dead,
        shadowed=shadowed,
        useless_exceptions=useless,
        duplicate_exceptions=duplicates,
        blindspot_domains=blindspots,
        ws_covered_domains=ws_covered,
    )


_SENTINEL = object()


def _shadowing_rule(
    entry: _IndexedRule,
    hits: list[set[int]],
    indexed: list[_IndexedRule],
):
    """The single earlier rule shadowing ``entry``, the sentinel for
    collective shadowing, or ``None`` when not shadowed."""
    earlier_per_probe: list[set[int]] = []
    for i in entry.matched:
        earlier = {order for order in hits[i] if order < entry.order}
        if not earlier:
            return None
        earlier_per_probe.append(earlier)
    common = set.intersection(*earlier_per_probe)
    if common:
        return indexed[min(common)]
    return _SENTINEL


def _websocket_analysis(
    contexts: list[_ProbeContext],
    blocked: list[bool],
    blocks: list[_IndexedRule],
    report: LintReport,
) -> tuple[list[str], list[str]]:
    """Emit FL-WS-BLINDSPOT diagnostics; return (blindspots, covered)."""
    http_blocked: dict[str, int] = {}
    ws_seen: set[str] = set()
    ws_blocked: set[str] = set()
    for i, ctx in enumerate(contexts):
        if ctx.probe.is_websocket:
            ws_seen.add(ctx.domain)
            if blocked[i]:
                ws_blocked.add(ctx.domain)
        elif blocked[i]:
            http_blocked.setdefault(ctx.domain, i)

    # Evidence rule per domain: the first block rule matching the
    # domain's first blocked HTTP probe.
    def _evidence(probe_index: int) -> str:
        for entry in blocks:
            if probe_index in entry.matched:
                return entry.location
        return "<unknown>"

    blindspots = sorted(
        d for d in http_blocked if d in ws_seen and d not in ws_blocked
    )
    for domain in blindspots:
        report.add(Diagnostic(
            rule_id="FL-WS-BLINDSPOT",
            severity=Severity.WARNING,
            source=_evidence(http_blocked[domain]),
            message=(
                f"WebSocket blindspot: HTTP(S) traffic to {domain} is "
                f"blocked but every ws://-/wss:// probe to it gets "
                f"through — the §5 circumvention surface"
            ),
            fix_hint=f"add ||{domain}^$websocket",
        ))
    return blindspots, sorted(ws_blocked)


def websocket_blindspots(
    lists: list[FilterList], registry=None
) -> list[str]:
    """Just the blindspot domains (convenience for cross-checks)."""
    return analyze_filter_lists(lists, registry=registry).blindspot_domains
