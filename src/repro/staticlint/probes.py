"""The probe universe: concrete requests that filter rules are judged against.

Regex-subsumption between ABP patterns is undecidable in general, so the
filter-list analyzer grounds every judgement in a finite, deterministic
*URL universe*: a set of (url, resource type, first-party context)
probes. A rule is *dead* when it matches no probe; *shadowed* when an
earlier rule already decides every probe it matches. When the synthetic
web's company registry is available the universe is derived from it —
the same hosts, paths, and WebSocket endpoints the site generator emits
— so "dead" literally means "can never match the synthetic web". For
standalone lists the universe is synthesized from the rules themselves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.filters import DEFAULT_TYPES, FilterList, FilterRule
from repro.net.http import ResourceType

# The neutral embedding publisher: third-party to every company domain.
THIRD_PARTY_CONTEXT = "https://news-probe.example/"

# WebSocket paths mirroring repro.web.planner's endpoint choices.
_WS_PATHS = ("/socket", "/live")

_EXTENSION_TYPES = {
    ".js": ResourceType.SCRIPT,
    ".mjs": ResourceType.SCRIPT,
    ".css": ResourceType.STYLESHEET,
    ".gif": ResourceType.IMAGE,
    ".png": ResourceType.IMAGE,
    ".jpg": ResourceType.IMAGE,
    ".jpeg": ResourceType.IMAGE,
    ".svg": ResourceType.IMAGE,
    ".woff": ResourceType.FONT,
    ".woff2": ResourceType.FONT,
}

# Representative types to probe for a rule with several type options.
_PROBE_TYPE_PRIORITY = (
    ResourceType.SCRIPT,
    ResourceType.IMAGE,
    ResourceType.XHR,
    ResourceType.WEBSOCKET,
    ResourceType.SUB_FRAME,
    ResourceType.STYLESHEET,
    ResourceType.PING,
    ResourceType.MAIN_FRAME,
)


@dataclass(frozen=True)
class UrlProbe:
    """One concrete request the analyzers evaluate rules against.

    Attributes:
        url: Absolute URL (http/https/ws/wss).
        resource_type: The request's resource type.
        first_party_url: Top-level page URL giving party context.
    """

    url: str
    resource_type: ResourceType
    first_party_url: str = THIRD_PARTY_CONTEXT

    @property
    def is_websocket(self) -> bool:
        """Whether this probes a WebSocket handshake."""
        return self.url.startswith(("ws://", "wss://"))


def type_for_path(path: str) -> ResourceType:
    """Resource type implied by a URL path's extension (XHR otherwise)."""
    lowered = path.lower()
    for extension, rtype in _EXTENSION_TYPES.items():
        if lowered.endswith(extension):
            return rtype
    return ResourceType.XHR


@dataclass
class UrlUniverse:
    """A deterministic, de-duplicated probe set.

    Attributes:
        probes: The probes in stable construction order.
    """

    probes: list[UrlProbe]

    def __len__(self) -> int:
        return len(self.probes)

    def websocket_probes(self) -> list[UrlProbe]:
        """The subset probing WebSocket handshakes."""
        return [p for p in self.probes if p.is_websocket]

    @classmethod
    def from_registry(cls, registry) -> "UrlUniverse":
        """Build the universe the synthetic web actually serves.

        Mirrors ``repro.web.sitegen`` / ``planner`` URL construction:
        clean paths on the script host, blockable paths (and the
        ``/collect`` beacon) on the beacon host, WebSocket endpoints on
        the resolved ws host. Every URL is probed in both a third-party
        and a first-party page context so ``$third-party`` and
        ``$domain=`` constraints are exercised.
        """
        builder = _Builder()
        for company in sorted(registry.companies.values(), key=lambda c: c.domain):
            first_party = f"https://{company.domain}/"
            contexts = (THIRD_PARTY_CONTEXT, first_party)
            for path in company.clean_paths:
                url = f"https://{company.resolved_script_host()}{path}"
                for context in contexts:
                    builder.add(url, type_for_path(path), context)
            beacon_paths = tuple(company.blockable_paths) + ("/collect",)
            for path in beacon_paths:
                url = f"https://{company.beacon_host()}{path}"
                for context in contexts:
                    builder.add(url, type_for_path(path), context)
            for path in _WS_PATHS:
                for scheme in ("wss", "ws"):
                    url = f"{scheme}://{company.resolved_ws_host()}{path}"
                    builder.add(url, ResourceType.WEBSOCKET, THIRD_PARTY_CONTEXT)
        for domain in sorted(registry.saas_receiver_domains):
            for sub in ("ws", "push"):
                builder.add(
                    f"wss://{sub}.{domain}/socket",
                    ResourceType.WEBSOCKET,
                    THIRD_PARTY_CONTEXT,
                )
        return cls(probes=builder.probes)

    @classmethod
    def from_rules(cls, lists: list[FilterList]) -> "UrlUniverse":
        """Synthesize a universe from the rules themselves.

        Used when no registry is available (standalone list linting):
        each rule contributes URLs built from its own literal pattern,
        in every scheme and context the rule could plausibly see. Rules
        that cannot even match their own synthesized probes are
        structurally dead.
        """
        builder = _Builder()
        for filter_list in lists:
            for rule in filter_list.rules:
                for url in synthesize_urls(rule):
                    for rtype in _probe_types(rule):
                        for context in _probe_contexts(rule, url):
                            builder.add(url, rtype, context)
        return cls(probes=builder.probes)

    @classmethod
    def combined(cls, registry, lists: list[FilterList]) -> "UrlUniverse":
        """Registry universe extended with rule-derived WebSocket probes.

        The blindspot check needs ws probes even for domains the
        registry does not know (e.g. a hand-written list under test);
        rule-derived probes supply them without widening "dead" to mean
        "matches only its own synthesized URL".
        """
        universe = cls.from_registry(registry)
        builder = _Builder(universe.probes)
        for filter_list in lists:
            for rule in filter_list.rules:
                if not _explicitly_covers_websocket(rule):
                    continue
                for url in synthesize_urls(rule):
                    if url.startswith(("ws://", "wss://")):
                        builder.add(
                            url, ResourceType.WEBSOCKET, THIRD_PARTY_CONTEXT
                        )
        return cls(probes=builder.probes)


class _Builder:
    """Accumulates probes, de-duplicating while preserving order."""

    def __init__(self, initial: list[UrlProbe] | None = None) -> None:
        self.probes: list[UrlProbe] = list(initial or ())
        self._seen = {(p.url, p.resource_type, p.first_party_url)
                      for p in self.probes}

    def add(self, url: str, rtype: ResourceType, context: str) -> None:
        key = (url, rtype, context)
        if key not in self._seen:
            self._seen.add(key)
            self.probes.append(UrlProbe(url, rtype, context))


def _literalize(body: str) -> str:
    """Replace ABP wildcards in a pattern body with concrete characters."""
    return body.replace("*", "x").replace("^", "/")


def _explicitly_covers_websocket(rule: FilterRule) -> bool:
    """Whether the rule *intentionally* targets WebSocket handshakes.

    The implicit DEFAULT_TYPES set contains WEBSOCKET, so nearly every
    untyped rule technically "covers" the type. Synthesizing wss probes
    for those would let a rule manufacture its own ws coverage (e.g.
    ``||tracker.com/collect^`` blocking a fictional
    ``wss://tracker.com/collect``) and mask real blindspots: actual
    handshakes live on different hosts and paths. Only rules whose
    author wrote an explicit type option including ``websocket`` count.
    """
    types = rule.options.resource_types
    return ResourceType.WEBSOCKET in types and types != DEFAULT_TYPES


def synthesize_urls(rule: FilterRule) -> list[str]:
    """Concrete URLs built from a rule's literal pattern.

    ``||host/path^`` becomes ``https://host/path`` (and the ``wss``
    variant when the rule explicitly covers WebSockets); a bare
    ``/path`` pattern is mounted on a placeholder host. Patterns
    already carrying a scheme pass through with wildcards literalized.
    """
    pattern = rule.pattern
    schemes: list[str] = ["https"]
    if _explicitly_covers_websocket(rule):
        schemes.append("wss")
    if pattern.startswith("||"):
        body = _literalize(pattern[2:]).rstrip("/")
        if not body:
            return []
        if "/" not in body:
            body += "/"
        return [f"{scheme}://{body}" for scheme in schemes]
    body = pattern.strip("|")
    if "://" in body:
        return [_literalize(body)]
    body = _literalize(body)
    if not body or body == "/":
        body = "/x"
    if not body.startswith("/"):
        body = "/" + body
    return [f"{scheme}://rule-probe.example{body}" for scheme in schemes]


def _probe_types(rule: FilterRule) -> list[ResourceType]:
    """Representative resource types to probe a rule with (at most 3)."""
    available = rule.options.resource_types
    picked = [t for t in _PROBE_TYPE_PRIORITY if t in available]
    return picked[:3] if picked else [ResourceType.OTHER]


def _probe_contexts(rule: FilterRule, url: str) -> list[str]:
    """First-party contexts worth probing for one rule."""
    contexts = [THIRD_PARTY_CONTEXT]
    host = url.split("://", 1)[-1].split("/", 1)[0]
    if host:
        contexts.append(f"https://{host}/")
    for entry in rule.options.include_domains + rule.options.exclude_domains:
        contexts.append(f"https://{entry.lstrip('~')}/")
    return contexts
