"""Whole-program effect & architecture analysis (the FLOW-* rules).

Built on the single-parse core (:mod:`repro.staticlint.modgraph`) and
the effect fixpoint (:mod:`repro.staticlint.effects`), this module
enforces three *zone contracts* that per-file syntactic linting cannot:

* ``FLOW-DET`` — **determinism zones**: nothing under ``crawler/``,
  ``analysis/``, ``faults/``, or ``parallel/`` may transitively reach
  ``wallclock`` or ``rng``, except through the sanctioned wrappers
  ``repro.util.rng`` and ``repro.util.obsclock``. The per-file DET
  rules catch a direct ``time.time()``; this rule catches the helper
  two modules away that *wraps* it.
* ``FLOW-ASYNC`` — **async-readiness**: no ``blocking-io`` reachable
  from the crawl hot path (``browser/``, ``cdp/``, and the crawler
  core) — the pre-flight gate for the ROADMAP's asyncio refactor,
  where one synchronous ``open()`` under an event loop stalls every
  concurrent site crawl.
* ``FLOW-LAYER`` / ``FLOW-CYCLE`` — **architecture layering**: a
  declared layer DAG over the top-level packages (util at the bottom,
  experiments/cli at the top); imports that reach *upward* and
  package-level import cycles are flagged.
* ``OBS-PERF`` — **perf-observatory read-only zone**: nothing in
  ``repro.obs.perf`` / ``repro.obs.critical_path`` may transitively
  reach ``fs-write`` — trace analytics must never mutate what they
  analyze. The one sanctioned persistence path,
  ``repro.obs.history`` (the benchmark history append), masks the
  effect at its boundary exactly like the RNG/clock wrappers do for
  the determinism zones.
* ``SPOOL-RO`` — **spool-recovery read-only zone**: crash recovery
  (``repro.spool.recovery``) scans damaged segments and must not
  write through any path except the one sanctioned repair primitive,
  ``truncate_segment`` in ``repro.spool.segment`` — a recovery pass
  that could write anywhere else might destroy the very evidence
  (a torn tail, a corrupt frame) it exists to adjudicate.
* ``SERVE-RO`` — **query-serving read-only zone**: answering a
  `repro serve` query (``repro.serve.service`` / ``types`` /
  ``workers``) must be statically read-only — N workers share one
  immutable snapshot, so any write reachable from dispatch is a
  race or a side channel. Snapshot *builders* (which may warm the
  stage cache) and transcript writers deliberately live outside the
  zone; there is no sanctioned write sink inside it.

Every interprocedural finding carries the full call chain from the
zone entry point to the effect's origin, both rendered in the message
and structured in ``Diagnostic.trace``. Findings are identified by a
line-number-free ``baseline_key`` so ``staticlint-baseline.json`` can
hold currently-accepted violations and the CI gate fails only on new
ones (:mod:`repro.staticlint.baseline`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

from repro.staticlint.apilint import check_import_records
from repro.staticlint.cache import FactsCache
from repro.staticlint.diagnostics import Diagnostic, LintReport, Severity
from repro.staticlint.effects import (
    BLOCKING_IO,
    FS_WRITE,
    RNG,
    WALLCLOCK,
    propagate,
)
from repro.staticlint.modgraph import (
    EffectSeed,
    FileFacts,
    ProjectGraph,
    build_graph,
    extract_file_facts,
    source_sha256,
)

#: The declared architecture DAG: package -> layer. A package may
#: import any package at a *strictly lower* layer (plus itself);
#: importing upward is a FLOW-LAYER violation. Top-level modules
#: (``repro.cli``, ``repro.__main__``, the root ``__init__``) sit at
#: the top as the composition root. This replaces the ad-hoc
#: boundaries apilint used to be the only guardian of.
DEFAULT_LAYERS: Mapping[str, int] = {
    "util": 0,
    "net": 1, "cdp": 1,
    "filters": 2, "labeling": 2, "obs": 2, "faults": 2, "inclusion": 2,
    "web": 3, "extension": 3, "content": 3,
    "browser": 4, "staticlint": 4,
    "crawler": 5,
    "parallel": 6, "analysis": 6, "spool": 6,
    "experiments": 7, "serve": 7,
    "": 8,
}


@dataclass(frozen=True)
class FlowConfig:
    """The zone-contract configuration (defaults describe ``repro``).

    Attributes:
        root_package: Top package name the tree is rooted at.
        layers: The declared layer DAG, package name -> layer index.
        determinism_zones: Packages that must stay byte-reproducible.
        hot_path_prefixes: Dotted module prefixes whose functions form
            the crawl hot path (async-readiness zone).
        sanctioned_modules: Modules allowed to absorb ``wallclock`` and
            ``rng`` — effects do not propagate out of calls into them.
        perf_readonly_prefixes: Dotted module prefixes forming the
            perf observatory's read-only zone (no ``fs-write``).
        perf_sink_modules: The sanctioned persistence boundary for
            that zone — ``fs-write`` does not propagate out of calls
            into these modules (the history append path).
        spool_readonly_prefixes: Dotted module prefixes forming the
            spool-recovery read-only zone (no ``fs-write``).
        spool_sink_modules: The sanctioned repair boundary for that
            zone — segment primitives (``truncate_segment``) are the
            only place recovery-driven writes may happen.
        serve_readonly_prefixes: Dotted module prefixes forming the
            serving read-only zone (no ``fs-write``): answering a
            query must be statically read-only over the shared
            snapshot — snapshot *building* (which may warm the stage
            cache) and transcript writing live outside the zone.
        serve_sink_modules: Sanctioned write boundary for that zone
            — empty by default: serving has no sanctioned writes.
    """

    root_package: str = "repro"
    layers: Mapping[str, int] = field(
        default_factory=lambda: dict(DEFAULT_LAYERS)
    )
    determinism_zones: frozenset[str] = frozenset(
        {"crawler", "analysis", "faults", "parallel", "spool"}
    )
    hot_path_prefixes: tuple[str, ...] = (
        "repro.browser", "repro.cdp", "repro.crawler.crawler",
    )
    sanctioned_modules: frozenset[str] = frozenset(
        {"repro.util.rng", "repro.util.obsclock"}
    )
    perf_readonly_prefixes: tuple[str, ...] = (
        "repro.obs.perf", "repro.obs.critical_path",
    )
    perf_sink_modules: frozenset[str] = frozenset(
        {"repro.obs.history"}
    )
    spool_readonly_prefixes: tuple[str, ...] = (
        "repro.spool.recovery",
    )
    spool_sink_modules: frozenset[str] = frozenset(
        {"repro.spool.segment"}
    )
    serve_readonly_prefixes: tuple[str, ...] = (
        "repro.serve.service", "repro.serve.types", "repro.serve.workers",
    )
    serve_sink_modules: frozenset[str] = frozenset()

    def package_of(self, module: str, packages: frozenset[str]) -> str:
        """The layer-DAG package a module belongs to: its first path
        component under the root, or ``""`` for root-level modules."""
        parts = module.split(".")
        if len(parts) < 2:
            return ""
        candidate = f"{self.root_package}.{parts[1]}"
        if len(parts) > 2 or candidate in packages:
            return parts[1]
        return ""

    def in_hot_path(self, module: str) -> bool:
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.hot_path_prefixes
        )

    def in_perf_zone(self, module: str) -> bool:
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.perf_readonly_prefixes
        )

    def in_spool_zone(self, module: str) -> bool:
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.spool_readonly_prefixes
        )

    def in_serve_zone(self, module: str) -> bool:
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.serve_readonly_prefixes
        )

    def mask(self, node_module: str, effects: frozenset[str]) -> frozenset[str]:
        """The edge mask for the fixpoint: calls *into* a sanctioned
        module do not propagate clock or entropy effects out of it."""
        if node_module in self.sanctioned_modules:
            return effects - {WALLCLOCK, RNG}
        return effects


@dataclass
class FlowAnalysis:
    """Everything the whole-program pass produced.

    Attributes:
        config: The zone-contract configuration analyzed under.
        graph: The linked module/call graph.
        effects: Node id -> fixpoint effect set (sanction-masked).
        det_report: Per-file determinism findings (DET-*), from the
            same single parse.
        api_report: Package-boundary findings (API-*), same parse.
        flow_report: Zone-contract findings (FLOW-*), canonical order.
        parsed_files: Files that had to be parsed this run.
        cached_files: Files served from the facts cache (no parse).
    """

    config: FlowConfig
    graph: ProjectGraph
    effects: dict[str, frozenset[str]]
    det_report: LintReport
    api_report: LintReport
    flow_report: LintReport
    parsed_files: int = 0
    cached_files: int = 0


def scan_tree(
    package_root: Path,
    root: Path | None = None,
    cache: FactsCache | None = None,
) -> tuple[list[FileFacts], int, int]:
    """Extract (or load cached) facts for every file under a package
    root. Returns (facts, parsed count, cache-hit count)."""
    parsed = 0
    cached = 0
    facts_list: list[FileFacts] = []
    for path in sorted(package_root.rglob("*.py")):
        display = str(path.relative_to(root)) if root else str(path)
        source = path.read_text(encoding="utf-8")
        sha = source_sha256(source)
        facts = cache.load(display, sha) if cache is not None else None
        if facts is None:
            facts = extract_file_facts(display, source)
            parsed += 1
            if cache is not None:
                cache.store(facts)
        else:
            cached += 1
        facts_list.append(facts)
    return facts_list, parsed, cached


def _seed_for(node_seeds: tuple[EffectSeed, ...], effect: str) -> EffectSeed | None:
    for seed in node_seeds:
        if seed.effect == effect:
            return seed
    return None


def _trace_chain(
    graph: ProjectGraph,
    effects: Mapping[str, frozenset[str]],
    start: str,
    effect: str,
    mask: Callable[[str, frozenset[str]], frozenset[str]],
) -> tuple[list[str], EffectSeed | None]:
    """Shortest call chain from ``start`` to a node that directly
    seeds ``effect`` (BFS over sorted adjacency — deterministic)."""
    parents: dict[str, str | None] = {start: None}
    queue: deque[str] = deque([start])
    while queue:
        current = queue.popleft()
        seed = _seed_for(graph.nodes[current].seeds, effect)
        if seed is not None:
            chain: list[str] = []
            cursor: str | None = current
            while cursor is not None:
                chain.append(cursor)
                cursor = parents[cursor]
            chain.reverse()
            return chain, seed
        for callee in graph.calls.get(current, ()):
            if callee in parents or callee not in graph.nodes:
                continue
            carried = mask(graph.nodes[callee].module, effects[callee])
            if effect in carried:
                parents[callee] = current
                queue.append(callee)
    return [start], None


def _zone_findings(
    graph: ProjectGraph,
    effects: Mapping[str, frozenset[str]],
    in_zone: Callable[[str], bool],
    offending: frozenset[str],
    mask: Callable[[str, frozenset[str]], frozenset[str]],
    rule_id: str,
    zone_label: str,
    fix_hint: str,
) -> LintReport:
    """Flag the functions where an offending effect *enters* a zone:
    nodes that seed it directly, or whose direct callee outside the
    zone carries it. In-zone callers that merely inherit the effect
    from an already-flagged in-zone function are not re-flagged, so
    one leak yields one finding, at the crossing point."""
    report = LintReport()
    for node_id in sorted(graph.nodes):
        node = graph.nodes[node_id]
        if not in_zone(node.module):
            continue
        bad = effects[node_id] & offending
        for effect in sorted(bad):
            enters_here = _seed_for(node.seeds, effect) is not None
            if not enters_here:
                for callee in graph.calls.get(node_id, ()):
                    if callee not in graph.nodes:
                        continue
                    callee_module = graph.nodes[callee].module
                    carried = mask(callee_module, effects[callee])
                    if effect in carried and not in_zone(callee_module):
                        enters_here = True
                        break
            if not enters_here:
                continue
            chain, seed = _trace_chain(graph, effects, node_id, effect, mask)
            displays = tuple(graph.nodes[n].display for n in chain)
            origin = ""
            if seed is not None:
                origin_node = graph.nodes[chain[-1]]
                origin = (f" [{seed.call} at "
                          f"{origin_node.path}:{seed.lineno}]")
            depth = len(chain) - 1
            report.add(Diagnostic(
                rule_id=rule_id,
                severity=Severity.ERROR,
                source=f"{node.path}:{node.lineno}",
                message=(
                    f"{zone_label} reaches {effect} "
                    f"({depth} call(s) deep): "
                    + " -> ".join(displays) + origin
                ),
                fix_hint=fix_hint,
                trace=displays,
                baseline_key=f"{rule_id}::{node_id}::{effect}",
            ))
    return report


def _tarjan_sccs(adjacency: Mapping[str, tuple[str, ...]]) -> list[list[str]]:
    """Strongly connected components, iterative, deterministic order."""
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index_of[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            children = adjacency.get(node, ())
            for offset in range(child_index, len(children)):
                child = children[offset]
                if child not in adjacency:
                    continue
                if child not in index_of:
                    work.append((node, offset + 1))
                    work.append((child, 0))
                    recurse = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index_of[child])
            if recurse:
                continue
            if low[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    for node in sorted(adjacency):
        if node not in index_of:
            strongconnect(node)
    return sccs


def _layer_findings(graph: ProjectGraph, config: FlowConfig) -> LintReport:
    """FLOW-LAYER (upward imports, undeclared packages) and
    FLOW-CYCLE (package-level import cycles)."""
    report = LintReport()
    packages = frozenset(
        module for module in sorted(graph.facts)
        if graph.facts[module].is_package
    )
    unknown_reported: set[str] = set()
    package_edges: dict[str, set[str]] = {}
    edge_sites: dict[tuple[str, str], tuple[str, int]] = {}

    for module in sorted(graph.module_imports):
        source_pkg = config.package_of(module, packages)
        source_layer = config.layers.get(source_pkg)
        path = graph.facts[module].path
        if source_layer is None and source_pkg not in unknown_reported:
            unknown_reported.add(source_pkg)
            report.add(Diagnostic(
                rule_id="FLOW-LAYER",
                severity=Severity.WARNING,
                source=f"{path}:1",
                message=f"package {source_pkg!r} is not in the declared "
                        f"layer DAG",
                fix_hint="add it to repro.staticlint.flow.DEFAULT_LAYERS",
                baseline_key=f"FLOW-LAYER::unknown::{source_pkg}",
            ))
        for target, lineno in graph.module_imports[module]:
            target_pkg = config.package_of(target, packages)
            if target_pkg == source_pkg:
                continue
            target_layer = config.layers.get(target_pkg)
            package_edges.setdefault(source_pkg, set()).add(target_pkg)
            site = (source_pkg, target_pkg)
            if site not in edge_sites:
                edge_sites[site] = (path, lineno)
            if source_layer is None or target_layer is None:
                continue
            if target_layer > source_layer:
                report.add(Diagnostic(
                    rule_id="FLOW-LAYER",
                    severity=Severity.ERROR,
                    source=f"{path}:{lineno}",
                    message=(
                        f"upward import: {source_pkg or 'repro (root)'} "
                        f"(layer {source_layer}) imports {target} "
                        f"(layer {target_layer})"
                    ),
                    fix_hint="invert the dependency or move the shared "
                             "code to a lower layer",
                    baseline_key=f"FLOW-LAYER::{module}::{target}",
                ))

    adjacency = {
        pkg: tuple(sorted(targets))
        for pkg, targets in sorted(package_edges.items())
    }
    for scc in _tarjan_sccs(adjacency):
        if len(scc) < 2:
            continue
        ring = " <-> ".join(scc)
        path, lineno = min(
            edge_sites.get((a, b), ("", 0))
            for a in scc for b in scc
            if (a, b) in edge_sites
        )
        report.add(Diagnostic(
            rule_id="FLOW-CYCLE",
            severity=Severity.ERROR,
            source=f"{path}:{lineno}" if path else "package graph",
            message=f"package import cycle: {ring}",
            fix_hint="break the cycle with an interface module in a "
                     "lower layer",
            baseline_key=f"FLOW-CYCLE::{'->'.join(scc)}",
        ))
    return report


def analyze_facts(
    facts_list: list[FileFacts],
    config: FlowConfig | None = None,
) -> FlowAnalysis:
    """Link facts, run the effect fixpoint, and evaluate every rule.

    This is the cheap half of the pipeline — everything after the
    (cached) per-file extraction.
    """
    config = config or FlowConfig()
    graph = build_graph(facts_list, root_package=config.root_package)
    packages = frozenset(
        module for module in sorted(graph.facts)
        if graph.facts[module].is_package
    )

    seeds = {
        node_id: frozenset(seed.effect for seed in node_seeds)
        for node_id, node_seeds in sorted(graph.seed_index().items())
    }

    def edge_mask(callee: str, effects: frozenset[str]) -> frozenset[str]:
        return config.mask(graph.nodes[callee].module, effects)

    effects = propagate(seeds, graph.calls, mask=edge_mask)

    det_report = LintReport()
    api_report = LintReport()
    for facts in sorted(facts_list, key=lambda f: f.module):
        det_report.extend(facts.det)
        api_report.extend(check_import_records(
            facts.imports, facts.path, facts.module, packages
        ))

    def node_mask(module: str, node_effects: frozenset[str]) -> frozenset[str]:
        return config.mask(module, node_effects)

    def in_det_zone(module: str) -> bool:
        return config.package_of(module, packages) in (
            config.determinism_zones
        )

    flow_report = LintReport()
    flow_report.extend(_zone_findings(
        graph, effects, in_det_zone,
        frozenset({WALLCLOCK, RNG}), node_mask,
        "FLOW-DET", "determinism zone",
        "route clocks through repro.util.obsclock/simtime and entropy "
        "through repro.util.rng.RngStream",
    ))
    flow_report.extend(_zone_findings(
        graph, effects, config.in_hot_path,
        frozenset({BLOCKING_IO}), node_mask,
        "FLOW-ASYNC", "crawl hot path",
        "move the I/O off the hot path (spool/accountant) before the "
        "asyncio refactor",
    ))

    def perf_mask(module: str, node_effects: frozenset[str]) -> frozenset[str]:
        node_effects = config.mask(module, node_effects)
        if module in config.perf_sink_modules:
            return node_effects - {FS_WRITE}
        return node_effects

    flow_report.extend(_zone_findings(
        graph, effects, config.in_perf_zone,
        frozenset({FS_WRITE}), perf_mask,
        "OBS-PERF", "perf analytics (read-only over traces)",
        "analytics must not write; route persistence through "
        "repro.obs.history, the sanctioned history append path",
    ))

    def spool_mask(module: str, node_effects: frozenset[str]) -> frozenset[str]:
        node_effects = config.mask(module, node_effects)
        if module in config.spool_sink_modules:
            return node_effects - {FS_WRITE}
        return node_effects

    flow_report.extend(_zone_findings(
        graph, effects, config.in_spool_zone,
        frozenset({FS_WRITE}), spool_mask,
        "SPOOL-RO", "spool recovery (read-only over segments)",
        "recovery must not write; the one sanctioned repair is "
        "truncate_segment in repro.spool.segment",
    ))

    def serve_mask(module: str, node_effects: frozenset[str]) -> frozenset[str]:
        node_effects = config.mask(module, node_effects)
        if module in config.serve_sink_modules:
            return node_effects - {FS_WRITE}
        return node_effects

    flow_report.extend(_zone_findings(
        graph, effects, config.in_serve_zone,
        frozenset({FS_WRITE}), serve_mask,
        "SERVE-RO", "query serving (read-only over snapshots)",
        "serving must not write; build snapshots and write transcripts "
        "outside repro.serve.service/types/workers",
    ))
    flow_report.extend(_layer_findings(graph, config))

    return FlowAnalysis(
        config=config,
        graph=graph,
        effects=effects,
        det_report=det_report.canonical(),
        api_report=api_report.canonical(),
        flow_report=flow_report.canonical(),
    )


def analyze_tree(
    package_root: Path,
    root: Path | None = None,
    config: FlowConfig | None = None,
    cache: FactsCache | None = None,
) -> FlowAnalysis:
    """Scan a source tree (cached, single-parse) and analyze it."""
    facts_list, parsed, cached = scan_tree(package_root, root, cache)
    analysis = analyze_facts(facts_list, config)
    analysis.parsed_files = parsed
    analysis.cached_files = cached
    return analysis


def analyze_self(
    config: FlowConfig | None = None,
    cache: FactsCache | None = None,
) -> FlowAnalysis:
    """Analyze the installed ``repro`` package itself (the CI gate)."""
    package_root = Path(__file__).resolve().parents[1]
    return analyze_tree(
        package_root, root=package_root.parent, config=config, cache=cache
    )
