"""Static analysis of filter lists, webRequest patterns, and the repro itself.

The paper's §5 argument about which ad blockers were vulnerable to the
webRequest bug was itself a *static* analysis: Franken et al. inspected
extensions' ``webRequest`` URL match patterns (``http://*`` vs
``<all_urls>`` vs ``ws://*``) to predict WebSocket blindspots without
running a crawl. This package makes the same move over our own
artifacts, three analyzers sharing one diagnostic model:

* :mod:`repro.staticlint.filterlint` — dead, shadowed, and
  exception-related defects in parsed filter lists, and the headline
  **WebSocket blindspot** check: domains whose HTTP(S) traffic the
  lists block while their ``ws://``/``wss://`` traffic sails through;
* :mod:`repro.staticlint.webrequestlint` — Franken-style classification
  of a listener's match patterns and Chrome version into vulnerable /
  partially covered / safe, cross-validated against the dynamic
  ``bench_wrb.py`` ablation;
* :mod:`repro.staticlint.determinism` — an AST pass over ``src/repro``
  enforcing the calibration contract (no wall-clock reads, no unseeded
  randomness, no hash-order-dependent iteration) outside
  ``repro.util``;
* :mod:`repro.staticlint.flow` — the whole-program pass: one parse of
  the tree (:mod:`~repro.staticlint.modgraph`, content-address-cached
  by :mod:`~repro.staticlint.cache`) feeds a conservative call graph,
  an interprocedural effect fixpoint
  (:mod:`~repro.staticlint.effects`), and three zone contracts —
  determinism zones (FLOW-DET), async-readiness of the crawl hot path
  (FLOW-ASYNC), and architecture layering (FLOW-LAYER/FLOW-CYCLE) —
  ratcheted by :mod:`~repro.staticlint.baseline`.
"""

from repro.staticlint.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.staticlint.cache import FactsCache
from repro.staticlint.determinism import lint_paths, lint_self, lint_source_text
from repro.staticlint.diagnostics import Diagnostic, LintReport, Severity
from repro.staticlint.effects import ALL_EFFECTS, propagate, seed_for_call
from repro.staticlint.filterlint import (
    FilterListAnalysis,
    analyze_filter_lists,
    websocket_blindspots,
)
from repro.staticlint.flow import (
    FlowAnalysis,
    FlowConfig,
    analyze_facts,
    analyze_self,
    analyze_tree,
)
from repro.staticlint.modgraph import (
    FileFacts,
    ProjectGraph,
    build_graph,
    extract_file_facts,
)
from repro.staticlint.probes import UrlProbe, UrlUniverse
from repro.staticlint.runner import run_full_lint
from repro.staticlint.webrequestlint import (
    CoverageRecord,
    ListenerVerdict,
    classify_listener,
    cross_validate_receivers,
)

__all__ = [
    "Diagnostic",
    "LintReport",
    "Severity",
    "UrlProbe",
    "UrlUniverse",
    "FilterListAnalysis",
    "analyze_filter_lists",
    "websocket_blindspots",
    "ListenerVerdict",
    "CoverageRecord",
    "classify_listener",
    "cross_validate_receivers",
    "lint_source_text",
    "lint_paths",
    "lint_self",
    "run_full_lint",
    "ALL_EFFECTS",
    "propagate",
    "seed_for_call",
    "FileFacts",
    "ProjectGraph",
    "build_graph",
    "extract_file_facts",
    "FactsCache",
    "FlowAnalysis",
    "FlowConfig",
    "analyze_facts",
    "analyze_self",
    "analyze_tree",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
]
