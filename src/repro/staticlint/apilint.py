"""AST lint enforcing package API boundaries inside ``src/repro``.

``repro.analysis`` (and any other package) may keep internal helpers in
underscore-prefixed modules (``repro.analysis._codecs``) or names
(``_coerce_meta``). Those are package-private: importing them from
outside the owning package couples external code to internals that can
change without notice. One rule makes the boundary checkable in CI:

* ``API-PRIVATE`` — an import that reaches a private module
  (``import repro.x._y`` / ``from repro.x._y import ...`` /
  ``from repro.x import _y``) or a private name
  (``from repro.x.y import _name``) from a file whose own module path
  is not inside the owning package.

The owning package of ``repro.x._y`` (or of ``_name`` in
``repro.x.y``) is ``repro.x``; any module at or below ``repro.x`` may
import it freely. For ``from repro.x import _y`` the owner is
``repro.x`` itself when ``repro.x`` is a known package (``_y`` is then
a private submodule or a private name in its ``__init__``) — the
``packages`` argument supplies that knowledge, and the path-walking
entry points compute it from the ``__init__.py`` files they see.
Dunder names (``__version__``) are not private. A finding on a line
containing the pragma ``api: allow`` is suppressed.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.staticlint.diagnostics import Diagnostic, LintReport, Severity

_PRAGMA = "api: allow"


def _is_private(name: str) -> bool:
    return name.startswith("_") and not name.startswith("__")


def _module_of(path: str) -> str:
    """The dotted module path of a display path like ``repro/x/y.py``."""
    parts = list(Path(path).with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _within(module: str, package: str) -> bool:
    return module == package or module.startswith(package + ".")


def _owning_package(module_parts: list[str], private_index: int) -> str:
    """The package allowed to import the private component."""
    return ".".join(module_parts[:private_index])


class _ApiVisitor(ast.NodeVisitor):
    """One file's worth of boundary checking."""

    def __init__(
        self,
        path: str,
        module: str,
        lines: list[str],
        packages: frozenset[str] = frozenset(),
    ) -> None:
        self.path = path
        self.module = module
        self.lines = lines
        self.packages = packages
        self.diagnostics: list[Diagnostic] = []

    def _add(self, node: ast.AST, target: str, owner: str) -> None:
        lineno = getattr(node, "lineno", 0)
        if 1 <= lineno <= len(self.lines) and _PRAGMA in self.lines[lineno - 1]:
            return
        self.diagnostics.append(Diagnostic(
            rule_id="API-PRIVATE",
            severity=Severity.ERROR,
            source=f"{self.path}:{lineno}",
            message=f"import of package-private {target!r} from outside "
                    f"{owner!r}",
            fix_hint=f"use the public API re-exported by {owner}, or move "
                     f"the importer into the package",
        ))

    def _check_module(self, node: ast.AST, module: str) -> None:
        """Flag ``repro.x._y`` module paths imported from outside."""
        parts = module.split(".")
        if parts[0] != "repro":
            return
        for index, part in enumerate(parts):
            if _is_private(part):
                owner = _owning_package(parts, index)
                if not _within(self.module, owner):
                    self._add(node, module, owner)
                return

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check_module(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level or not module.startswith("repro"):
            # Relative imports stay inside the package by construction.
            self.generic_visit(node)
            return
        self._check_module(node, module)
        parts = module.split(".")
        if not any(_is_private(part) for part in parts):
            # Private *names* out of a public module: the owner is the
            # package containing that module — or the module itself
            # when it is a package (the name is then a private
            # submodule or private in its __init__).
            if module in self.packages:
                owner = module
            else:
                owner = _owning_package(parts, len(parts) - 1) or module
            for alias in node.names:
                if _is_private(alias.name) and not _within(self.module, owner):
                    self._add(node, f"{module}.{alias.name}", owner)
        self.generic_visit(node)


def lint_api_source(
    path: str,
    source: str,
    packages: frozenset[str] = frozenset(),
) -> LintReport:
    """Boundary-lint one file's source text.

    ``packages`` names the dotted paths known to be packages (have an
    ``__init__.py``); without it, ``from repro.x import _y`` assumes
    ``repro.x`` is a plain module and attributes ``_y`` to its parent.
    """
    report = LintReport()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        report.add(Diagnostic(
            rule_id="API-SYNTAX",
            severity=Severity.ERROR,
            source=f"{path}:{error.lineno or 0}",
            message=f"cannot parse: {error.msg}",
        ))
        return report
    visitor = _ApiVisitor(
        path, _module_of(path), source.splitlines(), packages
    )
    visitor.visit(tree)
    report.extend(visitor.diagnostics)
    return report


def lint_api_paths(paths: list[Path], root: Path | None = None) -> LintReport:
    """Boundary-lint Python files (display paths relative to ``root``)."""
    displays = {
        path: str(path.relative_to(root)) if root else str(path)
        for path in sorted(paths)
    }
    packages = frozenset(
        _module_of(display)
        for path, display in displays.items()
        if path.name == "__init__.py"
    )
    report = LintReport()
    for path in sorted(paths):
        report.extend(lint_api_source(
            displays[path], path.read_text(encoding="utf-8"),
            packages=packages,
        ))
    return report


def lint_api_self() -> LintReport:
    """Boundary-lint the installed ``repro`` package (the CI gate)."""
    import repro

    package_root = Path(repro.__file__).parent
    return lint_api_paths(
        list(package_root.rglob("*.py")), root=package_root.parent
    )
