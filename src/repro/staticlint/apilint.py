"""AST lint enforcing package API boundaries inside ``src/repro``.

``repro.analysis`` (and any other package) may keep internal helpers in
underscore-prefixed modules (``repro.analysis._codecs``) or names
(``_coerce_meta``). Those are package-private: importing them from
outside the owning package couples external code to internals that can
change without notice. One rule makes the boundary checkable in CI:

* ``API-PRIVATE`` — an import that reaches a private module
  (``import repro.x._y`` / ``from repro.x._y import ...`` /
  ``from repro.x import _y``) or a private name
  (``from repro.x.y import _name``) from a file whose own module path
  is not inside the owning package.
* ``API-FACADE`` — an import that reaches *into* a facade-gated
  package by dotted submodule path (``from repro.filters.engine
  import ...`` / ``import repro.obs.history``) from a file outside
  that package. The gated packages (:data:`FACADE_PACKAGES`) publish
  an explicit ``__all__`` on their ``__init__``; everything else in
  them is internal layout that may move without notice. Import from
  the package facade — or from the root-level ``repro.api`` module,
  which re-exports the sanctioned union. A record that already
  violates ``API-PRIVATE`` reports only that (one finding per
  import).

The owning package of ``repro.x._y`` (or of ``_name`` in
``repro.x.y``) is ``repro.x``; any module at or below ``repro.x`` may
import it freely. For ``from repro.x import _y`` the owner is
``repro.x`` itself when ``repro.x`` is a known package (``_y`` is then
a private submodule or a private name in its ``__init__``) — the
``packages`` argument supplies that knowledge, and the path-walking
entry points compute it from the ``__init__.py`` files they see.
Dunder names (``__version__``) are not private. A finding on a line
containing the pragma ``api: allow`` is suppressed.

The rule is expressed over :class:`ImportRecord` facts rather than raw
AST so the single-parse core (:mod:`repro.staticlint.modgraph`) can
extract records once per file, cache them content-addressed by source
hash, and re-check boundaries on every run without re-parsing anything.
:func:`lint_api_source` remains the standalone one-file entry point
(parse, collect, check) used by tests and the legacy path-walking gate.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from repro.staticlint.diagnostics import Diagnostic, LintReport, Severity

_PRAGMA = "api: allow"

#: Packages whose submodules are internal: cross-package code must go
#: through the package facade (``from repro.filters import ...``) or
#: the root-level ``repro.api`` aggregate. Same set the serve redesign
#: froze — extend it when a package grows a deliberate ``__all__``.
FACADE_PACKAGES = frozenset({
    "repro.analysis",
    "repro.filters",
    "repro.obs",
    "repro.serve",
    "repro.spool",
})


@dataclass(frozen=True)
class ImportRecord:
    """One imported binding, as extracted by the single-parse core.

    A plain ``import x.y as z`` yields one record per alias with
    ``name=""``; a ``from m import n as a`` yields one record per
    imported name. ``bound`` is the local name the import binds (the
    call-graph linker resolves calls through it); ``suppressed`` is
    True when the source line carries the ``api: allow`` pragma.
    """

    module: str
    name: str = ""
    bound: str = ""
    lineno: int = 0
    level: int = 0
    suppressed: bool = False

    def to_json(self) -> dict:
        """Cache-file form."""
        return {
            "module": self.module, "name": self.name, "bound": self.bound,
            "lineno": self.lineno, "level": self.level,
            "suppressed": self.suppressed,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ImportRecord":
        return cls(
            module=payload["module"], name=payload["name"],
            bound=payload["bound"], lineno=payload["lineno"],
            level=payload["level"], suppressed=payload["suppressed"],
        )


def _is_private(name: str) -> bool:
    return name.startswith("_") and not name.startswith("__")


def _module_of(path: str) -> str:
    """The dotted module path of a display path like ``repro/x/y.py``."""
    parts = list(Path(path).with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _within(module: str, package: str) -> bool:
    return module == package or module.startswith(package + ".")


def _owning_package(module_parts: list[str], private_index: int) -> str:
    """The package allowed to import the private component."""
    return ".".join(module_parts[:private_index])


def collect_import_records(tree: ast.AST, lines: list[str]) -> list[ImportRecord]:
    """Every import binding in a parsed module, in source order."""
    records: list[ImportRecord] = []

    def suppressed(lineno: int) -> bool:
        return 1 <= lineno <= len(lines) and _PRAGMA in lines[lineno - 1]

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                records.append(ImportRecord(
                    module=alias.name,
                    bound=alias.asname or alias.name.split(".")[0],
                    lineno=node.lineno,
                    suppressed=suppressed(node.lineno),
                ))
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                records.append(ImportRecord(
                    module=node.module or "",
                    name=alias.name,
                    bound=alias.asname or alias.name,
                    lineno=node.lineno,
                    level=node.level,
                    suppressed=suppressed(node.lineno),
                ))
    return records


def _private_violation(
    record: ImportRecord, module: str, packages: frozenset[str],
) -> tuple[str, str] | None:
    """The (target, owner) pair when the record crosses a boundary."""
    if record.level or not record.module.startswith("repro"):
        # Relative imports stay inside the package by construction;
        # non-repro imports are out of scope.
        return None
    parts = record.module.split(".")
    for index, part in enumerate(parts):
        if _is_private(part):
            owner = _owning_package(parts, index)
            if not _within(module, owner):
                return record.module, owner
            return None
    if record.name and _is_private(record.name):
        # Private *name* out of a public module: the owner is the
        # package containing that module — or the module itself when it
        # is a package (the name is then a private submodule or private
        # in its ``__init__``).
        if record.module in packages:
            owner = record.module
        else:
            owner = _owning_package(parts, len(parts) - 1) or record.module
        if not _within(module, owner):
            return f"{record.module}.{record.name}", owner
    return None


def _facade_violation(
    record: ImportRecord, module: str, facade_packages: frozenset[str],
) -> tuple[str, str] | None:
    """The (target, owner) pair when the record bypasses a facade."""
    if record.level or not record.module.startswith("repro"):
        return None
    for owner in facade_packages:
        if record.module.startswith(owner + "."):
            if not _within(module, owner):
                return record.module, owner
            return None
    return None


def check_import_records(
    records: list[ImportRecord],
    path: str,
    module: str,
    packages: frozenset[str] = frozenset(),
    facade_packages: frozenset[str] = FACADE_PACKAGES,
) -> LintReport:
    """API-PRIVATE/API-FACADE findings for one module's import records."""
    report = LintReport()
    for record in records:
        if record.suppressed:
            continue
        violation = _private_violation(record, module, packages)
        if violation is not None:
            target, owner = violation
            report.add(Diagnostic(
                rule_id="API-PRIVATE",
                severity=Severity.ERROR,
                source=f"{path}:{record.lineno}",
                message=f"import of package-private {target!r} from outside "
                        f"{owner!r}",
                fix_hint=f"use the public API re-exported by {owner}, or "
                         f"move the importer into the package",
            ))
            continue
        bypass = _facade_violation(record, module, facade_packages)
        if bypass is None:
            continue
        target, owner = bypass
        report.add(Diagnostic(
            rule_id="API-FACADE",
            severity=Severity.ERROR,
            source=f"{path}:{record.lineno}",
            message=f"deep import of {target!r} bypasses the {owner!r} "
                    f"facade",
            fix_hint=f"import the name from {owner} (or repro.api); "
                     f"submodule paths under it are internal layout",
        ))
    return report


def lint_api_parsed(
    tree: ast.AST,
    path: str,
    lines: list[str],
    packages: frozenset[str] = frozenset(),
) -> LintReport:
    """Boundary-lint an already-parsed module (no re-parse)."""
    return check_import_records(
        collect_import_records(tree, lines), path, _module_of(path), packages
    )


def lint_api_source(
    path: str,
    source: str,
    packages: frozenset[str] = frozenset(),
) -> LintReport:
    """Boundary-lint one file's source text.

    ``packages`` names the dotted paths known to be packages (have an
    ``__init__.py``); without it, ``from repro.x import _y`` assumes
    ``repro.x`` is a plain module and attributes ``_y`` to its parent.
    """
    report = LintReport()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        report.add(Diagnostic(
            rule_id="API-SYNTAX",
            severity=Severity.ERROR,
            source=f"{path}:{error.lineno or 0}",
            message=f"cannot parse: {error.msg}",
        ))
        return report
    report.extend(lint_api_parsed(tree, path, source.splitlines(), packages))
    return report


def lint_api_paths(paths: list[Path], root: Path | None = None) -> LintReport:
    """Boundary-lint Python files (display paths relative to ``root``)."""
    displays = {
        path: str(path.relative_to(root)) if root else str(path)
        for path in sorted(paths)
    }
    packages = frozenset(
        _module_of(display)
        for path, display in displays.items()
        if path.name == "__init__.py"
    )
    report = LintReport()
    for path in sorted(paths):
        report.extend(lint_api_source(
            displays[path], path.read_text(encoding="utf-8"),
            packages=packages,
        ))
    return report


def lint_api_self() -> LintReport:
    """Boundary-lint the installed ``repro`` package (the CI gate)."""
    package_root = Path(__file__).resolve().parents[1]
    return lint_api_paths(
        list(package_root.rglob("*.py")), root=package_root.parent
    )
