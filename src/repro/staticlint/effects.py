"""The effect lattice and its interprocedural fixpoint.

The flow analyzer (:mod:`repro.staticlint.flow`) reasons about six
*effects* — observable behaviors that make a function unsuitable for
some zone of the codebase:

* ``wallclock``    — reads the host's wall clock or monotonic/perf
  counters (``time.time``, ``datetime.now``, ``time.perf_counter`` …);
* ``rng``          — draws unseeded entropy (``random``, ``secrets``,
  ``uuid.uuid4``, ``os.urandom``);
* ``blocking-io``  — performs synchronous I/O (``open``, ``Path.read_text``,
  ``socket``, ``time.sleep``, ``input`` …);
* ``fs-write``     — mutates the filesystem (``Path.write_text``,
  ``mkdir``, ``os.remove`` …; always implies ``blocking-io``);
* ``global-mutate``— rebinds module-level state (a ``global`` statement
  executed inside a function);
* ``subprocess``   — spawns processes (``subprocess``, ``os.system`` …;
  always implies ``blocking-io``).

A function's *direct* effects are seeded syntactically from a table of
known stdlib/third-party calls — the same call tables the per-file
DET/DET-OBS rules in :mod:`repro.staticlint.determinism` sanction — and
then propagated transitively over the conservative call graph by
:func:`propagate`: the effect set of a function is its own seeds joined
with the (possibly masked) effects of everything it calls. The lattice
is a finite powerset, the transfer function is monotone, so the
fixpoint exists, is unique, and is independent of the order nodes are
processed in (pinned by a hypothesis property test).
"""

from __future__ import annotations

from typing import AbstractSet, Callable, Iterable, Mapping, Sequence

WALLCLOCK = "wallclock"
RNG = "rng"
BLOCKING_IO = "blocking-io"
FS_WRITE = "fs-write"
GLOBAL_MUTATE = "global-mutate"
SUBPROCESS = "subprocess"

#: Every effect in the lattice, in canonical order.
ALL_EFFECTS: tuple[str, ...] = (
    WALLCLOCK, RNG, BLOCKING_IO, FS_WRITE, GLOBAL_MUTATE, SUBPROCESS,
)

# -- seed tables -----------------------------------------------------------
#
# Exact dotted-call seeds. Keys are the resolved callee ("time.time",
# "datetime.datetime.now"); values are the effects one call implies.
# These deliberately mirror the determinism linter's call tables
# (_TIME_ATTRS / _PERF_ATTRS / _DATETIME_ATTRS) so the two analyzers
# can never disagree about what counts as a clock or entropy read.

_CLOCK = frozenset({WALLCLOCK})
_ENTROPY = frozenset({RNG})
_IO = frozenset({BLOCKING_IO})
_WRITE = frozenset({BLOCKING_IO, FS_WRITE})
_SPAWN = frozenset({BLOCKING_IO, SUBPROCESS})

SEED_EXACT: Mapping[str, frozenset[str]] = {
    # wallclock — host clock and monotonic/perf counters alike: both
    # break byte-reproducibility when they reach a determinism zone.
    "time.time": _CLOCK,
    "time.time_ns": _CLOCK,
    "time.localtime": _CLOCK,
    "time.gmtime": _CLOCK,
    "time.ctime": _CLOCK,
    "time.strftime": _CLOCK,
    "time.monotonic": _CLOCK,
    "time.monotonic_ns": _CLOCK,
    "time.perf_counter": _CLOCK,
    "time.perf_counter_ns": _CLOCK,
    "datetime.datetime.now": _CLOCK,
    "datetime.datetime.utcnow": _CLOCK,
    "datetime.datetime.today": _CLOCK,
    "datetime.date.today": _CLOCK,
    # rng
    "uuid.uuid1": _ENTROPY,
    "uuid.uuid4": _ENTROPY,
    "os.urandom": _ENTROPY,
    # blocking-io
    "time.sleep": _IO,
    "builtins.open": _IO,
    "builtins.input": _IO,
    "builtins.print": frozenset(),  # line-buffered; too noisy to flag
    "io.open": _IO,
    "os.read": _IO,
    "os.write": _IO,
    "os.listdir": _IO,
    "os.scandir": _IO,
    "os.stat": _IO,
    "os.walk": _IO,
    # fs-write
    "os.mkdir": _WRITE,
    "os.makedirs": _WRITE,
    "os.remove": _WRITE,
    "os.unlink": _WRITE,
    "os.rmdir": _WRITE,
    "os.rename": _WRITE,
    "os.replace": _WRITE,
    "os.truncate": _WRITE,
    "os.chmod": _WRITE,
    "tempfile.mkdtemp": _WRITE,
    "tempfile.mkstemp": _WRITE,
    "tempfile.NamedTemporaryFile": _WRITE,
    "tempfile.TemporaryDirectory": _WRITE,
    # subprocess
    "os.system": _SPAWN,
    "os.popen": _SPAWN,
    "os.fork": _SPAWN,
    "os.execv": _SPAWN,
    "os.execve": _SPAWN,
    "os.spawnl": _SPAWN,
    "os.spawnv": _SPAWN,
}

#: Dotted-prefix seeds: any call into these module families carries the
#: effects (e.g. every ``random.*`` draw is entropy).
SEED_PREFIX: Mapping[str, frozenset[str]] = {
    "random.": _ENTROPY,
    "secrets.": _ENTROPY,
    "socket.": _IO,
    "select.": _IO,
    "ssl.": _IO,
    "urllib.": _IO,
    "http.": _IO,
    "requests.": _IO,
    "shutil.": _WRITE,
    "subprocess.": _SPAWN,
    "multiprocessing.": _SPAWN,
}

#: Method names seeded regardless of receiver. Only names that are
#: unmistakably filesystem verbs belong here (``pathlib.Path`` API):
#: generic names like ``.open``/``.read``/``.write`` also appear on the
#: *simulated* network stack (``repro.net.websocket``), so seeding them
#: blindly would poison the whole simulator with phantom I/O. ``.open``
#: is seeded only when called with a literal mode string (see
#: :func:`open_mode_effects`).
SEED_METHOD: Mapping[str, frozenset[str]] = {
    "read_text": _IO,
    "read_bytes": _IO,
    "iterdir": _IO,
    "write_text": _WRITE,
    "write_bytes": _WRITE,
    "mkdir": _WRITE,
    "rmdir": _WRITE,
    "unlink": _WRITE,
    "touch": _WRITE,
    "rename": _WRITE,
    # NOT "replace": str.replace/datetime.replace are everywhere.
}


def seed_for_call(dotted: str) -> frozenset[str]:
    """The effects a resolved dotted call (``time.time``) implies,
    empty when the call is effect-free or unknown."""
    exact = SEED_EXACT.get(dotted)
    if exact is not None:
        return exact
    for prefix in sorted(SEED_PREFIX):
        if dotted.startswith(prefix):
            return SEED_PREFIX[prefix]
    return frozenset()


def open_mode_effects(mode: str) -> frozenset[str]:
    """Effects of ``something.open(mode)`` with a literal mode string:
    always blocking-io, plus fs-write for writing/appending modes."""
    if any(flag in mode for flag in "wax+"):
        return _WRITE
    return _IO


MaskFn = Callable[[str, frozenset[str]], frozenset[str]]


def propagate(
    seeds: Mapping[str, AbstractSet[str]],
    calls: Mapping[str, Iterable[str]],
    mask: MaskFn | None = None,
    order: Sequence[str] | None = None,
) -> dict[str, frozenset[str]]:
    """The interprocedural effect fixpoint.

    Args:
        seeds: Per-node direct effects (node ids are opaque strings;
            the flow analyzer uses ``module:qualname``).
        calls: Per-node callee lists (edges of the call graph). Callees
            absent from both mappings contribute nothing.
        mask: Optional edge filter ``mask(callee, callee_effects) ->
            propagated_effects``. The flow analyzer uses it to stop
            ``wallclock``/``rng`` at the sanctioned RNG/obs-clock
            boundary. Must be monotone (a subset in yields a subset
            out) for the fixpoint guarantees to hold; removing a fixed
            set of effects — the only use here — is.
        order: Initial worklist order, for the order-independence
            property test. Any permutation of the node set yields the
            same result; callers never need to pass it.

    Returns:
        Node id -> the least fixpoint effect set, for every node named
        by ``seeds`` or ``calls``, keyed in sorted order.
    """
    nodes = sorted(set(seeds) | set(calls))
    effects: dict[str, frozenset[str]] = {
        node: frozenset(seeds.get(node, ())) for node in nodes
    }
    edges: dict[str, tuple[str, ...]] = {
        node: tuple(sorted(set(calls.get(node, ())))) for node in nodes
    }
    # Reverse edges: when a callee's set grows, its callers must be
    # revisited.
    callers: dict[str, list[str]] = {node: [] for node in nodes}
    for node in nodes:
        for callee in edges[node]:
            if callee in callers:
                callers[callee].append(node)

    worklist: list[str] = list(order) if order is not None else list(nodes)
    queued = set(worklist)
    while worklist:
        node = worklist.pop()
        queued.discard(node)
        merged = effects[node]
        for callee in edges[node]:
            inherited = effects.get(callee)
            if inherited is None:
                continue
            if mask is not None:
                inherited = mask(callee, inherited)
            merged = merged | inherited
        if merged != effects[node]:
            effects[node] = merged
            for caller in sorted(callers[node]):
                if caller not in queued:
                    worklist.append(caller)
                    queued.add(caller)
    return {node: effects[node] for node in nodes}
