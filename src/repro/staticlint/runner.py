"""Orchestration: run every analyzer over the repro's own artifacts.

This is what ``repro lint`` invokes: the filter-list analyzer over the
bundled synthetic EasyList/EasyPrivacy, the webRequest pattern analyzer
over the blocker's two real configurations (ws-aware and the Franken
``http://*``-only pitfall) on both sides of the Chrome 58 patch — with
the static verdicts cross-validated against dynamic dispatch — and,
when asked, the determinism linter over ``src/repro`` itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.staticlint.baseline import (
    apply_baseline,
    default_baseline_path,
    load_baseline,
)
from repro.staticlint.cache import FactsCache
from repro.staticlint.diagnostics import LintReport
from repro.staticlint.flow import FlowAnalysis, analyze_self
from repro.staticlint.filterlint import FilterListAnalysis, analyze_filter_lists
from repro.staticlint.webrequestlint import (
    CoverageRecord,
    ListenerVerdict,
    classify_listener,
    cross_validate_receivers,
    cross_validation_report,
)

# The four listener configurations bench_wrb.py ablates dynamically.
_LISTENER_CONFIGS: tuple[tuple[str, int, bool], ...] = (
    ("Chrome 57 + ws-aware blocker", 57, True),
    ("Chrome 57 + http-only blocker", 57, False),
    ("Chrome 58 + ws-aware blocker", 58, True),
    ("Chrome 58 + http-only blocker", 58, False),
)

_WS_AWARE_PATTERNS = ("http://*", "https://*", "ws://*", "wss://*")
_HTTP_ONLY_PATTERNS = ("http://*", "https://*")


@dataclass
class FullLintResult:
    """Everything ``repro lint`` produced.

    Attributes:
        filter_analysis: Filter-list analyzer output over the bundled
            lists (``None`` when that stage was skipped).
        listener_verdicts: Static classification of each blocker
            configuration, as (label, verdict) pairs.
        cross_checks: Per-configuration static-vs-dynamic receiver
            records, keyed by configuration label.
        self_report: Determinism lint over ``src/repro`` (``None`` when
            skipped).
        api_report: Package-boundary lint over ``src/repro`` (``None``
            when skipped; runs alongside the determinism self-lint).
        flow_report: Whole-program zone-contract lint (FLOW-*) over
            ``src/repro``, baseline already applied (``None`` when
            skipped). All three self reports come from ONE parse of the
            tree — see :mod:`repro.staticlint.flow`.
        flow_analysis: The underlying whole-program analysis (graph,
            effect fixpoint, cache hit counters).
        baselined: FLOW findings demoted to warnings because they are
            recorded in ``staticlint-baseline.json``.
        report: All diagnostics merged across analyzers, canonical
            (stable-sorted, deduped — byte-stable between runs).
    """

    filter_analysis: FilterListAnalysis | None = None
    listener_verdicts: list[tuple[str, ListenerVerdict]] = field(
        default_factory=list
    )
    cross_checks: dict[str, list[CoverageRecord]] = field(default_factory=dict)
    self_report: LintReport | None = None
    api_report: LintReport | None = None
    flow_report: LintReport | None = None
    flow_analysis: FlowAnalysis | None = None
    baselined: int = 0
    report: LintReport = field(default_factory=LintReport)

    @property
    def exit_code(self) -> int:
        """Non-zero when the determinism, API-boundary, or zone
        contract is violated (modulo the baseline — baselined findings
        are warnings) or a static verdict disagreed with dynamic
        dispatch."""
        failing = [
            d for d in self.report.errors
            if d.rule_id.startswith(("DET-", "API-", "FLOW-", "OBS-",
                                     "SPOOL-", "SERVE-"))
            or d.rule_id == "WR-XCHECK"
        ]
        return 1 if failing else 0


def run_full_lint(
    registry=None,
    check_lists: bool = True,
    check_webrequest: bool = True,
    check_self: bool = True,
    baseline: frozenset[str] | None = None,
    cache: FactsCache | None = None,
) -> FullLintResult:
    """Run the selected analyzers; see :class:`FullLintResult`.

    Args:
        registry: Web registry for the filter/webRequest stages.
        check_lists: Run the filter-list analyzer.
        check_webrequest: Run the listener classifier + cross-check.
        check_self: Run the whole-program self-lint (DET/API/FLOW).
        baseline: Accepted FLOW baseline keys; ``None`` loads the
            committed ``staticlint-baseline.json`` (missing file =
            empty baseline).
        cache: Content-addressed facts cache; ``None`` parses every
            file fresh.
    """
    from repro.web.filterlists import build_filter_lists
    from repro.web.registry import default_registry

    if registry is None and (check_lists or check_webrequest):
        registry = default_registry()
    result = FullLintResult()

    lists = build_filter_lists(registry) if registry else []
    if check_lists:
        result.filter_analysis = analyze_filter_lists(lists, registry=registry)
        result.report.extend(result.filter_analysis.report)

    if check_webrequest:
        for label, chrome_major, ws_aware in _LISTENER_CONFIGS:
            patterns = _WS_AWARE_PATTERNS if ws_aware else _HTTP_ONLY_PATTERNS
            verdict, verdict_report = classify_listener(patterns, chrome_major)
            result.listener_verdicts.append((label, verdict))
            result.report.extend(verdict_report)
            records = cross_validate_receivers(
                lists, registry, chrome_major, websocket_aware=ws_aware
            )
            result.cross_checks[label] = records
            result.report.extend(cross_validation_report(records))

    if check_self:
        accepted = (
            baseline if baseline is not None
            else load_baseline(default_baseline_path())
        )
        analysis = analyze_self(cache=cache)
        result.flow_analysis = analysis
        result.self_report = analysis.det_report
        result.api_report = analysis.api_report
        result.flow_report, result.baselined = apply_baseline(
            analysis.flow_report, accepted
        )
        result.report.extend(result.self_report)
        result.report.extend(result.api_report)
        result.report.extend(result.flow_report)

    result.report = result.report.canonical()
    return result
