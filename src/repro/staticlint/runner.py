"""Orchestration: run every analyzer over the repro's own artifacts.

This is what ``repro lint`` invokes: the filter-list analyzer over the
bundled synthetic EasyList/EasyPrivacy, the webRequest pattern analyzer
over the blocker's two real configurations (ws-aware and the Franken
``http://*``-only pitfall) on both sides of the Chrome 58 patch — with
the static verdicts cross-validated against dynamic dispatch — and,
when asked, the determinism linter over ``src/repro`` itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.staticlint.apilint import lint_api_self
from repro.staticlint.determinism import lint_self
from repro.staticlint.diagnostics import LintReport
from repro.staticlint.filterlint import FilterListAnalysis, analyze_filter_lists
from repro.staticlint.webrequestlint import (
    CoverageRecord,
    ListenerVerdict,
    classify_listener,
    cross_validate_receivers,
    cross_validation_report,
)

# The four listener configurations bench_wrb.py ablates dynamically.
_LISTENER_CONFIGS: tuple[tuple[str, int, bool], ...] = (
    ("Chrome 57 + ws-aware blocker", 57, True),
    ("Chrome 57 + http-only blocker", 57, False),
    ("Chrome 58 + ws-aware blocker", 58, True),
    ("Chrome 58 + http-only blocker", 58, False),
)

_WS_AWARE_PATTERNS = ("http://*", "https://*", "ws://*", "wss://*")
_HTTP_ONLY_PATTERNS = ("http://*", "https://*")


@dataclass
class FullLintResult:
    """Everything ``repro lint`` produced.

    Attributes:
        filter_analysis: Filter-list analyzer output over the bundled
            lists (``None`` when that stage was skipped).
        listener_verdicts: Static classification of each blocker
            configuration, as (label, verdict) pairs.
        cross_checks: Per-configuration static-vs-dynamic receiver
            records, keyed by configuration label.
        self_report: Determinism lint over ``src/repro`` (``None`` when
            skipped).
        api_report: Package-boundary lint over ``src/repro`` (``None``
            when skipped; runs alongside the determinism self-lint).
        report: All diagnostics merged, in stage order.
    """

    filter_analysis: FilterListAnalysis | None = None
    listener_verdicts: list[tuple[str, ListenerVerdict]] = field(
        default_factory=list
    )
    cross_checks: dict[str, list[CoverageRecord]] = field(default_factory=dict)
    self_report: LintReport | None = None
    api_report: LintReport | None = None
    report: LintReport = field(default_factory=LintReport)

    @property
    def exit_code(self) -> int:
        """Non-zero when the determinism or API-boundary contract is
        violated or a static verdict disagreed with dynamic dispatch."""
        failing = [
            d for d in self.report.errors
            if d.rule_id.startswith(("DET-", "API-"))
            or d.rule_id == "WR-XCHECK"
        ]
        return 1 if failing else 0


def run_full_lint(
    registry=None,
    check_lists: bool = True,
    check_webrequest: bool = True,
    check_self: bool = True,
) -> FullLintResult:
    """Run the selected analyzers; see :class:`FullLintResult`."""
    from repro.web.filterlists import build_filter_lists
    from repro.web.registry import default_registry

    if registry is None and (check_lists or check_webrequest):
        registry = default_registry()
    result = FullLintResult()

    lists = build_filter_lists(registry) if registry else []
    if check_lists:
        result.filter_analysis = analyze_filter_lists(lists, registry=registry)
        result.report.extend(result.filter_analysis.report)

    if check_webrequest:
        for label, chrome_major, ws_aware in _LISTENER_CONFIGS:
            patterns = _WS_AWARE_PATTERNS if ws_aware else _HTTP_ONLY_PATTERNS
            verdict, verdict_report = classify_listener(patterns, chrome_major)
            result.listener_verdicts.append((label, verdict))
            result.report.extend(verdict_report)
            records = cross_validate_receivers(
                lists, registry, chrome_major, websocket_aware=ws_aware
            )
            result.cross_checks[label] = records
            result.report.extend(cross_validation_report(records))

    if check_self:
        result.self_report = lint_self()
        result.report.extend(result.self_report)
        result.api_report = lint_api_self()
        result.report.extend(result.api_report)

    return result
