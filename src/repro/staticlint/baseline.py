"""Accepted-violation baseline for the whole-program FLOW rules.

The flow analyzer is retrofitted onto a codebase with a handful of
known, accepted contract violations (e.g. the crawler's checkpoint
writes are synchronous today — that is exactly the debt the
async-readiness audit tracks). Failing CI on them forever would force
either fixing everything at once or disabling the gate; the baseline
does neither: ``staticlint-baseline.json`` records each accepted
finding by its line-number-free ``baseline_key``
(``RULE::module:qualname::effect``), the gate demotes matching
findings to warnings, and only **new** violations fail the build. The
file is committed, so shrinking it is a reviewable ratchet.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.util.atomicio import atomic_write
from repro.staticlint.diagnostics import (
    Diagnostic,
    LintReport,
    Severity,
)

BASELINE_FORMAT_VERSION = 1
DEFAULT_BASELINE_PATH = Path("staticlint-baseline.json")


def default_baseline_path() -> Path:
    """The committed baseline: ``staticlint-baseline.json`` in the
    current directory when present, else at the checkout root (located
    relative to this file, so the gate works from any cwd)."""
    if DEFAULT_BASELINE_PATH.exists():
        return DEFAULT_BASELINE_PATH
    return Path(__file__).resolve().parents[3] / DEFAULT_BASELINE_PATH.name


def load_baseline(path: Path) -> frozenset[str]:
    """The accepted baseline keys, or empty when no file exists.

    A malformed file raises — a broken baseline silently accepting
    everything would defeat the gate.
    """
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return frozenset()
    if (
        not isinstance(payload, dict)
        or payload.get("baseline_format") != BASELINE_FORMAT_VERSION
        or not isinstance(payload.get("entries"), list)
        or not all(isinstance(entry, str) for entry in payload["entries"])
    ):
        raise ValueError(f"malformed staticlint baseline: {path}")
    return frozenset(payload["entries"])


def write_baseline(path: Path, report: LintReport) -> frozenset[str]:
    """Record every baselineable finding in ``report`` as accepted."""
    entries = sorted(
        {d.baseline_key for d in report.diagnostics if d.baseline_key}
    )
    payload = {
        "baseline_format": BASELINE_FORMAT_VERSION,
        "entries": entries,
    }
    atomic_write(
        path,
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
    )
    return frozenset(entries)


def apply_baseline(
    report: LintReport, accepted: frozenset[str]
) -> tuple[LintReport, int]:
    """Demote accepted findings to warnings.

    Returns the adjusted report plus the number of findings that were
    baselined (the gate then counts only the remaining errors).
    """
    out = LintReport()
    baselined = 0
    for diag in report.diagnostics:
        if diag.baseline_key and diag.baseline_key in accepted:
            baselined += 1
            out.add(Diagnostic(
                rule_id=diag.rule_id,
                severity=Severity.WARNING,
                source=diag.source,
                message=f"[baselined] {diag.message}",
                fix_hint=diag.fix_hint,
                trace=diag.trace,
                baseline_key=diag.baseline_key,
            ))
        else:
            out.add(diag)
    return out, baselined
