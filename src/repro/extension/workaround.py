"""The uBO-Extra-style WRB workaround (content-script WebSocket wrapper).

While the webRequest bug was unpatched, blocking extensions shipped
"complicated workarounds" (the paper cites uBO-Extra): a content script
injected into every page replaced ``window.WebSocket`` with a wrapper
that reported each connection attempt to the extension — via a channel
the extension *could* see — before deciding whether to let the real
constructor run.

Our simulation models the essential mechanics and the essential
weaknesses:

* the wrapper consults the filter engine for every ``new WebSocket``
  from *page* context, independent of the browser version — so it works
  even with the WRB;
* but page scripts loaded inside cross-origin **iframes** get a fresh
  realm where the wrapper may not have been injected yet (the original
  uBO-Extra race), so a configurable fraction of frame-context sockets
  slip through;
* and the wrapper is detectable by the page (``WebSocket.toString()``
  no longer reports native code), which the paper's arms-race framing
  anticipates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.filters import FilterEngine
from repro.net.http import ResourceType


@dataclass
class WorkaroundStats:
    """What the wrapper observed and did."""

    wrapped_calls: int = 0
    blocked: int = 0
    escaped_subframe: int = 0


class WebSocketWrapperWorkaround:
    """A page-level ``window.WebSocket`` wrapper.

    Attributes:
        engine: Filter engine deciding each connection.
        subframe_coverage: Probability the wrapper is installed in a
            given sub-frame realm before scripts run (1.0 = perfect;
            the historical extensions raced and lost sometimes).
    """

    def __init__(
        self,
        engine: FilterEngine,
        subframe_coverage: float = 0.8,
    ) -> None:
        if not 0.0 <= subframe_coverage <= 1.0:
            raise ValueError("subframe_coverage must be in [0, 1]")
        self.engine = engine
        self.subframe_coverage = subframe_coverage
        self.stats = WorkaroundStats()

    def allow_socket(
        self,
        ws_url: str,
        first_party_url: str,
        in_subframe: bool,
        coverage_draw: float,
    ) -> bool:
        """Decide one ``new WebSocket(url)`` call from page context.

        Args:
            ws_url: The endpoint being opened.
            first_party_url: Top-level page URL.
            in_subframe: Whether the call happens in a sub-frame realm.
            coverage_draw: A uniform draw in [0,1) deciding whether the
                wrapper was installed in this realm in time (callers
                supply it from their deterministic RNG).

        Returns:
            True when the connection may proceed.
        """
        if in_subframe and coverage_draw >= self.subframe_coverage:
            self.stats.escaped_subframe += 1
            return True
        self.stats.wrapped_calls += 1
        blocked = self.engine.would_block(
            ws_url, ResourceType.WEBSOCKET, first_party_url
        )
        if blocked:
            self.stats.blocked += 1
        return not blocked

    @property
    def is_detectable(self) -> bool:
        """Page scripts can always detect the non-native constructor."""
        return True
