"""An AdBlock-Plus-style blocking extension.

Binds a :class:`~repro.filters.FilterEngine` to the ``webRequest`` API.
The ``websocket_aware`` flag selects between correct ``ws://*``-inclusive
URL patterns and the ``http://*``-only patterns Franken et al. found in
real extensions — with the latter, WebSockets slip through even on
patched Chrome.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.extension.webrequest import (
    BlockingResponse,
    RequestFilter,
    WebRequestApi,
)
from repro.filters import FilterEngine
from repro.net.http import HttpRequest

_HTTP_ONLY_PATTERNS = ("http://*", "https://*")
_ALL_PATTERNS = ("http://*", "https://*", "ws://*", "wss://*")


@dataclass
class BlockerStats:
    """What the extension saw and did."""

    inspected: int = 0
    blocked: int = 0
    blocked_urls: list[str] = field(default_factory=list)

    def reset(self) -> None:
        self.inspected = 0
        self.blocked = 0
        self.blocked_urls.clear()


class AdBlockerExtension:
    """A filter-list blocker living inside a simulated browser.

    Attributes:
        engine: The filter engine evaluating each request.
        websocket_aware: Whether the listener's URL patterns include
            ``ws://*``/``wss://*``.
        keep_blocked_urls: Record blocked URLs (tests/diagnostics).
    """

    def __init__(
        self,
        engine: FilterEngine,
        websocket_aware: bool = True,
        keep_blocked_urls: bool = False,
    ) -> None:
        self.engine = engine
        self.websocket_aware = websocket_aware
        self.keep_blocked_urls = keep_blocked_urls
        self.stats = BlockerStats()

    def install(self, api: WebRequestApi) -> None:
        """Register with a browser's webRequest API."""
        patterns = _ALL_PATTERNS if self.websocket_aware else _HTTP_ONLY_PATTERNS
        api.add_on_before_request(
            self._on_before_request,
            RequestFilter(url_patterns=patterns),
            blocking=True,
        )

    def _on_before_request(self, request: HttpRequest) -> BlockingResponse:
        self.stats.inspected += 1
        result = self.engine.match(
            request.url, request.resource_type, request.first_party_url
        )
        if result.blocked:
            self.stats.blocked += 1
            if self.keep_blocked_urls:
                self.stats.blocked_urls.append(request.url)
        return BlockingResponse(cancel=result.blocked)
