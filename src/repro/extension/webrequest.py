"""``chrome.webRequest`` simulation, webRequest bug included.

Faithful to the mechanics the paper documents:

* Listeners register for ``onBeforeRequest`` with URL-pattern filters
  and optional resource-type filters, and may cancel requests.
* **The webRequest bug (WRB):** in Chrome versions before 58, WebSocket
  requests never reach ``onBeforeRequest`` at all — listeners are not
  consulted, so blocking extensions cannot see ``ws://``/``wss://``
  connections (Chromium issue 129353, patched 2017-04-19 in 58).
* **The Franken et al. pitfall (§5):** even on patched Chrome, a
  listener whose URL patterns are ``http://*`` / ``https://*`` (instead
  of ``ws://*`` / ``wss://*``) still fails to intercept WebSockets,
  because pattern matching is scheme-sensitive.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Callable

from repro.net.http import HttpRequest, ResourceType

# Chrome major version that shipped the WRB patch.
WEBREQUEST_BUG_FIX_VERSION = 58


@dataclass(frozen=True)
class BlockingResponse:
    """A listener's verdict, per the extension API."""

    cancel: bool = False


@dataclass(frozen=True)
class RequestFilter:
    """The ``filter`` argument of ``onBeforeRequest.addListener``.

    Attributes:
        url_patterns: Chrome match patterns (``scheme://host/path``
            with ``*`` wildcards). ``<all_urls>`` matches everything.
        resource_types: Types the listener wants; empty = all.
    """

    url_patterns: tuple[str, ...] = ("<all_urls>",)
    resource_types: tuple[ResourceType, ...] = ()

    def matches(self, request: HttpRequest) -> bool:
        """Whether the listener should see this request."""
        if self.resource_types and request.resource_type not in self.resource_types:
            return False
        for pattern in self.url_patterns:
            if pattern == "<all_urls>":
                return True
            if _match_pattern(pattern, request.url):
                return True
        return False


def _match_pattern(pattern: str, url: str) -> bool:
    """Chrome match-pattern semantics, approximated with fnmatch.

    ``http://*`` is treated (as Chrome does) as scheme ``http`` with
    any host and any path, so it does NOT match ``ws://`` URLs — the
    exact mistake Franken et al. found in blocking extensions.
    """
    scheme, sep, rest = pattern.partition("://")
    if not sep:
        return fnmatch.fnmatch(url, pattern)
    url_scheme, _, url_rest = url.partition("://")
    if scheme != "*" and url_scheme != scheme:
        return False
    if not rest or rest == "*":
        return True
    return fnmatch.fnmatch(url_rest, rest if "/" in rest else rest + "/*")


Listener = Callable[[HttpRequest], BlockingResponse | None]


@dataclass
class _Registration:
    listener: Listener
    request_filter: RequestFilter
    blocking: bool


class WebRequestApi:
    """The per-browser extension attachment point.

    Attributes:
        chrome_major: Browser version; controls the WRB.
    """

    def __init__(self, chrome_major: int) -> None:
        self.chrome_major = chrome_major
        self._on_before_request: list[_Registration] = []
        self.dispatched = 0
        self.suppressed_by_wrb = 0
        self.cancelled = 0

    @property
    def has_webrequest_bug(self) -> bool:
        """Whether this browser version suffers the WRB."""
        return self.chrome_major < WEBREQUEST_BUG_FIX_VERSION

    def add_on_before_request(
        self,
        listener: Listener,
        request_filter: RequestFilter | None = None,
        blocking: bool = True,
    ) -> None:
        """Register an ``onBeforeRequest`` listener."""
        self._on_before_request.append(
            _Registration(
                listener=listener,
                request_filter=request_filter or RequestFilter(),
                blocking=blocking,
            )
        )

    def dispatch_on_before_request(self, request: HttpRequest) -> bool:
        """Run listeners for a request; returns True when it may proceed.

        WebSocket requests bypass every listener on pre-58 versions:
        that is the webRequest bug.
        """
        if (
            request.resource_type == ResourceType.WEBSOCKET
            and self.has_webrequest_bug
        ):
            self.suppressed_by_wrb += 1
            return True
        self.dispatched += 1
        for registration in self._on_before_request:
            if not registration.request_filter.matches(request):
                continue
            response = registration.listener(request)
            if registration.blocking and response and response.cancel:
                self.cancelled += 1
                return False
        return True

    @property
    def listener_count(self) -> int:
        """Number of registered ``onBeforeRequest`` listeners."""
        return len(self._on_before_request)

    def as_counts(self) -> dict[str, int]:
        """Dispatch telemetry as a name→count mapping (for obs harvest)."""
        return {
            "dispatched": self.dispatched,
            "suppressed_wrb": self.suppressed_by_wrb,
            "cancelled": self.cancelled,
        }
