"""Extension host: the ``chrome.webRequest`` API and an ad blocker.

This package models the mechanism at the heart of the paper: blocking
extensions interpose on network requests through
``chrome.webRequest.onBeforeRequest`` — and, before Chrome 58, that
callback was simply never fired for WebSocket connections (the
*webRequest bug*, Chromium issue 129353).
"""

from repro.extension.webrequest import (
    BlockingResponse,
    RequestFilter,
    WebRequestApi,
    WEBREQUEST_BUG_FIX_VERSION,
)
from repro.extension.adblocker import AdBlockerExtension
from repro.extension.workaround import WebSocketWrapperWorkaround

__all__ = [
    "WebRequestApi",
    "RequestFilter",
    "BlockingResponse",
    "WEBREQUEST_BUG_FIX_VERSION",
    "AdBlockerExtension",
    "WebSocketWrapperWorkaround",
]
