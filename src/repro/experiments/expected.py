"""The paper's published numbers, for side-by-side comparison.

These values are NEVER consumed by the measurement pipeline — they
exist so reports, benches, and EXPERIMENTS.md can print
paper-vs-measured columns.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperTable1Row:
    """One row of the paper's Table 1."""

    label: str
    pct_sites_with_sockets: float
    pct_sockets_aa_initiators: float
    unique_aa_initiators: int
    pct_sockets_aa_receivers: float
    unique_aa_receivers: int


PAPER_TABLE1: tuple[PaperTable1Row, ...] = (
    PaperTable1Row("Apr 02-05, 2017", 2.1, 60.6, 75, 73.7, 16),
    PaperTable1Row("Apr 11-16, 2017", 2.4, 61.3, 63, 74.6, 18),
    PaperTable1Row("May 07-12, 2017", 1.6, 60.2, 19, 69.7, 15),
    PaperTable1Row("Oct 12-16, 2017", 2.5, 63.4, 23, 63.7, 18),
)

# Table 2: initiator -> (total receivers, A&A receivers, socket count).
PAPER_TABLE2: dict[str, tuple[int, int, int]] = {
    "facebook": (35, 11, 441),
    "espncdn": (35, 0, 92),
    "h-cdn": (30, 0, 39),
    "doubleclick": (29, 9, 250),
    "slither": (25, 0, 33),
    "inspectlet": (25, 6, 820),
    "google": (23, 11, 381),
    "pusher": (22, 8, 634),
    "youtube": (18, 8, 129),
    "hotjar": (17, 11, 2249),
    "cloudflare": (15, 1, 873),
    "addthis": (14, 8, 101),
    "googlesyndication": (10, 6, 71),
    "adnxs": (8, 3, 31),
    "googleapis": (7, 0, 157),
}

# Table 3: receiver -> (total initiators, A&A initiators, socket count).
PAPER_TABLE3: dict[str, tuple[int, int, int]] = {
    "intercom": (156, 16, 5531),
    "33across": (57, 19, 1375),
    "zopim": (44, 12, 19656),
    "realtime": (41, 27, 1548),
    "smartsupp": (26, 4, 670),
    "feedjit": (25, 10, 3013),
    "inspectlet": (25, 6, 820),
    "pusher": (22, 8, 634),
    "disqus": (17, 13, 4798),
    "hotjar": (13, 7, 2407),
    "freshrelevance": (10, 2, 403),
    "lockerdome": (10, 8, 408),
    "velaro": (4, 3, 62),
    "truconversion": (3, 2, 298),
    "simpleheatmaps": (1, 0, 93),
}

# Table 4: (initiator, receiver) -> socket count; plus the self row.
PAPER_TABLE4: dict[tuple[str, str], int] = {
    ("webspectator", "realtime"): 1285,
    ("google", "zopim"): 172,
    ("blogger", "feedjit"): 158,
    ("hotjar", "intercom"): 144,
    ("clickdesk", "pusher"): 125,
    ("cdn77", "smartsupp"): 122,
    ("acenterforrecovery", "intercom"): 114,
    ("facebook", "zopim"): 112,
    ("vatit", "intercom"): 110,
    ("plymouthart", "intercom"): 108,
    ("welchllp", "intercom"): 105,
    ("biozone", "intercom"): 101,
    ("getambassador", "pusher"): 101,
    ("rubymonk", "intercom"): 98,
    ("googleapis", "sportingindex"): 96,
}
PAPER_TABLE4_SELF_PAIR = 36_056

# Table 5, WebSocket side: item -> percent of A&A sockets.
PAPER_TABLE5_SENT_WS: dict[str, float] = {
    "User Agent": 100.0,
    "Cookie": 69.90,
    "IP": 6.62,
    "User ID": 4.30,
    "Device": 3.61,
    "Screen": 3.59,
    "Browser": 3.40,
    "Viewport": 3.40,
    "Scroll Position": 3.40,
    "Orientation": 3.40,
    "First Seen": 3.40,
    "Resolution": 3.40,
    "Language": 1.79,
    "DOM": 1.63,
    "Binary": 0.98,
}
PAPER_TABLE5_SENT_WS_NO_DATA = 17.84

PAPER_TABLE5_SENT_HTTP: dict[str, float] = {
    "User Agent": 100.0,
    "Cookie": 22.77,
    "IP": 0.90,
    "User ID": 1.12,
    "Device": 0.18,
    "Screen": 0.10,
    "Browser": 0.09,
    "Viewport": 0.34,
    "Scroll Position": 0.00,
    "Orientation": 0.00,
    "First Seen": 0.01,
    "Resolution": 0.13,
    "Language": 0.92,
    "DOM": 0.01,
    "Binary": 0.01,
}

PAPER_TABLE5_RECEIVED_WS: dict[str, float] = {
    "HTML": 47.16,
    "JSON": 12.81,
    "JavaScript": 0.88,
    "Image": 0.31,
    "Binary": 0.25,
}
PAPER_TABLE5_RECEIVED_WS_NO_DATA = 21.33

PAPER_TABLE5_RECEIVED_HTTP: dict[str, float] = {
    "HTML": 11.61,
    "JSON": 1.63,
    "JavaScript": 27.04,
    "Image": 21.34,
    "Binary": 0.50,
}

# §4.1 / §4.2 / §4.3 prose statistics.
PAPER_OVERALL = {
    "pct_sites_with_sockets": 2.0,          # "only ~2% of the websites"
    "sockets_per_site_low": 6, "sockets_per_site_high": 12,
    "pct_cross_origin": 90.0,               # ">90% contact a third-party"
    "unique_third_party_receivers": 382,
    "unique_aa_receivers": 20,
    "unique_aa_initiators": 94,
    "disappeared_initiators": 56,
    "pct_aa_receivers_ge_10_initiators": 47.0,
    "pct_socket_chains_blocked": 5.0,
    "pct_aa_chains_blocked": 27.0,
    "pct_fingerprinting_sockets": 3.4,
    "fingerprinting_pairs": 60,
    "fingerprinting_top_receiver_share": 97.0,
    "pct_dom_exfiltration_sockets": 1.6,
    "figure3_overall_ratio": 2.0,
    "figure3_top10k_ratio": 4.5,
}
