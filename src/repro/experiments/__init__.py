"""The four-crawl study harness and paper-expected values."""

from repro.experiments.runner import (
    StudyConfig,
    StudyResult,
    run_study,
    DEFAULT_CONFIG,
    SMOKE_CONFIG,
    TINY_CONFIG,
    FULL_CONFIG,
)

__all__ = [
    "StudyConfig",
    "StudyResult",
    "run_study",
    "DEFAULT_CONFIG",
    "SMOKE_CONFIG",
    "TINY_CONFIG",
    "FULL_CONFIG",
]
