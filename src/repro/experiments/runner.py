"""The four-crawl study runner.

Reproduces the paper's measurement campaign end to end: build the
synthetic web once, crawl it four times (Chrome 57 twice before the
patch date, Chrome 58 twice after), stream everything into a
:class:`~repro.crawler.dataset.StudyDataset`, then derive labels and
compute every table and figure.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, replace
from pathlib import Path

from repro.analysis import (
    AnalysisEngine,
    BlockingStats,
    DatasetSource,
    Figure3Series,
    OverallStats,
    SocketView,
    Table1Row,
    Table2Row,
    Table3Row,
    Table4,
    Table5,
    study_stages,
)
from repro.crawler.crawler import (
    CrawlAccountant,
    CrawlConfig,
    CrawlRunSummary,
)
from repro.crawler.dataset import StudyDataset
from repro.crawler.outcome import LaneStats
from repro.crawler.persistence import CrawlCheckpoint
from repro.labeling.aa_labeler import AaLabeler
from repro.labeling.resolver import DomainResolver
from repro.obs import Obs, ObsSummary
from repro.parallel import ShardTask, WebSpec, execute_shards, plan_shards
from repro.staticlint.runner import FullLintResult, run_full_lint
from repro.web.filterlists import build_filter_engine
from repro.web.server import SyntheticWeb, WebScale


@dataclass(frozen=True)
class StudyConfig:
    """Knobs for one full study run.

    Attributes:
        scale: Calibrated-deployment (entity) scale — how hard the
            socket ecosystem is shrunk relative to the paper's web.
        sample_scale: Crawl-sample scale (1.0 ≈ the paper's ~100K
            sites). Defaults to ``scale`` when ``None``; the default
            preset oversamples publishers relative to entities so the
            fraction of socket-hosting sites stays near the paper's
            ~2% despite the anchored unique entities.
        pages_per_site: Page budget per site (the paper used 15).
        seed: Root RNG seed.
        crawls: Which of the four crawls to run.
        name: Preset name, for reports.
        faults: Named fault profile (``none``/``flaky``/``hostile``);
            ``none`` injects nothing and leaves every artifact
            byte-identical to a run without an injector.
    """

    scale: float = 0.05
    sample_scale: float | None = 0.11
    pages_per_site: int = 15
    seed: int = 2017
    crawls: tuple[int, ...] = (0, 1, 2, 3)
    name: str = "default"
    faults: str = "none"

    @property
    def resolved_sample_scale(self) -> float:
        return self.sample_scale if self.sample_scale is not None else self.scale

    def with_scale(self, scale: float) -> "StudyConfig":
        """A copy at a different scale."""
        return replace(self, scale=scale)

    def with_faults(self, faults: str) -> "StudyConfig":
        """A copy under a different fault profile."""
        return replace(self, faults=faults)


SMOKE_CONFIG = StudyConfig(scale=0.004, sample_scale=0.002, pages_per_site=2,
                           name="smoke")
TINY_CONFIG = StudyConfig(scale=0.004, sample_scale=0.004, pages_per_site=4,
                          name="tiny")
DEFAULT_CONFIG = StudyConfig(name="default")
FULL_CONFIG = StudyConfig(scale=1.0, sample_scale=1.0, pages_per_site=15,
                          name="full")


@dataclass
class StudyResult:
    """Everything the study produced.

    Attributes:
        config: The configuration used.
        web: The synthetic web crawled.
        dataset: Raw accumulated measurements.
        summaries: Per-crawl run summaries.
        labeler / resolver: Derived A&A labels and Cloudfront mapping.
        views: Classified socket records.
        table1 … figure3, blocking, overall: The computed artifacts.
        lint: Static-analysis companion report over the same registry
            the crawls used (filter-list blindspots, webRequest
            verdicts, static-vs-dynamic cross-check).
        obs: Observability summary — per-stage span timings, the
            structured event log, and the harvested metrics snapshot
            (``None`` only when analysis ran without an obs context).
    """

    config: StudyConfig
    web: SyntheticWeb
    dataset: StudyDataset
    summaries: list[CrawlRunSummary]
    labeler: AaLabeler
    resolver: DomainResolver
    views: list[SocketView]
    table1: list[Table1Row]
    table2: list[Table2Row]
    table3: list[Table3Row]
    table4: Table4
    table5: Table5
    figure3: Figure3Series
    blocking: BlockingStats
    overall: OverallStats
    lint: FullLintResult | None = None
    obs: ObsSummary | None = None


def crawl_configs(web: SyntheticWeb, config: StudyConfig) -> list[CrawlConfig]:
    """The four crawl configurations, from the registry's crawl moods."""
    configs = []
    for index in config.crawls:
        mood = web.registry.moods[index]
        configs.append(CrawlConfig(
            index=index,
            label=mood.label,
            chrome_major=mood.chrome_major,
            start_date=mood.start_date,
            pages_per_site=config.pages_per_site,
            seed=config.seed,
        ))
    return configs


def run_crawls(
    web: SyntheticWeb,
    config: StudyConfig,
    obs: Obs | None = None,
    checkpoint: CrawlCheckpoint | None = None,
    workers: int = 1,
) -> tuple[StudyDataset, list[CrawlRunSummary]]:
    """Run the configured crawls, returning the accumulated dataset.

    Every run shards the seed list (:mod:`repro.parallel`) and merges
    per-shard outcomes in canonical site-rank order; ``workers`` only
    chooses where shards execute (inline for 1, a multiprocessing pool
    otherwise), so artifacts are byte-identical across worker counts.
    The ``faults`` profile on ``config`` gives each (crawl, shard) its
    own seeded fault lane; a ``checkpoint`` journal lets an
    interrupted study resume, restoring fully journaled shards —
    observations included — and re-crawling partial ones whole.
    """
    engine = build_filter_engine(web.registry)
    dataset = StudyDataset(engine=engine)
    summaries: list[CrawlRunSummary] = []
    spec = WebSpec(sample_scale=config.resolved_sample_scale,
                   entity_scale=config.scale, seed=config.seed)
    shards = plan_shards(web.seed_list.sites)
    site_total = len(web.seed_list.sites)
    configs = crawl_configs(web, config)
    restored: set[tuple[int, int]] = set()
    tasks: list[ShardTask] = []
    for crawl_config in configs:
        for shard in shards:
            if checkpoint is not None and checkpoint.covers(
                crawl_config.index, (site.domain for site in shard.sites)
            ):
                restored.add((crawl_config.index, shard.index))
                continue
            tasks.append(ShardTask(
                crawl=crawl_config,
                shard_index=shard.index,
                sites=shard.sites,
                faults=config.faults,
                study_seed=config.seed,
                web=spec,
            ))
    results = execute_shards(web, spec, tasks, workers=workers)
    for crawl_config in configs:
        stats_before = engine.stats.snapshot()
        lane_total = LaneStats()
        accountant = CrawlAccountant(
            crawl_config, site_total, observers=[dataset.observe],
            obs=obs, checkpoint=checkpoint,
        )
        with accountant:
            for shard in shards:
                key = (crawl_config.index, shard.index)
                if key in restored:
                    for site in shard.sites:
                        accountant.restore_site(
                            checkpoint.get(crawl_config.index, site.domain)
                        )
                    continue
                result = results[key]
                for outcome in result.outcomes:
                    accountant.record_site(outcome)
                lane_total.merge(result.lane)
            accountant.finish(lane_total)
        dataset.record_crawl(accountant.summary)
        summaries.append(accountant.summary)
        if obs is not None:
            # Attribute this crawl's share of the match telemetry; the
            # unprefixed filters.* counters stay additive across crawls.
            delta = engine.stats.delta_since(stats_before)
            obs.metrics.record_counts("filters", delta)
            obs.metrics.record_counts(
                f"filters.by_crawl.{crawl_config.index}", delta
            )
    if obs is not None:
        obs.metrics.histogram(
            "filters.candidates_per_match"
        ).observe(
            (engine.stats.token_candidates + engine.stats.generic_candidates)
            / max(engine.stats.matches, 1)
        )
    return dataset, summaries


def analyze(
    config: StudyConfig,
    web: SyntheticWeb,
    dataset: StudyDataset,
    summaries: list[CrawlRunSummary],
    obs: Obs | None = None,
) -> StudyResult:
    """Derive labels and compute every artifact from a dataset.

    A thin driver over :class:`repro.analysis.engine.AnalysisEngine`:
    one classification sweep feeds every stage accumulator, and the
    finalized artifacts land in the same ``StudyResult`` fields as
    before. The view list is retained (via the engine's ``view_sink``)
    because ``StudyResult.views`` is part of the study's API; the
    memory-bounded path is ``repro analyze`` over a saved dataset.
    """
    engine = AnalysisEngine(stages=study_stages(), obs=obs)
    views: list[SocketView] = []
    outcome = engine.run(
        DatasetSource.from_dataset(dataset), view_sink=views.append
    )
    lint_span = (obs.span("lint") if obs is not None else nullcontext())
    with lint_span:
        lint = run_full_lint(registry=web.registry, check_self=False)
    return StudyResult(
        config=config,
        web=web,
        dataset=dataset,
        summaries=summaries,
        labeler=outcome.labeler,
        resolver=outcome.resolver,
        views=views,
        table1=outcome["table1"],
        table2=outcome["table2"],
        table3=outcome["table3"],
        table4=outcome["table4"],
        table5=outcome["table5"],
        figure3=outcome["figure3"],
        blocking=outcome["blocking"],
        overall=outcome["overall"],
        lint=lint,
        obs=obs.summary(preset=config.name, seed=config.seed)
        if obs is not None else None,
    )


def run_study(
    config: StudyConfig = DEFAULT_CONFIG,
    obs: Obs | None = None,
    checkpoint_path: str | Path | None = None,
    workers: int = 1,
    spool_dir: str | Path | None = None,
    spool_quota: int = 0,
) -> StudyResult:
    """Build the web, run the crawls, compute everything.

    An :class:`~repro.obs.Obs` context is created when none is passed,
    so every study carries its audit trail in ``result.obs``. With a
    ``checkpoint_path``, per-site completion is journaled there and a
    rerun resumes from the journal; with ``spool_dir`` the journal
    instead goes through the durable write-ahead spool
    (:mod:`repro.spool`) — crash-recovered on open, quota-bounded by
    ``spool_quota`` bytes (0 = unlimited), and importable into a
    dataset file with ``repro spool import``. The two are mutually
    exclusive. ``workers`` fans the crawl shards out over a process
    pool without changing a byte of any artifact.
    """
    if checkpoint_path and spool_dir:
        raise ValueError(
            "pass either checkpoint_path or spool_dir, not both"
        )
    obs = obs or Obs()
    checkpoint = (
        CrawlCheckpoint(checkpoint_path) if checkpoint_path else None
    )
    spool_store = None
    with obs.span("study", preset=config.name, seed=config.seed):
        obs.event("stage", stage="build-web")
        with obs.span("build-web"):
            web = SyntheticWeb(
                scale=WebScale(sample_scale=config.resolved_sample_scale,
                               entity_scale=config.scale),
                seed=config.seed,
            )
        if spool_dir is not None:
            from repro.faults.injector import FaultInjector
            from repro.faults.plan import profile_named
            from repro.spool import SpoolJournal, SpoolStore

            with obs.span("spool-open"):
                spool_store = SpoolStore.open(
                    spool_dir,
                    quota_bytes=spool_quota,
                    obs=obs,
                    injector=FaultInjector(
                        profile_named(config.faults), config.seed, "spool"
                    ),
                )
                checkpoint = SpoolJournal(
                    spool_store,
                    {c.index: c.label
                     for c in crawl_configs(web, config)},
                )
        obs.event("stage", stage="crawls")
        dataset, summaries = run_crawls(web, config, obs=obs,
                                        checkpoint=checkpoint,
                                        workers=workers)
        if spool_store is not None:
            spool_store.seal_active()
        obs.event("stage", stage="analyze")
        result = analyze(config, web, dataset, summaries, obs=obs)
    # Re-freeze after the study span closed so its record is included.
    result.obs = obs.summary(preset=config.name, seed=config.seed)
    return result
