"""Paper-vs-measured comparison rendering for EXPERIMENTS.md."""

from __future__ import annotations

from repro.analysis import (
    BlockingStats,
    Figure3Series,
    OverallStats,
    Table1Row,
    Table2Row,
    Table3Row,
    Table4,
    Table5,
)
from repro.content.items import RECEIVED_CLASSES, SENT_ITEMS
from repro.experiments import expected


def _md_table(header: list[str], rows: list[list[str]]) -> str:
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def compare_table1(rows: list[Table1Row]) -> str:
    """Table 1 comparison block."""
    body = []
    for paper, measured in zip(expected.PAPER_TABLE1, rows):
        body.append([
            paper.label,
            f"{paper.pct_sites_with_sockets:.1f} / "
            f"{measured.pct_sites_with_sockets:.1f}",
            f"{paper.pct_sockets_aa_initiators:.1f} / "
            f"{measured.pct_sockets_aa_initiators:.1f}",
            f"{paper.unique_aa_initiators} / "
            f"{measured.unique_aa_initiators}",
            f"{paper.pct_sockets_aa_receivers:.1f} / "
            f"{measured.pct_sockets_aa_receivers:.1f}",
            f"{paper.unique_aa_receivers} / "
            f"{measured.unique_aa_receivers}",
        ])
    return _md_table(
        ["Crawl", "% sites w/ sockets", "% A&A-initiated",
         "# A&A initiators", "% A&A-received", "# A&A receivers"],
        body,
    )


def compare_table2(rows: list[Table2Row]) -> str:
    by_name = {r.initiator: r for r in rows}
    body = []
    for name, (total, aa, sockets) in expected.PAPER_TABLE2.items():
        measured = by_name.get(name)
        body.append([
            name,
            f"{total} / {measured.receivers_total if measured else '—'}",
            f"{aa} / {measured.receivers_aa if measured else '—'}",
            f"{sockets} / {measured.socket_count if measured else '—'}",
        ])
    return _md_table(
        ["Initiator", "# receivers (paper/ours)", "# A&A (paper/ours)",
         "sockets (paper/ours)"],
        body,
    )


def compare_table3(rows: list[Table3Row]) -> str:
    """Table 3 comparison; pass deep rows (top=100) to avoid '—' gaps."""
    by_name = {r.receiver: r for r in rows}
    body = []
    for name, (total, aa, sockets) in expected.PAPER_TABLE3.items():
        measured = by_name.get(name)
        body.append([
            name,
            f"{total} / {measured.initiators_total if measured else '—'}",
            f"{aa} / {measured.initiators_aa if measured else '—'}",
            f"{sockets} / {measured.socket_count if measured else '—'}",
        ])
    return _md_table(
        ["Receiver", "# initiators (paper/ours)", "# A&A (paper/ours)",
         "sockets (paper/ours)"],
        body,
    )


def compare_table4(table: Table4) -> str:
    counts = {(r.initiator, r.receiver): r.socket_count for r in table.rows}
    body = []
    for pair, paper_count in expected.PAPER_TABLE4.items():
        measured = counts.get(pair, "—")
        body.append([f"{pair[0]} → {pair[1]}", str(paper_count),
                     str(measured)])
    body.append(["A&A domain to itself",
                 f"{expected.PAPER_TABLE4_SELF_PAIR:,}",
                 f"{table.self_pair_sockets:,}"])
    return _md_table(["Pair", "paper sockets", "measured"], body)


def compare_table5(table: Table5) -> str:
    body = []
    for item in SENT_ITEMS:
        paper_ws = expected.PAPER_TABLE5_SENT_WS.get(item.value, 0.0)
        paper_http = expected.PAPER_TABLE5_SENT_HTTP.get(item.value, 0.0)
        body.append([
            item.value,
            f"{paper_ws:.2f} / {table.sent_ws[item].percent:.2f}",
            f"{paper_http:.2f} / {table.sent_http[item].percent:.2f}",
        ])
    body.append([
        "No data (sent)",
        f"{expected.PAPER_TABLE5_SENT_WS_NO_DATA:.2f} / "
        f"{table.ws_sent_nothing.percent:.2f}",
        "— / —",
    ])
    for cls in RECEIVED_CLASSES:
        paper_ws = expected.PAPER_TABLE5_RECEIVED_WS.get(cls.value, 0.0)
        paper_http = expected.PAPER_TABLE5_RECEIVED_HTTP.get(cls.value, 0.0)
        body.append([
            f"recv {cls.value}",
            f"{paper_ws:.2f} / {table.received_ws[cls].percent:.2f}",
            f"{paper_http:.2f} / {table.received_http[cls].percent:.2f}",
        ])
    body.append([
        "No data (received)",
        f"{expected.PAPER_TABLE5_RECEIVED_WS_NO_DATA:.2f} / "
        f"{table.ws_received_nothing.percent:.2f}",
        "— / —",
    ])
    return _md_table(
        ["Item", "WS % (paper/ours)", "HTTP % (paper/ours)"], body
    )


def compare_overall(
    overall: OverallStats,
    blocking: BlockingStats,
    figure3: Figure3Series,
    table5: Table5,
) -> str:
    paper = expected.PAPER_OVERALL
    fp_pct = (100.0 * table5.fingerprinting_sockets / table5.ws_total
              if table5.ws_total else 0.0)
    body = [
        ["cross-origin sockets", f">{paper['pct_cross_origin']:.0f}%",
         f"{overall.pct_cross_origin:.1f}%"],
        ["unique A&A initiators", str(paper["unique_aa_initiators"]),
         str(overall.unique_aa_initiators)],
        ["unique A&A receivers", str(paper["unique_aa_receivers"]),
         str(overall.unique_aa_receivers)],
        ["initiators disappeared (first→last)",
         str(paper["disappeared_initiators"]),
         str(overall.disappeared_initiators)],
        ["unique third-party receivers",
         str(paper["unique_third_party_receivers"]),
         f"{overall.unique_third_party_receivers} (scales with crawl size)"],
        ["avg sockets per socket site",
         f"{paper['sockets_per_site_low']}–{paper['sockets_per_site_high']}",
         f"{overall.avg_sockets_per_socket_site:.1f}"],
        ["A&A receivers with ≥10 initiators",
         f">{paper['pct_aa_receivers_ge_10_initiators']:.0f}%",
         f"{overall.pct_aa_receivers_ge_10_initiators:.0f}%"],
        ["socket chains blocked by lists",
         f"~{paper['pct_socket_chains_blocked']:.0f}%",
         f"{blocking.pct_socket_chains_blocked:.1f}%"],
        ["all A&A chains blocked",
         f"~{paper['pct_aa_chains_blocked']:.0f}%",
         f"{blocking.pct_aa_chains_blocked:.1f}%"],
        ["fingerprinting sockets",
         f"~{paper['pct_fingerprinting_sockets']:.1f}%",
         f"{fp_pct:.1f}%"],
        ["top fingerprint receiver share",
         f"{paper['fingerprinting_top_receiver_share']:.0f}% (33across)",
         f"{table5.fingerprinting_top_receiver_share:.0f}% "
         f"({table5.fingerprinting_top_receiver})"],
        ["Figure 3 overall A&A/non-A&A ratio",
         f"~{paper['figure3_overall_ratio']:.0f}x",
         f"{figure3.overall_ratio:.1f}x"],
        ["Figure 3 top-10K ratio",
         f"~{paper['figure3_top10k_ratio']:.1f}x",
         f"{figure3.top10k_ratio:.1f}x"],
    ]
    return _md_table(["Statistic", "paper", "measured"], body)
