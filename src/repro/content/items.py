"""The Table 5 item taxonomy."""

from __future__ import annotations

import enum


class SentItem(str, enum.Enum):
    """Items detectable in data sent to a server (Table 5, top half)."""

    USER_AGENT = "User Agent"
    COOKIE = "Cookie"
    IP = "IP"
    USER_ID = "User ID"
    DEVICE = "Device"
    SCREEN = "Screen"
    BROWSER = "Browser"
    VIEWPORT = "Viewport"
    SCROLL_POSITION = "Scroll Position"
    ORIENTATION = "Orientation"
    FIRST_SEEN = "First Seen"
    RESOLUTION = "Resolution"
    LANGUAGE = "Language"
    DOM = "DOM"
    BINARY = "Binary"


class ReceivedClass(str, enum.Enum):
    """Classes of data received from a server (Table 5, bottom half)."""

    HTML = "HTML"
    JSON = "JSON"
    JAVASCRIPT = "JavaScript"
    IMAGE = "Image"
    BINARY = "Binary"


# Fixed display orders matching the paper's table.
SENT_ITEMS: tuple[SentItem, ...] = tuple(SentItem)
RECEIVED_CLASSES: tuple[ReceivedClass, ...] = tuple(ReceivedClass)

# The fingerprinting subset (§4.3's "Fingerprinting" statistic counts
# sockets exfiltrating screen geometry and friends).
FINGERPRINT_ITEMS: frozenset[SentItem] = frozenset({
    SentItem.SCREEN,
    SentItem.RESOLUTION,
    SentItem.VIEWPORT,
    SentItem.ORIENTATION,
    SentItem.SCROLL_POSITION,
    SentItem.BROWSER,
    SentItem.DEVICE,
})
