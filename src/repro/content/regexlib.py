"""The regular-expression library for PII and fingerprint detection.

Patterns are written against the wire formats trackers actually use —
JSON keys (``"screen": "1920x1080"``), query parameters (``scr=``,
``vp=``, ``lang=``), and form-encoded bodies — not against this
repository's generators. Each pattern carries a cheap substring
pre-check so scanning millions of short strings stays fast.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.content.items import SentItem


@dataclass(frozen=True)
class ItemPattern:
    """One detector: item + fast pre-check + the regex itself."""

    item: SentItem
    prechecks: tuple[str, ...]
    regex: re.Pattern[str]

    def search(self, text: str) -> bool:
        """Whether the item appears in the text."""
        for probe in self.prechecks:
            if probe in text:
                return self.regex.search(text) is not None
        return False


def _pattern(item: SentItem, prechecks: tuple[str, ...], expr: str) -> ItemPattern:
    return ItemPattern(item=item, prechecks=prechecks,
                       regex=re.compile(expr, re.IGNORECASE))


# Keys are matched as JSON ("key": value), query (key=value), or
# form-encoded (key=value) variants.
def _kv(keys: str, value: str) -> str:
    return rf'(?:"(?:{keys})"\s*:\s*|[?&;]?\b(?:{keys})=)\s*"?(?:{value})'


SENT_PATTERNS: tuple[ItemPattern, ...] = (
    _pattern(
        SentItem.IP,
        ("ip",),
        _kv(r"ip|ip_?addr(?:ess)?|client_?ip|remote_?ip",
            r"(?:\d{1,3}\.){3}\d{1,3}"),
    ),
    _pattern(
        SentItem.USER_ID,
        ("user_id", "userid", "account_id", "client_id", "accountid",
         "clientid", "userId", "accountId", "clientId"),
        _kv(r"user_?id|account_?id|client_?id", r"[\w-]{4,}"),
    ),
    _pattern(
        SentItem.DEVICE,
        ("device", "dev="),
        _kv(r"device(?:_?(?:type|family))?|dev",
            r"desktop|mobile|tablet|bot|tv|console|other"),
    ),
    _pattern(
        SentItem.SCREEN,
        ("screen", "scr="),
        _kv(r"screen(?:_?size)?|scr", r"\d{3,4}\s*[xX*]\s*\d{3,4}(?![\dxX])"),
    ),
    _pattern(
        SentItem.BROWSER,
        ("browser", "br="),
        _kv(r"browser(?:_?(?:type|family|name))?|br",
            r"chrome|firefox|safari|edge|opera|msie|other"),
    ),
    _pattern(
        SentItem.VIEWPORT,
        ("viewport", "vp="),
        _kv(r"viewport|vp|window_?size", r"\d{3,4}\s*[xX*]\s*\d{3,4}"),
    ),
    _pattern(
        SentItem.SCROLL_POSITION,
        ("scroll",),
        _kv(r"scroll(?:_?(?:position|top|y|depth))?", r"-?\d+"),
    ),
    _pattern(
        SentItem.ORIENTATION,
        ("orientation",),
        _kv(r"orientation", r"landscape|portrait")
        + r"(?:-(?:primary|secondary))?",
    ),
    _pattern(
        SentItem.FIRST_SEEN,
        ("first_seen", "firstseen", "fs=", "created_at", "first_visit"),
        _kv(r"first_?seen|fs|created_?at|first_?visit",
            r"\d{4}-\d{2}-\d{2}"),
    ),
    _pattern(
        SentItem.RESOLUTION,
        ("resolution", "res="),
        _kv(r"resolution|res", r"\d{3,4}x\d{3,4}(?:x\d{1,2})?"),
    ),
    _pattern(
        SentItem.LANGUAGE,
        ("lang", "locale"),
        _kv(r"lang(?:uage)?|locale", r"[a-z]{2}(?:[-_][A-Za-z]{2})?\b"),
    ),
    _pattern(
        SentItem.DOM,
        ("<html", "%3Chtml", "dom="),
        r"(?:<html[\s>]|%3Chtml|\bdom=)",
    ),
    _pattern(
        SentItem.USER_AGENT,
        ("user_agent", "useragent", "ua=", "Mozilla/"),
        _kv(r"user_?agent|ua", r"Mozilla|\w") ,
    ),
)

# Cookie-bearing keys inside payloads (distinct from the Cookie header):
# visitor/session identifiers minted from the tracker's own cookie.
COOKIE_PAYLOAD_PATTERN = _pattern(
    SentItem.COOKIE,
    ("cookie", "sid", "vid=", "visitor", "auth"),
    _kv(r"(?:visitor_)?cookie|sid|vid|visitor_?id|auth", r"[0-9a-f]{12,}"),
)


def scan_sent_text(text: str) -> set[SentItem]:
    """All items detectable in one piece of sent wire text."""
    found: set[SentItem] = set()
    for pattern in SENT_PATTERNS:
        if pattern.search(text):
            found.add(pattern.item)
    if COOKIE_PAYLOAD_PATTERN.search(text):
        found.add(SentItem.COOKIE)
    return found


_IMAGE_MAGIC = ("\x89PNG", "GIF8", "\xff\xd8\xff", "data:image/")


def looks_like_image(payload: str) -> bool:
    """Whether a payload carries image data (magic bytes or data URI)."""
    return any(payload.startswith(m) or m in payload[:64] for m in _IMAGE_MAGIC)
