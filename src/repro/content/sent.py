"""Sent-data analysis: items per socket and per HTTP request."""

from __future__ import annotations

from repro.content.items import FINGERPRINT_ITEMS, SentItem
from repro.content.regexlib import scan_sent_text
from repro.inclusion.node import WebSocketRecord
from repro.net.websocket import OpCode


class SentDataAnalyzer:
    """Classifies outgoing data against the Table 5 item taxonomy.

    One socket (or HTTP request) yields the *set* of items observed —
    Table 5 counts sockets/requests per item, so presence is what
    matters, not multiplicity.
    """

    def analyze_socket(self, record: WebSocketRecord) -> set[SentItem]:
        """Items sent over one WebSocket (handshake + data frames).

        The User-Agent and Cookie handshake headers count as sent data
        (they reach the receiving server), which is how the paper's
        100% User-Agent figure arises.
        """
        items: set[SentItem] = set()
        headers = record.handshake_headers
        for name, value in headers.items():
            lowered = name.lower()
            if lowered == "user-agent" and value:
                items.add(SentItem.USER_AGENT)
            elif lowered == "cookie" and value:
                items.add(SentItem.COOKIE)
        for frame in record.sent_frames:
            if frame.opcode == int(OpCode.BINARY):
                items.add(SentItem.BINARY)
                continue
            items |= scan_sent_text(frame.payload)
        return items

    def socket_sent_nothing(self, record: WebSocketRecord) -> bool:
        """Whether the socket carried no client data frames at all."""
        return not record.sent_frames

    def is_fingerprinting(self, items: set[SentItem]) -> bool:
        """§4.3's fingerprinting criterion: ≥3 fingerprint-class items."""
        return len(items & FINGERPRINT_ITEMS) >= 3

    def analyze_http(
        self,
        url_query: str,
        headers: dict[str, str],
        post_data: str = "",
    ) -> set[SentItem]:
        """Items sent on one HTTP request (query + headers + body)."""
        items: set[SentItem] = set()
        for name, value in headers.items():
            lowered = name.lower()
            if lowered == "user-agent" and value:
                items.add(SentItem.USER_AGENT)
            elif lowered == "cookie" and value:
                items.add(SentItem.COOKIE)
        if url_query:
            items |= scan_sent_text(url_query)
        if post_data:
            items |= scan_sent_text(post_data)
        return items
