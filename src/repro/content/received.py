"""Received-data classification: HTML / JSON / JavaScript / image / binary.

WebSocket frames are classified by content sniffing (there is no MIME
type on a socket frame); HTTP responses are classified by their MIME
type, as the paper's crawler observed via ``Network.responseReceived``.
"""

from __future__ import annotations

import re

from repro.content.items import ReceivedClass
from repro.content.regexlib import looks_like_image
from repro.inclusion.node import FrameData
from repro.net.websocket import OpCode

_HTML_RE = re.compile(r"^\s*<(?:!doctype|html|div|li|p|span|iframe|body|head)\b",
                      re.IGNORECASE)
_JS_RE = re.compile(
    r"(?:\bfunction\s*\(|=>\s*{|\bvar\s+\w+\s*=|\bdocument\.|\bwindow\.)"
)
_JSON_START_RE = re.compile(r'^\s*[\[{]\s*["\[{]')


def classify_frame(frame: FrameData) -> ReceivedClass | None:
    """Classify one received WebSocket frame; ``None`` when nondescript."""
    payload = frame.payload
    if not payload:
        return None
    if frame.opcode == int(OpCode.BINARY):
        if looks_like_image(payload):
            return ReceivedClass.IMAGE
        return ReceivedClass.BINARY
    if looks_like_image(payload):
        return ReceivedClass.IMAGE
    if _HTML_RE.match(payload):
        return ReceivedClass.HTML
    if _JSON_START_RE.match(payload) or _looks_like_json(payload):
        return ReceivedClass.JSON
    if _JS_RE.search(payload):
        return ReceivedClass.JAVASCRIPT
    return None


def _looks_like_json(payload: str) -> bool:
    stripped = payload.strip()
    if not stripped or stripped[0] not in "{[":
        return False
    return stripped[-1] in "}]"


def classify_socket_received(frames: list[FrameData]) -> set[ReceivedClass]:
    """All received-data classes observed on one socket."""
    classes: set[ReceivedClass] = set()
    for frame in frames:
        if frame.sent:
            continue
        cls = classify_frame(frame)
        if cls is not None:
            classes.add(cls)
    return classes


_MIME_TO_CLASS: tuple[tuple[str, ReceivedClass], ...] = (
    ("text/html", ReceivedClass.HTML),
    ("application/json", ReceivedClass.JSON),
    ("application/javascript", ReceivedClass.JAVASCRIPT),
    ("text/javascript", ReceivedClass.JAVASCRIPT),
    ("application/x-javascript", ReceivedClass.JAVASCRIPT),
    ("image/", ReceivedClass.IMAGE),
    ("application/octet-stream", ReceivedClass.BINARY),
    ("video/", ReceivedClass.BINARY),
    ("audio/", ReceivedClass.BINARY),
)


def classify_http_response(mime_type: str) -> ReceivedClass | None:
    """Classify an HTTP response by MIME type; ``None`` when other."""
    lowered = mime_type.lower()
    for prefix, cls in _MIME_TO_CLASS:
        if lowered.startswith(prefix):
            return cls
    return None
