"""Extraction of ad units delivered over WebSockets (§4.3, Figure 4).

The paper found no ad *images* flowing over sockets directly — instead
Lockerdome pushed JSON containing creative URLs "along with meta-data
such as image captions, heights, and widths", hosted on
``cdn1.lockerdome.com``, which no filter list covered. This module
recognizes such ad units in received frame text, so the analysis can
both count them and check whether the creative hosts are list-covered.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.inclusion.node import FrameData

# Keys that signal an ad unit inside a JSON object.
_IMAGE_KEYS = ("image", "img", "creative", "image_url", "src")
_CAPTION_KEYS = ("caption", "headline", "title", "text")


@dataclass(frozen=True)
class AdUnit:
    """One advertisement delivered over a socket.

    Attributes:
        image_url: URL of the creative.
        caption: The ad's headline/caption text.
        width / height: Declared dimensions (0 when absent).
        click_url: Landing URL, when present.
    """

    image_url: str
    caption: str = ""
    width: int = 0
    height: int = 0
    click_url: str = ""


def _as_int(value) -> int:
    try:
        return int(value)
    except (TypeError, ValueError):
        return 0


def _unit_from_object(obj) -> AdUnit | None:
    if not isinstance(obj, dict):
        return None
    image_url = ""
    for key in _IMAGE_KEYS:
        value = obj.get(key)
        if isinstance(value, str) and value.startswith(("http://", "https://")):
            image_url = value
            break
    if not image_url:
        return None
    caption = ""
    for key in _CAPTION_KEYS:
        value = obj.get(key)
        if isinstance(value, str) and value:
            caption = value
            break
    return AdUnit(
        image_url=image_url,
        caption=caption,
        width=_as_int(obj.get("width") or obj.get("w")),
        height=_as_int(obj.get("height") or obj.get("h")),
        click_url=obj.get("click_url", "") if isinstance(
            obj.get("click_url", ""), str) else "",
    )


def _walk_json(value, found: list[AdUnit]) -> None:
    unit = _unit_from_object(value)
    if unit is not None:
        found.append(unit)
        return
    if isinstance(value, dict):
        for child in value.values():
            _walk_json(child, found)
    elif isinstance(value, list):
        for child in value:
            _walk_json(child, found)


def extract_ad_units(frames: list[FrameData]) -> list[AdUnit]:
    """Find ad units in a socket's received frames.

    Only JSON-bearing text frames are inspected; an ad unit is any
    object carrying a creative URL (plus optional caption/dimensions),
    however deeply nested.
    """
    units: list[AdUnit] = []
    for frame in frames:
        if frame.sent or not frame.payload:
            continue
        stripped = frame.payload.strip()
        if not stripped or stripped[0] not in "{[":
            continue
        try:
            parsed = json.loads(stripped)
        except ValueError:
            continue
        _walk_json(parsed, units)
    return units
