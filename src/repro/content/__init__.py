"""Content analysis: what flows over sockets and beacons (Table 5).

Reimplements the paper's approach: "We extracted all of these variables
from raw network traffic by manually building up a large library of
regular expressions" (§4.3). The analyzers see only wire text — payload
frames, handshake headers, URLs, POST bodies — and classify:

* **sent items**: user agent, cookie, IP, user ID, device, screen,
  browser, viewport, scroll position, orientation, first seen,
  resolution, language, DOM, binary;
* **received data**: HTML, JSON, JavaScript, image, binary.

Protocol-mandated headers other than ``User-Agent`` and ``Cookie`` are
not treated as exfiltration (``Accept-Language`` is not a tracked
"Language" item; an explicit ``lang=…`` parameter is).
"""

from repro.content.items import RECEIVED_CLASSES, SENT_ITEMS, ReceivedClass, SentItem
from repro.content.received import classify_frame, classify_http_response
from repro.content.sent import SentDataAnalyzer

__all__ = [
    "SentItem",
    "ReceivedClass",
    "SENT_ITEMS",
    "RECEIVED_CLASSES",
    "SentDataAnalyzer",
    "classify_frame",
    "classify_http_response",
]
