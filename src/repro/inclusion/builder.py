"""Inclusion-tree construction from the DevTools event stream.

Mirrors the paper's methodology (§3.1–3.2):

* ``Debugger.scriptParsed`` registers executing scripts (inline scripts
  carry the document URL);
* ``Network.requestWillBeSent`` attaches a node under its semantic
  parent — the initiating script for ``initiator.type == "script"``,
  the containing document for parser-driven inclusions;
* ``Page.frameNavigated`` attaches sub-frame documents beneath the
  resource that created the frame;
* ``Network.webSocketCreated`` attaches a WebSocket node as a child of
  the initiating JavaScript node (Figure 2), and the remaining
  ``webSocket*`` events populate its handshake and frame data.

The builder consumes events only — it would work unchanged against a
real Chrome emitting the same stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cdp.bus import EventBus
from repro.cdp.events import (
    CdpEvent,
    FrameNavigated,
    RequestWillBeSent,
    ResponseReceived,
    ScriptParsed,
    WebSocketClosed,
    WebSocketCreated,
    WebSocketFrameReceived,
    WebSocketFrameSent,
    WebSocketHandshakeResponseReceived,
    WebSocketWillSendHandshakeRequest,
)
from repro.inclusion.node import (
    FrameData,
    InclusionNode,
    NodeKind,
    WebSocketRecord,
)
from repro.net.http import ResourceType

_TYPE_FROM_CDP = {
    "Document": ResourceType.MAIN_FRAME,
    "Script": ResourceType.SCRIPT,
    "Image": ResourceType.IMAGE,
    "Stylesheet": ResourceType.STYLESHEET,
    "XHR": ResourceType.XHR,
    "Fetch": ResourceType.XHR,
    "Font": ResourceType.FONT,
    "Media": ResourceType.MEDIA,
    "Ping": ResourceType.PING,
    "WebSocket": ResourceType.WEBSOCKET,
    "Other": ResourceType.OTHER,
}


class NoDocumentError(RuntimeError):
    """A visit's event stream never produced a main document.

    Raised by :meth:`InclusionTreeBuilder.result` when the
    ``Network.requestWillBeSent`` for the top-level document was lost
    (a dropped event or an aborted load). Subclasses ``RuntimeError``
    for backward compatibility.
    """


@dataclass
class PageTree:
    """The finished inclusion tree for one page visit.

    Attributes:
        root: The main document node.
        websockets: Every WebSocket node in the tree (in open order).
        orphan_count: Events whose parent could not be resolved; they
            attach under the root, as the paper's tooling did for
            unattributable inclusions.
        unattributed_events: Events that referenced a request the tree
            never saw (their ``requestWillBeSent``/``webSocketCreated``
            was lost) and had to be discarded — the signature of a
            lossy event stream.
    """

    root: InclusionNode
    websockets: list[InclusionNode] = field(default_factory=list)
    orphan_count: int = 0
    unattributed_events: int = 0

    def all_nodes(self):
        """Every node in the tree, depth-first."""
        yield from self.root.walk()

    @property
    def resource_count(self) -> int:
        """Number of non-document nodes."""
        return sum(1 for n in self.all_nodes() if n.kind != NodeKind.DOCUMENT)


class InclusionTreeBuilder:
    """Builds one :class:`PageTree` from a visit's event stream."""

    def __init__(self) -> None:
        self.tree: PageTree | None = None
        self.unattributed_events = 0
        self._by_url: dict[str, InclusionNode] = {}
        self._docs_by_frame: dict[str, InclusionNode] = {}
        self._by_request_id: dict[str, InclusionNode] = {}
        self._scripts: dict[str, str] = {}  # script_id -> url
        self._unsubscribe = None

    # -- wiring ---------------------------------------------------------------

    def attach(self, bus: EventBus) -> None:
        """Subscribe to a bus; call :meth:`detach` after the visit."""
        self.detach()
        self._unsubscribe = bus.subscribe(self.handle)

    def detach(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    def handle(self, event: CdpEvent) -> None:
        """Process one event (dispatch by type)."""
        if isinstance(event, RequestWillBeSent):
            self._on_request(event)
        elif isinstance(event, ResponseReceived):
            self._on_response(event)
        elif isinstance(event, ScriptParsed):
            self._scripts[event.script_id] = event.url
        elif isinstance(event, FrameNavigated):
            self._on_frame(event)
        elif isinstance(event, WebSocketCreated):
            self._on_socket_created(event)
        elif isinstance(event, WebSocketWillSendHandshakeRequest):
            record = self._socket_record(event.request_id)
            if record is not None:
                record.handshake_headers = dict(event.headers)
                self._by_request_id[event.request_id].request_headers = dict(
                    event.headers
                )
        elif isinstance(event, WebSocketHandshakeResponseReceived):
            record = self._socket_record(event.request_id)
            if record is not None:
                record.response_status = event.status
        elif isinstance(event, (WebSocketFrameSent, WebSocketFrameReceived)):
            record = self._socket_record(event.request_id)
            if record is not None:
                record.frames.append(FrameData(
                    sent=isinstance(event, WebSocketFrameSent),
                    opcode=event.opcode,
                    payload=event.payload_data,
                ))
        elif isinstance(event, WebSocketClosed):
            record = self._socket_record(event.request_id)
            if record is not None:
                record.closed = True

    # -- event handlers ---------------------------------------------------------

    def _on_request(self, event: RequestWillBeSent) -> None:
        resource_type = _TYPE_FROM_CDP.get(event.resource_type,
                                           ResourceType.OTHER)
        if resource_type == ResourceType.MAIN_FRAME and self.tree is not None:
            # A Document request after the main one is a sub-frame
            # navigation — the type ad blockers call "subdocument".
            resource_type = ResourceType.SUB_FRAME
        if resource_type == ResourceType.MAIN_FRAME and self.tree is None:
            root = InclusionNode(
                url=event.url,
                kind=NodeKind.DOCUMENT,
                resource_type=ResourceType.MAIN_FRAME,
                request_headers=dict(event.headers),
                frame_id=event.frame_id,
            )
            self.tree = PageTree(root=root)
            self._by_url[event.url] = root
            self._docs_by_frame[event.frame_id] = root
            self._by_request_id[event.request_id] = root
            return
        parent = self._resolve_parent(event.initiator, event.frame_id)
        node = InclusionNode(
            url=event.url,
            kind=NodeKind.RESOURCE,
            resource_type=resource_type,
            request_headers=dict(event.headers),
            post_data=event.post_data,
            frame_id=event.frame_id,
        )
        if parent is None:
            node_parent = self._root_or_none()
            if node_parent is None:
                # Event before any document: drop, as real logs do.
                self.unattributed_events += 1
                return
            self.tree.orphan_count += 1
            node_parent.add_child(node)
        else:
            parent.add_child(node)
        self._by_url[event.url] = node
        self._by_request_id[event.request_id] = node

    def _on_response(self, event: ResponseReceived) -> None:
        node = self._by_request_id.get(event.request_id)
        if node is None:
            # The matching requestWillBeSent was lost: a lossy stream.
            self.unattributed_events += 1
            return
        node.mime_type = event.mime_type

    def _on_frame(self, event: FrameNavigated) -> None:
        if self.tree is None:
            return
        if event.frame_id in self._docs_by_frame and not event.parent_frame_id:
            return  # main frame re-announcement
        doc = self._by_url.get(event.url)
        if doc is not None and doc.kind != NodeKind.DOCUMENT:
            # The frame's document request node becomes a document node.
            doc.kind = NodeKind.DOCUMENT
            self._docs_by_frame[event.frame_id] = doc
            return
        if doc is None:
            parent = None
            if event.initiator_url:
                parent = self._by_url.get(event.initiator_url)
            if parent is None and event.parent_frame_id:
                parent = self._docs_by_frame.get(event.parent_frame_id)
            if parent is None:
                parent = self._root_or_none()
                if parent is None:
                    return
            doc = InclusionNode(
                url=event.url,
                kind=NodeKind.DOCUMENT,
                resource_type=ResourceType.SUB_FRAME,
                frame_id=event.frame_id,
            )
            parent.add_child(doc)
            self._by_url[event.url] = doc
        self._docs_by_frame[event.frame_id] = doc

    def _on_socket_created(self, event: WebSocketCreated) -> None:
        if self.tree is None:
            self.unattributed_events += 1
            return
        parent = self._resolve_parent(event.initiator, event.frame_id)
        if parent is None:
            parent = self.tree.root
            self.tree.orphan_count += 1
        node = InclusionNode(
            url=event.url,
            kind=NodeKind.WEBSOCKET,
            resource_type=ResourceType.WEBSOCKET,
            frame_id=event.frame_id,
            websocket=WebSocketRecord(url=event.url),
        )
        parent.add_child(node)
        self._by_request_id[event.request_id] = node
        self.tree.websockets.append(node)

    # -- helpers -----------------------------------------------------------------

    def _socket_record(self, request_id: str):
        """The socket record for a lifecycle event, counting strays.

        Returns ``None`` (and counts the event as unattributed) when
        the socket's ``webSocketCreated`` was never seen — the orphaned
        lifecycle a lossy CDP stream produces.
        """
        node = self._by_request_id.get(request_id)
        if node is None or node.websocket is None:
            self.unattributed_events += 1
            return None
        return node.websocket

    def _root_or_none(self) -> InclusionNode | None:
        return self.tree.root if self.tree is not None else None

    def _resolve_parent(self, initiator, frame_id: str) -> InclusionNode | None:
        """Find the semantic parent for an initiator descriptor."""
        if initiator.type == "script":
            for url in (initiator.url, *initiator.stack_urls):
                if url:
                    node = self._by_url.get(url)
                    if node is not None:
                        return node
            return self._docs_by_frame.get(frame_id)
        if initiator.type == "parser":
            if initiator.url:
                node = self._by_url.get(initiator.url)
                if node is not None:
                    return node
            return self._docs_by_frame.get(frame_id)
        return self._docs_by_frame.get(frame_id)

    # -- results -----------------------------------------------------------------

    def result(self) -> PageTree:
        """The finished tree; raises if no document was ever seen."""
        if self.tree is None:
            raise NoDocumentError("no main document observed")
        self.tree.unattributed_events = self.unattributed_events
        return self.tree
