"""Inclusion tree node model."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.net.domains import second_level_of_url
from repro.net.http import ResourceType


class NodeKind(str, enum.Enum):
    """What a tree node represents."""

    DOCUMENT = "document"
    RESOURCE = "resource"
    WEBSOCKET = "websocket"


@dataclass
class FrameData:
    """One data frame observed on a socket (direction + opcode + text)."""

    sent: bool
    opcode: int
    payload: str


@dataclass
class WebSocketRecord:
    """Everything observed about one WebSocket connection.

    Attributes:
        url: The ws/wss endpoint.
        handshake_headers: Request headers of the upgrade.
        response_status: Upgrade response status (101 when accepted).
        frames: Data frames in observation order.
        closed: Whether a close event was seen.
    """

    url: str
    handshake_headers: dict[str, str] = field(default_factory=dict)
    response_status: int = 0
    frames: list[FrameData] = field(default_factory=list)
    closed: bool = False

    @property
    def partial(self) -> bool:
        """Whether lifecycle events were lost for this socket.

        A complete observation sees a handshake response (any status)
        and a close. A record without either came from a lossy event
        stream — downstream consumers must not assume its frame list
        or handshake data is complete.
        """
        return self.response_status == 0 or not self.closed

    @property
    def sent_frames(self) -> list[FrameData]:
        return [f for f in self.frames if f.sent]

    @property
    def received_frames(self) -> list[FrameData]:
        return [f for f in self.frames if not f.sent]


@dataclass
class InclusionNode:
    """One node of an inclusion tree.

    Attributes:
        url: Resource URL (document URL for document nodes).
        kind: Document, plain resource, or WebSocket.
        resource_type: The webRequest-style resource type.
        mime_type: Response MIME type, when observed.
        request_headers: Request headers (UA, Cookie, Referer…).
        post_data: POST body, when any.
        parent: Parent node (None at the root).
        children: Child inclusions in observation order.
        frame_id: Frame the resource loaded in.
        websocket: Socket record for WebSocket nodes.
        inline: Whether this was an inline script.
    """

    url: str
    kind: NodeKind = NodeKind.RESOURCE
    resource_type: ResourceType = ResourceType.OTHER
    mime_type: str = ""
    request_headers: dict[str, str] = field(default_factory=dict)
    post_data: str = ""
    parent: "InclusionNode | None" = None
    children: list["InclusionNode"] = field(default_factory=list)
    frame_id: str = ""
    websocket: WebSocketRecord | None = None
    inline: bool = False

    def add_child(self, child: "InclusionNode") -> "InclusionNode":
        """Attach a child and return it."""
        child.parent = self
        self.children.append(child)
        return child

    @property
    def domain(self) -> str:
        """Second-level domain of the node's URL ('' when unparseable)."""
        try:
            return second_level_of_url(self.url)
        except Exception:
            return ""

    def ancestors(self) -> list["InclusionNode"]:
        """Parent chain, nearest first, root last."""
        out: list[InclusionNode] = []
        node = self.parent
        while node is not None:
            out.append(node)
            node = node.parent
        return out

    def walk(self):
        """Yield this node and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def depth(self) -> int:
        """Distance to the root (root = 0)."""
        return len(self.ancestors())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InclusionNode({self.kind.value}, {self.url!r}, children={len(self.children)})"
