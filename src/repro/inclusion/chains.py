"""Inclusion chains: root-to-node paths through a tree.

A *chain* is the sequence of resources leading from the page document
to a given inclusion — the unit of analysis for both A&A attribution
(§3.2: descend the branch that includes the socket) and the post-hoc
blocking analysis (§4.2: would any script in the chain have been
blocked?).
"""

from __future__ import annotations

from repro.inclusion.node import InclusionNode


def chain_to(node: InclusionNode) -> list[InclusionNode]:
    """The chain from the root document down to ``node`` (inclusive)."""
    chain = [node] + node.ancestors()
    chain.reverse()
    return chain


def chain_urls(node: InclusionNode) -> list[str]:
    """URLs along the chain, root first."""
    return [n.url for n in chain_to(node)]


def chain_domains(node: InclusionNode) -> list[str]:
    """Second-level domains along the chain, root first, '' filtered."""
    return [n.domain for n in chain_to(node) if n.domain]
