"""Inclusion trees (Arshad et al. 2016), built from DevTools events.

An inclusion tree captures the *semantic* relationships between
resource inclusions — which script caused which request — rather than
the DOM's syntactic nesting or the (misleading) Referer header. This
package reconstructs the trees the paper's crawler recorded, treating
WebSockets as children of the JavaScript resource that opened them
(Figure 2 of the paper).
"""

from repro.inclusion.node import InclusionNode, NodeKind, WebSocketRecord
from repro.inclusion.builder import InclusionTreeBuilder, NoDocumentError, PageTree
from repro.inclusion.chains import chain_domains, chain_to, chain_urls

__all__ = [
    "InclusionNode",
    "NodeKind",
    "WebSocketRecord",
    "InclusionTreeBuilder",
    "NoDocumentError",
    "PageTree",
    "chain_to",
    "chain_urls",
    "chain_domains",
]
