"""Payload profiles: what actually flows over the sockets and beacons.

Every WebSocket in the synthetic web belongs to a *payload profile*
modeling the wire behaviour of a class of services the paper observed:

* ``chat`` — live-chat widgets (Zopim, Intercom, Smartsupp, Velaro…):
  JSON session setup with the visitor cookie, HTML message bubbles back.
* ``fingerprint`` — 33across-style harvesting of screen / browser /
  viewport / scroll / orientation / first-seen / resolution / device.
* ``session_replay`` — Hotjar / LuckyOrange / TruConversion: the entire
  serialized DOM goes up (§4.3 "DOM Exfiltration").
* ``ad_serving`` — Lockerdome: ad URLs, captions and dimensions come
  down as JSON, with images hosted on a non-blacklisted CDN.
* ``realtime_feed`` / ``comments`` — Realtime, Pusher, Feedjit, Disqus.
* ``sports_live`` / ``game_state`` — the non-A&A uses (ESPN CDN,
  slither.io) that make up the benign remainder.

The content analyzer (``repro.content``) knows nothing about profiles;
it sees only the rendered text, exactly as the paper's regex library saw
raw network traffic.
"""

from __future__ import annotations

import datetime as dt
import json
from dataclasses import dataclass, field
from typing import Callable

from repro.net.useragent import DeviceProfile
from repro.net.websocket import FrameDirection, OpCode
from repro.util.rng import RngStream


@dataclass
class PayloadContext:
    """Everything a profile may reference when rendering frames.

    Attributes:
        device: The browser's device profile (fingerprint surface).
        page_url: URL of the page hosting the socket.
        receiver_host: Host the socket connects to.
        cookie_value: The tracking cookie for the receiver's domain.
        cookie_first_seen: POSIX timestamp when that cookie was created.
        user_id: A service-scoped account/user identifier, if the
            service assigns one.
        client_ip: The public IP the server observes.
        dom_html: Serialized DOM of the hosting page.
        scroll_position: Page scroll offset at capture time.
        timestamp: Simulated POSIX time of the exchange.
        rng: Stream for payload jitter (message counts, sizes).
    """

    device: DeviceProfile
    page_url: str
    receiver_host: str
    cookie_value: str = ""
    cookie_first_seen: float | None = None
    user_id: str = ""
    client_ip: str = ""
    dom_html: str = ""
    scroll_position: int = 0
    timestamp: float = 0.0
    rng: RngStream = field(default_factory=lambda: RngStream(0, "payload"))


@dataclass(frozen=True)
class FramePlan:
    """One planned frame: direction, opcode, rendered payload."""

    direction: FrameDirection
    opcode: OpCode
    payload: str


ProfileRenderer = Callable[[PayloadContext], list[FramePlan]]

_SENT = FrameDirection.SENT
_RECEIVED = FrameDirection.RECEIVED


def _iso_date(ts: float | None) -> str:
    if ts is None:
        return ""
    return dt.datetime.fromtimestamp(ts, tz=dt.timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%SZ"
    )


def _text(direction: FrameDirection, payload: str) -> FramePlan:
    return FramePlan(direction, OpCode.TEXT, payload)


def _binary(direction: FrameDirection, payload: bytes) -> FramePlan:
    return FramePlan(direction, OpCode.BINARY, payload.decode("latin-1"))


# ---------------------------------------------------------------------------
# Profiles
# ---------------------------------------------------------------------------


def chat_profile(ctx: PayloadContext) -> list[FramePlan]:
    """Live-chat widget: session init with cookie, HTML bubbles back.

    Mix calibrated to Table 5: ~18% of chat sockets are passive
    (receive-only presence channels), ~15% idle entirely after the
    handshake, most receive HTML bubbles, a few get JSON status or an
    inline avatar image.
    """
    frames: list[FramePlan] = []
    if not ctx.rng.bernoulli(0.18):  # 18%: passive presence channel
        frames.append(_text(
            _SENT,
            json.dumps({
                "event": "session.start",
                "visitor_cookie": ctx.cookie_value,
                "page": ctx.page_url,
                "user_agent": ctx.device.user_agent,
            }),
        ))
    if ctx.rng.bernoulli(0.10):  # idle socket: nothing pushed either
        return frames
    greetings = (
        "<div class=\"chat-msg agent\"><span>Hi there! How can we help you today?</span></div>",
        "<div class=\"chat-msg agent\"><img class=\"avatar\" src=\"/img/agent3.png\"/><span>An agent will be with you shortly.</span></div>",
        "<div class=\"chat-widget online\"><p>We're online &mdash; ask us anything.</p></div>",
    )
    if ctx.rng.bernoulli(0.72):
        for _ in range(1 + ctx.rng.randint(0, 2)):
            frames.append(_text(_RECEIVED, ctx.rng.choice(greetings)))
    elif ctx.rng.bernoulli(0.15):
        frames.append(_text(
            _RECEIVED,
            json.dumps({"event": "agent.status", "online": True, "queue": 0}),
        ))
    elif ctx.rng.bernoulli(0.5):
        frames.append(_text(_RECEIVED, "1::keepalive"))
    if ctx.rng.bernoulli(0.007):  # avatar pushed inline (Image class)
        frames.append(_text(
            _RECEIVED,
            "data:image/png;base64,iVBORw0KGgoAAAANSUhEUgAAAAEAAAABCAYAAAAfFcSJ",
        ))
    return frames


def chat_identified_profile(ctx: PayloadContext) -> list[FramePlan]:
    """Chat widget on a site that identifies logged-in users (user_id)."""
    frames = chat_profile(ctx)
    frames.insert(
        1,
        _text(
            _SENT,
            json.dumps(
                {
                    "event": "visitor.identify",
                    "user_id": ctx.user_id,
                    "account_id": ctx.user_id[:8],
                    "lang": ctx.device.language,
                }
            ),
        ),
    )
    return frames


def fingerprint_profile(ctx: PayloadContext) -> list[FramePlan]:
    """33across-style browser-state harvest (every Table 5 FP item)."""
    d = ctx.device
    payload = {
        "uid": ctx.cookie_value,
        "screen": d.screen,
        "resolution": d.resolution,
        "viewport": d.viewport,
        "scroll_position": ctx.scroll_position,
        "orientation": d.orientation,
        "browser_type": d.browser_type,
        "browser_family": d.browser_family,
        "device_type": d.device_type,
        "device_family": d.device_family,
        "first_seen": _iso_date(ctx.cookie_first_seen),
        "tz_offset": d.timezone_offset_minutes,
        "page": ctx.page_url,
    }
    if ctx.rng.bernoulli(0.5):
        payload["language"] = d.language
    frames = [_text(_SENT, json.dumps({"type": "env", "data": payload}))]
    if ctx.rng.bernoulli(0.3):
        frames.append(_text(_RECEIVED, json.dumps({"type": "ack", "sync": True})))
    return frames


def session_replay_profile(ctx: PayloadContext) -> list[FramePlan]:
    """Session replay with full-DOM exfiltration on sampled sessions.

    Replay services sample: only ~25% of sessions upload the serialized
    DOM (Table 5's "DOM" row is 1.63% of sockets, far below the replay
    services' socket counts); the rest stream interaction events only.
    """
    frames = [
        _text(
            _SENT,
            json.dumps(
                {"rec": "init", "sid": ctx.cookie_value, "url": ctx.page_url}
            ),
        ),
    ]
    if ctx.rng.bernoulli(0.25):
        frames.append(_text(
            _SENT,
            json.dumps({"rec": "snapshot", "dom": ctx.dom_html, "t": ctx.timestamp}),
        ))
    moves = [
        {"e": "mousemove", "x": ctx.rng.randint(0, 1900), "y": ctx.rng.randint(0, 1000)}
        for _ in range(ctx.rng.randint(2, 5))
    ]
    frames.append(_text(_SENT, json.dumps({"rec": "events", "batch": moves})))
    if ctx.rng.bernoulli(0.3):
        frames.append(
            _text(_RECEIVED, json.dumps({"rec": "config", "sample": 0.25, "ok": True}))
        )
    elif ctx.rng.bernoulli(0.5):
        frames.append(_text(_RECEIVED, "rec-ok"))
    return frames


def event_replay_profile(ctx: PayloadContext) -> list[FramePlan]:
    """Session replay that streams events but not the full DOM (Inspectlet)."""
    init: dict = {"rec": "init", "sid": ctx.cookie_value, "url": ctx.page_url}
    if ctx.rng.bernoulli(0.25):
        init["screen"] = ctx.device.screen
        init["device_type"] = ctx.device.device_type
    frames = [_text(_SENT, json.dumps(init))]
    for _ in range(ctx.rng.randint(1, 3)):
        frames.append(
            _text(
                _SENT,
                json.dumps(
                    {
                        "rec": "events",
                        "batch": [
                            {
                                "e": "click",
                                "x": ctx.rng.randint(0, 1900),
                                "y": ctx.rng.randint(0, 1000),
                            }
                        ],
                    }
                ),
            )
        )
    if ctx.rng.bernoulli(0.05):  # compressed ack blob (Binary class)
        frames.append(_binary(
            _RECEIVED,
            bytes(ctx.rng.randint(0, 255) for _ in range(24)),
        ))
    elif ctx.rng.bernoulli(0.3):
        frames.append(_text(_RECEIVED, json.dumps({"rec": "ok"})))
    return frames


def ad_serving_profile(ctx: PayloadContext) -> list[FramePlan]:
    """Lockerdome-style ad delivery: slot request up, ad JSON down.

    The creative URLs point at a CDN host that no filter list covers —
    the behaviour §4.3 and Figure 4 document.
    """
    slot = f"slot-{ctx.rng.randint(1, 6)}"
    frames = [
        _text(
            _SENT,
            json.dumps(
                {
                    "op": "request_ads",
                    "slot": slot,
                    "uid": ctx.cookie_value,
                    "user_id": ctx.user_id,
                    "page": ctx.page_url,
                }
            ),
        )
    ]
    captions = (
        "Odd Trick To Fix Sagging Skin",
        "Study Reveals What Just A Single Diet Soda Does To You",
        "Win an iPad Air 2 from Addicting Games!",
        "Doctors Stunned: Local Mom Discovers Simple Wrinkle Fix",
        "You Won't Believe What These Child Stars Look Like Now",
    )
    ads = []
    for i in range(ctx.rng.randint(1, 3)):
        ads.append(
            {
                "image": f"https://cdn1.lockerdome.com/uploads/ad{ctx.rng.randint(1000, 9999)}.jpg",
                "caption": ctx.rng.choice(captions),
                "width": 300,
                "height": 250,
                "click_url": f"https://lockerdome.com/click/{ctx.rng.randint(10**6, 10**7)}",
            }
        )
    frames.append(_text(_RECEIVED, json.dumps({"op": "ads", "slot": slot, "ads": ads})))
    return frames


def realtime_feed_profile(ctx: PayloadContext) -> list[FramePlan]:
    """Realtime/Pusher-style pub-sub channel: subscribe, JSON pushes."""
    channel = f"presence-{ctx.receiver_host.split('.')[0]}-{ctx.rng.randint(1, 99)}"
    frames: list[FramePlan] = []
    if not ctx.rng.bernoulli(0.35):  # 35%: server-push-only channels
        frames.append(_text(
            _SENT,
            json.dumps(
                {"event": "subscribe", "channel": channel, "auth": ctx.cookie_value}
            ),
        ))
    if ctx.rng.bernoulli(0.10):  # channel stays quiet this visit
        return frames
    # Framing is a property of the service, stable per socket: most
    # 2017 realtime stacks used socket.io-style type-prefixed frames,
    # which are neither JSON nor HTML to a content classifier.
    socketio_framed = ctx.rng.bernoulli(0.75)
    for _ in range(ctx.rng.randint(1, 3)):
        update = json.dumps(
            {
                "event": "update",
                "channel": channel,
                "data": {"count": ctx.rng.randint(1, 500)},
            }
        )
        if socketio_framed:
            update = f"42[\"update\",{update}]"
        frames.append(_text(_RECEIVED, update))
    return frames


def visitor_feed_profile(ctx: PayloadContext) -> list[FramePlan]:
    """Feedjit-style live visitor feed: HTML list items stream down."""
    frames: list[FramePlan] = []
    if not ctx.rng.bernoulli(0.30):
        frames.append(_text(
            _SENT,
            json.dumps({"watch": ctx.page_url, "vid": ctx.cookie_value}),
        ))
    towns = ("Boston", "Leeds", "Osaka", "Porto", "Austin", "Nairobi", "Lyon")
    for _ in range(ctx.rng.randint(1, 3)):
        town = ctx.rng.choice(towns)
        frames.append(
            _text(
                _RECEIVED,
                f"<li class=\"visitor\"><b>{town}</b> arrived from "
                f"<a href=\"{ctx.page_url}\">search</a></li>",
            )
        )
    return frames


def comments_profile(ctx: PayloadContext) -> list[FramePlan]:
    """Disqus-style live comments: HTML fragments plus sponsored units."""
    frames: list[FramePlan] = []
    if not ctx.rng.bernoulli(0.25):  # passive comment stream
        frames.append(_text(
            _SENT,
            json.dumps(
                {
                    "op": "join",
                    "thread": ctx.page_url,
                    "uid": ctx.cookie_value,
                    "user_agent": ctx.device.user_agent,
                }
            ),
        ))
    if ctx.rng.bernoulli(0.1):  # no new comments during the visit
        return frames
    frames.append(_text(
        _RECEIVED,
        "<div class=\"comment\"><cite>reader_42</cite>"
        "<p>Great article, thanks for sharing!</p></div>",
    ))
    if ctx.rng.bernoulli(0.07):
        # A sponsored-unit loader pushed as live code (the paper's
        # "JavaScript … that can be used to further exfiltrate data").
        frames.append(_text(
            _RECEIVED,
            "(function(){var u=document.createElement('script');"
            "u.src='https://disq.us/promo/loader.js';"
            "document.body.appendChild(u);})()",
        ))
    elif ctx.rng.bernoulli(0.3):
        frames.append(
            _text(
                _RECEIVED,
                json.dumps(
                    {
                        "op": "sponsored",
                        "unit": {
                            "headline": "Promoted: 10 Stocks To Watch",
                            "url": "https://disq.us/promo/8841",
                        },
                    }
                ),
            )
        )
    return frames


def analytics_beacon_profile(ctx: PayloadContext) -> list[FramePlan]:
    """Engagement analytics (Webspectator/FreshRelevance): metrics + IDs."""
    frames = [
        _text(
            _SENT,
            json.dumps(
                {
                    "metric": "engaged_time",
                    "seconds": ctx.rng.randint(5, 120),
                    "user_id": ctx.user_id,
                    "client_id": ctx.cookie_value,
                    "ip": ctx.client_ip,
                    "page": ctx.page_url,
                }
            ),
        )
    ]
    if ctx.rng.bernoulli(0.30):
        frames.append(_text(_RECEIVED, json.dumps({"status": "ok"})))
    elif ctx.rng.bernoulli(0.64):
        frames.append(_text(_RECEIVED, "ok 200"))
    return frames


def sports_live_profile(ctx: PayloadContext) -> list[FramePlan]:
    """Live scores / odds ticker (ESPN CDN, sportingindex): no tracking."""
    frames = [
        _text(_SENT, json.dumps({"subscribe": ["scores", "odds"]})),
    ]
    for _ in range(ctx.rng.randint(1, 4)):
        frames.append(
            _text(
                _RECEIVED,
                json.dumps(
                    {
                        "match": ctx.rng.randint(1000, 9999),
                        "home": ctx.rng.randint(0, 5),
                        "away": ctx.rng.randint(0, 5),
                    }
                ),
            )
        )
    return frames


def game_state_profile(ctx: PayloadContext) -> list[FramePlan]:
    """Binary game-state stream (slither.io): masks nothing, tracks nothing."""
    frames: list[FramePlan] = []
    for _ in range(ctx.rng.randint(2, 5)):
        blob = bytes(ctx.rng.randint(0, 255) for _ in range(ctx.rng.randint(8, 40)))
        frames.append(_binary(_SENT, blob))
        frames.append(
            _binary(
                _RECEIVED,
                bytes(ctx.rng.randint(0, 255) for _ in range(ctx.rng.randint(16, 80))),
            )
        )
    return frames


def binary_uplink_profile(ctx: PayloadContext) -> list[FramePlan]:
    """Opaque binary exfiltration the paper could not decode (~1%)."""
    blob = bytes(ctx.rng.randint(0, 255) for _ in range(ctx.rng.randint(60, 200)))
    return [_binary(_SENT, blob)]


def silent_profile(ctx: PayloadContext) -> list[FramePlan]:
    """A socket opened but never used ("No data" rows of Table 5)."""
    return []


def push_channel_profile(ctx: PayloadContext) -> list[FramePlan]:
    """Generic CDN push channel: receives JSON, sends nothing."""
    return [
        _text(
            _RECEIVED,
            json.dumps({"push": "invalidate", "keys": [ctx.rng.randint(1, 10**6)]}),
        )
    ]


PROFILES: dict[str, ProfileRenderer] = {
    "chat": chat_profile,
    "chat_identified": chat_identified_profile,
    "fingerprint": fingerprint_profile,
    "session_replay": session_replay_profile,
    "event_replay": event_replay_profile,
    "ad_serving": ad_serving_profile,
    "realtime_feed": realtime_feed_profile,
    "visitor_feed": visitor_feed_profile,
    "comments": comments_profile,
    "analytics_beacon": analytics_beacon_profile,
    "sports_live": sports_live_profile,
    "game_state": game_state_profile,
    "binary_uplink": binary_uplink_profile,
    "silent": silent_profile,
    "push_channel": push_channel_profile,
}


def render_profile(name: str, ctx: PayloadContext) -> list[FramePlan]:
    """Render a named profile's frames for one socket."""
    try:
        renderer = PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown payload profile: {name!r}") from None
    return renderer(ctx)
