"""The 17 Alexa top categories the paper sampled from (§3.3).

Each category carries a small vocabulary used to mint plausible
publisher domain names, so generated hostnames look like the web rather
than like ``site00042.com``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Category:
    """One Alexa top category.

    Attributes:
        name: Category name as Alexa spelled it.
        words: Vocabulary for domain-name generation.
        ad_intensity: Relative propensity of sites in this category to
            carry advertising (news sites are ad-heavy; reference sites
            are not). Used by the site generator.
    """

    name: str
    words: tuple[str, ...]
    ad_intensity: float = 1.0


CATEGORIES: tuple[Category, ...] = (
    Category("Arts", ("gallery", "film", "music", "artist", "theater", "culture", "design", "photo"), 1.1),
    Category("Business", ("capital", "trade", "invest", "market", "biz", "corp", "finance", "ledger"), 0.9),
    Category("Computers", ("tech", "code", "dev", "cloud", "data", "byte", "stack", "linux"), 0.8),
    Category("Games", ("game", "play", "arcade", "quest", "pixel", "guild", "clan", "arena"), 1.3),
    Category("Health", ("health", "clinic", "care", "wellness", "fit", "medic", "recovery", "therapy"), 1.0),
    Category("Home", ("home", "garden", "decor", "kitchen", "diy", "craft", "casa", "nest"), 1.0),
    Category("Kids_and_Teens", ("kids", "teen", "school", "fun", "learn", "junior", "youth", "campus"), 0.9),
    Category("News", ("news", "daily", "times", "post", "herald", "tribune", "wire", "gazette"), 1.6),
    Category("Recreation", ("travel", "outdoor", "camp", "trail", "voyage", "tour", "resort", "fishing"), 1.0),
    Category("Reference", ("wiki", "ref", "dictionary", "atlas", "scholar", "archive", "lexicon", "library"), 0.6),
    Category("Regional", ("city", "local", "region", "metro", "town", "county", "village", "province"), 1.0),
    Category("Science", ("science", "lab", "research", "physics", "bio", "astro", "quantum", "geo"), 0.7),
    Category("Shopping", ("shop", "store", "deal", "cart", "bargain", "outlet", "mall", "boutique"), 1.4),
    Category("Society", ("forum", "community", "social", "voice", "people", "culture", "debate", "alliance"), 1.1),
    Category("Sports", ("sport", "score", "league", "team", "athletic", "stadium", "racing", "goal"), 1.4),
    Category("Adult", ("date", "flirt", "night", "glam", "desire", "velvet", "charm", "amour"), 1.5),
    Category("World", ("world", "global", "international", "planet", "continental", "pan", "terra", "orbis"), 1.0),
)

CATEGORY_NAMES: tuple[str, ...] = tuple(c.name for c in CATEGORIES)
CATEGORY_BY_NAME: dict[str, Category] = {c.name: c for c in CATEGORIES}

assert len(CATEGORIES) == 17, "the paper sampled 17 Alexa top categories"
