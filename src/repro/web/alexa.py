"""The synthetic Alexa top-1M universe and seed-list sampling (§3.3).

The paper seeded its crawls with ~100K unique sites: the top 5.8K from
each of the 17 Alexa top categories plus 5.8K sampled from the Alexa
top-1M, deduplicated. We reproduce that procedure over a deterministic
universe of one million ranked publisher domains; a ``scale`` parameter
shrinks every sample proportionally so the study runs at laptop scale
while keeping rank structure intact (ranks remain 1..1,000,000).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.util.rng import RngStream, derive_seed
from repro.web.categories import CATEGORIES, CATEGORY_NAMES

UNIVERSE_SIZE = 1_000_000
PAPER_PER_CATEGORY = 5_800
PAPER_RANDOM_SAMPLE = 5_800

_TLDS = ("com", "com", "com", "net", "org", "io", "co", "info", "tv", "me")
_PREFIXES = ("", "", "", "my", "the", "get", "go", "top", "all", "pro", "e")
_SUFFIXES = ("", "", "hub", "zone", "base", "spot", "now", "lab", "world", "hq", "central")


@dataclass(frozen=True)
class Site:
    """One publisher in the universe.

    Attributes:
        rank: Alexa rank, 1-based (1 = most popular).
        domain: Registrable domain, e.g. ``dailytribunenow.com``.
        category: Alexa top-category name.
    """

    rank: int
    domain: str
    category: str

    @property
    def homepage(self) -> str:
        """The site's homepage URL."""
        return f"https://www.{self.domain}/"


class AlexaUniverse:
    """Deterministic generator of the ranked 1M-site universe.

    Sites are derived (not stored): ``site_at(rank)`` is a pure function
    of the universe seed, so sampling 2K or 100K sites costs memory
    proportional to the sample, never to the universe.
    """

    def __init__(self, seed: int = 2017) -> None:
        self.seed = seed

    @lru_cache(maxsize=300_000)
    def site_at(self, rank: int) -> Site:
        """The site occupying a given rank (1-based)."""
        if not 1 <= rank <= UNIVERSE_SIZE:
            raise ValueError(f"rank out of range: {rank}")
        rng = RngStream(self.seed, "universe", rank)
        category = CATEGORIES[
            derive_seed(self.seed, "cat", rank) % len(CATEGORIES)
        ]
        word_a = rng.choice(category.words)
        word_b = rng.choice(category.words)
        prefix = rng.choice(_PREFIXES)
        suffix = rng.choice(_SUFFIXES)
        tld = rng.choice(_TLDS)
        core = word_a if word_a == word_b else word_a + word_b
        label = f"{prefix}{core}{suffix}"
        # Rank digits make collisions impossible without looking machine-made
        # for the common case: only ~1 in 6 names carry them.
        if rng.bernoulli(0.18):
            label = f"{label}{rank % 1000}"
        else:
            label = f"{label}{_disambiguator(rank)}"
        return Site(rank=rank, domain=f"{label}.{tld}", category=category.name)

    def top_of_category(self, category: str, count: int) -> list[Site]:
        """The ``count`` best-ranked sites of a category.

        Mirrors Alexa's per-category toplists: we scan ranks in order and
        keep those whose site belongs to the category. Category assignment
        is uniform, so the scan touches ~17×count ranks.
        """
        if category not in CATEGORY_NAMES:
            raise ValueError(f"unknown category: {category}")
        found: list[Site] = []
        rank = 1
        while len(found) < count and rank <= UNIVERSE_SIZE:
            site = self.site_at(rank)
            if site.category == category:
                found.append(site)
            rank += 1
        return found

    def random_sample(self, count: int, stream: RngStream) -> list[Site]:
        """Uniformly sample ``count`` distinct ranks from the top-1M."""
        ranks: set[int] = set()
        while len(ranks) < count:
            ranks.add(stream.randint(1, UNIVERSE_SIZE))
        return [self.site_at(r) for r in sorted(ranks)]


def _disambiguator(rank: int) -> str:
    """A short letter suffix unique per rank (base-26)."""
    letters = "abcdefghijklmnopqrstuvwxyz"
    n = rank
    out = []
    while n:
        n, rem = divmod(n, 26)
        out.append(letters[rem])
    return "".join(out)


@dataclass
class SeedList:
    """The crawl seed list: the deduplicated union of all samples.

    Attributes:
        sites: Sites ordered by rank.
        per_category: How many sites each category sample requested.
        random_count: Size of the top-1M random sample.
    """

    sites: list[Site]
    per_category: int
    random_count: int
    extra_sites: list[Site] = field(default_factory=list)

    @property
    def domains(self) -> list[str]:
        """Seed domains in rank order."""
        return [s.domain for s in self.sites]

    def __len__(self) -> int:
        return len(self.sites)


def build_seed_list(
    universe: AlexaUniverse,
    scale: float = 1.0,
    extra_sites: list[Site] | None = None,
    seed: int = 2017,
) -> SeedList:
    """Reproduce the paper's seed-list construction, optionally scaled.

    Args:
        universe: The ranked universe to sample from.
        scale: Fraction of the paper's sample sizes (1.0 = 5.8K per
            category + 5.8K random ≈ 100K sites after dedup).
        extra_sites: Deterministically placed sites that must be crawled
            (the registry's reserved publishers), merged in after
            sampling and deduplication.
        seed: RNG seed for the random top-1M sample.

    Returns:
        The deduplicated, rank-ordered seed list.
    """
    if not 0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    per_category = max(1, round(PAPER_PER_CATEGORY * scale))
    random_count = max(1, round(PAPER_RANDOM_SAMPLE * scale))
    by_domain: dict[str, Site] = {}
    # Single rank scan filling all 17 per-category toplists at once
    # (equivalent to 17 top_of_category calls, one pass instead of 17).
    remaining = {name: per_category for name in CATEGORY_NAMES}
    unfilled = len(remaining)
    rank = 1
    while unfilled and rank <= UNIVERSE_SIZE:
        site = universe.site_at(rank)
        left = remaining[site.category]
        if left > 0:
            by_domain[site.domain] = site
            remaining[site.category] = left - 1
            if left == 1:
                unfilled -= 1
        rank += 1
    stream = RngStream(seed, "seed-list", "random-sample")
    for site in universe.random_sample(random_count, stream):
        by_domain[site.domain] = site
    for site in extra_sites or []:
        by_domain[site.domain] = site
    ordered = sorted(by_domain.values(), key=lambda s: s.rank)
    return SeedList(
        sites=ordered,
        per_category=per_category,
        random_count=random_count,
        extra_sites=list(extra_sites or []),
    )
