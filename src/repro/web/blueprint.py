"""Page blueprints: the declarative form of a page the browser executes.

A blueprint is what the :class:`~repro.web.server.SyntheticWeb` returns
for a (site, page, crawl) triple: a tree of resources with optional
socket plans attached to script nodes. The browser walks the tree,
emits CDP events, renders payloads against its own state (cookies,
device profile, clock), and consults its extension for blocking — so
the same blueprint produces different traffic under different browser
configurations, which is exactly what the WRB ablation needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.http import ResourceType


@dataclass
class HttpBeaconPlan:
    """Tracking parameters to render onto an HTTP request at visit time.

    Attributes:
        query_items: Item names to place into the query string. Item
            names come from the Table 5 taxonomy: ``uid``, ``cookie``,
            ``language``, ``screen``, ``viewport``, ``device``,
            ``resolution``, ``ip``, ``user_id``, ``first_seen``,
            ``browser``.
        post_items: Item names to place into a POST body instead
            (``dom`` — session-replay uploads — must go here).
    """

    query_items: tuple[str, ...] = ()
    post_items: tuple[str, ...] = ()

    @property
    def method(self) -> str:
        """POST when a body is planned, GET otherwise."""
        return "POST" if self.post_items else "GET"


@dataclass
class SocketPlan:
    """A WebSocket to open from a script node.

    Attributes:
        ws_url: Endpoint URL, or empty when ``ws_pool`` is used.
        ws_pool: Candidate endpoints; the browser picks one per socket.
        profile: Payload profile name.
        count: Number of sockets to open (Table 4's spp knob).
        user_id: Pre-rendered user identifier ('' = anonymous visit).
        receiver_key: Registry key of the receiving company ('' for
            benign/unknown receivers) — carried for generation-side
            bookkeeping only; the pipeline never sees it.
        cookie_enabled: Whether this installation uses cookie-based
            visitor identity at all (stable per site+deployment).
    """

    ws_url: str = ""
    ws_pool: tuple[str, ...] = ()
    profile: str = "chat"
    count: int = 1
    user_id: str = ""
    receiver_key: str = ""
    cookie_enabled: bool = True


@dataclass
class ResourceNode:
    """One resource in the page's inclusion structure.

    Attributes:
        url: Absolute URL to fetch.
        resource_type: What the browser fetches it as.
        mime_type: Response MIME type (drives received-data classing).
        inline: True for inline scripts — no fetch happens; the script
            "parses" with the document's URL, so sockets it opens are
            attributed to the first party (how FIRST_PARTY initiation
            manifests in the inclusion tree).
        children: Resources requested by this node's code.
        sockets: Sockets this node's code opens (script nodes only).
        sets_cookie: Whether the response sets a tracking cookie for
            the resource's domain.
        send_cookie: Whether the request carries the domain's cookie.
        beacon: Tracking parameters to render onto the request.
        body_size: Approximate response size (for realism only).
    """

    url: str
    resource_type: ResourceType = ResourceType.SCRIPT
    mime_type: str = "application/javascript"
    inline: bool = False
    children: list["ResourceNode"] = field(default_factory=list)
    sockets: list[SocketPlan] = field(default_factory=list)
    sets_cookie: bool = False
    send_cookie: bool = False
    beacon: HttpBeaconPlan | None = None
    body_size: int = 0

    def walk(self):
        """Yield this node and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class PageBlueprint:
    """A complete page: document plus its resource tree.

    Attributes:
        url: Page URL.
        title: Document title (flows into serialized-DOM payloads).
        resources: Top-level resources included by the document itself.
        links: Same-site links the crawler may follow (§3.3's 15-link
            policy applies to these).
        dom_html: The page's *content fragment* (article body, forms,
            unsent input state). The browser composes the full
            serialized document from the resource tree plus this
            fragment (see ``repro.browser.dom``); session-replay
            payloads exfiltrate that serialization.
    """

    url: str
    title: str = ""
    resources: list[ResourceNode] = field(default_factory=list)
    links: list[str] = field(default_factory=list)
    dom_html: str = ""

    def all_nodes(self):
        """Yield every resource node in the page, depth-first."""
        for resource in self.resources:
            yield from resource.walk()

    @property
    def socket_count(self) -> int:
        """Total sockets the page would open (unblocked)."""
        return sum(
            plan.count for node in self.all_nodes() for plan in node.sockets
        )
