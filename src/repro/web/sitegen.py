"""Site generator: page blueprints for every (site, page, crawl) triple.

Each page consists of:

* first-party resources (CSS, scripts, images, internal links);
* ambient third-party embeds — the ordinary 2017 ad/tracking stack,
  selected per-site from the ambient pool and stable across pages (a
  site does not change analytics vendors between page views);
* socket chains from the ecosystem plan: optional ``via`` ad scripts,
  the initiating script (inline for first-party initiation), and the
  socket plan(s) themselves.

All randomness is stream-keyed by (site, crawl, page), so a crawl can
revisit any page and observe identical behaviour, and two crawls in the
same window differ only where the registry's crawl moods say they do.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.net.http import ResourceType
from repro.util.rng import RngStream, derive_seed
from repro.web.alexa import Site
from repro.web.ambient import AmbientSpec
from repro.web.blueprint import HttpBeaconPlan, PageBlueprint, ResourceNode, SocketPlan
from repro.web.categories import CATEGORY_BY_NAME
from repro.web.model import Company
from repro.web.planner import EcosystemPlan, SocketDeployment
from repro.web.registry import CompanyRegistry

_MIME_BY_TYPE = {
    ResourceType.SCRIPT: "application/javascript",
    ResourceType.IMAGE: "image/gif",
    ResourceType.STYLESHEET: "text/css",
    ResourceType.SUB_FRAME: "text/html",
    ResourceType.XHR: "application/json",
    ResourceType.PING: "text/plain",
    ResourceType.FONT: "font/woff2",
    ResourceType.MEDIA: "video/mp4",
    ResourceType.OTHER: "application/octet-stream",
}

_TYPE_BY_NAME = {
    "script": ResourceType.SCRIPT,
    "image": ResourceType.IMAGE,
    "stylesheet": ResourceType.STYLESHEET,
    "sub_frame": ResourceType.SUB_FRAME,
    "xmlhttprequest": ResourceType.XHR,
    "ping": ResourceType.PING,
    "font": ResourceType.FONT,
    "media": ResourceType.MEDIA,
}

# Global per-request probabilities for rare tracking items in ambient
# HTTP traffic, calibrated to Table 5's HTTP/S column (% of ~100M A&A
# requests): user id 1.12%, IP 0.90%, language 0.92%, viewport 0.34%,
# device 0.18%, resolution 0.13%, screen 0.10%, browser 0.09%.
_HTTP_ITEM_PROBS: tuple[tuple[str, float], ...] = (
    ("user_id", 0.0112),
    ("ip", 0.0090),
    ("language", 0.0092),
    ("viewport", 0.0034),
    ("device", 0.0018),
    ("resolution", 0.0013),
    ("screen", 0.0010),
    ("browser", 0.0009),
    ("first_seen", 0.0001),
)

# Cumulative form for a single-draw selection (at most one rare item
# per request — faithful enough at these magnitudes and much faster
# than nine independent draws on the hottest path in the generator).
def _build_cumulative() -> tuple[tuple[float, str], ...]:
    acc = 0.0
    table = []
    for item, prob in _HTTP_ITEM_PROBS:
        acc += prob
        table.append((acc, item))
    return tuple(table)


_HTTP_ITEM_CUMULATIVE = _build_cumulative()


def _draw_rare_item(u: float) -> str | None:
    """Map one uniform draw to at most one rare tracking item."""
    if u >= _HTTP_ITEM_CUMULATIVE[-1][0]:
        return None
    for threshold, item in _HTTP_ITEM_CUMULATIVE:
        if u < threshold:
            return item
    return None


# Damping applied to per-company cookie probabilities for ambient HTTP
# requests so the A&A-wide cookie rate lands near Table 5's 22.77%.
_HTTP_COOKIE_DAMPING = 0.62


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs for page generation.

    Attributes:
        pages_per_site: Page variants a site exposes (the crawler
            visits the homepage plus up to this many minus one).
        links_per_page: Internal links rendered on the homepage.
    """

    pages_per_site: int = 15
    links_per_page: int = 22


class SiteGenerator:
    """Produces :class:`PageBlueprint` objects on demand."""

    def __init__(
        self,
        registry: CompanyRegistry,
        plan: EcosystemPlan,
        config: GeneratorConfig | None = None,
        seed: int = 2017,
    ) -> None:
        self.registry = registry
        self.plan = plan
        self.config = config or GeneratorConfig()
        self.seed = seed
        self._ambient_pool = list(registry.ambient_specs)
        self._ambient_weights = [s.deploy_weight for s in self._ambient_pool]

    # -- public API ---------------------------------------------------------

    def blueprint(self, site: Site, page_index: int, crawl: int) -> PageBlueprint:
        """Generate the page a crawler would see at this visit."""
        page_url = self._page_url(site, page_index)
        rng = RngStream(self.seed, "page", site.domain, crawl, page_index)
        page = PageBlueprint(
            url=page_url,
            title=self._title(site, page_index),
            links=self._links(site),
            dom_html="",
        )
        self._add_first_party(page, site, rng.child("fp"))
        self._add_ambient(page, site, crawl, rng.child("ambient"))
        self._add_socket_chains(page, site, crawl, rng.child("sockets"))
        page.dom_html = self._dom_html(page, rng.child("dom"))
        return page

    def site_ambient_profile(self, site: Site) -> list[AmbientSpec]:
        """The stable set of ambient vendors deployed on a site."""
        return self._ambient_for_site(site.domain, site.rank, site.category)

    # -- page pieces ---------------------------------------------------------

    def _page_url(self, site: Site, page_index: int) -> str:
        if page_index == 0:
            return f"https://www.{site.domain}/"
        return f"https://www.{site.domain}/article/{page_index}"

    def _title(self, site: Site, page_index: int) -> str:
        name = site.domain.split(".")[0].title()
        if page_index == 0:
            return f"{name} — Home"
        return f"{name} — Story {page_index}"

    def _links(self, site: Site) -> list[str]:
        return [
            f"https://www.{site.domain}/article/{i}"
            for i in range(1, self.config.links_per_page + 1)
        ]

    def _add_first_party(self, page: PageBlueprint, site: Site,
                         rng: RngStream) -> None:
        base = f"https://www.{site.domain}"
        page.resources.append(ResourceNode(
            url=f"{base}/static/styles.css",
            resource_type=ResourceType.STYLESHEET, mime_type="text/css",
        ))
        app = ResourceNode(
            url=f"{base}/static/app.js",
            resource_type=ResourceType.SCRIPT,
        )
        page.resources.append(app)
        for i in range(rng.randint(2, 5)):
            page.resources.append(ResourceNode(
                url=f"{base}/img/photo{i}.jpg",
                resource_type=ResourceType.IMAGE, mime_type="image/jpeg",
            ))
        if rng.bernoulli(0.4):
            app.children.append(ResourceNode(
                url=f"{base}/api/content?page=1",
                resource_type=ResourceType.XHR, mime_type="application/json",
            ))

    def _ambient_for_site(self, domain: str, rank: int,
                          category: str) -> list[AmbientSpec]:
        return self._ambient_cached(domain, rank, category)

    @lru_cache(maxsize=200_000)
    def _ambient_cached(self, domain: str, rank: int,
                        category: str) -> list[AmbientSpec]:
        rng = RngStream(self.seed, "site-ambient", domain)
        intensity = CATEGORY_BY_NAME[category].ad_intensity if category in CATEGORY_BY_NAME else 1.0
        rank_factor = 1.35 if rank <= 10_000 else (1.0 if rank <= 100_000 else 0.72)
        count = max(2, round(rng.gauss(7.0 * intensity * rank_factor, 2.0)))
        count = min(count, 16)
        chosen: list[AmbientSpec] = []
        seen: set[str] = set()
        attempts = 0
        while len(chosen) < count and attempts < count * 6:
            attempts += 1
            spec = rng.weighted_choice(self._ambient_pool, self._ambient_weights)
            if spec.company.key in seen:
                continue
            if rank > 100_000 and spec.top_bias > 1.2 and rng.bernoulli(0.4):
                continue
            seen.add(spec.company.key)
            chosen.append(spec)
        return chosen

    def _add_ambient(self, page: PageBlueprint, site: Site, crawl: int,
                     rng: RngStream) -> None:
        for spec in self._ambient_for_site(site.domain, site.rank, site.category):
            if not rng.bernoulli(0.85):
                continue
            node = self._ambient_node(spec, rng)
            page.resources.append(node)
            if (
                spec.chains_children > 0
                and node.resource_type == ResourceType.SCRIPT
            ):
                for _ in range(rng.poisson(spec.chains_children)):
                    partner = rng.weighted_choice(
                        self._ambient_pool, self._ambient_weights
                    )
                    node.children.append(
                        self._ambient_node(partner, rng,
                                           sync_with=spec.company.domain)
                    )

    def _ambient_node(self, spec: AmbientSpec, rng: RngStream,
                      sync_with: str = "") -> ResourceNode:
        company = spec.company
        kind = rng.weighted_choice(
            [k for k, _ in company.http_mix], [w for _, w in company.http_mix]
        )
        resource_type = _TYPE_BY_NAME.get(kind, ResourceType.OTHER)
        blockable = spec.blockable_share > 0 and rng.bernoulli(spec.blockable_share)
        if blockable and company.blockable_paths:
            paths = company.blockable_paths
            host = company.beacon_host()
        else:
            paths = company.clean_paths or company.blockable_paths
            host = company.resolved_script_host()
        path = rng.choice(paths) if paths else "/resource"
        query_items = []
        if sync_with:
            query_items.append("uid")
        rare = _draw_rare_item(rng.random())
        if rare is not None:
            query_items.append(rare)
        node = ResourceNode(
            url=f"https://{host}{path}",
            resource_type=resource_type,
            mime_type=_MIME_BY_TYPE.get(resource_type, "text/plain"),
            sets_cookie=rng.bernoulli(company.cookie_probability * 0.65),
            send_cookie=rng.bernoulli(
                company.cookie_probability * _HTTP_COOKIE_DAMPING
            ),
            beacon=HttpBeaconPlan(query_items=tuple(query_items))
            if query_items else None,
        )
        if (
            company.cloudfront_host
            and not blockable
            and resource_type == ResourceType.SCRIPT
            and company.blockable_paths
        ):
            # Cloudfront-hosted SDKs load their own-domain beacon as a
            # child — the adjacency the paper's manual mapping relied on.
            node.children.append(ResourceNode(
                url=(f"https://{company.beacon_host()}"
                     f"{rng.choice(company.blockable_paths)}"),
                resource_type=ResourceType.IMAGE,
                mime_type="image/gif",
                send_cookie=rng.bernoulli(company.cookie_probability * 0.6),
            ))
        return node

    # -- socket chains --------------------------------------------------------

    def _add_socket_chains(self, page: PageBlueprint, site: Site, crawl: int,
                           rng: RngStream) -> None:
        site_plan = self.plan.plan_for(site.domain)
        if site_plan is None:
            return
        is_homepage = page.url.rstrip("/").endswith(site.domain)
        mood = self.registry.moods[crawl]
        for deployment in site_plan.deployments:
            if crawl not in deployment.crawls:
                continue
            if is_homepage and self._anchored_here(deployment, crawl):
                page.resources.append(
                    self._socket_chain(deployment, site,
                                       rng.child(deployment.deployment_id))
                )
                continue
            if deployment.deployment_id.startswith("ambient:"):
                # Ambient (benign) socket adoption drifts per crawl at
                # the *site* level: a site either runs its realtime
                # feature during a crawl window or it does not.
                gate = min(1.0, 0.66 * mood.ambient_socket_boost)
                gate_rng = RngStream(self.seed, "ambient-gate",
                                     deployment.deployment_id, crawl)
                if not gate_rng.bernoulli(gate):
                    continue
                probability = deployment.page_probability
            else:
                probability = min(
                    1.0, deployment.page_probability * mood.activity
                )
            d_rng = rng.child(deployment.deployment_id)
            if not d_rng.bernoulli(probability):
                continue
            page.resources.append(
                self._socket_chain(deployment, site, d_rng)
            )

    @staticmethod
    def _anchored_here(deployment: SocketDeployment, crawl: int) -> bool:
        """Whether an anchored deployment must fire on this homepage."""
        if deployment.anchor == "per_crawl":
            return True
        if deployment.anchor == "once":
            return crawl == deployment.anchor_crawl
        return False

    def _socket_chain(self, deployment: SocketDeployment, site: Site,
                      rng: RngStream) -> ResourceNode:
        cookie_enabled = self._cookie_mode(deployment, site)
        plan = SocketPlan(
            ws_url=deployment.ws_url,
            ws_pool=deployment.ws_pool,
            profile=deployment.profile,
            count=deployment.sockets_per_page,
            user_id=self._user_id_for(deployment, site),
            receiver_key=deployment.receiver_key,
            cookie_enabled=cookie_enabled,
        )
        if deployment.initiator_key:
            company = self.registry.company(deployment.initiator_key)
            initiator = self._service_script_node(company, rng,
                                                  cookie_enabled)
        else:
            # First-party initiation: the vendor's inline bootstrap
            # snippet opens the socket itself, and also pulls in the
            # vendor's widget assets (which is how receivers show up in
            # the HTTP corpus and earn their A&A label).
            initiator = ResourceNode(
                url="", inline=True, resource_type=ResourceType.SCRIPT,
            )
            if deployment.receiver_key:
                receiver_company = self.registry.company(deployment.receiver_key)
                initiator.children.append(
                    self._service_script_node(receiver_company,
                                              rng.child("widget"),
                                              cookie_enabled)
                )
        initiator.sockets.append(plan)
        node = initiator
        for via_key in reversed(deployment.via_keys):
            via_company = self.registry.company(via_key)
            wrapper = self._service_script_node(via_company,
                                                rng.child(via_key), True)
            wrapper.children.append(node)
            node = wrapper
        return node

    def _cookie_mode(self, deployment: SocketDeployment, site: Site) -> bool:
        """Whether this deployment uses cookies on this site at all.

        Stable per (site, deployment): some installations run cookieless
        (consent configuration, localStorage-based identity) — which is
        why only ~70% of A&A sockets carried a cookie (Table 5).
        """
        if deployment.receiver_key:
            propensity = self.registry.company(
                deployment.receiver_key
            ).cookie_probability
        else:
            propensity = 0.3
        rng = RngStream(self.seed, "cookie-mode", site.domain,
                        deployment.deployment_id)
        return rng.bernoulli(min(propensity, 0.85))

    def _service_script_node(self, company: Company, rng: RngStream,
                             cookie_enabled: bool = True) -> ResourceNode:
        paths = company.clean_paths or ("/sdk/app.js",)
        node = ResourceNode(
            url=f"https://{company.resolved_script_host()}{rng.choice(paths)}",
            resource_type=ResourceType.SCRIPT,
            sets_cookie=cookie_enabled and rng.bernoulli(company.cookie_probability),
            send_cookie=cookie_enabled and rng.bernoulli(company.cookie_probability * 0.8),
        )
        # The service's tracking beacon: this is the (partially)
        # list-matched resource that earns the company its A&A label.
        # Trackers beacon on every load, so this is deterministic —
        # which also guarantees rarely-seen companies get labeled.
        if company.blockable_paths:
            as_image = rng.bernoulli(0.5)
            node.children.append(ResourceNode(
                url=(f"https://{company.beacon_host()}"
                     f"{rng.choice(company.blockable_paths)}"),
                resource_type=ResourceType.IMAGE if as_image else ResourceType.PING,
                mime_type="image/gif" if as_image else "text/plain",
                send_cookie=cookie_enabled and rng.bernoulli(company.cookie_probability),
                beacon=HttpBeaconPlan(query_items=("uid",))
                if cookie_enabled else None,
            ))
        if company.role.value == "session_replay" and rng.bernoulli(0.35):
            # Replay services also fall back to HTTPS POSTs of the DOM
            # (Table 5's 8,587 DOM uploads over HTTP/S).
            node.children.append(ResourceNode(
                url=f"https://{company.beacon_host()}/collect",
                resource_type=ResourceType.XHR,
                mime_type="application/json",
                send_cookie=True,
                beacon=HttpBeaconPlan(post_items=("dom",)),
            ))
        return node

    def _user_id_for(self, deployment: SocketDeployment, site: Site) -> str:
        if deployment.user_id_probability <= 0.0:
            return ""
        rng = RngStream(self.seed, "user-id", site.domain,
                        deployment.deployment_id)
        if not rng.bernoulli(deployment.user_id_probability):
            return ""
        token = derive_seed(self.seed, "uid-value", site.domain,
                            deployment.deployment_id)
        return f"u{token % 10**12:012d}"

    # -- DOM ------------------------------------------------------------------

    def _dom_html(self, page: PageBlueprint, rng: RngStream) -> str:
        search_query = ""
        if rng.bernoulli(0.3):
            query = rng.choice((
                "knee surgery recovery time", "divorce lawyer near me",
                "how to refinance mortgage", "flu symptoms 2017",
                "cheap flights boston", "is my email hacked",
            ))
            search_query = (
                f'<input type="search" name="q" value="{query}"/>'
            )
        draft = ""
        if rng.bernoulli(0.15):
            draft = (
                '<textarea name="comment">I think this is wrong because'
                "…</textarea>"
            )
        return (
            f"{search_query}"
            f"<p>Lorem ipsum dolor sit amet, consectetur adipiscing elit.</p>"
            f"{draft}"
        )
