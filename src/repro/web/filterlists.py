"""Synthetic EasyList / EasyPrivacy for the synthetic web.

Real filter lists are community-maintained against the real web; the
synthetic web needs lists that play the same roles — tagging A&A
resources and driving the blocking analyses — written in genuine ABP
syntax and parsed by the same engine a real list would be.

EasyList carries the ad-blocking rules (exchanges, ad networks);
EasyPrivacy carries the tracker rules (pixels, analytics, session
replay beacons). A handful of ``@@`` exceptions model the lists'
documented whitelisting "to avoid site breakage" (paper footnote 2).

The registry-derived lists above are small (hundreds of rules). The
``generate_filter_list_text`` family below additionally produces
*scale-calibrated* synthetic lists — 10k/50k/100k rules whose shape
mix (host anchors, path patterns, wildcards, ``@@`` exceptions,
``$`` options) approximates the published composition of real
EasyList/EasyPrivacy (the ad-blocking performance study, arxiv
1705.03193, and the longitudinal blacklist analysis, arxiv
1906.00166, both characterize these distributions). They exist to
exercise and benchmark the compiled filter index at real-list scale
with fully deterministic content.
"""

from __future__ import annotations

from typing import Sequence

from repro.filters import (
    SCHEME_RE,
    CompiledFilterEngine,
    FilterEngine,
    FilterList,
    FilterRule,
    parse_filter_list,
)
from repro.net.http import ResourceType
from repro.util.rng import RngStream
from repro.web.registry import CompanyRegistry

_EASYLIST_HEADER = """\
[Adblock Plus 2.0]
! Title: EasyList (synthetic ecosystem build)
! Homepage: https://easylist.to/
! Expires: 4 days
"""

_EASYPRIVACY_HEADER = """\
[Adblock Plus 2.0]
! Title: EasyPrivacy (synthetic ecosystem build)
! Homepage: https://easylist.to/
! Expires: 4 days
"""

# Whitelist entries modeled on EasyList's breakage-avoidance policy.
_EASYLIST_EXCEPTIONS = (
    "@@||google.com/recaptcha/$script,subdocument",
    "@@||disqus.com/embed/comments.js$script",
    "@@||googlesyndication.com/sodar/$script",
)

_EASYPRIVACY_EXCEPTIONS = (
    "@@||twitter.com/widgets/widgets.js$script",
    "@@||facebook.net/en_US/sdk.js$script",
)

# A few generic (non-domain-anchored) patterns, as real lists carry.
_GENERIC_EASYLIST = (
    "/ads/tag.js$script,third-party",
    "/bid/request$xmlhttprequest",
    "/imp/px.gif$image",
)

_GENERIC_EASYPRIVACY = (
    "/sync/match$third-party",
    "/track/hit.gif$image,third-party",
)


def build_easylist_text(registry: CompanyRegistry) -> str:
    """Render the synthetic EasyList file."""
    lines = [_EASYLIST_HEADER]
    lines.append("! --- General advert blocking filters ---")
    lines.extend(_GENERIC_EASYLIST)
    lines.append("! --- Third-party advertising domains ---")
    for company in sorted(registry.companies.values(), key=lambda c: c.domain):
        lines.extend(company.easylist_rules)
    lines.append("! --- Whitelists to fix broken sites ---")
    lines.extend(_EASYLIST_EXCEPTIONS)
    return "\n".join(lines) + "\n"


def build_easyprivacy_text(registry: CompanyRegistry) -> str:
    """Render the synthetic EasyPrivacy file."""
    lines = [_EASYPRIVACY_HEADER]
    lines.append("! --- General tracking filters ---")
    lines.extend(_GENERIC_EASYPRIVACY)
    lines.append("! --- Third-party tracking domains ---")
    for company in sorted(registry.companies.values(), key=lambda c: c.domain):
        lines.extend(company.easyprivacy_rules)
    lines.append("! --- Whitelists to fix broken sites ---")
    lines.extend(_EASYPRIVACY_EXCEPTIONS)
    return "\n".join(lines) + "\n"


def build_filter_lists(registry: CompanyRegistry) -> list[FilterList]:
    """Parse both synthetic lists into engine-ready form."""
    return [
        parse_filter_list("easylist", build_easylist_text(registry)),
        parse_filter_list("easyprivacy", build_easyprivacy_text(registry)),
    ]


def build_filter_engine(
    registry: CompanyRegistry, *, compiled: bool = True
) -> CompiledFilterEngine | FilterEngine:
    """The blocking engine over EasyList + EasyPrivacy.

    Compiled by default (identical verdicts, faster); pass
    ``compiled=False`` for the interpreted reference engine.
    """
    lists = build_filter_lists(registry)
    if compiled:
        return CompiledFilterEngine(lists)
    return FilterEngine(lists)


# --------------------------------------------------------------------------
# Scale-calibrated synthetic list generation
# --------------------------------------------------------------------------

#: Named rule-count presets for the scale benchmarks and CLI.
LIST_SCALES: dict[str, int] = {"10k": 10_000, "50k": 50_000, "100k": 100_000}

_SCALED_HEADER = """\
[Adblock Plus 2.0]
! Title: {name} (scale-calibrated synthetic build, {count} rules)
! Homepage: https://easylist.to/
! Expires: 4 days
"""

# Rule shapes and their approximate frequency in real EasyList-family
# lists. Host-anchored rules dominate; a small tail of short-host rules
# (no >=3-char label, e.g. ``||t.co^``) and token-free patterns keeps
# the generic/trie lanes honest at every scale.
_RULE_SHAPES: tuple[str, ...] = (
    "host_sep",      # ||domain^
    "host_path",     # ||domain^/path/word.js
    "host_bare",     # ||domain
    "path",          # /word/word.gif
    "substring",     # -word-word. and friends
    "wildcard",      # /word/word*word
    "short_host",    # ||ab.cd^
    "anchored",      # |https://domain/word|
    "no_token",      # /a1*  (token-free: generic in every engine)
)
_SHAPE_WEIGHTS: tuple[float, ...] = (
    0.355, 0.12, 0.05, 0.21, 0.13, 0.05, 0.015, 0.01, 0.0005,
)

_TLDS = ("com", "net", "org", "io", "co", "info", "biz", "de")
_PATH_SUFFIXES = (".js", ".gif", ".png", ".html", "/", "")
_SEPARATOR_GLUE = ("-", "_", ".")
_OPTION_TYPES = (
    "script", "image", "xmlhttprequest", "subdocument",
    "stylesheet", "media", "ping", "websocket",
)
_LETTERS = "abcdefghijklmnopqrstuvwxyz"


def _make_words(rng: RngStream, count: int) -> list[str]:
    """A deterministic vocabulary of distinct lowercase words."""
    words: list[str] = []
    seen: set[str] = set()
    while len(words) < count:
        length = rng.randint(3, 9)
        word = "".join(rng.choice(_LETTERS) for _ in range(length))
        if word not in seen:
            seen.add(word)
            words.append(word)
    return words


class _ListShaper:
    """Draws EasyList-shaped rule lines from shared vocabularies.

    Words and domains are sampled Zipf-style so popular tokens recur
    across many rules, reproducing the hot-bucket skew that makes
    naive longest-token indexes slow on real lists.
    """

    def __init__(self, rng: RngStream, rule_count: int) -> None:
        self._rng = rng
        vocab_size = max(400, min(4000, rule_count // 12))
        domain_count = max(150, rule_count // 5)
        word_rng = rng.child("vocab")
        self._words = _make_words(word_rng, vocab_size)
        self._domains = [
            f"{self._words[word_rng.zipf_index(vocab_size, 0.8)]}"
            f"{word_rng.randint(0, 99)}.{word_rng.choice(_TLDS)}"
            for _ in range(domain_count)
        ]

    def word(self, rng: RngStream) -> str:
        return self._words[rng.zipf_index(len(self._words), 1.0)]

    def domain(self, rng: RngStream) -> str:
        return self._domains[rng.zipf_index(len(self._domains), 0.9)]

    def _options(self, rng: RngStream, shape: str) -> str:
        parts: list[str] = []
        if rng.bernoulli(0.45):
            parts.append("third-party")
        if rng.bernoulli(0.55):
            parts.extend(
                rng.sample(_OPTION_TYPES, rng.randint(1, 2))
            )
        if rng.bernoulli(0.08):
            included = self.domain(rng)
            if rng.bernoulli(0.3):
                parts.append(f"domain={included}|~sub.{included}")
            else:
                parts.append(f"domain={included}")
        if rng.bernoulli(0.01) and shape not in ("short_host", "no_token"):
            parts.append("match-case")
        return ",".join(parts)

    def rule_line(self, index: int) -> str:
        rng = self._rng.child("rule", index)
        shape = rng.weighted_choice(_RULE_SHAPES, _SHAPE_WEIGHTS)
        body = self._body(rng, shape)
        if rng.bernoulli(0.035):
            body = "@@" + body
            options = self._options(rng, shape)
            if not options and rng.bernoulli(0.8):
                options = rng.choice(_OPTION_TYPES)
        elif rng.bernoulli(0.30):
            options = self._options(rng, shape)
        else:
            options = ""
        return f"{body}${options}" if options else body

    def _body(self, rng: RngStream, shape: str) -> str:
        word, domain = self.word(rng), self.domain(rng)
        if shape == "host_sep":
            return f"||{domain}^"
        if shape == "host_path":
            return f"||{domain}^{word}/{self.word(rng)}{rng.choice(_PATH_SUFFIXES)}"
        if shape == "host_bare":
            return f"||{domain}"
        if shape == "path":
            return f"/{word}/{self.word(rng)}{rng.choice(_PATH_SUFFIXES)}"
        if shape == "substring":
            glue = rng.choice(_SEPARATOR_GLUE)
            return f"{glue}{word}{glue}{self.word(rng)}."
        if shape == "wildcard":
            # One breaker-bounded (reliable) token plus a wildcard tail:
            # the exact shape the old longest-token index mis-sharded.
            return f"/{word}/{self.word(rng)}*{self.word(rng)}"
        if shape == "short_host":
            label = "".join(rng.choice(_LETTERS) for _ in range(2))
            return f"||{label}.{rng.choice(_TLDS[:4])}^"
        if shape == "anchored":
            return f"|https://{domain}/{word}|"
        # no_token: every literal run is under 3 chars.
        return f"/{rng.choice(_LETTERS)}{rng.randint(0, 9)}*"


def generate_filter_list_text(
    rule_count: int, *, seed: int = 2018, name: str = "easylist-scaled"
) -> str:
    """Render a deterministic EasyList-shaped list at the given scale."""
    shaper = _ListShaper(RngStream(seed, "filterlists", name), rule_count)
    lines = [_SCALED_HEADER.format(name=name, count=rule_count)]
    lines.extend(shaper.rule_line(i) for i in range(rule_count))
    return "\n".join(lines) + "\n"


def generate_filter_lists(
    rule_count: int, *, seed: int = 2018, name: str = "easylist-scaled"
) -> list[FilterList]:
    """Parse a generated scaled list into engine-ready form."""
    text = generate_filter_list_text(rule_count, seed=seed, name=name)
    return [parse_filter_list(name, text, strict=True)]


def generate_request_corpus(
    lists: Sequence[FilterList],
    count: int,
    *,
    seed: int = 2018,
) -> list[tuple[str, ResourceType, str]]:
    """Deterministic (url, resource_type, first_party_url) requests.

    Roughly 45% of URLs are derived from a sampled rule's own pattern
    (wildcards filled, separators concretized, host context added), so
    the corpus actually exercises hits, exceptions, and the pre-filter
    paths rather than being all misses.
    """
    rng = RngStream(seed, "filterlists", "corpus", count)
    rules = [rule for fl in lists for rule in fl.rules]
    shaper = _ListShaper(rng.child("background"), max(len(rules), 1000))
    types = list(ResourceType)
    corpus: list[tuple[str, ResourceType, str]] = []
    for i in range(count):
        draw = rng.child("request", i)
        if rules and draw.bernoulli(0.45):
            url = _url_from_rule(draw, shaper, draw.choice(rules))
        else:
            url = (
                f"https://{shaper.domain(draw)}/{shaper.word(draw)}"
                f"/{shaper.word(draw)}{draw.choice(_PATH_SUFFIXES)}"
            )
        first_party = f"https://{shaper.domain(draw)}/"
        corpus.append((url, draw.choice(types), first_party))
    return corpus


def _url_from_rule(
    rng: RngStream, shaper: _ListShaper, rule: FilterRule
) -> str:
    """A URL the rule's pattern plausibly matches, built textually."""
    body = rule.pattern
    hosty = body.startswith("||")
    body = body.removeprefix("||").removeprefix("|").removesuffix("|")
    body = body.replace("*", shaper.word(rng)).replace("^", "/")
    if SCHEME_RE.match(body.lower()):
        return body
    if hosty:
        prefix = "sub." if rng.bernoulli(0.3) else ""
        return f"https://{prefix}{body}" if "/" in body else (
            f"https://{prefix}{body}/{shaper.word(rng)}"
        )
    if not body.startswith("/"):
        body = f"/{shaper.word(rng)}{body}{shaper.word(rng)}"
    return f"https://{shaper.domain(rng)}{body}"
