"""Synthetic EasyList / EasyPrivacy for the synthetic web.

Real filter lists are community-maintained against the real web; the
synthetic web needs lists that play the same roles — tagging A&A
resources and driving the blocking analyses — written in genuine ABP
syntax and parsed by the same engine a real list would be.

EasyList carries the ad-blocking rules (exchanges, ad networks);
EasyPrivacy carries the tracker rules (pixels, analytics, session
replay beacons). A handful of ``@@`` exceptions model the lists'
documented whitelisting "to avoid site breakage" (paper footnote 2).
"""

from __future__ import annotations

from repro.filters.engine import FilterEngine
from repro.filters.parser import parse_filter_list
from repro.filters.rules import FilterList
from repro.web.registry import CompanyRegistry

_EASYLIST_HEADER = """\
[Adblock Plus 2.0]
! Title: EasyList (synthetic ecosystem build)
! Homepage: https://easylist.to/
! Expires: 4 days
"""

_EASYPRIVACY_HEADER = """\
[Adblock Plus 2.0]
! Title: EasyPrivacy (synthetic ecosystem build)
! Homepage: https://easylist.to/
! Expires: 4 days
"""

# Whitelist entries modeled on EasyList's breakage-avoidance policy.
_EASYLIST_EXCEPTIONS = (
    "@@||google.com/recaptcha/$script,subdocument",
    "@@||disqus.com/embed/comments.js$script",
    "@@||googlesyndication.com/sodar/$script",
)

_EASYPRIVACY_EXCEPTIONS = (
    "@@||twitter.com/widgets/widgets.js$script",
    "@@||facebook.net/en_US/sdk.js$script",
)

# A few generic (non-domain-anchored) patterns, as real lists carry.
_GENERIC_EASYLIST = (
    "/ads/tag.js$script,third-party",
    "/bid/request$xmlhttprequest",
    "/imp/px.gif$image",
)

_GENERIC_EASYPRIVACY = (
    "/sync/match$third-party",
    "/track/hit.gif$image,third-party",
)


def build_easylist_text(registry: CompanyRegistry) -> str:
    """Render the synthetic EasyList file."""
    lines = [_EASYLIST_HEADER]
    lines.append("! --- General advert blocking filters ---")
    lines.extend(_GENERIC_EASYLIST)
    lines.append("! --- Third-party advertising domains ---")
    for company in sorted(registry.companies.values(), key=lambda c: c.domain):
        lines.extend(company.easylist_rules)
    lines.append("! --- Whitelists to fix broken sites ---")
    lines.extend(_EASYLIST_EXCEPTIONS)
    return "\n".join(lines) + "\n"


def build_easyprivacy_text(registry: CompanyRegistry) -> str:
    """Render the synthetic EasyPrivacy file."""
    lines = [_EASYPRIVACY_HEADER]
    lines.append("! --- General tracking filters ---")
    lines.extend(_GENERIC_EASYPRIVACY)
    lines.append("! --- Third-party tracking domains ---")
    for company in sorted(registry.companies.values(), key=lambda c: c.domain):
        lines.extend(company.easyprivacy_rules)
    lines.append("! --- Whitelists to fix broken sites ---")
    lines.extend(_EASYPRIVACY_EXCEPTIONS)
    return "\n".join(lines) + "\n"


def build_filter_lists(registry: CompanyRegistry) -> list[FilterList]:
    """Parse both synthetic lists into engine-ready form."""
    return [
        parse_filter_list("easylist", build_easylist_text(registry)),
        parse_filter_list("easyprivacy", build_easyprivacy_text(registry)),
    ]


def build_filter_engine(registry: CompanyRegistry) -> FilterEngine:
    """The blocking engine over EasyList + EasyPrivacy."""
    return FilterEngine(build_filter_lists(registry))
