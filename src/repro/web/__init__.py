"""The synthetic web: publishers, third-party services, and ad chains.

This package is the stand-in for the live 2017 web the paper crawled.
It is generated deterministically from a seeded RNG and a **company
registry** that encodes the real A&A ecosystem the paper observed —
which companies initiate WebSockets, to whom, with what payloads, and
how that changed when Chrome 58 patched the webRequest bug.

The rest of the system treats this package exactly like a remote
origin: the browser asks :class:`~repro.web.server.SyntheticWeb` for a
page blueprint and "loads" it, emitting DevTools events along the way.
"""

from repro.web.alexa import AlexaUniverse, SeedList
from repro.web.registry import CompanyRegistry, default_registry


def __getattr__(name):
    # SyntheticWeb lives in repro.web.server, which imports half the
    # package; expose it lazily to keep `import repro.web` light.
    if name in ("SyntheticWeb", "WebScale"):
        from repro.web import server

        return getattr(server, name)
    raise AttributeError(name)


__all__ = [
    "AlexaUniverse",
    "SeedList",
    "CompanyRegistry",
    "default_registry",
    "SyntheticWeb",
    "WebScale",
]
