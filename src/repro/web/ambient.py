"""Ambient HTTP ecosystem: the ad/tracking traffic around the sockets.

These companies never open WebSockets; they are the ordinary display-ad
and analytics ecosystem of 2017. They matter for three measurements:

* the HTTP/S columns of Table 5 (items sent/received to A&A domains
  over HTTP, against which the WebSocket numbers are contrasted);
* the tagged-resource corpus from which the A&A domain set is derived
  (§3.2's ``a(d) ≥ 0.1·n(d)`` rule);
* the §4.2 baseline that ~27% of all A&A inclusion chains would have
  been blocked by EasyList/EasyPrivacy.

``blockable_share`` controls what fraction of a company's resources
match its own filter rules: ad exchanges are almost fully covered,
analytics SDKs only partially — which is exactly why chain blocking
stops only a minority of A&A chains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.web.model import Company, Role


@dataclass(frozen=True)
class AmbientSpec:
    """Deployment parameters for one ambient company.

    Attributes:
        company: The company record (rules, paths, mixes).
        deploy_weight: Popularity weight for per-page selection.
        blockable_share: Probability a generated resource uses a
            blockable path (and therefore matches the lists).
        chains_children: Average number of downstream A&A partners a
            script of this company pulls in (ad-exchange fan-out).
        top_bias: >1 skews deployment toward highly ranked sites.
    """

    company: Company
    deploy_weight: float
    blockable_share: float
    chains_children: float = 0.0
    top_bias: float = 1.0


def _exchange(key: str, domain: str, weight: float, children: float) -> AmbientSpec:
    return AmbientSpec(
        company=Company(
            key=key,
            domain=domain,
            role=Role.AD_EXCHANGE,
            easylist_rules=(f"||{domain}^$third-party",),
            blockable_paths=("/ads/tag.js", "/bid/request", "/imp/px.gif",
                             "/ads/frame.html"),
            clean_paths=(),
            http_mix=(("script", 2.6), ("image", 1.2), ("sub_frame", 2.6),
                      ("xmlhttprequest", 0.2), ("ping", 1.8)),
            cookie_probability=0.55,
        ),
        deploy_weight=weight,
        blockable_share=0.92,
        chains_children=children,
        top_bias=1.4,
    )


def _pixel(key: str, domain: str, weight: float) -> AmbientSpec:
    return AmbientSpec(
        company=Company(
            key=key,
            domain=domain,
            role=Role.ANALYTICS,
            easyprivacy_rules=(f"||{domain}^$image,third-party",
                               f"||{domain}/sync^"),
            blockable_paths=("/pixel.gif", "/sync/match"),
            clean_paths=(),
            http_mix=(("image", 1.6), ("ping", 2.4)),
            cookie_probability=0.35,
        ),
        deploy_weight=weight,
        blockable_share=0.95,
        top_bias=1.2,
    )


def _sdk(key: str, domain: str, weight: float, blockable: float) -> AmbientSpec:
    """Analytics SDKs: only their beacon endpoints are listed."""
    return AmbientSpec(
        company=Company(
            key=key,
            domain=domain,
            role=Role.ANALYTICS,
            easyprivacy_rules=(f"||{domain}/collect^", f"||{domain}/beacon^"),
            blockable_paths=("/collect", "/beacon/b.gif"),
            clean_paths=("/sdk/loader.js", "/sdk/app.js"),
            http_mix=(("script", 3.2), ("image", 1.0), ("ping", 1.0),
                      ("xmlhttprequest", 0.25)),
            cookie_probability=0.5,
        ),
        deploy_weight=weight,
        blockable_share=blockable,
        top_bias=1.1,
    )


def _utility(key: str, domain: str, weight: float,
             mix: tuple[tuple[str, float], ...]) -> AmbientSpec:
    """Non-A&A infrastructure: CDNs, fonts, JS libraries."""
    return AmbientSpec(
        company=Company(
            key=key,
            domain=domain,
            role=Role.CDN,
            aa_expected=False,
            clean_paths=("/lib/core.min.js", "/assets/styles.css",
                         "/fonts/roboto.woff2", "/img/sprite.png"),
            http_mix=mix,
            cookie_probability=0.05,
        ),
        deploy_weight=weight,
        blockable_share=0.0,
    )


AMBIENT_SPECS: tuple[AmbientSpec, ...] = (
    # --- Ad exchanges / SSPs (heavily blacklisted, deep chains) ---------
    _exchange("rubicon", "rubiconproject.com", 4.0, 1.6),
    _exchange("pubmatic", "pubmatic.com", 3.5, 1.5),
    _exchange("openx", "openx.net", 3.5, 1.4),
    _exchange("criteo", "criteo.com", 4.5, 1.2),
    _exchange("casalemedia", "casalemedia.com", 2.5, 1.3),
    _exchange("indexexchange", "indexexchange.com", 2.0, 1.3),
    _exchange("contextweb", "contextweb.com", 1.5, 1.2),
    _exchange("spotxchange", "spotxchange.com", 1.2, 1.1),
    _exchange("smartadserver", "smartadserver.com", 1.4, 1.2),
    _exchange("adform", "adform.net", 1.6, 1.2),
    _exchange("mediamath", "mathtag.com", 2.2, 1.1),
    _exchange("adsrvr", "adsrvr.org", 2.0, 1.1),
    _exchange("amazonads", "amazon-adsystem.com", 3.8, 1.2),
    _exchange("taboola", "taboola.com", 3.0, 1.3),
    _exchange("outbrain", "outbrain.com", 3.0, 1.3),
    _exchange("sovrn", "sovrn.com", 1.4, 1.1),
    _exchange("gumgum", "gumgum.com", 1.0, 1.0),
    _exchange("sonobi", "sonobi.com", 0.9, 1.0),
    _exchange("yieldmo", "yieldmo.com", 0.8, 1.0),
    _exchange("teads", "teads.tv", 1.2, 1.1),
    # --- Cookie-sync / data-management pixels ---------------------------
    _pixel("scorecardresearch", "scorecardresearch.com", 4.0),
    _pixel("quantserve", "quantserve.com", 3.6),
    _pixel("bluekai", "bluekai.com", 2.4),
    _pixel("demdex", "demdex.net", 2.6),
    _pixel("krxd", "krxd.net", 2.2),
    _pixel("exelator", "exelator.com", 1.6),
    _pixel("eyeota", "eyeota.net", 1.2),
    _pixel("tapad", "tapad.com", 1.3),
    _pixel("rlcdn", "rlcdn.com", 1.8),
    _pixel("crwdcntrl", "crwdcntrl.net", 1.5),
    _pixel("agkn", "agkn.com", 1.4),
    _pixel("everesttech", "everesttech.net", 1.5),
    _pixel("turn", "turn.com", 1.4),
    _pixel("bidswitch", "bidswitch.net", 1.6),
    _pixel("moatads", "moatads.com", 2.0),
    _pixel("doubleverify", "doubleverify.com", 1.6),
    _pixel("adsafeprotected", "adsafeprotected.com", 1.9),
    # --- Analytics SDKs (lightly listed: beacons only) -------------------
    _sdk("googleanalytics", "google-analytics.com", 6.0, 0.45),
    _sdk("chartbeat", "chartbeat.com", 2.2, 0.40),
    _sdk("mixpanel", "mixpanel.com", 1.6, 0.40),
    _sdk("segment", "segment.io", 1.4, 0.35),
    _sdk("newrelic", "nr-data.net", 2.0, 0.35),
    _sdk("optimizely", "optimizely.com", 1.6, 0.30),
    _sdk("crazyegg", "crazyegg.com", 1.2, 0.40),
    _sdk("parsely", "parsely.com", 0.9, 0.35),
    _sdk("yandexmetrica", "mc-yandex.ru", 1.4, 0.45),
    _sdk("statcounter", "statcounter.com", 1.3, 0.50),
    # --- Non-A&A infrastructure ------------------------------------------
    _utility("jquerycdn", "jquery.com", 4.0, (("script", 4.0),)),
    _utility("gstatic", "gstatic.com", 5.0,
             (("font", 2.0), ("image", 1.5), ("script", 1.0),
              ("stylesheet", 1.0))),
    _utility("bootstrapcdn", "bootstrapcdn.com", 2.5,
             (("stylesheet", 2.0), ("script", 1.5))),
    _utility("unpkg", "unpkg.com", 1.5, (("script", 3.0),)),
    _utility("wpcontent", "wp.com", 3.0,
             (("image", 3.0), ("script", 1.0), ("stylesheet", 1.0))),
    _utility("gravatar", "gravatar.com", 2.0, (("image", 4.0),)),
    _utility("typekit", "typekit.net", 1.8,
             (("font", 3.0), ("stylesheet", 1.0), ("script", 1.0))),
    _utility("akamai", "akamaihd.net", 2.5,
             (("script", 2.0), ("image", 2.0), ("media", 1.0))),
    _utility("fastly", "fastly.net", 2.0,
             (("script", 1.5), ("image", 2.0), ("stylesheet", 1.0))),
    _utility("jsdelivr", "jsdelivr.net", 1.5, (("script", 3.0),)),
)

# Ambient A&A companies that serve their tags from Cloudfront, making
# up (with luckyorange and freshrelevance) the 13 manually mapped
# Cloudfront subdomains of §3.2.
CLOUDFRONT_TENANTS: tuple[tuple[str, str], ...] = (
    ("snowplow", "d2xwmjc4uy2hr5.cloudfront.net"),
    ("heapanalytics", "d36mpcpuzc4ztk.cloudfront.net"),
    ("kissmetrics", "dm8fcbfr9nqzs.cloudfront.net"),
    ("bouncex", "d3e54v103j8qbb.cloudfront.net"),
    ("sailthru", "d1qpxk1wfeh8v1.cloudfront.net"),
    ("bounceexchange", "d2nq0f8d9ofdwv.cloudfront.net"),
    ("petametrics", "d22e4d61ky6061.cloudfront.net"),
    ("simplereach", "d8rk54i4mohrb.cloudfront.net"),
    ("getclicky", "dpmfv8i5oy8ar.cloudfront.net"),
    ("adroll", "d31bfnnwekbny6.cloudfront.net"),
    ("vwo", "d5phz18u4wuww.cloudfront.net"),
)


def cloudfront_ambient_specs() -> list[AmbientSpec]:
    """Ambient analytics companies hosted on Cloudfront subdomains."""
    specs = []
    for key, cf_host in CLOUDFRONT_TENANTS:
        domain = f"{key}.com"
        specs.append(
            AmbientSpec(
                company=Company(
                    key=key,
                    domain=domain,
                    role=Role.ANALYTICS,
                    easyprivacy_rules=(f"||{domain}^$third-party",),
                    blockable_paths=("/t/beacon.gif", "/sync/id"),
                    clean_paths=("/sdk/tracker.js",),
                    http_mix=(("script", 2.0), ("image", 2.0),
                              ("xmlhttprequest", 1.0)),
                    cookie_probability=0.6,
                    cloudfront_host=cf_host,
                ),
                deploy_weight=0.8,
                blockable_share=0.55,
                top_bias=1.1,
            )
        )
    return specs


def all_ambient_specs() -> list[AmbientSpec]:
    """Every ambient company, Cloudfront tenants included."""
    return list(AMBIENT_SPECS) + cloudfront_ambient_specs()
