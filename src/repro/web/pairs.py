"""Socket pair specifications: who connects to whom, where, how often.

Every spec's ``sites`` / ``page_probability`` / ``sockets_per_page`` are
calibrated against the paper's merged-dataset socket counts using

    sockets ≈ sites × 15 pages × |crawls| × page_probability × spp

so at scale 1.0 the measured Table 4 approximates the published one.
Named single-site pairs (the recognizable publishers of Table 4) are
*reserved*: they exist at every scale, preserving the table's shape.

The tail machinery then fills in the long tail: 65 synthetic ad-tech
initiators whose per-crawl activity windows produce the 75 / 63 / 19 /
23 unique-initiator counts of Table 1, and a pool of benign SaaS
receivers that (at full scale) brings the unique third-party receiver
count to the reported ~382.
"""

from __future__ import annotations

from repro.web.companies import (
    CRAWLS_LIVECHATINC,
    CRAWLS_SESSIONCAM,
    CRAWLS_SIMPLEHEATMAPS,
    CRAWLS_TAWK,
    CRAWLS_TRUCONVERSION,
    CRAWLS_USERREPLAY,
    CRAWLS_VELARO,
)
from repro.web.model import (
    ALL_CRAWLS,
    FIRST_PARTY,
    PRE_PATCH_CRAWLS,
    SocketPairSpec,
    TailPlan,
)

_PRE = PRE_PATCH_CRAWLS
_ALL = ALL_CRAWLS


def _self_pair(key: str, sites: int, prob: float, profile: str,
               crawls=_ALL, spp: int = 1, zone: str = "mixed",
               user_id_probability: float = 0.0) -> SocketPairSpec:
    return SocketPairSpec(
        pair_id=f"self:{key}", initiator=key, receiver=key, sites=sites,
        page_probability=prob, sockets_per_page=spp, profile=profile,
        crawls=frozenset(crawls), rank_zone=zone,
        user_id_probability=user_id_probability,
    )


def _fp_pair(key: str, sites: int, prob: float, profile: str,
             crawls=_ALL, spp: int = 1, zone: str = "mixed",
             user_id_probability: float = 0.0,
             reserved: tuple[str, ...] = ()) -> SocketPairSpec:
    return SocketPairSpec(
        pair_id=f"fp:{key}", initiator=FIRST_PARTY, receiver=key, sites=sites,
        page_probability=prob, sockets_per_page=spp, profile=profile,
        crawls=frozenset(crawls), rank_zone=zone,
        user_id_probability=user_id_probability, reserved_sites=reserved,
    )


def _cross(initiator: str, receiver: str, sites: int, prob: float,
           profile: str, crawls=_ALL, spp: int = 1, zone: str = "top",
           via: tuple[str, ...] = (), user_id_probability: float = 0.0,
           reserved: tuple[str, ...] = ()) -> SocketPairSpec:
    return SocketPairSpec(
        pair_id=f"pair:{initiator}->{receiver}", initiator=initiator,
        receiver=receiver, via=via, sites=sites, page_probability=prob,
        sockets_per_page=spp, profile=profile, crawls=frozenset(crawls),
        rank_zone=zone, user_id_probability=user_id_probability,
        reserved_sites=reserved, scale_exempt=True,
    )


# ---------------------------------------------------------------------------
# Self pairs: services whose own script opens the socket back home.
# These dominate the "A&A domain to itself" row of Table 4 (36,056).
# ---------------------------------------------------------------------------

SELF_PAIRS: tuple[SocketPairSpec, ...] = (
    # zopim self ≈ 19,064 (the paper calls this out explicitly):
    # 400×60×0.80 = 19,200.
    _self_pair("zopim", 440, 0.80, "chat", zone="mixed"),
    _self_pair("intercom", 165, 0.50, "chat", zone="top",
               user_id_probability=0.12),
    _self_pair("disqus", 200, 0.50, "comments", zone="mixed"),
    _self_pair("hotjar", 95, 0.50, "session_replay", zone="top"),
    _self_pair("feedjit", 125, 0.49, "visitor_feed", zone="flat"),
    _self_pair("realtime", 10, 0.48, "analytics_beacon", zone="top"),
    _self_pair("smartsupp", 14, 0.50, "chat"),
    _self_pair("inspectlet", 30, 0.51, "event_replay", zone="top"),
    _self_pair("pusher", 15, 0.50, "realtime_feed", zone="top"),
    _self_pair("33across", 10, 0.48, "fingerprint", zone="top"),
    _self_pair("freshrelevance", 18, 0.50, "analytics_beacon"),
    _self_pair("lockerdome", 18, 0.50, "ad_serving", zone="mixed",
               user_id_probability=1.0),
    _self_pair("luckyorange", 50, 0.50, "session_replay"),
    _self_pair("velaro", 2, 0.50, "chat", crawls=CRAWLS_VELARO),
    _self_pair("truconversion", 3, 0.75, "session_replay",
               crawls=CRAWLS_TRUCONVERSION, spp=2),
    _self_pair("sessioncam", 2, 0.50, "event_replay", crawls=CRAWLS_SESSIONCAM),
    _self_pair("livechatinc", 3, 0.50, "chat", crawls=CRAWLS_LIVECHATINC),
    _self_pair("tawk", 3, 0.50, "chat", crawls=CRAWLS_TAWK),
    _self_pair("userreplay", 2, 0.50, "event_replay", crawls=CRAWLS_USERREPLAY),
)

# ---------------------------------------------------------------------------
# Publisher-initiated pairs: the first party's own inline script opens
# the socket. These drive Table 3's large "total initiators" counts
# (intercom saw 156 unique initiators, mostly publishers).
# ---------------------------------------------------------------------------

FIRST_PARTY_PAIRS: tuple[SocketPairSpec, ...] = (
    _fp_pair("intercom", 126, 0.55, "chat", zone="top",
             user_id_probability=0.12),
    _fp_pair("33across", 38, 0.95, "fingerprint", zone="top"),
    _fp_pair("zopim", 31, 0.65, "chat"),
    _fp_pair("realtime", 13, 0.70, "analytics_beacon", zone="top"),
    _fp_pair("smartsupp", 20, 0.45, "chat"),
    _fp_pair("feedjit", 14, 0.55, "visitor_feed", zone="tail"),
    _fp_pair("inspectlet", 19, 0.50, "event_replay"),
    _fp_pair("pusher", 11, 0.60, "realtime_feed", zone="top"),
    _fp_pair("disqus", 3, 0.70, "comments"),
    _fp_pair("hotjar", 6, 0.70, "session_replay", zone="top"),
    _fp_pair("freshrelevance", 8, 0.50, "analytics_beacon"),
    _fp_pair("lockerdome", 2, 0.50, "ad_serving", user_id_probability=1.0),
    _fp_pair("velaro", 1, 0.20, "chat", crawls=CRAWLS_VELARO,
             reserved=("velarocustomer-support.com",)),
    _fp_pair("truconversion", 1, 0.50, "session_replay",
             crawls=CRAWLS_TRUCONVERSION, spp=2),
    # simpleheatmaps' sole customer — Table 3's "1 initiator, 0 A&A" row.
    _fp_pair("simpleheatmaps", 1, 1.00, "event_replay",
             crawls=CRAWLS_SIMPLEHEATMAPS, spp=3,
             reserved=("simpleheat-demo.com",)),
    _fp_pair("sessioncam", 1, 0.20, "event_replay", crawls=CRAWLS_SESSIONCAM),
    _fp_pair("livechatinc", 2, 0.20, "chat", crawls=CRAWLS_LIVECHATINC),
    _fp_pair("tawk", 2, 0.20, "chat", crawls=CRAWLS_TAWK),
    _fp_pair("userreplay", 1, 0.20, "event_replay", crawls=CRAWLS_USERREPLAY),
)

# ---------------------------------------------------------------------------
# The named cross pairs of Table 4, with calibrated socket budgets.
# ---------------------------------------------------------------------------

NAMED_CROSS_PAIRS: tuple[SocketPairSpec, ...] = (
    # webspectator|realtime 1285: 21×60×1.0 = 1260.
    _cross("webspectator", "realtime", 21, 1.00, "analytics_beacon",
           user_id_probability=0.5),
    # google|zopim 172 (pre-patch only): 6×30×0.95 = 171.
    _cross("google", "zopim", 6, 0.95, "chat", crawls=_PRE),
    # blogger|feedjit 158: 6×60×0.44 = 158.
    _cross("blogger", "feedjit", 6, 0.44, "visitor_feed", zone="tail"),
    # hotjar|intercom 144: 3×60×0.80 = 144.
    _cross("hotjar", "intercom", 3, 0.80, "chat"),
    # clickdesk|pusher 125: 4×60×0.52 = 125.
    _cross("clickdesk", "pusher", 4, 0.52, "realtime_feed"),
    # cdn77|smartsupp 122: 4×60×0.51 = 122.
    _cross("cdn77", "smartsupp", 4, 0.51, "chat"),
    # facebook|zopim 112 (pre-patch only): 5×30×0.75 = 112.
    _cross("facebook", "zopim", 5, 0.75, "chat", crawls=_PRE),
    # doubleclick|33across ≈150 of DoubleClick's 250 — the fingerprint
    # flow §4.3 highlights: 8×30×0.63 = 151.
    _cross("doubleclick", "33across", 10, 0.63, "fingerprint", crawls=_PRE),
    # googleapis|sportingindex 96, reached through a DoubleClick ad
    # script (making it an A&A socket by chain ancestry): 1×60×0.80×2.
    _cross("googleapis", "sportingindex", 1, 0.80, "sports_live", spp=2,
           via=("doubleclick",), reserved=("sportingindex.com",)),
    # The recognizable single-publisher intercom/pusher customers.
    _cross(FIRST_PARTY, "intercom", 1, 0.95, "chat", spp=2,
           reserved=("acenterforrecovery.com",)),
    _cross(FIRST_PARTY, "intercom", 1, 0.92, "chat", spp=2,
           reserved=("vatit.com",), user_id_probability=0.3),
    _cross(FIRST_PARTY, "intercom", 1, 0.90, "chat", spp=2,
           reserved=("plymouthart.ac.uk",)),
    _cross(FIRST_PARTY, "intercom", 1, 0.875, "chat", spp=2,
           reserved=("welchllp.com",)),
    _cross(FIRST_PARTY, "intercom", 1, 0.84, "chat", spp=2,
           reserved=("biozone.com",)),
    _cross(FIRST_PARTY, "pusher", 1, 0.84, "realtime_feed", spp=2,
           reserved=("getambassador.com",)),
    _cross(FIRST_PARTY, "intercom", 1, 0.82, "chat", spp=2,
           reserved=("rubymonk.com",)),
)

# ---------------------------------------------------------------------------
# Spread pairs: one initiator fanning out to many receivers. The A&A
# receiver fans drive Table 2's "# Receivers (A&A)" column; the TAIL
# entries connect to generated benign SaaS receivers and drive the
# "Total" column. ``TAIL:n`` means: n distinct tail receivers.
# ---------------------------------------------------------------------------


def _spread(initiator: str, receivers: tuple[str, ...], tail_count: int,
            prob: float, crawls=_ALL, profile: str = "realtime_feed",
            zone: str = "top", receivers_per_site: int = 3) -> list[SocketPairSpec]:
    """Expand a fan-out into per-receiver specs sharing grouped sites."""
    specs: list[SocketPairSpec] = []
    targets = list(receivers) + [f"TAIL:{initiator}:{i}" for i in range(tail_count)]
    for idx, receiver in enumerate(targets):
        specs.append(
            SocketPairSpec(
                pair_id=f"spread:{initiator}->{receiver}",
                initiator=initiator,
                receiver=receiver,
                sites=1,
                page_probability=prob,
                profile=profile if not receiver.startswith("TAIL:") else "realtime_feed",
                crawls=frozenset(crawls),
                rank_zone=zone,
            )
        )
    return specs


_AA_CHAT_POOL = ("intercom", "zopim", "realtime", "pusher", "smartsupp",
                 "feedjit", "inspectlet", "hotjar", "disqus", "33across",
                 "lockerdome", "livechatinc")


def build_spread_pairs() -> list[SocketPairSpec]:
    """All fan-out specs, one list (see Table 2 calibration notes).

    The A&A fans are solved jointly with the tail quotas below so that
    Table 2's "# Receivers (A&A)" column and Table 3's "# Initiators
    (A&A)" column both reproduce the paper.
    """
    specs: list[SocketPairSpec] = []
    # facebook: 35 receivers (11 A&A incl. zopim above), 441 sockets.
    specs += _spread("facebook",
                     ("intercom", "pusher", "realtime", "smartsupp", "feedjit",
                      "inspectlet", "hotjar", "disqus", "33across", "livechatinc"),
                     24, prob=0.28, crawls=_PRE, profile="chat")
    # doubleclick: 29 receivers (9 A&A incl. 33across above), 250 sockets.
    specs += _spread("doubleclick",
                     ("realtime", "pusher", "lockerdome", "hotjar", "disqus",
                      "intercom", "feedjit", "inspectlet"),
                     20, prob=0.10, crawls=_PRE, profile="analytics_beacon")
    # google: 23 receivers (11 A&A incl. zopim above), 381 sockets.
    specs += _spread("google",
                     ("intercom", "realtime", "pusher", "smartsupp", "feedjit",
                      "hotjar", "disqus", "inspectlet", "33across", "livechatinc"),
                     12, prob=0.28, crawls=_PRE, profile="chat")
    # youtube (non-A&A): 18 receivers (8 A&A), 129 sockets, all crawls.
    specs += _spread("youtube",
                     ("zopim", "intercom", "pusher", "realtime", "disqus",
                      "hotjar", "feedjit", "smartsupp"),
                     10, prob=0.12, profile="chat")
    # espncdn: 35 non-A&A receivers, 92 sockets (sports shards).
    specs += _spread("espncdn", (), 35, prob=0.045, profile="sports_live",
                     zone="top")
    # h-cdn: 30 non-A&A receivers, 39 sockets.
    specs += _spread("h-cdn", (), 30, prob=0.022, profile="push_channel",
                     zone="mixed")
    # cloudflare: 15 receivers (1 A&A: pusher), 873 sockets.
    specs += _spread("cloudflare", ("pusher",), 14, prob=0.97,
                     profile="realtime_feed", zone="mixed")
    # addthis: 14 receivers (8 A&A), 101 sockets, pre-patch only.
    specs += _spread("addthis",
                     ("intercom", "zopim", "realtime", "pusher", "feedjit",
                      "disqus", "hotjar", "lockerdome"),
                     6, prob=0.12, crawls=_PRE, profile="chat")
    # hotjar fan-out beyond intercom: 17 receivers (11 A&A), ~57 sockets.
    specs += _spread("hotjar",
                     ("zopim", "realtime", "smartsupp", "feedjit",
                      "inspectlet", "disqus", "33across", "lockerdome",
                      "velaro"),
                     6, prob=0.035, profile="event_replay")
    # googlesyndication: 10 receivers (6 A&A), 71 sockets, pre-patch.
    specs += _spread("googlesyndication",
                     ("realtime", "lockerdome", "33across", "disqus",
                      "pusher", "feedjit"),
                     4, prob=0.08, crawls=_PRE, profile="analytics_beacon")
    # adnxs: 8 receivers (3 A&A), 31 sockets, pre-patch.
    specs += _spread("adnxs", ("33across", "realtime", "lockerdome"),
                     5, prob=0.045, crawls=_PRE, profile="analytics_beacon")
    # googleapis: 7 receivers incl. sportingindex, 157 sockets.
    specs += _spread("googleapis", (), 6, prob=0.085, profile="push_channel")
    # sharethis: 6 receivers (4 A&A), 20 sockets, pre-patch.
    specs += _spread("sharethis",
                     ("realtime", "33across", "lockerdome", "disqus"),
                     2, prob=0.04, crawls=_PRE, profile="chat")
    # twitter: 6 receivers (5 A&A), 21 sockets, pre-patch.
    specs += _spread("twitter",
                     ("realtime", "33across", "disqus", "lockerdome", "zopim"),
                     1, prob=0.04, crawls=_PRE, profile="chat")
    # inspectlet fan-out: 25 receivers (6 A&A), ~115 sockets.
    specs += _spread("inspectlet",
                     ("realtime", "33across", "hotjar", "pusher", "intercom"),
                     19, prob=0.04, profile="event_replay")
    # pusher's own client libraries: 22 receivers (8 A&A), ~330 sockets.
    specs += _spread("pusher",
                     ("realtime", "feedjit", "inspectlet", "33across",
                      "disqus", "hotjar", "zopim"),
                     14, prob=0.10, profile="realtime_feed")
    # slither.io: one site, 25 game-server shards, 33 sockets.
    specs.append(
        SocketPairSpec(
            pair_id="slither:shards", initiator="slither",
            receiver="TAIL:slither:POOL:25", sites=1, page_probability=0.55,
            profile="game_state", crawls=_ALL, rank_zone="top",
            reserved_sites=("slither.io",), scale_exempt=True,
        )
    )
    return specs


# ---------------------------------------------------------------------------
# Tail A&A initiators: 65 synthetic ad-tech companies. Activity groups
# are derived in companies.py's module docstring; together with the 15
# persistent + 6 occasional named initiators and the 8 pre-patch majors
# they produce Table 1's 75 / 63 / 19 / 23 unique initiators and the
# "56 disappeared" statistic.
# ---------------------------------------------------------------------------

TAIL_INITIATOR_GROUPS: tuple[tuple[str, int, frozenset[int]], ...] = (
    ("tailA", 28, frozenset({0})),          # seen only in crawl 0
    ("tailB", 15, frozenset({0, 1})),       # pre-patch only
    ("tailC", 15, frozenset({1})),          # appeared in crawl 1, then gone
    ("tailP", 1, frozenset({0, 1, 3})),     # survived the patch
    ("tailQ", 2, frozenset({0, 1, 2, 3})),  # fully persistent tail
    ("tailN", 1, frozenset({3})),           # post-patch newcomer
    ("tailR", 3, frozenset({0, 1})),        # pre-patch, minor-receiver bound
)

# How many tail initiators each A&A receiver should hear from (merged
# dataset), from Table 3's "# Initiators (A&A)" minus the named A&A
# initiators wired above.
TAIL_RECEIVER_QUOTAS: tuple[tuple[str, int], ...] = (
    ("realtime", 14),
    ("intercom", 9),
    ("33across", 8),
    ("zopim", 5),
    ("disqus", 3),
    ("feedjit", 2),
    ("freshrelevance", 1),
    ("velaro", 1),
    ("truconversion", 1),
)

TAIL_PLAN = TailPlan(
    pre_only_initiators=43,  # tailA + tailB
    crawl1_new_initiators=15,  # tailC
    persistent_from_pre=3,  # tailP + tailQ
    post_only_initiators=1,  # tailN
    tail_receivers=320,
    tail_receiver_floor=30,
)


# ---------------------------------------------------------------------------
# The October cohort: by the Oct 12–16 crawl, WebSocket adoption had
# grown (2.5% of sites, Table 1), and the growth skews the mix — the
# A&A-initiated share rises to 63.4% while the A&A-received share falls
# to 63.7%. We model it as publishers adopting Pusher-powered realtime
# features: pusher's client library (an A&A-labeled initiator) connects
# to benign cluster endpoints.
# ---------------------------------------------------------------------------

OCT_GROWTH_PAIRS: tuple[SocketPairSpec, ...] = tuple(
    SocketPairSpec(
        pair_id=f"growth:pusher-cluster-{i}",
        initiator="pusher",
        receiver=f"TAIL:pusher:{i}",
        sites=200,
        page_probability=0.55,
        profile="realtime_feed",
        crawls=frozenset({3}),
        rank_zone="flat",
    )
    for i in range(3)
) + (
    # Chat adoption also grew by October: more publishers bootstrapping
    # live-chat widgets (A&A-received, publisher-initiated).
    SocketPairSpec(
        pair_id="growth:fp-zopim", initiator=FIRST_PARTY, receiver="zopim",
        sites=150, page_probability=0.35, profile="chat",
        crawls=frozenset({3}), rank_zone="mixed",
    ),
    SocketPairSpec(
        pair_id="growth:fp-intercom", initiator=FIRST_PARTY,
        receiver="intercom", sites=100, page_probability=0.30,
        profile="chat", crawls=frozenset({3}), rank_zone="top",
    ),
    SocketPairSpec(
        pair_id="growth:fp-smartsupp", initiator=FIRST_PARTY,
        receiver="smartsupp", sites=40, page_probability=0.30,
        profile="chat", crawls=frozenset({3}), rank_zone="mixed",
    ),
)


def all_static_pairs() -> list[SocketPairSpec]:
    """Every statically declared pair spec (no tails)."""
    return (
        list(SELF_PAIRS)
        + list(FIRST_PARTY_PAIRS)
        + list(NAMED_CROSS_PAIRS)
        + build_spread_pairs()
        + list(OCT_GROWTH_PAIRS)
    )
