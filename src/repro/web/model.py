"""Data model for the company registry.

The registry describes the synthetic ecosystem declaratively: who the
companies are, which filter lists cover them, who opens WebSockets to
whom (and during which crawls), and what HTTP resources they serve.
The site generator and filter-list builder consume these records; the
measurement pipeline never sees them — it must *rediscover* everything
from network behaviour, exactly as the paper did.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Role(str, enum.Enum):
    """Business role of a company, mirroring §4.2's taxonomy."""

    AD_EXCHANGE = "ad_exchange"
    AD_NETWORK = "ad_network"
    SOCIAL_WIDGET = "social_widget"
    ANALYTICS = "analytics"
    SESSION_REPLAY = "session_replay"
    LIVE_CHAT = "live_chat"
    REALTIME_INFRA = "realtime_infra"
    COMMENTS = "comments"
    CONTENT_RECOMMENDATION = "content_recommendation"
    CDN = "cdn"
    GAME = "game"
    SPORTS = "sports"
    VIDEO = "video"
    PUBLISHER_TOOL = "publisher_tool"


ALL_CRAWLS: frozenset[int] = frozenset({0, 1, 2, 3})
PRE_PATCH_CRAWLS: frozenset[int] = frozenset({0, 1})
POST_PATCH_CRAWLS: frozenset[int] = frozenset({2, 3})

# Sentinel initiator/receiver meaning "the embedding publisher itself".
FIRST_PARTY = "FIRST_PARTY"


@dataclass(frozen=True)
class Company:
    """One company in the ecosystem.

    Attributes:
        key: Short registry key (``"doubleclick"``).
        domain: Registrable domain (``"doubleclick.net"``).
        role: Business role.
        aa_expected: Whether the company *should* end up labeled A&A by
            the pipeline — used only by tests/validation, never by the
            pipeline itself.
        script_host: Fully-qualified host serving the company's JS.
        ws_host: Fully-qualified host accepting its WebSockets.
        cloudfront_host: When set, the company serves its script from
            this Cloudfront subdomain instead of ``script_host`` (the
            paper's manual-mapping case, §3.2).
        easylist_rules: ABP rule lines contributed to synthetic EasyList.
        easyprivacy_rules: Rule lines contributed to synthetic EasyPrivacy.
        blockable_paths: URL path prefixes (on the company's hosts) that
            its filter rules actually match.
        clean_paths: Path prefixes serving resources no rule matches
            (chat widgets, site-functional code).
        http_mix: Relative weights of HTTP resource kinds this company
            serves ambiently: ``script``, ``image``, ``sub_frame``,
            ``xmlhttprequest``, ``ping``, ``stylesheet``.
        cookie_probability: Chance an HTTP request to it carries a cookie.
        deploy_weight: Relative popularity in ambient (non-socket) page
            embeds; 0 disables ambient embedding.
    """

    key: str
    domain: str
    role: Role
    aa_expected: bool = True
    script_host: str = ""
    ws_host: str = ""
    cloudfront_host: str = ""
    easylist_rules: tuple[str, ...] = ()
    easyprivacy_rules: tuple[str, ...] = ()
    blockable_paths: tuple[str, ...] = ()
    clean_paths: tuple[str, ...] = ("/widget/app.js",)
    http_mix: tuple[tuple[str, float], ...] = (("script", 1.0),)
    cookie_probability: float = 0.5
    deploy_weight: float = 0.0

    def resolved_script_host(self) -> str:
        """Host the company's script is fetched from."""
        if self.cloudfront_host:
            return self.cloudfront_host
        return self.script_host or f"cdn.{self.domain}"

    def resolved_ws_host(self) -> str:
        """Host the company's WebSocket endpoint lives on."""
        return self.ws_host or f"ws.{self.domain}"

    def beacon_host(self) -> str:
        """Host serving the company's tracking beacons.

        Always on the company's own registrable domain — even for
        Cloudfront tenants, whose *scripts* live on the CDN. This is
        what makes the paper's adjacency-based Cloudfront mapping
        possible: the CDN-hosted script loads a beacon from (or opens
        a socket to) the tenant's own domain.
        """
        return f"px.{self.domain}"


@dataclass(frozen=True)
class SocketPairSpec:
    """One initiator→receiver WebSocket relationship to deploy.

    The generator turns each spec into ``round(sites * scale)`` (min 1)
    publisher-site deployments with deterministic rank placement, so the
    pair is observed at every crawl scale.

    Attributes:
        pair_id: Unique identifier for RNG stream derivation.
        initiator: Company key, or :data:`FIRST_PARTY` when the
            publisher's own inline script opens the socket.
        receiver: Company key, or :data:`FIRST_PARTY` for self-hosted
            (same-origin) sockets.
        via: Company keys of script ancestors *above* the initiator in
            the inclusion chain (e.g. an ad exchange that loaded the
            initiating helper script).
        sites: Number of distinct publisher sites at scale 1.0.
        page_probability: Chance a given page visit opens the socket.
        sockets_per_page: Sockets opened per activating page visit.
        profile: Payload profile name (see ``repro.web.payloads``).
        crawls: Crawl indices during which the pair is active.
        rank_zone: ``"top"`` (ranks ≤10K), ``"mid"`` (10K–100K),
            ``"tail"`` (100K–1M), or ``"mixed"``.
        user_id_probability: Chance the page passes a logged-in user id
            to the service (Table 5 "User ID").
        reserved_sites: Explicit publisher domains that must host this
            pair (the recognizable first parties of Table 4).
        scale_exempt: Keep the per-site socket rate unscaled (site
            counts still scale) — used for the named pairs of Table 4,
            whose per-publisher relationship intensity is the result
            itself.
    """

    pair_id: str
    initiator: str
    receiver: str
    via: tuple[str, ...] = ()
    sites: int = 1
    page_probability: float = 0.5
    sockets_per_page: int = 1
    profile: str = "chat"
    crawls: frozenset[int] = ALL_CRAWLS
    rank_zone: str = "mixed"
    user_id_probability: float = 0.0
    reserved_sites: tuple[str, ...] = ()
    scale_exempt: bool = False


@dataclass(frozen=True)
class CrawlMood:
    """Per-crawl global modifiers capturing ecosystem drift.

    Attributes:
        label: Human-readable crawl window (matches Table 1 rows).
        start_date: ISO date the crawl starts.
        chrome_major: Browser version used (57 pre-patch, 58 post).
        activity: Multiplier on every pair's ``page_probability``.
        ambient_socket_boost: Multiplier on ambient non-A&A socket
            adoption (the Oct crawl saw more benign sockets).
    """

    label: str
    start_date: str
    chrome_major: int
    activity: float = 1.0
    ambient_socket_boost: float = 1.0


@dataclass
class RegistryValidationError(ValueError):
    """Raised when registry data is internally inconsistent."""

    message: str

    def __str__(self) -> str:
        return self.message


@dataclass(frozen=True)
class TailPlan:
    """Parameters for programmatically generated long-tail entities.

    Attributes:
        pre_only_initiators: Tail A&A initiators active only pre-patch.
        crawl1_new_initiators: Tail initiators first seen in crawl 1.
        persistent_from_pre: Tail initiators active in all four crawls.
        post_only_initiators: Tail initiators first seen post-patch.
        tail_receivers: Non-A&A SaaS receiver entities at scale 1.0.
        tail_receiver_floor: Minimum tail receivers at any scale.
    """

    pre_only_initiators: int = 48
    crawl1_new_initiators: int = 15
    persistent_from_pre: int = 4
    post_only_initiators: int = 4
    tail_receivers: int = 320
    tail_receiver_floor: int = 30
