"""The synthetic web, assembled: universe + registry + plan + generator.

:class:`SyntheticWeb` is the single object the crawler and browser talk
to — morally "the internet". It owns the seed list (sampled per §3.3,
with the planner's placed sites merged in, since those publishers were
part of the crawled population) and serves page blueprints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.web.alexa import AlexaUniverse, SeedList, Site, build_seed_list
from repro.web.planner import EcosystemPlan, EcosystemPlanner
from repro.web.registry import CompanyRegistry, default_registry
from repro.web.sitegen import GeneratorConfig, SiteGenerator


@dataclass(frozen=True)
class WebScale:
    """Scale parameters for the synthetic web.

    Attributes:
        sample_scale: Fraction of the paper's seed-list sample sizes
            (1.0 ≈ 100K sites).
        entity_scale: Fraction applied to calibrated multi-site socket
            deployments. Defaults to ``sample_scale`` so percentages
            stay calibrated; tests may shrink it independently.
    """

    sample_scale: float = 1.0
    entity_scale: float | None = None

    @property
    def resolved_entity_scale(self) -> float:
        return self.entity_scale if self.entity_scale is not None else self.sample_scale


class SyntheticWeb:
    """The world under measurement."""

    def __init__(
        self,
        scale: WebScale | float = 1.0,
        seed: int = 2017,
        registry: CompanyRegistry | None = None,
        generator_config: GeneratorConfig | None = None,
    ) -> None:
        if isinstance(scale, (int, float)):
            scale = WebScale(sample_scale=float(scale))
        self.scale = scale
        self.seed = seed
        self.registry = registry or default_registry(seed)
        self.universe = AlexaUniverse(seed)
        planner = EcosystemPlanner(
            self.registry, self.universe,
            scale=scale.resolved_entity_scale, seed=seed,
        )
        self.plan: EcosystemPlan = planner.build()
        self.seed_list: SeedList = build_seed_list(
            self.universe,
            scale=scale.sample_scale,
            extra_sites=self.plan.placed_sites,
            seed=seed,
        )
        self._sites_by_domain = {s.domain: s for s in self.seed_list.sites}
        self.generator = SiteGenerator(
            self.registry, self.plan, generator_config, seed
        )

    def site(self, domain: str) -> Site:
        """Look up a seed-list site by domain."""
        return self._sites_by_domain[domain]

    def blueprint(self, site: Site | str, page_index: int, crawl: int):
        """The page a browser loads at (site, page, crawl)."""
        if isinstance(site, str):
            site = self.site(site)
        return self.generator.blueprint(site, page_index, crawl)

    @property
    def site_count(self) -> int:
        """Number of sites in the crawl seed list."""
        return len(self.seed_list)
